file(REMOVE_RECURSE
  "libdecepticon_tensor.a"
)
