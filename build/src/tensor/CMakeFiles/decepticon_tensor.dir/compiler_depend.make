# Empty compiler generated dependencies file for decepticon_tensor.
# This may be replaced when dependencies are built.
