file(REMOVE_RECURSE
  "CMakeFiles/decepticon_tensor.dir/tensor.cc.o"
  "CMakeFiles/decepticon_tensor.dir/tensor.cc.o.d"
  "libdecepticon_tensor.a"
  "libdecepticon_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
