# Empty compiler generated dependencies file for decepticon_gpusim.
# This may be replaced when dependencies are built.
