file(REMOVE_RECURSE
  "libdecepticon_gpusim.a"
)
