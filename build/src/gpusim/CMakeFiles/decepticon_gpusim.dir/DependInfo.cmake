
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/catalog.cc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/catalog.cc.o" "gcc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/catalog.cc.o.d"
  "/root/repo/src/gpusim/kernel.cc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/kernel.cc.o" "gcc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/kernel.cc.o.d"
  "/root/repo/src/gpusim/noise.cc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/noise.cc.o" "gcc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/noise.cc.o.d"
  "/root/repo/src/gpusim/signature.cc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/signature.cc.o" "gcc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/signature.cc.o.d"
  "/root/repo/src/gpusim/trace_generator.cc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/trace_generator.cc.o" "gcc" "src/gpusim/CMakeFiles/decepticon_gpusim.dir/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/decepticon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
