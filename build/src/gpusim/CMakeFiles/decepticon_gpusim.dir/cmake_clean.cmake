file(REMOVE_RECURSE
  "CMakeFiles/decepticon_gpusim.dir/catalog.cc.o"
  "CMakeFiles/decepticon_gpusim.dir/catalog.cc.o.d"
  "CMakeFiles/decepticon_gpusim.dir/kernel.cc.o"
  "CMakeFiles/decepticon_gpusim.dir/kernel.cc.o.d"
  "CMakeFiles/decepticon_gpusim.dir/noise.cc.o"
  "CMakeFiles/decepticon_gpusim.dir/noise.cc.o.d"
  "CMakeFiles/decepticon_gpusim.dir/signature.cc.o"
  "CMakeFiles/decepticon_gpusim.dir/signature.cc.o.d"
  "CMakeFiles/decepticon_gpusim.dir/trace_generator.cc.o"
  "CMakeFiles/decepticon_gpusim.dir/trace_generator.cc.o.d"
  "libdecepticon_gpusim.a"
  "libdecepticon_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
