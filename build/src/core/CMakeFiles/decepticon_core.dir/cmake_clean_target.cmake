file(REMOVE_RECURSE
  "libdecepticon_core.a"
)
