file(REMOVE_RECURSE
  "CMakeFiles/decepticon_core.dir/decepticon.cc.o"
  "CMakeFiles/decepticon_core.dir/decepticon.cc.o.d"
  "CMakeFiles/decepticon_core.dir/two_level.cc.o"
  "CMakeFiles/decepticon_core.dir/two_level.cc.o.d"
  "libdecepticon_core.a"
  "libdecepticon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
