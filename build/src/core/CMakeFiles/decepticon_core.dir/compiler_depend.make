# Empty compiler generated dependencies file for decepticon_core.
# This may be replaced when dependencies are built.
