# Empty compiler generated dependencies file for decepticon_nn.
# This may be replaced when dependencies are built.
