file(REMOVE_RECURSE
  "CMakeFiles/decepticon_nn.dir/activations.cc.o"
  "CMakeFiles/decepticon_nn.dir/activations.cc.o.d"
  "CMakeFiles/decepticon_nn.dir/conv.cc.o"
  "CMakeFiles/decepticon_nn.dir/conv.cc.o.d"
  "CMakeFiles/decepticon_nn.dir/embedding.cc.o"
  "CMakeFiles/decepticon_nn.dir/embedding.cc.o.d"
  "CMakeFiles/decepticon_nn.dir/layernorm.cc.o"
  "CMakeFiles/decepticon_nn.dir/layernorm.cc.o.d"
  "CMakeFiles/decepticon_nn.dir/linear.cc.o"
  "CMakeFiles/decepticon_nn.dir/linear.cc.o.d"
  "CMakeFiles/decepticon_nn.dir/loss.cc.o"
  "CMakeFiles/decepticon_nn.dir/loss.cc.o.d"
  "CMakeFiles/decepticon_nn.dir/optim.cc.o"
  "CMakeFiles/decepticon_nn.dir/optim.cc.o.d"
  "CMakeFiles/decepticon_nn.dir/serialize.cc.o"
  "CMakeFiles/decepticon_nn.dir/serialize.cc.o.d"
  "libdecepticon_nn.a"
  "libdecepticon_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
