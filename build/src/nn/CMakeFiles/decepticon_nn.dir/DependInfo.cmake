
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/decepticon_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/decepticon_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/decepticon_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/decepticon_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/decepticon_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/decepticon_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/layernorm.cc" "src/nn/CMakeFiles/decepticon_nn.dir/layernorm.cc.o" "gcc" "src/nn/CMakeFiles/decepticon_nn.dir/layernorm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/decepticon_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/decepticon_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/decepticon_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/decepticon_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/decepticon_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/decepticon_nn.dir/optim.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/decepticon_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/decepticon_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/decepticon_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/decepticon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
