file(REMOVE_RECURSE
  "libdecepticon_nn.a"
)
