file(REMOVE_RECURSE
  "CMakeFiles/decepticon_fingerprint.dir/boundary.cc.o"
  "CMakeFiles/decepticon_fingerprint.dir/boundary.cc.o.d"
  "CMakeFiles/decepticon_fingerprint.dir/cnn.cc.o"
  "CMakeFiles/decepticon_fingerprint.dir/cnn.cc.o.d"
  "CMakeFiles/decepticon_fingerprint.dir/dataset.cc.o"
  "CMakeFiles/decepticon_fingerprint.dir/dataset.cc.o.d"
  "CMakeFiles/decepticon_fingerprint.dir/knn.cc.o"
  "CMakeFiles/decepticon_fingerprint.dir/knn.cc.o.d"
  "CMakeFiles/decepticon_fingerprint.dir/metrics.cc.o"
  "CMakeFiles/decepticon_fingerprint.dir/metrics.cc.o.d"
  "CMakeFiles/decepticon_fingerprint.dir/seq_predictor.cc.o"
  "CMakeFiles/decepticon_fingerprint.dir/seq_predictor.cc.o.d"
  "libdecepticon_fingerprint.a"
  "libdecepticon_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
