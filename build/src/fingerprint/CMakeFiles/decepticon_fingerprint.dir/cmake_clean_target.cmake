file(REMOVE_RECURSE
  "libdecepticon_fingerprint.a"
)
