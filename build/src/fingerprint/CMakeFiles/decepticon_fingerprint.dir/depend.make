# Empty dependencies file for decepticon_fingerprint.
# This may be replaced when dependencies are built.
