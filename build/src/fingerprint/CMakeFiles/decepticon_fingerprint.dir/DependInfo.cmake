
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/boundary.cc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/boundary.cc.o" "gcc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/boundary.cc.o.d"
  "/root/repo/src/fingerprint/cnn.cc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/cnn.cc.o" "gcc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/cnn.cc.o.d"
  "/root/repo/src/fingerprint/dataset.cc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/dataset.cc.o" "gcc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/dataset.cc.o.d"
  "/root/repo/src/fingerprint/knn.cc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/knn.cc.o" "gcc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/knn.cc.o.d"
  "/root/repo/src/fingerprint/metrics.cc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/metrics.cc.o" "gcc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/metrics.cc.o.d"
  "/root/repo/src/fingerprint/seq_predictor.cc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/seq_predictor.cc.o" "gcc" "src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/seq_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zoo/CMakeFiles/decepticon_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/decepticon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/decepticon_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/decepticon_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/decepticon_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/decepticon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
