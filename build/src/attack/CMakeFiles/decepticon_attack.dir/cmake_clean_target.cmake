file(REMOVE_RECURSE
  "libdecepticon_attack.a"
)
