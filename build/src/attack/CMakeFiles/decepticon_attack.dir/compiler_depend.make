# Empty compiler generated dependencies file for decepticon_attack.
# This may be replaced when dependencies are built.
