file(REMOVE_RECURSE
  "CMakeFiles/decepticon_attack.dir/adversarial.cc.o"
  "CMakeFiles/decepticon_attack.dir/adversarial.cc.o.d"
  "CMakeFiles/decepticon_attack.dir/head_pruning.cc.o"
  "CMakeFiles/decepticon_attack.dir/head_pruning.cc.o.d"
  "CMakeFiles/decepticon_attack.dir/substitute.cc.o"
  "CMakeFiles/decepticon_attack.dir/substitute.cc.o.d"
  "libdecepticon_attack.a"
  "libdecepticon_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
