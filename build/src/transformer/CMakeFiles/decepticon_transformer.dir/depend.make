# Empty dependencies file for decepticon_transformer.
# This may be replaced when dependencies are built.
