file(REMOVE_RECURSE
  "CMakeFiles/decepticon_transformer.dir/classifier.cc.o"
  "CMakeFiles/decepticon_transformer.dir/classifier.cc.o.d"
  "CMakeFiles/decepticon_transformer.dir/confidence.cc.o"
  "CMakeFiles/decepticon_transformer.dir/confidence.cc.o.d"
  "CMakeFiles/decepticon_transformer.dir/encoder.cc.o"
  "CMakeFiles/decepticon_transformer.dir/encoder.cc.o.d"
  "CMakeFiles/decepticon_transformer.dir/task.cc.o"
  "CMakeFiles/decepticon_transformer.dir/task.cc.o.d"
  "CMakeFiles/decepticon_transformer.dir/trainer.cc.o"
  "CMakeFiles/decepticon_transformer.dir/trainer.cc.o.d"
  "libdecepticon_transformer.a"
  "libdecepticon_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
