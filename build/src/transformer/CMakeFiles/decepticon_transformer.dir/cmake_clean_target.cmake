file(REMOVE_RECURSE
  "libdecepticon_transformer.a"
)
