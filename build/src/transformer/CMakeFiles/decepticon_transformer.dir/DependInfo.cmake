
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transformer/classifier.cc" "src/transformer/CMakeFiles/decepticon_transformer.dir/classifier.cc.o" "gcc" "src/transformer/CMakeFiles/decepticon_transformer.dir/classifier.cc.o.d"
  "/root/repo/src/transformer/confidence.cc" "src/transformer/CMakeFiles/decepticon_transformer.dir/confidence.cc.o" "gcc" "src/transformer/CMakeFiles/decepticon_transformer.dir/confidence.cc.o.d"
  "/root/repo/src/transformer/encoder.cc" "src/transformer/CMakeFiles/decepticon_transformer.dir/encoder.cc.o" "gcc" "src/transformer/CMakeFiles/decepticon_transformer.dir/encoder.cc.o.d"
  "/root/repo/src/transformer/task.cc" "src/transformer/CMakeFiles/decepticon_transformer.dir/task.cc.o" "gcc" "src/transformer/CMakeFiles/decepticon_transformer.dir/task.cc.o.d"
  "/root/repo/src/transformer/trainer.cc" "src/transformer/CMakeFiles/decepticon_transformer.dir/trainer.cc.o" "gcc" "src/transformer/CMakeFiles/decepticon_transformer.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/decepticon_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/decepticon_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/decepticon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
