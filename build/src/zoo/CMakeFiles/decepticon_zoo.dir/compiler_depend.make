# Empty compiler generated dependencies file for decepticon_zoo.
# This may be replaced when dependencies are built.
