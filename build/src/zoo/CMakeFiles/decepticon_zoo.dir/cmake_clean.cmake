file(REMOVE_RECURSE
  "CMakeFiles/decepticon_zoo.dir/finetune_sim.cc.o"
  "CMakeFiles/decepticon_zoo.dir/finetune_sim.cc.o.d"
  "CMakeFiles/decepticon_zoo.dir/vocab.cc.o"
  "CMakeFiles/decepticon_zoo.dir/vocab.cc.o.d"
  "CMakeFiles/decepticon_zoo.dir/weight_store.cc.o"
  "CMakeFiles/decepticon_zoo.dir/weight_store.cc.o.d"
  "CMakeFiles/decepticon_zoo.dir/zoo.cc.o"
  "CMakeFiles/decepticon_zoo.dir/zoo.cc.o.d"
  "libdecepticon_zoo.a"
  "libdecepticon_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
