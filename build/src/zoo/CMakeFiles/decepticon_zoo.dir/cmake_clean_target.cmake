file(REMOVE_RECURSE
  "libdecepticon_zoo.a"
)
