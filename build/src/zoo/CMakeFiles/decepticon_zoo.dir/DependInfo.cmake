
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zoo/finetune_sim.cc" "src/zoo/CMakeFiles/decepticon_zoo.dir/finetune_sim.cc.o" "gcc" "src/zoo/CMakeFiles/decepticon_zoo.dir/finetune_sim.cc.o.d"
  "/root/repo/src/zoo/vocab.cc" "src/zoo/CMakeFiles/decepticon_zoo.dir/vocab.cc.o" "gcc" "src/zoo/CMakeFiles/decepticon_zoo.dir/vocab.cc.o.d"
  "/root/repo/src/zoo/weight_store.cc" "src/zoo/CMakeFiles/decepticon_zoo.dir/weight_store.cc.o" "gcc" "src/zoo/CMakeFiles/decepticon_zoo.dir/weight_store.cc.o.d"
  "/root/repo/src/zoo/zoo.cc" "src/zoo/CMakeFiles/decepticon_zoo.dir/zoo.cc.o" "gcc" "src/zoo/CMakeFiles/decepticon_zoo.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/decepticon_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/decepticon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
