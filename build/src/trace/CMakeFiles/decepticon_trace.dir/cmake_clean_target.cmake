file(REMOVE_RECURSE
  "libdecepticon_trace.a"
)
