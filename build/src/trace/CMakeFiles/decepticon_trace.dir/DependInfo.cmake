
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/image.cc" "src/trace/CMakeFiles/decepticon_trace.dir/image.cc.o" "gcc" "src/trace/CMakeFiles/decepticon_trace.dir/image.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/decepticon_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/decepticon_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/decepticon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
