# Empty compiler generated dependencies file for decepticon_trace.
# This may be replaced when dependencies are built.
