file(REMOVE_RECURSE
  "CMakeFiles/decepticon_trace.dir/image.cc.o"
  "CMakeFiles/decepticon_trace.dir/image.cc.o.d"
  "libdecepticon_trace.a"
  "libdecepticon_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
