# Empty compiler generated dependencies file for decepticon_util.
# This may be replaced when dependencies are built.
