file(REMOVE_RECURSE
  "libdecepticon_util.a"
)
