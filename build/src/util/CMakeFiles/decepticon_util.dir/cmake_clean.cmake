file(REMOVE_RECURSE
  "CMakeFiles/decepticon_util.dir/edit_distance.cc.o"
  "CMakeFiles/decepticon_util.dir/edit_distance.cc.o.d"
  "CMakeFiles/decepticon_util.dir/rng.cc.o"
  "CMakeFiles/decepticon_util.dir/rng.cc.o.d"
  "CMakeFiles/decepticon_util.dir/stats.cc.o"
  "CMakeFiles/decepticon_util.dir/stats.cc.o.d"
  "CMakeFiles/decepticon_util.dir/table.cc.o"
  "CMakeFiles/decepticon_util.dir/table.cc.o.d"
  "libdecepticon_util.a"
  "libdecepticon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
