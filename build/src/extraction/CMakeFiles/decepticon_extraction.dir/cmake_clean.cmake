file(REMOVE_RECURSE
  "CMakeFiles/decepticon_extraction.dir/bitprobe.cc.o"
  "CMakeFiles/decepticon_extraction.dir/bitprobe.cc.o.d"
  "CMakeFiles/decepticon_extraction.dir/cloner.cc.o"
  "CMakeFiles/decepticon_extraction.dir/cloner.cc.o.d"
  "CMakeFiles/decepticon_extraction.dir/dram.cc.o"
  "CMakeFiles/decepticon_extraction.dir/dram.cc.o.d"
  "CMakeFiles/decepticon_extraction.dir/ieee.cc.o"
  "CMakeFiles/decepticon_extraction.dir/ieee.cc.o.d"
  "CMakeFiles/decepticon_extraction.dir/selective.cc.o"
  "CMakeFiles/decepticon_extraction.dir/selective.cc.o.d"
  "libdecepticon_extraction.a"
  "libdecepticon_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decepticon_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
