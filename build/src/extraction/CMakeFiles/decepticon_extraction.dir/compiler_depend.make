# Empty compiler generated dependencies file for decepticon_extraction.
# This may be replaced when dependencies are built.
