
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extraction/bitprobe.cc" "src/extraction/CMakeFiles/decepticon_extraction.dir/bitprobe.cc.o" "gcc" "src/extraction/CMakeFiles/decepticon_extraction.dir/bitprobe.cc.o.d"
  "/root/repo/src/extraction/cloner.cc" "src/extraction/CMakeFiles/decepticon_extraction.dir/cloner.cc.o" "gcc" "src/extraction/CMakeFiles/decepticon_extraction.dir/cloner.cc.o.d"
  "/root/repo/src/extraction/dram.cc" "src/extraction/CMakeFiles/decepticon_extraction.dir/dram.cc.o" "gcc" "src/extraction/CMakeFiles/decepticon_extraction.dir/dram.cc.o.d"
  "/root/repo/src/extraction/ieee.cc" "src/extraction/CMakeFiles/decepticon_extraction.dir/ieee.cc.o" "gcc" "src/extraction/CMakeFiles/decepticon_extraction.dir/ieee.cc.o.d"
  "/root/repo/src/extraction/selective.cc" "src/extraction/CMakeFiles/decepticon_extraction.dir/selective.cc.o" "gcc" "src/extraction/CMakeFiles/decepticon_extraction.dir/selective.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zoo/CMakeFiles/decepticon_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/transformer/CMakeFiles/decepticon_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/decepticon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/decepticon_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/decepticon_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/decepticon_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
