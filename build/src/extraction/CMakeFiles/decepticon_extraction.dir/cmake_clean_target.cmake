file(REMOVE_RECURSE
  "libdecepticon_extraction.a"
)
