file(REMOVE_RECURSE
  "CMakeFiles/defended_victim.dir/defended_victim.cpp.o"
  "CMakeFiles/defended_victim.dir/defended_victim.cpp.o.d"
  "defended_victim"
  "defended_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defended_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
