# Empty compiler generated dependencies file for defended_victim.
# This may be replaced when dependencies are built.
