file(REMOVE_RECURSE
  "CMakeFiles/zoo_fingerprint_survey.dir/zoo_fingerprint_survey.cpp.o"
  "CMakeFiles/zoo_fingerprint_survey.dir/zoo_fingerprint_survey.cpp.o.d"
  "zoo_fingerprint_survey"
  "zoo_fingerprint_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_fingerprint_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
