# Empty dependencies file for zoo_fingerprint_survey.
# This may be replaced when dependencies are built.
