# Empty compiler generated dependencies file for clone_and_attack.
# This may be replaced when dependencies are built.
