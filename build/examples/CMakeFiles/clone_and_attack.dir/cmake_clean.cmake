file(REMOVE_RECURSE
  "CMakeFiles/clone_and_attack.dir/clone_and_attack.cpp.o"
  "CMakeFiles/clone_and_attack.dir/clone_and_attack.cpp.o.d"
  "clone_and_attack"
  "clone_and_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clone_and_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
