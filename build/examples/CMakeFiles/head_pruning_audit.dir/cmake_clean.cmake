file(REMOVE_RECURSE
  "CMakeFiles/head_pruning_audit.dir/head_pruning_audit.cpp.o"
  "CMakeFiles/head_pruning_audit.dir/head_pruning_audit.cpp.o.d"
  "head_pruning_audit"
  "head_pruning_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_pruning_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
