# Empty compiler generated dependencies file for head_pruning_audit.
# This may be replaced when dependencies are built.
