file(REMOVE_RECURSE
  "CMakeFiles/fig16_extraction_efficiency.dir/fig16_extraction_efficiency.cc.o"
  "CMakeFiles/fig16_extraction_efficiency.dir/fig16_extraction_efficiency.cc.o.d"
  "fig16_extraction_efficiency"
  "fig16_extraction_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_extraction_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
