# Empty dependencies file for fig16_extraction_efficiency.
# This may be replaced when dependencies are built.
