# Empty dependencies file for fig19_cnn_generalization.
# This may be replaced when dependencies are built.
