file(REMOVE_RECURSE
  "CMakeFiles/fig19_cnn_generalization.dir/fig19_cnn_generalization.cc.o"
  "CMakeFiles/fig19_cnn_generalization.dir/fig19_cnn_generalization.cc.o.d"
  "fig19_cnn_generalization"
  "fig19_cnn_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_cnn_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
