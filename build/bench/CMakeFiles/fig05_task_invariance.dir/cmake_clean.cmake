file(REMOVE_RECURSE
  "CMakeFiles/fig05_task_invariance.dir/fig05_task_invariance.cc.o"
  "CMakeFiles/fig05_task_invariance.dir/fig05_task_invariance.cc.o.d"
  "fig05_task_invariance"
  "fig05_task_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_task_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
