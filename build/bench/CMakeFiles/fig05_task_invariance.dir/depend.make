# Empty dependencies file for fig05_task_invariance.
# This may be replaced when dependencies are built.
