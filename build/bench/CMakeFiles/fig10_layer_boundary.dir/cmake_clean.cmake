file(REMOVE_RECURSE
  "CMakeFiles/fig10_layer_boundary.dir/fig10_layer_boundary.cc.o"
  "CMakeFiles/fig10_layer_boundary.dir/fig10_layer_boundary.cc.o.d"
  "fig10_layer_boundary"
  "fig10_layer_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_layer_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
