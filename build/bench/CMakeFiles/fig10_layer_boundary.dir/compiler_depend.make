# Empty compiler generated dependencies file for fig10_layer_boundary.
# This may be replaced when dependencies are built.
