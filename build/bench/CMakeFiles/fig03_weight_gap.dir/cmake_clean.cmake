file(REMOVE_RECURSE
  "CMakeFiles/fig03_weight_gap.dir/fig03_weight_gap.cc.o"
  "CMakeFiles/fig03_weight_gap.dir/fig03_weight_gap.cc.o.d"
  "fig03_weight_gap"
  "fig03_weight_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_weight_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
