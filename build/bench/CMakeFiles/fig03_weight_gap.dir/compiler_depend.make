# Empty compiler generated dependencies file for fig03_weight_gap.
# This may be replaced when dependencies are built.
