file(REMOVE_RECURSE
  "CMakeFiles/ablation_classifier_choice.dir/ablation_classifier_choice.cc.o"
  "CMakeFiles/ablation_classifier_choice.dir/ablation_classifier_choice.cc.o.d"
  "ablation_classifier_choice"
  "ablation_classifier_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_classifier_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
