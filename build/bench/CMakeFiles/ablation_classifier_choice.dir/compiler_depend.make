# Empty compiler generated dependencies file for ablation_classifier_choice.
# This may be replaced when dependencies are built.
