file(REMOVE_RECURSE
  "CMakeFiles/fig13_selective_example.dir/fig13_selective_example.cc.o"
  "CMakeFiles/fig13_selective_example.dir/fig13_selective_example.cc.o.d"
  "fig13_selective_example"
  "fig13_selective_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_selective_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
