# Empty dependencies file for fig13_selective_example.
# This may be replaced when dependencies are built.
