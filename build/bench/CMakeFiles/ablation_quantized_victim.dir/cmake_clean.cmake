file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantized_victim.dir/ablation_quantized_victim.cc.o"
  "CMakeFiles/ablation_quantized_victim.dir/ablation_quantized_victim.cc.o.d"
  "ablation_quantized_victim"
  "ablation_quantized_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantized_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
