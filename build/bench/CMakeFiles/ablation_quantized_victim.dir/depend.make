# Empty dependencies file for ablation_quantized_victim.
# This may be replaced when dependencies are built.
