# Empty dependencies file for fig09_kernel_census.
# This may be replaced when dependencies are built.
