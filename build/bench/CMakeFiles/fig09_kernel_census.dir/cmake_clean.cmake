file(REMOVE_RECURSE
  "CMakeFiles/fig09_kernel_census.dir/fig09_kernel_census.cc.o"
  "CMakeFiles/fig09_kernel_census.dir/fig09_kernel_census.cc.o.d"
  "fig09_kernel_census"
  "fig09_kernel_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_kernel_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
