file(REMOVE_RECURSE
  "CMakeFiles/table1_layer_freeze.dir/table1_layer_freeze.cc.o"
  "CMakeFiles/table1_layer_freeze.dir/table1_layer_freeze.cc.o.d"
  "table1_layer_freeze"
  "table1_layer_freeze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_layer_freeze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
