
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_layer_freeze.cc" "bench/CMakeFiles/table1_layer_freeze.dir/table1_layer_freeze.cc.o" "gcc" "bench/CMakeFiles/table1_layer_freeze.dir/table1_layer_freeze.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/decepticon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/decepticon_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/extraction/CMakeFiles/decepticon_extraction.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/decepticon_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/zoo/CMakeFiles/decepticon_zoo.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/decepticon_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/decepticon_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/transformer/CMakeFiles/decepticon_transformer.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/decepticon_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/decepticon_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/decepticon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
