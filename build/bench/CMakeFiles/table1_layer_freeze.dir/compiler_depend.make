# Empty compiler generated dependencies file for table1_layer_freeze.
# This may be replaced when dependencies are built.
