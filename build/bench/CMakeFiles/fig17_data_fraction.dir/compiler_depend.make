# Empty compiler generated dependencies file for fig17_data_fraction.
# This may be replaced when dependencies are built.
