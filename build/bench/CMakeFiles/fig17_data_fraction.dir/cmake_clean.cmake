file(REMOVE_RECURSE
  "CMakeFiles/fig17_data_fraction.dir/fig17_data_fraction.cc.o"
  "CMakeFiles/fig17_data_fraction.dir/fig17_data_fraction.cc.o.d"
  "fig17_data_fraction"
  "fig17_data_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_data_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
