file(REMOVE_RECURSE
  "CMakeFiles/ablation_extractor_design.dir/ablation_extractor_design.cc.o"
  "CMakeFiles/ablation_extractor_design.dir/ablation_extractor_design.cc.o.d"
  "ablation_extractor_design"
  "ablation_extractor_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extractor_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
