# Empty dependencies file for ablation_extractor_design.
# This may be replaced when dependencies are built.
