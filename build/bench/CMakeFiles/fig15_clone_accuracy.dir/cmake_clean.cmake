file(REMOVE_RECURSE
  "CMakeFiles/fig15_clone_accuracy.dir/fig15_clone_accuracy.cc.o"
  "CMakeFiles/fig15_clone_accuracy.dir/fig15_clone_accuracy.cc.o.d"
  "fig15_clone_accuracy"
  "fig15_clone_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_clone_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
