# Empty compiler generated dependencies file for fig04_update_ushape.
# This may be replaced when dependencies are built.
