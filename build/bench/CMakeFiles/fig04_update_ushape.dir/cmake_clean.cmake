file(REMOVE_RECURSE
  "CMakeFiles/fig04_update_ushape.dir/fig04_update_ushape.cc.o"
  "CMakeFiles/fig04_update_ushape.dir/fig04_update_ushape.cc.o.d"
  "fig04_update_ushape"
  "fig04_update_ushape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_update_ushape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
