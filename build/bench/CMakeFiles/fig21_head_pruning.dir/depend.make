# Empty dependencies file for fig21_head_pruning.
# This may be replaced when dependencies are built.
