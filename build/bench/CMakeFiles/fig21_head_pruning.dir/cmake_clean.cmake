file(REMOVE_RECURSE
  "CMakeFiles/fig21_head_pruning.dir/fig21_head_pruning.cc.o"
  "CMakeFiles/fig21_head_pruning.dir/fig21_head_pruning.cc.o.d"
  "fig21_head_pruning"
  "fig21_head_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_head_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
