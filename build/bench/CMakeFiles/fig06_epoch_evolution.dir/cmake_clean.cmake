file(REMOVE_RECURSE
  "CMakeFiles/fig06_epoch_evolution.dir/fig06_epoch_evolution.cc.o"
  "CMakeFiles/fig06_epoch_evolution.dir/fig06_epoch_evolution.cc.o.d"
  "fig06_epoch_evolution"
  "fig06_epoch_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_epoch_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
