# Empty dependencies file for fig06_epoch_evolution.
# This may be replaced when dependencies are built.
