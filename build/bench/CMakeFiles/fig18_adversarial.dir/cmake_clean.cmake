file(REMOVE_RECURSE
  "CMakeFiles/fig18_adversarial.dir/fig18_adversarial.cc.o"
  "CMakeFiles/fig18_adversarial.dir/fig18_adversarial.cc.o.d"
  "fig18_adversarial"
  "fig18_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
