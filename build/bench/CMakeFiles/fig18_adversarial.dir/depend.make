# Empty dependencies file for fig18_adversarial.
# This may be replaced when dependencies are built.
