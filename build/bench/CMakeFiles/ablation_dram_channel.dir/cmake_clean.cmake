file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram_channel.dir/ablation_dram_channel.cc.o"
  "CMakeFiles/ablation_dram_channel.dir/ablation_dram_channel.cc.o.d"
  "ablation_dram_channel"
  "ablation_dram_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
