# Empty dependencies file for ablation_dram_channel.
# This may be replaced when dependencies are built.
