# Empty compiler generated dependencies file for fig11_12_image_pipeline.
# This may be replaced when dependencies are built.
