file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_image_pipeline.dir/fig11_12_image_pipeline.cc.o"
  "CMakeFiles/fig11_12_image_pipeline.dir/fig11_12_image_pipeline.cc.o.d"
  "fig11_12_image_pipeline"
  "fig11_12_image_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_image_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
