# Empty compiler generated dependencies file for fig08_fingerprint_inheritance.
# This may be replaced when dependencies are built.
