file(REMOVE_RECURSE
  "CMakeFiles/fig08_fingerprint_inheritance.dir/fig08_fingerprint_inheritance.cc.o"
  "CMakeFiles/fig08_fingerprint_inheritance.dir/fig08_fingerprint_inheritance.cc.o.d"
  "fig08_fingerprint_inheritance"
  "fig08_fingerprint_inheritance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fingerprint_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
