# Empty dependencies file for fig14_extraction_accuracy.
# This may be replaced when dependencies are built.
