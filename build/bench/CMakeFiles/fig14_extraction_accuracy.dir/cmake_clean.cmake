file(REMOVE_RECURSE
  "CMakeFiles/fig14_extraction_accuracy.dir/fig14_extraction_accuracy.cc.o"
  "CMakeFiles/fig14_extraction_accuracy.dir/fig14_extraction_accuracy.cc.o.d"
  "fig14_extraction_accuracy"
  "fig14_extraction_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_extraction_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
