# Empty dependencies file for fig20_head_confidence.
# This may be replaced when dependencies are built.
