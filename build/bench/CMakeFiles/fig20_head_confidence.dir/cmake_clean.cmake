file(REMOVE_RECURSE
  "CMakeFiles/fig20_head_confidence.dir/fig20_head_confidence.cc.o"
  "CMakeFiles/fig20_head_confidence.dir/fig20_head_confidence.cc.o.d"
  "fig20_head_confidence"
  "fig20_head_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_head_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
