# Empty compiler generated dependencies file for table2_deepsniffer_ler.
# This may be replaced when dependencies are built.
