file(REMOVE_RECURSE
  "CMakeFiles/table2_deepsniffer_ler.dir/table2_deepsniffer_ler.cc.o"
  "CMakeFiles/table2_deepsniffer_ler.dir/table2_deepsniffer_ler.cc.o.d"
  "table2_deepsniffer_ler"
  "table2_deepsniffer_ler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_deepsniffer_ler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
