file(REMOVE_RECURSE
  "CMakeFiles/fig07_fingerprint_diversity.dir/fig07_fingerprint_diversity.cc.o"
  "CMakeFiles/fig07_fingerprint_diversity.dir/fig07_fingerprint_diversity.cc.o.d"
  "fig07_fingerprint_diversity"
  "fig07_fingerprint_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fingerprint_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
