# Empty compiler generated dependencies file for fig07_fingerprint_diversity.
# This may be replaced when dependencies are built.
