file(REMOVE_RECURSE
  "CMakeFiles/selective_property_test.dir/selective_property_test.cc.o"
  "CMakeFiles/selective_property_test.dir/selective_property_test.cc.o.d"
  "selective_property_test"
  "selective_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
