#include "extraction/resilient.hh"

#include <algorithm>
#include <cassert>

#include "extraction/ieee.hh"
#include "extraction/selective.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"

namespace decepticon::extraction {

double
ReliabilityStats::amplification() const
{
    return logicalBits == 0 ? 1.0
                            : static_cast<double>(physicalReads) /
                                  static_cast<double>(logicalBits);
}

void
ReliabilityStats::toMetrics(obs::MetricsRegistry &registry,
                            const std::string &prefix) const
{
    const auto gauge = [&](const char *field, double value) {
        registry.setGauge(prefix + "." + field, value);
    };
    gauge("logical_bits", static_cast<double>(logicalBits));
    gauge("physical_reads", static_cast<double>(physicalReads));
    gauge("retries", static_cast<double>(retries));
    gauge("vote_reads", static_cast<double>(voteReads));
    gauge("probe_failures", static_cast<double>(probeFailures));
    gauge("backoff_rounds", static_cast<double>(backoffRounds));
    gauge("fallback_bits", static_cast<double>(fallbackBits));
    gauge("exhausted_bits", static_cast<double>(exhaustedBits));
    gauge("amplification", amplification());
}

RetryingProber::RetryingProber(BitProbeChannel &inner,
                               const ResilienceOptions &opts,
                               const VictimWeightOracle *fallback)
    : BitProbeChannel(inner.oracle(), 1, 0.0, 0),
      inner_(inner),
      opts_(opts),
      fallback_(fallback)
{
    assert(opts.votes >= 1 && opts.votes % 2 == 1);
    assert(opts.maxAttemptsPerBit >= opts.votes);
}

ProbeAttempt
RetryingProber::tryReadBit(std::size_t layer, std::size_t index,
                           int word_bit)
{
    obs::StageTimer stage_timer("probe");
    const int majority = opts_.votes / 2 + 1;
    int ones = 0;
    int zeros = 0;
    int attempts = 0;
    int consecutive_failures = 0;
    std::size_t backoff = opts_.backoffBaseRounds;

    while (attempts < opts_.maxAttemptsPerBit && ones < majority &&
           zeros < majority) {
        const ProbeAttempt attempt =
            inner_.tryReadBit(layer, index, word_bit);
        ++attempts;
        if (!attempt.ok) {
            ++reliability_.probeFailures;
            // Exponential backoff: a failed hammer leaves the
            // aggressor rows in an unknown state; re-arming them
            // costs rounds that grow with each consecutive failure.
            if (consecutive_failures > 0) {
                inner_.accrueRounds(backoff);
                reliability_.backoffRounds += backoff;
                backoff = std::min(2 * backoff, opts_.backoffCapRounds);
            }
            ++consecutive_failures;
            continue;
        }
        consecutive_failures = 0;
        backoff = opts_.backoffBaseRounds;
        (attempt.bit ? ones : zeros) += 1;
    }

    ++reliability_.logicalBits;
    reliability_.physicalReads += static_cast<std::size_t>(attempts);
    obs::count("resilient.vote_rounds",
               static_cast<std::size_t>(attempts));
    if (attempts > majority)
        obs::flightRecord(obs::FlightEventKind::Retry, "probe",
                          "vote_rounds",
                          static_cast<double>(attempts - majority));
    const int successes = ones + zeros;
    if (successes > 1)
        reliability_.voteReads +=
            static_cast<std::size_t>(successes - 1);
    if (attempts > majority)
        reliability_.retries +=
            static_cast<std::size_t>(attempts - majority);

    ProbeAttempt out;
    if (ones >= majority || zeros >= majority) {
        out.ok = true;
        out.bit = ones > zeros;
        return out;
    }

    // Budget exhausted without a verdict: degrade to the pre-trained
    // baseline bit when one exists (fine-tuning deltas are tiny, so
    // the baseline is the best remaining estimate).
    ++reliability_.exhaustedBits;
    if (fallback_ != nullptr) {
        ++reliability_.fallbackBits;
        out.ok = true;
        out.bit = (floatToBits(fallback_->weightValue(layer, index)) >>
                   word_bit) &
                  1u;
        return out;
    }
    out.ok = false;
    out.bit = ones >= zeros;
    return out;
}

void
mergeReliability(const ReliabilityStats &rel, ExtractionStats &stats)
{
    stats.probeRetries += rel.retries;
    stats.voteReads += rel.voteReads;
    stats.probeFailures += rel.probeFailures;
    stats.fallbackBits += rel.fallbackBits;
    stats.exhaustedBits += rel.exhaustedBits;
}

} // namespace decepticon::extraction
