#include "extraction/bitprobe.hh"

#include <cassert>

#include "extraction/ieee.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"

namespace decepticon::extraction {

void
ProbeStats::toMetrics(obs::MetricsRegistry &registry,
                      const std::string &prefix) const
{
    registry.setGauge(prefix + ".bits_read",
                      static_cast<double>(bitsRead));
    registry.setGauge(prefix + ".hammer_rounds",
                      static_cast<double>(hammerRounds));
}

std::size_t
ParamGroupOracle::layerSize(std::size_t layer) const
{
    assert(layer < groups_.size());
    std::size_t n = 0;
    for (const auto *p : groups_[layer])
        n += p->size();
    return n;
}

float
ParamGroupOracle::weightValue(std::size_t layer, std::size_t index) const
{
    assert(layer < groups_.size());
    for (const auto *p : groups_[layer]) {
        if (index < p->size())
            return p->value[index];
        index -= p->size();
    }
    assert(false && "weight index out of range");
    return 0.0f;
}

BitProbeChannel::BitProbeChannel(const VictimWeightOracle &oracle,
                                 std::size_t rounds_per_bit,
                                 double bit_error_rate, std::uint64_t seed)
    : oracle_(oracle),
      roundsPerBit_(rounds_per_bit),
      bitErrorRate_(bit_error_rate),
      rng_(seed)
{
    assert(rounds_per_bit >= 1);
    assert(bit_error_rate >= 0.0 && bit_error_rate < 1.0);
}

bool
BitProbeChannel::rawBit(std::size_t layer, std::size_t index, int word_bit)
{
    assert(word_bit >= 0 && word_bit <= 31);
    const float v = oracle_.weightValue(layer, index);
    bool bit = (floatToBits(v) >> word_bit) & 1u;
    if (bitErrorRate_ > 0.0 && rng_.bernoulli(bitErrorRate_))
        bit = !bit;
    return bit;
}

void
BitProbeChannel::charge(std::size_t rounds)
{
    ++stats_.bitsRead;
    stats_.hammerRounds += rounds;
}

ProbeAttempt
BitProbeChannel::attemptBit(std::size_t layer, std::size_t index,
                            int word_bit)
{
    ProbeAttempt attempt;
    attempt.bit = rawBit(layer, index, word_bit);
    if (injector_ != nullptr) {
        const fault::ProbeFaultOutcome faulty =
            injector_->perturbProbe(layer, index, word_bit, attempt.bit);
        attempt.ok = faulty.ok;
        attempt.bit = faulty.bit;
    }
    return attempt;
}

ProbeAttempt
BitProbeChannel::tryReadBit(std::size_t layer, std::size_t index,
                            int word_bit)
{
    charge(roundsPerBit_);
    return attemptBit(layer, index, word_bit);
}

void
BitProbeChannel::resetStats()
{
    stats_ = ProbeStats{};
    // Keep the registry honest: a reset must be visible downstream,
    // not leave the last session's totals frozen in the gauges.
    if (obs::metricsEnabled())
        stats_.toMetrics(obs::metrics());
}

float
BitProbeChannel::readFullWeight(std::size_t layer, std::size_t index)
{
    std::uint32_t bits = 0;
    for (int b = 31; b >= 0; --b) {
        if (readBit(layer, index, b))
            bits |= 1u << b;
    }
    return bitsFromFloat(bits);
}

} // namespace decepticon::extraction
