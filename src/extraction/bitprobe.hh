/**
 * @file
 * Rowhammer-style bit-probe side channel (the DeepSteal [40] primitive
 * the paper builds on). The channel exposes single bits of the victim
 * model's weight memory at an accounted cost; Decepticon's selective
 * extraction wins by reading orders of magnitude fewer bits than a
 * full-weight attack. The victim's weights are reachable only through
 * this interface, never by value, mirroring the black-box threat
 * model.
 */

#ifndef DECEPTICON_EXTRACTION_BITPROBE_HH
#define DECEPTICON_EXTRACTION_BITPROBE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/param.hh"
#include "util/rng.hh"
#include "zoo/weight_store.hh"

namespace decepticon::fault {
class FaultInjector;
}

namespace decepticon::obs {
class MetricsRegistry;
}

namespace decepticon::extraction {

/**
 * Addressable view of a victim's weight memory. Layer indices
 * [0, numLayers) address encoder layers; layer == numLayers addresses
 * the task head.
 */
class VictimWeightOracle
{
  public:
    virtual ~VictimWeightOracle() = default;

    /** Number of encoder layers. */
    virtual std::size_t numLayers() const = 0;

    /** Weights in the given layer (numLayers() addresses the head). */
    virtual std::size_t layerSize(std::size_t layer) const = 0;

    /** The raw weight value (used only inside the channel). */
    virtual float weightValue(std::size_t layer,
                              std::size_t index) const = 0;
};

/** Oracle over a zoo::WeightStore. */
class WeightStoreOracle : public VictimWeightOracle
{
  public:
    explicit WeightStoreOracle(const zoo::WeightStore &store)
        : store_(store)
    {
    }

    std::size_t numLayers() const override { return store_.layers.size(); }

    std::size_t
    layerSize(std::size_t layer) const override
    {
        return layer == store_.layers.size() ? store_.head.w.size()
                                             : store_.layers[layer].w.size();
    }

    float
    weightValue(std::size_t layer, std::size_t index) const override
    {
        return layer == store_.layers.size() ? store_.head.w[index]
                                             : store_.layers[layer].w[index];
    }

  private:
    const zoo::WeightStore &store_;
};

/**
 * Oracle over grouped nn parameters (e.g. a TransformerClassifier's
 * per-encoder parameter groups plus a head group). Each group's
 * parameters are addressed as one flat concatenated layer.
 */
class ParamGroupOracle : public VictimWeightOracle
{
  public:
    /** groups[i] is encoder i; the last group is the task head. */
    explicit ParamGroupOracle(std::vector<nn::ParamRefs> groups)
        : groups_(std::move(groups))
    {
    }

    std::size_t numLayers() const override { return groups_.size() - 1; }

    std::size_t layerSize(std::size_t layer) const override;

    float weightValue(std::size_t layer, std::size_t index) const override;

  private:
    std::vector<nn::ParamRefs> groups_;
};

/** Cost accounting of a probe session. */
struct ProbeStats
{
    std::size_t bitsRead = 0;
    /** Rowhammer rounds spent (bitsRead * roundsPerBit). */
    std::size_t hammerRounds = 0;

    /**
     * Publish the current snapshot as gauges "<prefix>.bits_read" and
     * "<prefix>.hammer_rounds" — the shared serialization every bench
     * and report uses instead of hand-formatting these fields.
     */
    void toMetrics(obs::MetricsRegistry &registry,
                   const std::string &prefix = "probe") const;
};

/**
 * Outcome of one probe attempt. A failed attempt (ok == false) spent
 * its hammer rounds but delivered no information; the bit it carries
 * is channel garbage, which is what a fault-oblivious attacker
 * consumes when it ignores the flag.
 */
struct ProbeAttempt
{
    bool ok = true;
    bool bit = false;
};

/**
 * The bit-read side channel. Each read costs roundsPerBit rowhammer
 * rounds and can flip with bitErrorRate probability (hammering is not
 * perfectly reliable). Subclasses override tryReadBit() to model
 * physical constraints (DRAM rows without aggressors, warm-row cost
 * amortization — see dram.hh); an attached fault::FaultInjector adds
 * the unreliable-channel processes (stuck cells, burst rows,
 * transient probe failures).
 */
class BitProbeChannel
{
  public:
    BitProbeChannel(const VictimWeightOracle &oracle,
                    std::size_t rounds_per_bit = 1,
                    double bit_error_rate = 0.0, std::uint64_t seed = 0);

    virtual ~BitProbeChannel() = default;

    /**
     * Whether the weight at (layer, index) is physically reachable by
     * the side channel. The base channel reaches everything.
     */
    virtual bool
    canRead(std::size_t layer, std::size_t index) const
    {
        (void)layer;
        (void)index;
        return true;
    }

    /**
     * One probe attempt on a bit of the victim weight at
     * (layer, index): charges its rounds and reports whether the
     * attempt landed. This is the virtual core every channel variant
     * implements; readBit() and readFullWeight() are sugar over it.
     * @param word_bit bit index in the float32 word, 31 = sign.
     * @pre canRead(layer, index)
     */
    virtual ProbeAttempt tryReadBit(std::size_t layer, std::size_t index,
                                    int word_bit);

    /**
     * Read one bit, ignoring attempt failures (a fault-oblivious
     * attacker consumes whatever the channel delivered).
     */
    bool
    readBit(std::size_t layer, std::size_t index, int word_bit)
    {
        return tryReadBit(layer, index, word_bit).bit;
    }

    /** Read all 32 bits of a weight (last-layer full extraction). */
    float readFullWeight(std::size_t layer, std::size_t index);

    /**
     * Attach an unreliable-channel fault process. The injector is
     * applied on top of the channel's own bitErrorRate; pass nullptr
     * to detach. Not owned.
     */
    void attachFaultInjector(fault::FaultInjector *injector)
    {
        injector_ = injector;
    }

    fault::FaultInjector *faultInjector() const { return injector_; }

    /**
     * Account extra hammer rounds that read no new bit (e.g. the
     * exponential-backoff penalty a resilient prober pays after
     * repeated probe failures).
     */
    void accrueRounds(std::size_t rounds) { stats_.hammerRounds += rounds; }

    const ProbeStats &stats() const { return stats_; }

    /**
     * Zero the session ledger. The cleared snapshot is re-published to
     * the global metrics registry (when metrics are on), so the
     * "probe.*" gauges never go stale across a reset.
     */
    void resetStats();

    const VictimWeightOracle &oracle() const { return oracle_; }

  protected:
    /** Fetch the (possibly error-flipped) bit without cost charging. */
    bool rawBit(std::size_t layer, std::size_t index, int word_bit);

    /**
     * rawBit passed through the attached fault process (identity when
     * no injector is attached). Cost is NOT charged here.
     */
    ProbeAttempt attemptBit(std::size_t layer, std::size_t index,
                            int word_bit);

    /** Account bitsRead and the given number of hammer rounds. */
    void charge(std::size_t rounds);

  private:
    const VictimWeightOracle &oracle_;
    std::size_t roundsPerBit_;
    double bitErrorRate_;
    util::Rng rng_;
    ProbeStats stats_;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace decepticon::extraction

#endif // DECEPTICON_EXTRACTION_BITPROBE_HH
