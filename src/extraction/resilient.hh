/**
 * @file
 * Resilient bit-probe extraction over an unreliable channel. The raw
 * rowhammer primitive is noisy (see fault/fault.hh): bits flip, cells
 * stick, probe attempts fail while still costing rounds. DeepSteal's
 * answer — repeated reads with majority voting — is implemented here
 * as a channel wrapper, so Algorithm 1 and the model cloner run
 * unchanged on top of it:
 *
 *  - k-of-n majority voting per bit with early exit (a clean channel
 *    pays ceil(n/2) reads, a noisy one keeps reading until a side
 *    wins);
 *  - a cost-aware retry budget with exponential backoff after
 *    consecutive probe failures (re-arming aggressor rows after a
 *    failed hammer is charged as extra rounds);
 *  - graceful degradation: a bit that exhausts its budget falls back
 *    to the pre-trained baseline bit — the paper's own observation
 *    that fine-tuning deltas are tiny makes the baseline the best
 *    available estimate when the channel will not answer.
 *
 * Every physical attempt is charged on the wrapped channel, so
 * ProbeStats keeps a single honest cost ledger and Fig. 16-style
 * accounting includes the reliability overhead.
 */

#ifndef DECEPTICON_EXTRACTION_RESILIENT_HH
#define DECEPTICON_EXTRACTION_RESILIENT_HH

#include <cstddef>
#include <vector>

#include "extraction/bitprobe.hh"

namespace decepticon::extraction {

/** Retry/vote/fallback policy of a RetryingProber. */
struct ResilienceOptions
{
    /**
     * Reads per bit in the majority vote (odd; 1 disables voting).
     * Early exit: reading stops once one value holds a majority.
     */
    int votes = 3;
    /** Total attempt budget per bit, failed probes included. */
    int maxAttemptsPerBit = 9;
    /** Penalty rounds charged after the first consecutive failure. */
    std::size_t backoffBaseRounds = 4;
    /** Penalty doubles per consecutive failure up to this cap. */
    std::size_t backoffCapRounds = 256;
};

/** Reliability accounting of a RetryingProber session. */
struct ReliabilityStats
{
    std::size_t logicalBits = 0;   ///< bits the extractor asked for
    std::size_t physicalReads = 0; ///< attempts issued to the channel
    std::size_t retries = 0;       ///< attempts beyond a clean majority
    std::size_t voteReads = 0;     ///< extra successful reads for voting
    std::size_t probeFailures = 0; ///< attempts that landed nothing
    std::size_t backoffRounds = 0; ///< penalty rounds charged
    std::size_t fallbackBits = 0;  ///< bits answered from the baseline
    std::size_t exhaustedBits = 0; ///< bits whose budget ran out

    /** Physical reads per logical bit (1.0 on a perfect channel
     *  with votes == 1). */
    double amplification() const;

    /**
     * Publish the snapshot as "<prefix>.*" gauges (all counters plus
     * the derived amplification factor).
     */
    void toMetrics(obs::MetricsRegistry &registry,
                   const std::string &prefix = "reliability") const;
};

/**
 * Oracle over an owned snapshot of per-layer weight vectors. Used as
 * the baseline-bit provider for graceful degradation (and by tests
 * needing a self-contained victim).
 */
class SnapshotOracle : public VictimWeightOracle
{
  public:
    /** groups[0..L-1] are encoder layers, groups[L] is the head. */
    explicit SnapshotOracle(std::vector<std::vector<float>> groups)
        : groups_(std::move(groups))
    {
    }

    std::size_t numLayers() const override { return groups_.size() - 1; }

    std::size_t
    layerSize(std::size_t layer) const override
    {
        return groups_[layer].size();
    }

    float
    weightValue(std::size_t layer, std::size_t index) const override
    {
        return groups_[layer][index];
    }

  private:
    std::vector<std::vector<float>> groups_;
};

/**
 * Majority-voting, retrying, gracefully degrading wrapper around any
 * BitProbeChannel. Drop-in for the selective extractor: logical reads
 * go through this object, physical attempts (and every hammer round,
 * including backoff penalties) are charged on the wrapped channel, so
 * inner.stats() remains the cost ledger of the session.
 */
class RetryingProber : public BitProbeChannel
{
  public:
    /**
     * @param inner the physical (possibly faulty) channel
     * @param opts retry/vote policy
     * @param fallback baseline weights for budget-exhausted bits
     *        (typically the identified pre-trained model); nullptr
     *        degrades exhausted bits to a failed attempt instead
     */
    RetryingProber(BitProbeChannel &inner, const ResilienceOptions &opts,
                   const VictimWeightOracle *fallback = nullptr);

    bool
    canRead(std::size_t layer, std::size_t index) const override
    {
        return inner_.canRead(layer, index);
    }

    ProbeAttempt tryReadBit(std::size_t layer, std::size_t index,
                            int word_bit) override;

    const ReliabilityStats &reliability() const { return reliability_; }

    void resetReliability() { reliability_ = ReliabilityStats{}; }

    const ResilienceOptions &options() const { return opts_; }

    BitProbeChannel &inner() { return inner_; }

  private:
    BitProbeChannel &inner_;
    ResilienceOptions opts_;
    const VictimWeightOracle *fallback_;
    ReliabilityStats reliability_;
};

/** Fold a prober's reliability counters into extraction accounting. */
void mergeReliability(const ReliabilityStats &rel,
                      struct ExtractionStats &stats);

} // namespace decepticon::extraction

#endif // DECEPTICON_EXTRACTION_RESILIENT_HH
