#include "extraction/cloner.hh"

#include <cassert>

#include "obs/obs.hh"
#include "transformer/trainer.hh"

namespace decepticon::extraction {

std::vector<nn::ParamRefs>
victimParamGroups(transformer::TransformerClassifier &victim)
{
    std::vector<nn::ParamRefs> groups;
    // Group 0: embeddings (token table + positions).
    nn::ParamRefs emb;
    {
        nn::ParamRefs all = victim.backboneParams();
        nn::ParamRefs enc_all;
        for (std::size_t l = 0; l < victim.numLayers(); ++l) {
            auto ps = victim.encoderParams(l);
            enc_all.insert(enc_all.end(), ps.begin(), ps.end());
        }
        for (auto *p : all) {
            bool in_encoder = false;
            for (auto *q : enc_all) {
                if (p == q) {
                    in_encoder = true;
                    break;
                }
            }
            if (!in_encoder)
                emb.push_back(p);
        }
    }
    groups.push_back(std::move(emb));
    for (std::size_t l = 0; l < victim.numLayers(); ++l)
        groups.push_back(victim.encoderParams(l));
    groups.push_back(victim.headParams());
    return groups;
}

std::vector<float>
groupWeights(const nn::ParamRefs &group)
{
    std::vector<float> out;
    for (const auto *p : group)
        out.insert(out.end(), p->value.vec().begin(), p->value.vec().end());
    return out;
}

void
setGroupWeights(const nn::ParamRefs &group, const std::vector<float> &w)
{
    std::size_t off = 0;
    for (auto *p : group) {
        assert(off + p->size() <= w.size());
        std::copy(w.begin() + static_cast<long>(off),
                  w.begin() + static_cast<long>(off + p->size()),
                  p->value.vec().begin());
        off += p->size();
    }
    assert(off == w.size());
}

CloneResult
ModelCloner::extract(transformer::TransformerClassifier &victim,
                     const transformer::TransformerClassifier &pretrained,
                     const std::vector<transformer::Example> &query_set,
                     const ClonerOptions &opts)
{
    using transformer::Trainer;

    auto clone_span = obs::span("level2.clone", "level2");
    obs::StageTimer stage_timer("extract");

    CloneResult result;

    // The victim's weight memory, reachable only via the bit channel
    // (idealized, or DRAM-constrained when a geometry is configured).
    auto victim_groups = victimParamGroups(victim);
    ParamGroupOracle oracle(victim_groups);
    std::unique_ptr<DramWeightLayout> dram_layout;
    std::unique_ptr<BitProbeChannel> channel_holder;
    if (opts.dramGeometry) {
        dram_layout = std::make_unique<DramWeightLayout>(
            oracle, *opts.dramGeometry, opts.dramSeed);
        channel_holder = std::make_unique<DramBitProbeChannel>(
            oracle, *dram_layout);
    } else {
        channel_holder = std::make_unique<BitProbeChannel>(oracle);
    }
    BitProbeChannel &physical = *channel_holder;

    // Unreliable-channel model: faults on the physical channel, an
    // optional retrying/voting prober in front of it.
    std::unique_ptr<fault::FaultInjector> injector;
    if (opts.faultSpec) {
        injector = std::make_unique<fault::FaultInjector>(*opts.faultSpec);
        physical.attachFaultInjector(injector.get());
    }
    SelectiveWeightExtractor extractor(opts.policy);

    // Clone starts as the pre-trained model with a head of the
    // victim's output width (the attacker sees the output dimension
    // from query responses).
    auto clone = std::make_unique<transformer::TransformerClassifier>(
        pretrained);
    const std::size_t num_classes = victim.config().numClasses;
    clone->resetHead(num_classes, /*seed=*/42);

    const std::size_t num_layers = clone->numLayers();
    const std::size_t head_group = num_layers + 1;

    auto clone_groups = victimParamGroups(*clone);

    // The graceful-degradation baseline is the clone's pre-extraction
    // state: the identified pre-trained weights plus the freshly reset
    // head — snapshot it before extraction mutates the groups.
    std::unique_ptr<SnapshotOracle> baseline;
    std::unique_ptr<RetryingProber> prober;
    if (opts.resilience) {
        std::vector<std::vector<float>> baseline_groups;
        baseline_groups.reserve(clone_groups.size());
        for (const auto &group : clone_groups)
            baseline_groups.push_back(groupWeights(group));
        baseline = std::make_unique<SnapshotOracle>(
            std::move(baseline_groups));
        prober = std::make_unique<RetryingProber>(
            physical, *opts.resilience, baseline.get());
    }
    BitProbeChannel &channel = prober ? *prober : physical;

    // Victim predictions on the query set (black-box API access).
    // Batched onto the sched pool: each prediction is independent, so
    // the agreement checks after every extracted layer parallelize.
    std::vector<std::vector<int>> query_tokens;
    query_tokens.reserve(query_set.size());
    for (const auto &ex : query_set)
        query_tokens.push_back(ex.tokens);
    const std::vector<int> victim_preds =
        transformer::predictBatch(victim, query_tokens);
    result.victimQueries += query_set.size();

    auto agreement_now = [&]() {
        return Trainer::agreement(
            transformer::predictBatch(*clone, query_tokens), victim_preds);
    };

    // Step 1: full extraction of the baseline-less task head.
    {
        auto sp = obs::span("level2.extract_head", "level2");
        const std::size_t head_size = oracle.layerSize(head_group);
        sp.arg("weights", static_cast<std::uint64_t>(head_size));
        auto head = extractor.extractHead(channel, head_group, head_size,
                                          result.extractionStats);
        setGroupWeights(clone_groups[head_group], head);
        result.agreementTrajectory.push_back(agreement_now());
    }

    // Step 2: encoder layers, last to first (Table 1 ordering).
    for (std::size_t l = num_layers; l >= 1; --l) {
        if (result.agreementTrajectory.back() >= opts.agreementTarget)
            break;
        auto sp = obs::span("level2.extract_layer", "level2");
        sp.arg("layer", static_cast<std::uint64_t>(l - 1));
        const std::size_t bits_before = physical.stats().bitsRead;
        const auto base = groupWeights(clone_groups[l]);
        auto extracted = extractor.extractLayer(base, channel, l,
                                                result.extractionStats);
        setGroupWeights(clone_groups[l], extracted);
        ++result.layersExtracted;
        result.agreementTrajectory.push_back(agreement_now());
        sp.arg("bits_read", static_cast<std::uint64_t>(
                                physical.stats().bitsRead - bits_before));
        sp.arg("agreement", result.agreementTrajectory.back());
        obs::observe("level2.layer_agreement",
                     result.agreementTrajectory.back());
    }

    // Step 3: embeddings, only if agreement is still short.
    if (opts.extractEmbeddings &&
        result.agreementTrajectory.back() < opts.agreementTarget) {
        auto sp = obs::span("level2.extract_embeddings", "level2");
        const auto base = groupWeights(clone_groups[0]);
        auto extracted = extractor.extractLayer(base, channel, 0,
                                                result.extractionStats);
        setGroupWeights(clone_groups[0], extracted);
        result.agreementTrajectory.push_back(agreement_now());
    }

    // The physical channel carries the cost ledger (the prober charges
    // every attempt and backoff penalty on it).
    result.probeStats = physical.stats();
    if (prober) {
        result.reliability = prober->reliability();
        mergeReliability(result.reliability, result.extractionStats);
    }
    if (injector) {
        result.faultCounters = injector->counters();
        physical.attachFaultInjector(nullptr);
    }
    result.clone = std::move(clone);

    obs::count("level2.clone_sessions");
    obs::count("level2.victim_queries", result.victimQueries);
    if (obs::metricsEnabled()) {
        result.probeStats.toMetrics(obs::metrics());
        result.extractionStats.toMetrics(obs::metrics());
        result.reliability.toMetrics(obs::metrics());
    }
    clone_span.arg("layers_extracted",
                   static_cast<std::uint64_t>(result.layersExtracted));
    clone_span.arg("bits_read",
                   static_cast<std::uint64_t>(result.probeStats.bitsRead));
    return result;
}

} // namespace decepticon::extraction
