/**
 * @file
 * DRAM geometry model for the rowhammer side channel. The paper
 * builds on DeepSteal [40], where bits are exfiltrated by hammering
 * aggressor rows adjacent to the victim row holding a weight. Two
 * physical facts shape the attack's cost and coverage:
 *
 *  - a weight's bits live at a (bank, row, column) address determined
 *    by the tensor's layout in memory — the attacker learns addresses
 *    from the memory-probing side channel of the threat model;
 *  - only rows whose neighbours the attacker can occupy are
 *    hammerable, and consecutive reads within one row are cheaper
 *    than row-to-row jumps (aggressor setup is amortized).
 *
 * The layout is deterministic per victim, so experiments are
 * reproducible.
 */

#ifndef DECEPTICON_EXTRACTION_DRAM_HH
#define DECEPTICON_EXTRACTION_DRAM_HH

#include <cstdint>

#include "extraction/bitprobe.hh"

namespace decepticon::extraction {

/** DDR4-style geometry parameters. */
struct DramGeometry
{
    /** Bytes per DRAM row (a typical 8 KB row). */
    std::size_t rowBytes = 8192;
    std::size_t banks = 16;
    /** Fraction of rows with usable aggressor neighbours. */
    double hammerableRowFraction = 1.0;
    /** Hammer rounds to read a bit in a freshly targeted row. */
    std::size_t roundsPerBitCold = 64;
    /** Rounds per bit when the previous read hit the same row. */
    std::size_t roundsPerBitWarm = 16;
};

/** Physical location of one weight. */
struct DramAddress
{
    std::size_t bank = 0;
    std::size_t row = 0;
    std::size_t column = 0; ///< byte offset inside the row
};

/**
 * Maps (layer, index) weight coordinates to DRAM addresses for a
 * victim whose tensors are stored contiguously layer by layer, and
 * answers hammerability queries.
 */
class DramWeightLayout
{
  public:
    /**
     * @param oracle defines the victim's layer sizes
     * @param geometry DRAM parameters
     * @param seed scrambles which rows lack aggressors (allocation is
     *        system-dependent)
     */
    DramWeightLayout(const VictimWeightOracle &oracle,
                     const DramGeometry &geometry, std::uint64_t seed);

    /** Address of a weight (float32 = 4 bytes each). */
    DramAddress addressOf(std::size_t layer, std::size_t index) const;

    /** Whether the row holding this weight can be hammered. */
    bool hammerable(std::size_t layer, std::size_t index) const;

    /** Total rows occupied by the victim's weights. */
    std::size_t rowCount() const { return totalRows_; }

    /** Number of those rows that are hammerable. */
    std::size_t hammerableRowCount() const;

    const DramGeometry &geometry() const { return geometry_; }

  private:
    std::size_t flatByteOffset(std::size_t layer,
                               std::size_t index) const;

    DramGeometry geometry_;
    std::vector<std::size_t> layerByteBase_; ///< per-layer start offset
    std::size_t totalRows_ = 0;
    std::vector<bool> rowHammerable_;
};

/**
 * A bit-probe channel that respects DRAM physics: reads on
 * non-hammerable rows fail (canRead() is false), and costs follow the
 * cold/warm row model. Drop-in replacement for BitProbeChannel in the
 * selective extractor.
 */
class DramBitProbeChannel : public BitProbeChannel
{
  public:
    DramBitProbeChannel(const VictimWeightOracle &oracle,
                        const DramWeightLayout &layout,
                        double bit_error_rate = 0.0,
                        std::uint64_t seed = 0);

    bool canRead(std::size_t layer, std::size_t index) const override;

    ProbeAttempt tryReadBit(std::size_t layer, std::size_t index,
                            int word_bit) override;

  private:
    const DramWeightLayout &layout_;
    bool hasLastRow_ = false;
    std::size_t lastBank_ = 0;
    std::size_t lastRow_ = 0;
};

} // namespace decepticon::extraction

#endif // DECEPTICON_EXTRACTION_DRAM_HH
