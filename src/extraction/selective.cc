#include "extraction/selective.hh"

#include <cassert>
#include <cmath>

#include "extraction/ieee.hh"
#include "obs/metrics.hh"

namespace decepticon::extraction {

double
ExtractionPolicy::estimatedDist(double base_weight) const
{
    const double m = std::fabs(base_weight) / wRef;
    return baseDist * (1.0 + uShapeAlpha * m * m);
}

double
ExtractionStats::bitsExcludedFraction() const
{
    const std::size_t all_bits = 32 * totalWeights;
    if (all_bits == 0)
        return 0.0;
    const std::size_t read = bitsChecked + 32 * fullWeightsRead;
    return 1.0 - static_cast<double>(read) /
                     static_cast<double>(all_bits);
}

double
ExtractionStats::weightsSkippedFraction() const
{
    return totalWeights == 0 ? 0.0
                             : static_cast<double>(weightsSkipped) /
                                   static_cast<double>(totalWeights);
}

double
ExtractionStats::correctFraction() const
{
    return auditedWeights == 0
               ? 0.0
               : 1.0 - static_cast<double>(extractionErrors) /
                           static_cast<double>(auditedWeights);
}

void
ExtractionStats::merge(const ExtractionStats &other)
{
    totalWeights += other.totalWeights;
    weightsSkipped += other.weightsSkipped;
    weightsChecked += other.weightsChecked;
    bitsChecked += other.bitsChecked;
    fullWeightsRead += other.fullWeightsRead;
    unreadableWeights += other.unreadableWeights;
    baselineFallbackWeights += other.baselineFallbackWeights;
    probeRetries += other.probeRetries;
    voteReads += other.voteReads;
    probeFailures += other.probeFailures;
    fallbackBits += other.fallbackBits;
    exhaustedBits += other.exhaustedBits;
    auditedWeights += other.auditedWeights;
    extractionErrors += other.extractionErrors;
    signFlips += other.signFlips;
}

void
ExtractionStats::toMetrics(obs::MetricsRegistry &registry,
                           const std::string &prefix) const
{
    const auto gauge = [&](const char *field, double value) {
        registry.setGauge(prefix + "." + field, value);
    };
    gauge("total_weights", static_cast<double>(totalWeights));
    gauge("weights_skipped", static_cast<double>(weightsSkipped));
    gauge("weights_checked", static_cast<double>(weightsChecked));
    gauge("bits_checked", static_cast<double>(bitsChecked));
    gauge("full_weights_read", static_cast<double>(fullWeightsRead));
    gauge("unreadable_weights", static_cast<double>(unreadableWeights));
    gauge("baseline_fallback_weights",
          static_cast<double>(baselineFallbackWeights));
    gauge("probe_retries", static_cast<double>(probeRetries));
    gauge("vote_reads", static_cast<double>(voteReads));
    gauge("probe_failures", static_cast<double>(probeFailures));
    gauge("fallback_bits", static_cast<double>(fallbackBits));
    gauge("exhausted_bits", static_cast<double>(exhaustedBits));
    gauge("audited_weights", static_cast<double>(auditedWeights));
    gauge("extraction_errors", static_cast<double>(extractionErrors));
    gauge("sign_flips", static_cast<double>(signFlips));
    gauge("bits_excluded_fraction", bitsExcludedFraction());
    gauge("weights_skipped_fraction", weightsSkippedFraction());
    gauge("correct_fraction", correctFraction());
}

float
SelectiveWeightExtractor::extractWeight(float base,
                                        BitProbeChannel &channel,
                                        std::size_t layer,
                                        std::size_t index,
                                        ExtractionStats &stats) const
{
    ++stats.totalWeights;
    const double abs_base = std::fabs(static_cast<double>(base));
    const double est = policy_.estimatedDist(abs_base);

    // Step 1: tiny weights, or weights whose expected update is below
    // the significance threshold, keep the pre-trained value.
    if (abs_base < policy_.skipThreshold || est < policy_.significance) {
        ++stats.weightsSkipped;
        return base;
    }

    // Physically unreachable weights (e.g. DRAM rows without usable
    // aggressors) also keep the baseline — the attacker cannot do
    // better without the channel.
    if (!channel.canRead(layer, index)) {
        ++stats.unreadableWeights;
        ++stats.baselineFallbackWeights;
        return base;
    }

    if (base == 0.0f || !std::isfinite(base)) {
        ++stats.weightsChecked;
        return base; // degenerate exponent; nothing to splice
    }

    // Algorithm 1 presumes the sign and exponent fields survive
    // fine-tuning. When the expected update is comparable to the
    // weight itself that premise fails (the value can cross a binade
    // or flip sign), and the attacker — who knows both the baseline
    // and the estimate — falls back to a full read. Such weights are
    // rare for encoder matrices but common in embedding tables.
    if (est >= 0.5 * abs_base) {
        ++stats.fullWeightsRead;
        ++stats.weightsChecked;
        return channel.readFullWeight(layer, index);
    }

    ++stats.weightsChecked;

    // Step 2: read the fraction bits whose place values cover the
    // estimated gap. The window starts at the most significant
    // position whose place value fits within twice the estimated gap
    // (so the residue modulus exceeds any expected update) and spans
    // maxBitsPerWeight positions.
    // Quantized victims expose fewer fraction bits (Sec. 8).
    const int max_k = std::min(23, policy_.storageFormat.fractionBits);
    int k0 = 1;
    while (k0 <= max_k && fractionBitPlaceValue(base, k0) > est)
        ++k0;
    double observed = 0.0;
    double base_window = 0.0;
    int bits_read = 0;
    for (int i = 0; i < policy_.maxBitsPerWeight && k0 + i <= max_k;
         ++i) {
        const double pv = fractionBitPlaceValue(base, k0 + i);
        if (pv < policy_.significance / 4.0)
            break; // remaining bits are below the significance floor
        const bool bit = channel.readBit(
            layer, index, fractionPosToWordBit(k0 + i));
        ++stats.bitsChecked;
        ++bits_read;
        if (bit)
            observed += pv;
        if (fractionBit(base, k0 + i))
            base_window += pv;
    }
    if (bits_read == 0)
        return base;

    // Decode: the victim's value is congruent to the observed window
    // modulo the place value just above it; among the representatives
    // of that residue class, the one nearest the baseline is the
    // victim (valid whenever the true update stays within half the
    // modulus — the calibrated expectation). This handles fraction
    // carries that naive bit splicing would corrupt.
    const double modulus = k0 == 1 ? leadingPlaceValue(base)
                                   : fractionBitPlaceValue(base, k0 - 1);
    double delta = observed - base_window;
    delta -= modulus * std::round(delta / modulus);
    // The delta applies to the magnitude; the sign field is assumed
    // stable (99% of weights keep their sign, Sec. 6.1.1).
    const double magnitude = std::fabs(static_cast<double>(base)) + delta;
    const float clone = static_cast<float>(
        std::copysign(magnitude, static_cast<double>(base)));
    return clone;
}

std::vector<float>
SelectiveWeightExtractor::extractLayer(const std::vector<float> &base,
                                       BitProbeChannel &channel,
                                       std::size_t layer,
                                       ExtractionStats &stats) const
{
    std::vector<float> out;
    out.reserve(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        out.push_back(extractWeight(base[i], channel, layer, i, stats));
    return out;
}

std::vector<float>
SelectiveWeightExtractor::extractHead(BitProbeChannel &channel,
                                      std::size_t head_layer,
                                      std::size_t count,
                                      ExtractionStats &stats) const
{
    std::vector<float> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        ++stats.totalWeights;
        if (!channel.canRead(head_layer, i)) {
            // No baseline exists for the head; an unreachable head
            // weight stays zero (a dead output connection).
            ++stats.unreadableWeights;
            out.push_back(0.0f);
            continue;
        }
        out.push_back(channel.readFullWeight(head_layer, i));
        ++stats.fullWeightsRead;
    }
    return out;
}

zoo::WeightStore
quantizeStore(const zoo::WeightStore &store, const FloatFormat &fmt)
{
    zoo::WeightStore out = store;
    for (auto &layer : out.layers)
        for (auto &w : layer.w)
            w = quantizeTo(w, fmt);
    for (auto &w : out.head.w)
        w = quantizeTo(w, fmt);
    return out;
}

void
SelectiveWeightExtractor::auditAccuracy(const std::vector<float> &extracted,
                                        const std::vector<float> &actual,
                                        const std::vector<float> &base,
                                        ExtractionStats &stats) const
{
    assert(extracted.size() == actual.size());
    assert(base.size() == actual.size());
    for (std::size_t i = 0; i < extracted.size(); ++i) {
        ++stats.auditedWeights;
        const double residual =
            std::fabs(static_cast<double>(extracted[i]) - actual[i]);
        // The estimated distance is a typical-update scale; updates up
        // to ~3x of it are still "expected" (paper: gaps larger than
        // the expected amount count as incorrect extractions).
        const double budget = std::max(
            policy_.errorTolerance,
            3.0 * policy_.estimatedDist(std::fabs(
                      static_cast<double>(base[i]))));
        const bool sign_flip =
            std::signbit(base[i]) != std::signbit(actual[i]) &&
            std::fabs(static_cast<double>(actual[i])) >
                policy_.skipThreshold;
        if (sign_flip)
            ++stats.signFlips;
        if (residual > budget || sign_flip)
            ++stats.extractionErrors;
    }
}

} // namespace decepticon::extraction
