#include "extraction/selective.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "extraction/ieee.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"

namespace decepticon::extraction {

double
ExtractionPolicy::estimatedDist(double base_weight) const
{
    const double m = std::fabs(base_weight) / wRef;
    return baseDist * (1.0 + uShapeAlpha * m * m);
}

double
ExtractionStats::bitsExcludedFraction() const
{
    const std::size_t all_bits = 32 * totalWeights;
    if (all_bits == 0)
        return 0.0;
    const std::size_t read = bitsChecked + 32 * fullWeightsRead;
    return 1.0 - static_cast<double>(read) /
                     static_cast<double>(all_bits);
}

double
ExtractionStats::weightsSkippedFraction() const
{
    return totalWeights == 0 ? 0.0
                             : static_cast<double>(weightsSkipped) /
                                   static_cast<double>(totalWeights);
}

double
ExtractionStats::correctFraction() const
{
    return auditedWeights == 0
               ? 0.0
               : 1.0 - static_cast<double>(extractionErrors) /
                           static_cast<double>(auditedWeights);
}

void
ExtractionStats::merge(const ExtractionStats &other)
{
    totalWeights += other.totalWeights;
    weightsSkipped += other.weightsSkipped;
    weightsChecked += other.weightsChecked;
    bitsChecked += other.bitsChecked;
    fullWeightsRead += other.fullWeightsRead;
    unreadableWeights += other.unreadableWeights;
    baselineFallbackWeights += other.baselineFallbackWeights;
    probeRetries += other.probeRetries;
    voteReads += other.voteReads;
    probeFailures += other.probeFailures;
    fallbackBits += other.fallbackBits;
    exhaustedBits += other.exhaustedBits;
    auditedWeights += other.auditedWeights;
    extractionErrors += other.extractionErrors;
    signFlips += other.signFlips;
}

void
ExtractionStats::toMetrics(obs::MetricsRegistry &registry,
                           const std::string &prefix) const
{
    const auto gauge = [&](const char *field, double value) {
        registry.setGauge(prefix + "." + field, value);
    };
    gauge("total_weights", static_cast<double>(totalWeights));
    gauge("weights_skipped", static_cast<double>(weightsSkipped));
    gauge("weights_checked", static_cast<double>(weightsChecked));
    gauge("bits_checked", static_cast<double>(bitsChecked));
    gauge("full_weights_read", static_cast<double>(fullWeightsRead));
    gauge("unreadable_weights", static_cast<double>(unreadableWeights));
    gauge("baseline_fallback_weights",
          static_cast<double>(baselineFallbackWeights));
    gauge("probe_retries", static_cast<double>(probeRetries));
    gauge("vote_reads", static_cast<double>(voteReads));
    gauge("probe_failures", static_cast<double>(probeFailures));
    gauge("fallback_bits", static_cast<double>(fallbackBits));
    gauge("exhausted_bits", static_cast<double>(exhaustedBits));
    gauge("audited_weights", static_cast<double>(auditedWeights));
    gauge("extraction_errors", static_cast<double>(extractionErrors));
    gauge("sign_flips", static_cast<double>(signFlips));
    gauge("bits_excluded_fraction", bitsExcludedFraction());
    gauge("weights_skipped_fraction", weightsSkippedFraction());
    gauge("correct_fraction", correctFraction());
}

namespace {

/**
 * Channel-independent read plan for one weight: Algorithm 1's control
 * flow up to — but not including — the channel. A pure function of
 * (policy, base), so planning parallelizes freely.
 */
struct WeightPlan
{
    enum Action : std::uint8_t {
        kSkip,       ///< reuse the baseline, no channel contact
        kDegenerate, ///< zero / non-finite base: checked, no reads
        kFullRead,   ///< expected update too large: full 32-bit read
        kBits,       ///< read nbits fraction bits starting at k0
    };
    Action action = kSkip;
    int k0 = 0;
    int nbits = 0;
};

WeightPlan
planWeight(const ExtractionPolicy &policy, float base)
{
    WeightPlan plan;
    const double abs_base = std::fabs(static_cast<double>(base));
    const double est = policy.estimatedDist(abs_base);

    // Step 1: tiny weights, or weights whose expected update is below
    // the significance threshold, keep the pre-trained value.
    if (abs_base < policy.skipThreshold || est < policy.significance) {
        plan.action = WeightPlan::kSkip;
        return plan;
    }

    if (base == 0.0f || !std::isfinite(base)) {
        plan.action = WeightPlan::kDegenerate; // nothing to splice
        return plan;
    }

    // Algorithm 1 presumes the sign and exponent fields survive
    // fine-tuning. When the expected update is comparable to the
    // weight itself that premise fails (the value can cross a binade
    // or flip sign), and the attacker — who knows both the baseline
    // and the estimate — falls back to a full read. Such weights are
    // rare for encoder matrices but common in embedding tables.
    if (est >= 0.5 * abs_base) {
        plan.action = WeightPlan::kFullRead;
        return plan;
    }

    // Step 2: pick the fraction bits whose place values cover the
    // estimated gap. The window starts at the most significant
    // position whose place value fits within twice the estimated gap
    // (so the residue modulus exceeds any expected update) and spans
    // maxBitsPerWeight positions, stopping early once place values
    // drop below the significance floor.
    // Quantized victims expose fewer fraction bits (Sec. 8).
    plan.action = WeightPlan::kBits;
    const int max_k = std::min(23, policy.storageFormat.fractionBits);
    int k0 = 1;
    while (k0 <= max_k && fractionBitPlaceValue(base, k0) > est)
        ++k0;
    plan.k0 = k0;
    for (int i = 0; i < policy.maxBitsPerWeight && k0 + i <= max_k;
         ++i) {
        if (fractionBitPlaceValue(base, k0 + i) <
            policy.significance / 4.0)
            break;
        ++plan.nbits;
    }
    return plan;
}

/** What the serial probe phase delivered for one planned weight. */
struct ProbeResult
{
    bool readable = true;
    float fullValue = 0.0f;
    std::uint32_t bits = 0; ///< bit j = j-th planned fraction position
};

/**
 * Execute one weight's plan against the channel. The channel is the
 * only stateful participant (DRAM warm rows, fault-process counters,
 * the error rng), so callers run probes serially in index order — the
 * exact call sequence of the legacy per-weight loop.
 */
ProbeResult
probeWeight(const WeightPlan &plan, BitProbeChannel &channel,
            std::size_t layer, std::size_t index)
{
    ProbeResult res;
    if (plan.action == WeightPlan::kSkip)
        return res;

    // Physically unreachable weights (e.g. DRAM rows without usable
    // aggressors) keep the baseline — the attacker cannot do better
    // without the channel.
    if (!channel.canRead(layer, index)) {
        res.readable = false;
        return res;
    }

    if (plan.action == WeightPlan::kFullRead) {
        res.fullValue = channel.readFullWeight(layer, index);
    } else if (plan.action == WeightPlan::kBits) {
        for (int j = 0; j < plan.nbits; ++j) {
            if (channel.readBit(layer, index,
                                fractionPosToWordBit(plan.k0 + j)))
                res.bits |= 1u << j;
        }
    }
    return res;
}

/** Pure decode of one probed weight; also tallies the stats. */
float
decodeWeight(float base, const WeightPlan &plan,
             const ProbeResult &probe, ExtractionStats &stats)
{
    ++stats.totalWeights;
    if (plan.action == WeightPlan::kSkip) {
        ++stats.weightsSkipped;
        return base;
    }
    if (!probe.readable) {
        ++stats.unreadableWeights;
        ++stats.baselineFallbackWeights;
        return base;
    }
    ++stats.weightsChecked;
    if (plan.action == WeightPlan::kDegenerate)
        return base;
    if (plan.action == WeightPlan::kFullRead) {
        ++stats.fullWeightsRead;
        return probe.fullValue;
    }
    stats.bitsChecked += static_cast<std::size_t>(plan.nbits);
    if (plan.nbits == 0)
        return base;

    double observed = 0.0;
    double base_window = 0.0;
    for (int j = 0; j < plan.nbits; ++j) {
        const double pv = fractionBitPlaceValue(base, plan.k0 + j);
        if (probe.bits & (1u << j))
            observed += pv;
        if (fractionBit(base, plan.k0 + j))
            base_window += pv;
    }

    // Decode: the victim's value is congruent to the observed window
    // modulo the place value just above it; among the representatives
    // of that residue class, the one nearest the baseline is the
    // victim (valid whenever the true update stays within half the
    // modulus — the calibrated expectation). This handles fraction
    // carries that naive bit splicing would corrupt.
    const double modulus = plan.k0 == 1
                               ? leadingPlaceValue(base)
                               : fractionBitPlaceValue(base, plan.k0 - 1);
    double delta = observed - base_window;
    delta -= modulus * std::round(delta / modulus);
    // The delta applies to the magnitude; the sign field is assumed
    // stable (99% of weights keep their sign, Sec. 6.1.1).
    const double magnitude = std::fabs(static_cast<double>(base)) + delta;
    return static_cast<float>(
        std::copysign(magnitude, static_cast<double>(base)));
}

/** Deterministic chunking for per-chunk stats accumulation. */
constexpr std::size_t kStatsGrain = 1024;

} // anonymous namespace

float
SelectiveWeightExtractor::extractWeight(float base,
                                        BitProbeChannel &channel,
                                        std::size_t layer,
                                        std::size_t index,
                                        ExtractionStats &stats) const
{
    const WeightPlan plan = planWeight(policy_, base);
    const ProbeResult probe = probeWeight(plan, channel, layer, index);
    return decodeWeight(base, plan, probe, stats);
}

std::vector<float>
SelectiveWeightExtractor::extractLayer(const std::vector<float> &base,
                                       BitProbeChannel &channel,
                                       std::size_t layer,
                                       ExtractionStats &stats) const
{
    obs::StageTimer stage_timer("extract");
    const std::size_t n = base.size();

    // Plan: pure per-weight classification, parallel.
    std::vector<WeightPlan> plans(n);
    sched::parallelFor(n, 0, [&](std::size_t i) {
        plans[i] = planWeight(policy_, base[i]);
    });

    // Probe: serial, in index order — exactly the channel-call
    // sequence of a serial extractWeight() loop, so the channel's
    // internal state (and thus every read) is thread-count-invariant.
    std::vector<ProbeResult> probes(n);
    for (std::size_t i = 0; i < n; ++i)
        probes[i] = probeWeight(plans[i], channel, layer, i);

    // Decode: pure per-weight arithmetic, parallel over fixed-size
    // chunks; each chunk tallies into its own ExtractionStats, merged
    // in chunk order so the totals are scheduling-independent.
    std::vector<float> out(n);
    const std::size_t nchunks = (n + kStatsGrain - 1) / kStatsGrain;
    std::vector<ExtractionStats> partial(nchunks);
    sched::parallelFor(nchunks, 1, [&](std::size_t c) {
        const std::size_t lo = c * kStatsGrain;
        const std::size_t hi = std::min(n, lo + kStatsGrain);
        for (std::size_t i = lo; i < hi; ++i)
            out[i] = decodeWeight(base[i], plans[i], probes[i],
                                  partial[c]);
    });
    for (const auto &p : partial)
        stats.merge(p);
    return out;
}

std::vector<float>
SelectiveWeightExtractor::extractHead(BitProbeChannel &channel,
                                      std::size_t head_layer,
                                      std::size_t count,
                                      ExtractionStats &stats) const
{
    std::vector<float> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        ++stats.totalWeights;
        if (!channel.canRead(head_layer, i)) {
            // No baseline exists for the head; an unreachable head
            // weight stays zero (a dead output connection).
            ++stats.unreadableWeights;
            out.push_back(0.0f);
            continue;
        }
        out.push_back(channel.readFullWeight(head_layer, i));
        ++stats.fullWeightsRead;
    }
    return out;
}

zoo::WeightStore
quantizeStore(const zoo::WeightStore &store, const FloatFormat &fmt)
{
    zoo::WeightStore out = store;
    for (auto &layer : out.layers)
        for (auto &w : layer.w)
            w = quantizeTo(w, fmt);
    for (auto &w : out.head.w)
        w = quantizeTo(w, fmt);
    return out;
}

void
SelectiveWeightExtractor::auditAccuracy(const std::vector<float> &extracted,
                                        const std::vector<float> &actual,
                                        const std::vector<float> &base,
                                        ExtractionStats &stats) const
{
    assert(extracted.size() == actual.size());
    assert(base.size() == actual.size());
    const std::size_t n = extracted.size();
    const std::size_t nchunks = (n + kStatsGrain - 1) / kStatsGrain;
    std::vector<ExtractionStats> partial(nchunks);
    sched::parallelFor(nchunks, 1, [&](std::size_t c) {
        ExtractionStats &local = partial[c];
        const std::size_t lo = c * kStatsGrain;
        const std::size_t hi = std::min(n, lo + kStatsGrain);
        for (std::size_t i = lo; i < hi; ++i) {
            ++local.auditedWeights;
            const double residual =
                std::fabs(static_cast<double>(extracted[i]) - actual[i]);
            // The estimated distance is a typical-update scale;
            // updates up to ~3x of it are still "expected" (paper:
            // gaps larger than the expected amount count as incorrect
            // extractions).
            const double budget = std::max(
                policy_.errorTolerance,
                3.0 * policy_.estimatedDist(std::fabs(
                          static_cast<double>(base[i]))));
            const bool sign_flip =
                std::signbit(base[i]) != std::signbit(actual[i]) &&
                std::fabs(static_cast<double>(actual[i])) >
                    policy_.skipThreshold;
            if (sign_flip)
                ++local.signFlips;
            if (residual > budget || sign_flip)
                ++local.extractionErrors;
        }
    });
    for (const auto &p : partial)
        stats.merge(p);
}

} // namespace decepticon::extraction
