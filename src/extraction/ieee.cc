#include "extraction/ieee.hh"

#include <cassert>
#include <cmath>
#include <cstring>

namespace decepticon::extraction {

std::uint32_t
floatToBits(float v)
{
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

float
bitsFromFloat(std::uint32_t bits)
{
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
signBit(float v)
{
    return (floatToBits(v) >> 31) != 0;
}

int
exponentField(float v)
{
    return static_cast<int>((floatToBits(v) >> 23) & 0xff);
}

int
unbiasedExponent(float v)
{
    return exponentField(v) - kFloat32.bias();
}

std::uint32_t
fractionField(float v)
{
    return floatToBits(v) & 0x7fffffu;
}

bool
fractionBit(float v, int k)
{
    assert(k >= 1 && k <= 23);
    return (floatToBits(v) >> (23 - k)) & 1u;
}

float
withFractionBit(float v, int k, bool bit)
{
    assert(k >= 1 && k <= 23);
    std::uint32_t bits = floatToBits(v);
    const std::uint32_t mask = 1u << (23 - k);
    if (bit)
        bits |= mask;
    else
        bits &= ~mask;
    return bitsFromFloat(bits);
}

double
fractionBitPlaceValue(float v, int k)
{
    assert(k >= 1 && k <= 23);
    return std::ldexp(1.0, unbiasedExponent(v) - k);
}

double
leadingPlaceValue(float v)
{
    return std::ldexp(1.0, unbiasedExponent(v));
}

float
quantizeTo(float v, const FloatFormat &fmt)
{
    assert(fmt.fractionBits <= kFloat32.fractionBits);
    assert(fmt.exponentBits <= kFloat32.exponentBits);

    if (v == 0.0f || !std::isfinite(v))
        return v;

    // Round-to-nearest-even on the dropped fraction bits.
    const int drop = kFloat32.fractionBits - fmt.fractionBits;
    std::uint32_t bits = floatToBits(v);
    if (drop > 0) {
        const std::uint32_t lsb = 1u << drop;
        const std::uint32_t half = lsb >> 1;
        const std::uint32_t rem = bits & (lsb - 1);
        bits &= ~(lsb - 1);
        if (rem > half || (rem == half && (bits & lsb)))
            bits += lsb;
    }
    float q = bitsFromFloat(bits);

    // Clamp into the narrower exponent range (flush to zero / inf).
    if (fmt.exponentBits < kFloat32.exponentBits) {
        const int e = unbiasedExponent(q);
        const int emax = fmt.bias();
        const int emin = 1 - fmt.bias();
        if (e > emax)
            return std::signbit(q) ? -INFINITY : INFINITY;
        if (e < emin)
            return std::signbit(q) ? -0.0f : 0.0f;
    }
    return q;
}

int
fractionPosToWordBit(int k)
{
    assert(k >= 1 && k <= 23);
    return 23 - k;
}

} // namespace decepticon::extraction
