#include "extraction/dram.hh"

#include <cassert>

namespace decepticon::extraction {

DramWeightLayout::DramWeightLayout(const VictimWeightOracle &oracle,
                                   const DramGeometry &geometry,
                                   std::uint64_t seed)
    : geometry_(geometry)
{
    assert(geometry.rowBytes >= 64);
    assert(geometry.hammerableRowFraction >= 0.0 &&
           geometry.hammerableRowFraction <= 1.0);

    // Tensors are laid out back to back, layer by layer (head last).
    std::size_t offset = 0;
    const std::size_t groups = oracle.numLayers() + 1;
    layerByteBase_.reserve(groups);
    for (std::size_t l = 0; l < groups; ++l) {
        layerByteBase_.push_back(offset);
        offset += 4 * oracle.layerSize(l);
    }
    totalRows_ = (offset + geometry.rowBytes - 1) / geometry.rowBytes;

    // Which rows have usable aggressor neighbours is a property of
    // the surrounding allocation; model it as a seeded Bernoulli mask.
    util::Rng rng(seed);
    rowHammerable_.resize(totalRows_);
    for (std::size_t r = 0; r < totalRows_; ++r)
        rowHammerable_[r] =
            rng.uniform() < geometry.hammerableRowFraction;
}

std::size_t
DramWeightLayout::flatByteOffset(std::size_t layer,
                                 std::size_t index) const
{
    assert(layer < layerByteBase_.size());
    return layerByteBase_[layer] + 4 * index;
}

DramAddress
DramWeightLayout::addressOf(std::size_t layer, std::size_t index) const
{
    const std::size_t byte = flatByteOffset(layer, index);
    DramAddress addr;
    const std::size_t global_row = byte / geometry_.rowBytes;
    addr.row = global_row;
    addr.bank = global_row % geometry_.banks;
    addr.column = byte % geometry_.rowBytes;
    return addr;
}

bool
DramWeightLayout::hammerable(std::size_t layer, std::size_t index) const
{
    const std::size_t row =
        flatByteOffset(layer, index) / geometry_.rowBytes;
    assert(row < rowHammerable_.size());
    return rowHammerable_[row];
}

std::size_t
DramWeightLayout::hammerableRowCount() const
{
    std::size_t n = 0;
    for (bool h : rowHammerable_)
        n += h ? 1 : 0;
    return n;
}

DramBitProbeChannel::DramBitProbeChannel(const VictimWeightOracle &oracle,
                                         const DramWeightLayout &layout,
                                         double bit_error_rate,
                                         std::uint64_t seed)
    : BitProbeChannel(oracle, layout.geometry().roundsPerBitCold,
                      bit_error_rate, seed),
      layout_(layout)
{
}

bool
DramBitProbeChannel::canRead(std::size_t layer, std::size_t index) const
{
    return layout_.hammerable(layer, index);
}

ProbeAttempt
DramBitProbeChannel::tryReadBit(std::size_t layer, std::size_t index,
                                int word_bit)
{
    assert(canRead(layer, index));
    const DramAddress addr = layout_.addressOf(layer, index);
    const bool warm =
        hasLastRow_ && addr.bank == lastBank_ && addr.row == lastRow_;
    charge(warm ? layout_.geometry().roundsPerBitWarm
                : layout_.geometry().roundsPerBitCold);
    hasLastRow_ = true;
    lastBank_ = addr.bank;
    lastRow_ = addr.row;
    return attemptBit(layer, index, word_bit);
}

} // namespace decepticon::extraction
