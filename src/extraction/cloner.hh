/**
 * @file
 * Level-2 end-to-end model cloning on real (trainable) transformer
 * victims: starting from the identified pre-trained model, the cloner
 * extracts the task head in full, then selectively extracts encoder
 * layers from the last toward the first — the paper's ordering, which
 * exploits the low accuracy impact of early layers (Table 1) — and
 * stops as soon as the clone's predictions agree with the victim's on
 * a query set.
 */

#ifndef DECEPTICON_EXTRACTION_CLONER_HH
#define DECEPTICON_EXTRACTION_CLONER_HH

#include <memory>
#include <optional>
#include <vector>

#include "extraction/bitprobe.hh"
#include "extraction/dram.hh"
#include "extraction/resilient.hh"
#include "extraction/selective.hh"
#include "fault/fault.hh"
#include "transformer/classifier.hh"
#include "transformer/task.hh"

namespace decepticon::extraction {

/** Cloning options. */
struct ClonerOptions
{
    ExtractionPolicy policy;
    /** Stop once clone/victim prediction agreement reaches this. */
    double agreementTarget = 0.98;
    /** Also extract embeddings if agreement is still below target. */
    bool extractEmbeddings = true;
    /**
     * Model the rowhammer channel with DRAM physics (hammerable-row
     * limits, cold/warm round costs). Unset = idealized channel.
     */
    std::optional<DramGeometry> dramGeometry;
    /** Row-mask seed when dramGeometry is set. */
    std::uint64_t dramSeed = 0;
    /**
     * Fault process applied to the bit-probe channel (unset =
     * perfectly reliable channel). Deterministic per FaultSpec::seed.
     */
    std::optional<fault::FaultSpec> faultSpec;
    /**
     * Retry/vote/fallback policy wrapped around the channel (unset =
     * raw, fault-exposed reads — the resilience-disabled baseline).
     * The fallback baseline is the clone's pre-extraction state: the
     * identified pre-trained weights plus the freshly reset head.
     */
    std::optional<ResilienceOptions> resilience;
};

/** Outcome of a cloning run. */
struct CloneResult
{
    std::unique_ptr<transformer::TransformerClassifier> clone;
    ProbeStats probeStats;
    ExtractionStats extractionStats;
    /** Retry/vote/fallback accounting (zero without resilience). */
    ReliabilityStats reliability;
    /** Ground-truth injected-fault counts (zero without faultSpec). */
    fault::FaultCounters faultCounters;
    /** Encoder layers actually extracted (from the last backward). */
    std::size_t layersExtracted = 0;
    /** Agreement with the victim after each extraction step. */
    std::vector<double> agreementTrajectory;
    /**
     * Black-box queries issued to the victim (prediction-API calls for
     * the agreement stopping rule). Contrast with the ~18K inferences
     * the paper's substitute-model baseline consumes.
     */
    std::size_t victimQueries = 0;
};

/**
 * Build the victim-memory oracle layout used by the cloner:
 * group 0 = embeddings, groups 1..L = encoders, group L+1 = head.
 */
std::vector<nn::ParamRefs>
victimParamGroups(transformer::TransformerClassifier &victim);

/** Read a parameter group's weights as one flat vector. */
std::vector<float> groupWeights(const nn::ParamRefs &group);

/** Write a flat vector back into a parameter group. */
void setGroupWeights(const nn::ParamRefs &group,
                     const std::vector<float> &w);

/** The level-2 extraction driver. */
class ModelCloner
{
  public:
    /**
     * Clone a black-box victim.
     *
     * @param victim the victim model; used only (a) through the
     *        bit-probe channel and (b) as a query API for agreement
     *        checks, matching the threat model
     * @param pretrained the identified pre-trained model (level 1
     *        output); supplies every baseline weight
     * @param query_set inputs used to measure clone/victim agreement
     */
    static CloneResult extract(transformer::TransformerClassifier &victim,
                               const transformer::TransformerClassifier
                                   &pretrained,
                               const std::vector<transformer::Example>
                                   &query_set,
                               const ClonerOptions &opts);
};

} // namespace decepticon::extraction

#endif // DECEPTICON_EXTRACTION_CLONER_HH
