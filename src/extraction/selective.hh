/**
 * @file
 * Selective weight extraction — Algorithm 1 of the paper. Instead of
 * hammering every bit of every weight, the attacker uses the recovered
 * pre-trained model as a baseline and reads only the few fraction bits
 * whose place value matches the expected fine-tuning weight distance:
 *
 *   1. weights whose estimated update cannot matter (tiny weights, or
 *      estimated gap below the significance threshold) reuse the
 *      pre-trained value outright;
 *   2. for the rest, the expected gap is estimated from the
 *      pre-trained value via the U-shaped update law (larger weights
 *      move more, Fig. 4), and up to maxBitsPerWeight fraction bits
 *      covering that gap are read from the victim and spliced into
 *      the baseline value.
 *
 * The newly added task head has no baseline; it is extracted with
 * full 32-bit reads, which stays cheap because the head is at most
 * ~0.009% of the model's weights (Fig. 16).
 */

#ifndef DECEPTICON_EXTRACTION_SELECTIVE_HH
#define DECEPTICON_EXTRACTION_SELECTIVE_HH

#include <cstddef>
#include <vector>

#include "extraction/bitprobe.hh"
#include "extraction/ieee.hh"

namespace decepticon::extraction {

/** Attacker-side parameters of Algorithm 1. */
struct ExtractionPolicy
{
    /** Step 1: |base| below this reuses the pre-trained value. */
    double skipThreshold = 0.001;
    /** Gaps below this are too small to affect predictions. */
    double significance = 0.0025;
    /** Expected fine-tuning gap for near-zero weights. */
    double baseDist = 0.0012;
    /** U-shape law the attacker calibrated from public model pairs. */
    double uShapeAlpha = 3.0;
    double wRef = 0.25;
    /** Paper: checking up to two bits per weight suffices. */
    int maxBitsPerWeight = 2;
    /** Audit tolerance: |clone - actual| above this is an error. */
    double errorTolerance = 0.002;
    /**
     * Storage format of the victim's weights (Sec. 8): float32 by
     * default; bfloat16/float16 victims have fewer fraction bits, so
     * the checkable window is clamped accordingly (bfloat16 keeps
     * float32's exponent, so the same leading bits are checked).
     */
    FloatFormat storageFormat = kFloat32;

    /** Estimated |gap| for a weight with the given pre-trained value. */
    double estimatedDist(double base_weight) const;
};

/** Accounting of one extraction run (drives Fig. 16). */
struct ExtractionStats
{
    std::size_t totalWeights = 0;
    std::size_t weightsSkipped = 0; ///< reused base without any read
    std::size_t weightsChecked = 0;
    std::size_t bitsChecked = 0;
    std::size_t fullWeightsRead = 0; ///< head weights read in full
    /** Weights the channel could not reach (non-hammerable rows). */
    std::size_t unreadableWeights = 0;
    /**
     * Weights resolved from the pre-trained baseline because the
     * channel could not deliver them (unreachable rows, exhausted
     * retry budgets). Graceful degradation, never silent dropping:
     * every unreadable weight with a baseline lands here.
     */
    std::size_t baselineFallbackWeights = 0;

    // Reliability accounting (filled when a RetryingProber drives the
    // channel; all zero on a perfectly reliable channel).
    std::size_t probeRetries = 0;  ///< attempts beyond the vote plan
    std::size_t voteReads = 0;     ///< extra reads bought by voting
    std::size_t probeFailures = 0; ///< attempts that landed nothing
    std::size_t fallbackBits = 0;  ///< bits answered from the baseline
    std::size_t exhaustedBits = 0; ///< bits whose budget ran out

    // Audit fields (filled by auditAccuracy against ground truth).
    std::size_t auditedWeights = 0;
    std::size_t extractionErrors = 0; ///< gap beyond tolerance or sign flip
    std::size_t signFlips = 0;

    /** Bits never read, as a fraction of 32 * totalWeights. */
    double bitsExcludedFraction() const;

    /** Weights reused without reads, as a fraction of the total. */
    double weightsSkippedFraction() const;

    /** Fraction of audited weights whose extraction was correct. */
    double correctFraction() const;

    void merge(const ExtractionStats &other);

    /**
     * Publish the snapshot as "<prefix>.*" gauges (totals, skip/check
     * counters, reliability fold-ins, audit results, and the derived
     * fractions). The single serialization path for this struct.
     */
    void toMetrics(obs::MetricsRegistry &registry,
                   const std::string &prefix = "extract") const;
};

/** Algorithm 1 over a bit-probe channel. */
class SelectiveWeightExtractor
{
  public:
    explicit SelectiveWeightExtractor(const ExtractionPolicy &policy)
        : policy_(policy)
    {
    }

    /**
     * Extract one victim weight given its pre-trained baseline.
     * Reads at most policy.maxBitsPerWeight bits from the channel.
     */
    float extractWeight(float base, BitProbeChannel &channel,
                        std::size_t layer, std::size_t index,
                        ExtractionStats &stats) const;

    /** Extract a whole layer against its baseline values. */
    std::vector<float> extractLayer(const std::vector<float> &base,
                                    BitProbeChannel &channel,
                                    std::size_t layer,
                                    ExtractionStats &stats) const;

    /**
     * Full 32-bit extraction for the baseline-less task head
     * (layer index = oracle.numLayers()).
     */
    std::vector<float> extractHead(BitProbeChannel &channel,
                                   std::size_t head_layer,
                                   std::size_t count,
                                   ExtractionStats &stats) const;

    /**
     * Compare extracted values with ground truth (paper Sec. 7.4
     * criterion): an extraction is wrong when the actual fine-tuning
     * gap exceeded the expected amount — leaving a residual beyond
     * max(errorTolerance, estimatedDist(base)) — or the sign bit
     * changed.
     */
    void auditAccuracy(const std::vector<float> &extracted,
                       const std::vector<float> &actual,
                       const std::vector<float> &base,
                       ExtractionStats &stats) const;

    const ExtractionPolicy &policy() const { return policy_; }

  private:
    ExtractionPolicy policy_;
};

/**
 * Quantize every weight of a store to the given format and back —
 * a victim checkpointed in bfloat16/float16 (Sec. 8).
 */
zoo::WeightStore quantizeStore(const zoo::WeightStore &store,
                               const FloatFormat &fmt);

} // namespace decepticon::extraction

#endif // DECEPTICON_EXTRACTION_SELECTIVE_HH
