/**
 * @file
 * IEEE-754 field manipulation for selective weight extraction (paper
 * Sec. 6.1.1 and the quantization discussion of Sec. 8). Bits are
 * numbered 31 (sign) down to 0; fraction bits are also addressed by
 * their 1-based position from the fraction MSB, matching the paper's
 * "k-th bit of the fraction" notation, whose place value is
 * 2^(exp - bias - k).
 */

#ifndef DECEPTICON_EXTRACTION_IEEE_HH
#define DECEPTICON_EXTRACTION_IEEE_HH

#include <cstdint>

namespace decepticon::extraction {

/** Parameters of a binary floating-point format. */
struct FloatFormat
{
    int exponentBits;
    int fractionBits;

    int bias() const { return (1 << (exponentBits - 1)) - 1; }
    int totalBits() const { return 1 + exponentBits + fractionBits; }
};

/** float32: 8-bit exponent, 23-bit fraction. */
constexpr FloatFormat kFloat32{8, 23};
/** float16: 5-bit exponent, 10-bit fraction. */
constexpr FloatFormat kFloat16{5, 10};
/** bfloat16: float32's exponent with a 7-bit fraction. */
constexpr FloatFormat kBfloat16{8, 7};

/** Raw bit pattern of a float. */
std::uint32_t floatToBits(float v);

/** Float from a raw bit pattern. */
float bitsFromFloat(std::uint32_t bits);

/** Sign bit (1 = negative). */
bool signBit(float v);

/** Biased exponent field of a float32. */
int exponentField(float v);

/** Unbiased exponent (exponentField - 127). */
int unbiasedExponent(float v);

/** 23-bit fraction field of a float32. */
std::uint32_t fractionField(float v);

/**
 * Bit (0/1) of v at fraction position k (1-based from the fraction
 * MSB). @pre 1 <= k <= 23
 */
bool fractionBit(float v, int k);

/** Set fraction position k of v to the given bit value. */
float withFractionBit(float v, int k, bool bit);

/**
 * Place value of fraction position k for a value with v's exponent:
 * 2^(unbiasedExponent(v) - k). This is the magnitude a single checked
 * bit contributes — the quantity Algorithm 1 compares against the
 * expected fine-tuning weight distance.
 */
double fractionBitPlaceValue(float v, int k);

/** The value 2^unbiasedExponent(v): the leading (implicit-1) term. */
double leadingPlaceValue(float v);

/**
 * Quantize a float32 to the given narrower format and back
 * (round-to-nearest-even on the dropped fraction bits). Models
 * fine-tuned checkpoints stored in float16/bfloat16.
 */
float quantizeTo(float v, const FloatFormat &fmt);

/**
 * Index of v's fraction position k within a 32-bit word (31 = sign).
 * fraction position k occupies word bit (23 - k).
 */
int fractionPosToWordBit(int k);

} // namespace decepticon::extraction

#endif // DECEPTICON_EXTRACTION_IEEE_HH
