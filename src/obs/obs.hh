/**
 * @file
 * Process-wide telemetry facade. Instrumentation sites call the free
 * functions here (span / count / gaugeSet / observe); when telemetry
 * is off — the default — every call is a relaxed atomic load and an
 * early return, so the attack pipeline pays nothing for being
 * observable. Enable programmatically with configure(), or from the
 * environment:
 *
 *   DECEPTICON_OBS=trace:/tmp/run.json,metrics:/tmp/run.jsonl
 *
 * comma-separated sinks; "trace:<path>" writes a Chrome trace-event
 * file at exit, "metrics:<path>" a JSONL metrics dump. Bare "trace" /
 * "metrics" (or "on" for both) enable in-memory collection without a
 * file sink, which is what tests use.
 *
 * The flight recorder has its own knob (same near-zero-cost no-op
 * path when off — one relaxed atomic load per call site):
 *
 *   DECEPTICON_OBS_FLIGHT=off | on[:<path>] | on_error[:<path>]
 *
 * "on" records always and dumps the canonical JSONL stream to <path>
 * at flush; "on_error" records always but dumps only when the run
 * noted an error (insufficient-evidence abstain, extraction failure),
 * which is the always-on triage mode for campaigns.
 */

#ifndef DECEPTICON_OBS_OBS_HH
#define DECEPTICON_OBS_OBS_HH

#include <cstdint>
#include <string>

#include "obs/clock.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"

namespace decepticon::obs {

/** Flight-recorder operating mode. */
enum class FlightMode : int
{
    Off = 0,
    /** Record; dump at flush when a path is configured. */
    On = 1,
    /** Record; dump at flush only if flightNoteError() was called. */
    OnError = 2,
};

/** Telemetry sink selection. */
struct ObsConfig
{
    bool metricsEnabled = false;
    bool traceEnabled = false;
    /** JSONL metrics dump path; empty = in-memory only. */
    std::string metricsPath;
    /** Chrome trace-event path; empty = in-memory only. */
    std::string tracePath;
    FlightMode flightMode = FlightMode::Off;
    /** Flight JSONL dump path; empty = in-memory only. */
    std::string flightPath;
};

/**
 * Parse a DECEPTICON_OBS-style spec ("trace:/p,metrics:/q", "trace",
 * "metrics", "on", "off"/""). Unknown sink names are ignored.
 */
ObsConfig parseObsSpec(const std::string &spec);

/**
 * Parse a DECEPTICON_OBS_FLIGHT spec ("off", "on", "on:/p",
 * "on_error", "on_error:/p") into the flight fields of a config.
 * Unknown modes read as Off.
 */
void parseFlightSpec(const std::string &spec, ObsConfig &config);

/** Apply a configuration (also registers the exit-time flush once). */
void configure(const ObsConfig &config);

/** configure(parseObsSpec(getenv("DECEPTICON_OBS"))); safe if unset. */
void initFromEnv();

/** Write the configured trace/metrics files now (no-op without paths). */
void flush();

/** Disable telemetry and clear all collected data (test teardown). */
void shutdown();

bool metricsEnabled();
bool traceEnabled();

/** Current flight mode (relaxed atomic load — the fast-path gate). */
FlightMode flightMode();

/** True when any flight recording is active. */
inline bool
flightEnabled()
{
    return flightMode() != FlightMode::Off;
}

/** The process-wide registry (always exists; cold when disabled). */
MetricsRegistry &metrics();

/** The process-wide tracer, or nullptr when tracing is disabled. */
Tracer *tracer();

/** The tracer's clock (steady by default; injectable for tests). */
Clock &clock();

/**
 * Inject a test clock (not owned; pass nullptr to restore the steady
 * default). Affects spans started after the call.
 */
void setClockForTest(Clock *test_clock);

/** Open an RAII span; inactive (two-word no-op) when tracing is off. */
inline Span
span(const char *name, const char *cat = "attack")
{
    return Span(tracer(), name, cat);
}

/** Counter increment; no-op when metrics are off. */
void count(const char *name, std::uint64_t delta = 1);

/** Gauge store; no-op when metrics are off. */
void gaugeSet(const char *name, double value);

/** Histogram sample; no-op when metrics are off. */
void observe(const char *name, double value, double lo = 0.0,
             double hi = 1.0, std::size_t bins = 16);

/** Log-bucketed latency sample; no-op when metrics are off. */
void observeLatency(const char *name, double value);

/** The process-wide flight recorder (always exists; cold when off). */
FlightRecorder &flightRecorder();

/** Record a flight event; no-op when the recorder is off. The
 *  timestamp is stamped from obs::clock() here. */
void flightRecord(FlightEventKind kind, const char *stage,
                  const char *detail = "", double value = 0.0);

/** Mark the run errored so on_error mode dumps at flush; no-op when
 *  the recorder is off. */
void flightNoteError();

/**
 * RAII pipeline-stage scope. On entry bumps stage.<s>.enter and
 * records a StageEnter flight event; on exit bumps stage.<s>.exit,
 * feeds stage.<s>.micros into the latency histogram, and records a
 * StageExit event carrying the duration. The enter/exit counter pair
 * is what the Watchdog's stall detector watches. Near-free when both
 * metrics and flight recording are off.
 */
class StageTimer
{
  public:
    explicit StageTimer(const char *stage);
    ~StageTimer();

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    const char *stage_;
    std::uint64_t t0_ = 0;
    bool active_ = false;
};

} // namespace decepticon::obs

#endif // DECEPTICON_OBS_OBS_HH
