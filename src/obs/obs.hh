/**
 * @file
 * Process-wide telemetry facade. Instrumentation sites call the free
 * functions here (span / count / gaugeSet / observe); when telemetry
 * is off — the default — every call is a relaxed atomic load and an
 * early return, so the attack pipeline pays nothing for being
 * observable. Enable programmatically with configure(), or from the
 * environment:
 *
 *   DECEPTICON_OBS=trace:/tmp/run.json,metrics:/tmp/run.jsonl
 *
 * comma-separated sinks; "trace:<path>" writes a Chrome trace-event
 * file at exit, "metrics:<path>" a JSONL metrics dump. Bare "trace" /
 * "metrics" (or "on" for both) enable in-memory collection without a
 * file sink, which is what tests use.
 */

#ifndef DECEPTICON_OBS_OBS_HH
#define DECEPTICON_OBS_OBS_HH

#include <cstdint>
#include <string>

#include "obs/clock.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"

namespace decepticon::obs {

/** Telemetry sink selection. */
struct ObsConfig
{
    bool metricsEnabled = false;
    bool traceEnabled = false;
    /** JSONL metrics dump path; empty = in-memory only. */
    std::string metricsPath;
    /** Chrome trace-event path; empty = in-memory only. */
    std::string tracePath;
};

/**
 * Parse a DECEPTICON_OBS-style spec ("trace:/p,metrics:/q", "trace",
 * "metrics", "on", "off"/""). Unknown sink names are ignored.
 */
ObsConfig parseObsSpec(const std::string &spec);

/** Apply a configuration (also registers the exit-time flush once). */
void configure(const ObsConfig &config);

/** configure(parseObsSpec(getenv("DECEPTICON_OBS"))); safe if unset. */
void initFromEnv();

/** Write the configured trace/metrics files now (no-op without paths). */
void flush();

/** Disable telemetry and clear all collected data (test teardown). */
void shutdown();

bool metricsEnabled();
bool traceEnabled();

/** The process-wide registry (always exists; cold when disabled). */
MetricsRegistry &metrics();

/** The process-wide tracer, or nullptr when tracing is disabled. */
Tracer *tracer();

/** The tracer's clock (steady by default; injectable for tests). */
Clock &clock();

/**
 * Inject a test clock (not owned; pass nullptr to restore the steady
 * default). Affects spans started after the call.
 */
void setClockForTest(Clock *test_clock);

/** Open an RAII span; inactive (two-word no-op) when tracing is off. */
inline Span
span(const char *name, const char *cat = "attack")
{
    return Span(tracer(), name, cat);
}

/** Counter increment; no-op when metrics are off. */
void count(const char *name, std::uint64_t delta = 1);

/** Gauge store; no-op when metrics are off. */
void gaugeSet(const char *name, double value);

/** Histogram sample; no-op when metrics are off. */
void observe(const char *name, double value, double lo = 0.0,
             double hi = 1.0, std::size_t bins = 16);

} // namespace decepticon::obs

#endif // DECEPTICON_OBS_OBS_HH
