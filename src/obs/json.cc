#include "obs/json.hh"

#include <cctype>
#include <cstdlib>

namespace decepticon::obs::json {

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error{};

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail("bad literal");
        pos += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            const char esc = text[pos++];
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                const unsigned long cp =
                    std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16);
                pos += 4;
                // Telemetry names are ASCII; keep non-ASCII lossy-simple.
                out += cp < 0x80 ? static_cast<char>(cp) : '?';
                break;
            }
            default:
                return fail("bad escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == 'n') {
            out.kind = Value::Kind::Null;
            return literal("null", 4);
        }
        if (c == 't') {
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
        }
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.string);
        }
        if (c == '[') {
            ++pos;
            out.kind = Value::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                Value item;
                if (!parseValue(item))
                    return false;
                out.array.push_back(std::move(item));
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos;
            out.kind = Value::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Value item;
                if (!parseValue(item))
                    return false;
                out.object.emplace(std::move(key), std::move(item));
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return fail("expected ',' or '}'");
            }
        }
        // Number.
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected value");
        pos += static_cast<std::size_t>(end - start);
        out.kind = Value::Kind::Number;
        out.number = v;
        return true;
    }
};

} // anonymous namespace

bool
parse(const std::string &text, Value &out, std::string *error)
{
    Parser p{text};
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing characters at offset " +
                     std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace decepticon::obs::json
