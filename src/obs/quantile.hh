/**
 * @file
 * Log-bucketed quantile histogram (HDR-style) — the distribution half
 * of obs v2. A LogHistogram covers [1, 2^40) (microseconds: 1 µs to
 * ~12.7 days) with a fixed geometry of 8 buckets per octave, so any
 * two histograms are mergeable and delta-able bucket by bucket and a
 * reported quantile is within a factor of 2^(1/8) ≈ 1.0905 (≤ 4.5%
 * at the geometric bucket midpoint) of the true value. Values outside
 * the range are clamped to the edge AND counted in underflow/overflow
 * ledgers, so a clipped distribution is visible, never silent.
 *
 * The geometry is deliberately compile-time fixed rather than
 * configurable: campaign rollups diff and merge snapshots taken by
 * different binaries at different times, which only works when every
 * histogram of a given name shares bucket boundaries.
 */

#ifndef DECEPTICON_OBS_QUANTILE_HH
#define DECEPTICON_OBS_QUANTILE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace decepticon::obs {

/** Fixed-geometry log-bucketed histogram with exact count ledgers. */
class LogHistogram
{
  public:
    /** Buckets per octave (doubling); rel. error = 2^(1/8)-1. */
    static constexpr std::size_t kBucketsPerOctave = 8;
    /** Octaves covered from kLo upward. */
    static constexpr std::size_t kOctaves = 40;
    /** Total bucket count. */
    static constexpr std::size_t kBuckets = kBucketsPerOctave * kOctaves;
    /** Lower bound of bucket 0 (1 µs when values are microseconds). */
    static constexpr double kLo = 1.0;

    LogHistogram() : counts_(kBuckets, 0) {}

    /** Rebuild a histogram from exported state (obsview round-trip).
     *  Short/long count vectors are zero-padded/truncated. */
    static LogHistogram fromCounts(const std::vector<std::uint64_t> &counts,
                                   std::uint64_t underflow,
                                   std::uint64_t overflow, double sum);

    /** Record one sample (clamped; under/overflow ledgers updated). */
    void add(double value);

    /** Samples recorded, including clamped ones. */
    std::uint64_t total() const { return total_; }

    /** Sum of raw (unclamped) sample values. */
    double sum() const { return sum_; }

    /** Samples below bucket 0 (clamped up to kLo). */
    std::uint64_t underflow() const { return underflow_; }

    /** Samples at/above the top bucket (clamped down). */
    std::uint64_t overflow() const { return overflow_; }

    /** Per-bucket counts (kBuckets entries). */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /** Geometric lower bound of bucket i. */
    static double bucketLo(std::size_t i);

    /** Geometric midpoint of bucket i (the reported quantile value). */
    static double bucketMid(std::size_t i);

    /**
     * Quantile estimate for q in [0, 1]: the geometric midpoint of
     * the bucket holding the q-th sample (underflow counts sit below
     * bucket 0 and report kLo; overflow reports the top bucket's
     * upper edge). 0 for an empty histogram.
     */
    double quantile(double q) const;

    /** Arithmetic mean of raw samples (0 when empty). */
    double mean() const;

    /** Bucketwise this - prev (for periodic delta rollups).
     *  @pre prev's counts are <= this's (monotone snapshots). */
    LogHistogram delta(const LogHistogram &prev) const;

    /** Bucketwise accumulate (campaign rollups across shards). */
    void merge(const LogHistogram &other);

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
};

} // namespace decepticon::obs

#endif // DECEPTICON_OBS_QUANTILE_HH
