#include "obs/quantile.hh"

#include <algorithm>
#include <cmath>

namespace decepticon::obs {

LogHistogram
LogHistogram::fromCounts(const std::vector<std::uint64_t> &counts,
                         std::uint64_t underflow, std::uint64_t overflow,
                         double sum)
{
    LogHistogram h;
    const std::size_t n = std::min(counts.size(), kBuckets);
    for (std::size_t i = 0; i < n; ++i) {
        h.counts_[i] = counts[i];
        h.total_ += counts[i];
    }
    h.underflow_ = underflow;
    h.overflow_ = overflow;
    h.total_ += underflow + overflow;
    h.sum_ = sum;
    return h;
}

void
LogHistogram::add(double value)
{
    ++total_;
    sum_ += value;
    if (!(value >= kLo)) { // also catches NaN
        ++underflow_;
        return;
    }
    const double idx =
        std::log2(value / kLo) * static_cast<double>(kBucketsPerOctave);
    if (idx >= static_cast<double>(kBuckets)) {
        ++overflow_;
        return;
    }
    ++counts_[static_cast<std::size_t>(idx)];
}

double
LogHistogram::bucketLo(std::size_t i)
{
    return kLo * std::exp2(static_cast<double>(i) /
                           static_cast<double>(kBucketsPerOctave));
}

double
LogHistogram::bucketMid(std::size_t i)
{
    return kLo * std::exp2((static_cast<double>(i) + 0.5) /
                           static_cast<double>(kBucketsPerOctave));
}

double
LogHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based, over the clamped ordering:
    // underflow (as kLo) < bucket 0 < ... < bucket N-1 < overflow.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(total_))));
    if (rank <= underflow_)
        return kLo;
    std::uint64_t seen = underflow_;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (rank <= seen)
            return bucketMid(i);
    }
    return bucketLo(kBuckets); // overflow clamp: top edge
}

double
LogHistogram::mean() const
{
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

LogHistogram
LogHistogram::delta(const LogHistogram &prev) const
{
    LogHistogram out;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        const std::uint64_t d =
            counts_[i] >= prev.counts_[i] ? counts_[i] - prev.counts_[i]
                                          : 0;
        out.counts_[i] = d;
        out.total_ += d;
    }
    out.underflow_ = underflow_ >= prev.underflow_
                         ? underflow_ - prev.underflow_
                         : 0;
    out.overflow_ =
        overflow_ >= prev.overflow_ ? overflow_ - prev.overflow_ : 0;
    out.total_ += out.underflow_ + out.overflow_;
    out.sum_ = sum_ - prev.sum_;
    return out;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    sum_ += other.sum_;
}

} // namespace decepticon::obs
