#include "obs/flight.hh"

#include <algorithm>
#include <tuple>

#include "obs/metrics.hh"

namespace decepticon::obs {

namespace {

std::uint64_t
nextRecorderId()
{
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

bool
canonicalLess(const FlightEvent &a, const FlightEvent &b)
{
    return std::make_tuple(a.ts, static_cast<int>(a.kind), a.stage,
                           a.detail, a.value) <
           std::make_tuple(b.ts, static_cast<int>(b.kind), b.stage,
                           b.detail, b.value);
}

} // anonymous namespace

const char *
flightKindName(FlightEventKind kind)
{
    switch (kind) {
    case FlightEventKind::StageEnter:
        return "stage_enter";
    case FlightEventKind::StageExit:
        return "stage_exit";
    case FlightEventKind::Fault:
        return "fault";
    case FlightEventKind::Verdict:
        return "verdict";
    case FlightEventKind::Retry:
        return "retry";
    }
    return "unknown";
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), id_(nextRecorderId())
{
}

void
FlightRecorder::setSeed(std::uint64_t seed)
{
    seed_.store(seed, std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::seed() const
{
    return seed_.load(std::memory_order_relaxed);
}

FlightRecorder::Ring &
FlightRecorder::threadRing()
{
    // One ring per (recorder, thread); the cache is keyed by the
    // recorder's monotonic id, not its address, so a recorder
    // destroyed and reallocated at the same address cannot alias a
    // stale cache entry.
    struct Cache
    {
        std::uint64_t recorderId = 0;
        Ring *ring = nullptr;
    };
    thread_local Cache cache;
    if (cache.recorderId == id_ && cache.ring != nullptr)
        return *cache.ring;
    std::lock_guard<std::mutex> lock(ringsMu_);
    rings_.push_back(std::make_unique<Ring>());
    rings_.back()->buf.reserve(capacity_);
    cache.recorderId = id_;
    cache.ring = rings_.back().get();
    return *cache.ring;
}

void
FlightRecorder::record(FlightEvent event)
{
    Ring &ring = threadRing();
    std::lock_guard<std::mutex> lock(ring.mu);
    if (ring.buf.size() < capacity_) {
        ring.buf.push_back(std::move(event));
        return;
    }
    ring.buf[ring.next] = std::move(event);
    ring.next = (ring.next + 1) % capacity_;
    ++ring.dropped;
}

void
FlightRecorder::noteError()
{
    error_.store(true, std::memory_order_relaxed);
}

bool
FlightRecorder::errorNoted() const
{
    return error_.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(ringsMu_);
    std::uint64_t n = 0;
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> rlock(ring->mu);
        n += ring->dropped;
    }
    return n;
}

std::size_t
FlightRecorder::ringCount() const
{
    std::lock_guard<std::mutex> lock(ringsMu_);
    return rings_.size();
}

std::vector<FlightEvent>
FlightRecorder::canonicalEvents() const
{
    std::vector<FlightEvent> events;
    {
        std::lock_guard<std::mutex> lock(ringsMu_);
        for (const auto &ring : rings_) {
            std::lock_guard<std::mutex> rlock(ring->mu);
            events.insert(events.end(), ring->buf.begin(),
                          ring->buf.end());
        }
    }
    std::sort(events.begin(), events.end(), canonicalLess);
    return events;
}

void
FlightRecorder::dumpJsonl(std::ostream &out) const
{
    const std::vector<FlightEvent> events = canonicalEvents();
    const std::uint64_t base = seed();
    std::uint64_t rank = 0;
    for (const FlightEvent &ev : events) {
        ++rank;
        out << "{\"type\":\"flight\",\"seq\":" << splitmix64(base + rank)
            << ",\"kind\":\"" << flightKindName(ev.kind)
            << "\",\"stage\":" << jsonQuote(ev.stage)
            << ",\"detail\":" << jsonQuote(ev.detail)
            << ",\"value\":" << jsonNumber(ev.value) << ",\"ts\":" << ev.ts
            << "}\n";
    }
    out << "{\"type\":\"flight_summary\",\"events\":" << events.size()
        << ",\"dropped\":" << dropped()
        << ",\"error\":" << (errorNoted() ? 1 : 0) << "}\n";
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(ringsMu_);
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> rlock(ring->mu);
        ring->buf.clear();
        ring->next = 0;
        ring->dropped = 0;
    }
    error_.store(false, std::memory_order_relaxed);
}

} // namespace decepticon::obs
