/**
 * @file
 * Lock-light per-thread flight recorder — the event half of obs v2.
 * Each thread appends structured events (stage transitions, fault
 * injections, fusion verdicts, retry rounds) to its own fixed-size
 * ring buffer guarded by its own uncontended mutex; a global mutex is
 * taken only once per thread (ring registration) and at dump time.
 * Memory is strictly bounded: capacity events per thread, oldest
 * overwritten first, every overwrite tallied in a dropped ledger.
 *
 * Dumps are *canonical*: the per-ring buffers are merged, sorted by
 * event content (timestamp, kind, stage, detail, value), and only
 * then assigned sequence ids via splitmix64(seed + rank). Because the
 * event multiset produced by a deterministic pipeline is identical at
 * any lane count, the dumped JSONL stream is bit-identical at 1/2/8
 * lanes — provided no ring wrapped (dropped counts are exported so a
 * truncated stream is visible, never silent).
 */

#ifndef DECEPTICON_OBS_FLIGHT_HH
#define DECEPTICON_OBS_FLIGHT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace decepticon::obs {

/** What happened. Order is part of the canonical sort key. */
enum class FlightEventKind : std::uint8_t
{
    StageEnter = 0,
    StageExit = 1,
    Fault = 2,
    Verdict = 3,
    Retry = 4,
};

/** Stable lowercase name ("stage_enter", "fault", ...). */
const char *flightKindName(FlightEventKind kind);

/** One recorded event. */
struct FlightEvent
{
    FlightEventKind kind = FlightEventKind::StageEnter;
    /** Pipeline stage (probe, trace_capture, classify, fuse, extract). */
    std::string stage;
    /** Free-form qualifier (fault model, verdict label, ...). */
    std::string detail;
    /** Payload (duration in µs, confidence, round index, ...). */
    double value = 0.0;
    /** obs::clock() timestamp at record time, microseconds. */
    std::uint64_t ts = 0;
};

/** splitmix64 — the sequence-id generator (public for tests). */
std::uint64_t splitmix64(std::uint64_t x);

/** Bounded multi-ring event store. All member functions thread-safe. */
class FlightRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    /** Per-thread ring capacity (events). */
    std::size_t capacity() const { return capacity_; }

    /** Seed for sequence-id derivation (default 0xDECE). */
    void setSeed(std::uint64_t seed);
    std::uint64_t seed() const;

    /** Append one event to the calling thread's ring. */
    void record(FlightEvent event);

    /** Mark the run errored (on_error mode dumps at flush). */
    void noteError();
    bool errorNoted() const;

    /** Total events overwritten across all rings. */
    std::uint64_t dropped() const;

    /** Rings registered so far (== threads that recorded). */
    std::size_t ringCount() const;

    /** Merged events in canonical order (ts, kind, stage, detail,
     *  value). Rank in this vector is the dump rank. */
    std::vector<FlightEvent> canonicalEvents() const;

    /**
     * Canonical JSONL dump: one
     *   {"type":"flight","seq":S,"kind":..,"stage":..,"detail":..,
     *    "value":..,"ts":..}
     * per event (seq = splitmix64(seed + 1-based rank)), then a
     *   {"type":"flight_summary","events":N,"dropped":D,"error":0|1}
     * trailer.
     */
    void dumpJsonl(std::ostream &out) const;

    /** Empty every ring and clear the error flag. Registered rings
     *  stay alive so thread-local caches never dangle. */
    void clear();

  private:
    struct Ring
    {
        std::mutex mu;
        std::vector<FlightEvent> buf;
        std::size_t next = 0;        // oldest slot once full
        std::uint64_t dropped = 0;
    };

    Ring &threadRing();

    const std::size_t capacity_;
    const std::uint64_t id_; // monotonic; keys thread-local caches
    std::atomic<bool> error_{false};
    std::atomic<std::uint64_t> seed_{0xDECE};
    mutable std::mutex ringsMu_;
    std::vector<std::unique_ptr<Ring>> rings_;
};

} // namespace decepticon::obs

#endif // DECEPTICON_OBS_FLIGHT_HH
