/**
 * @file
 * Minimal JSON reader for telemetry round-trips: the exporters in
 * this module emit JSONL metrics and Chrome trace-event files, and
 * the tests (plus any future BENCH_*.json differ) must parse them
 * back without an external dependency. Supports the full JSON value
 * grammar; numbers are doubles.
 */

#ifndef DECEPTICON_OBS_JSON_HH
#define DECEPTICON_OBS_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace decepticon::obs::json {

/** A parsed JSON value (tree-owning). */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;
};

/**
 * Parse one JSON document. Returns false (and fills *error) on
 * malformed input; trailing non-whitespace is an error.
 */
bool parse(const std::string &text, Value &out,
           std::string *error = nullptr);

} // namespace decepticon::obs::json

#endif // DECEPTICON_OBS_JSON_HH
