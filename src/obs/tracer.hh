/**
 * @file
 * Span tracer and Chrome trace-event exporter — the temporal half of
 * the telemetry layer. A Span is an RAII scope timed by the tracer's
 * injectable Clock; completed spans export as Chrome trace-event JSON
 * ("ph":"X" complete events) loadable in chrome://tracing or Perfetto.
 * Fitting, given the attack itself consumes exactly such timestamp
 * streams: the reproduction now emits the same artifact it consumes.
 */

#ifndef DECEPTICON_OBS_TRACER_HH
#define DECEPTICON_OBS_TRACER_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.hh"

namespace decepticon::obs {

/** One completed (or open, dur pending) span. */
struct TraceEvent
{
    std::string name;
    std::string cat;
    std::uint64_t ts = 0;  ///< start, microseconds
    std::uint64_t dur = 0; ///< duration, microseconds
    int tid = 0;           ///< dense per-thread id
    int depth = 0;         ///< nesting depth at begin (0 = top level)
    /** Key/value annotations; values are rendered as JSON strings. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Records spans against an injected clock. Thread-safe; spans on
 * different threads get distinct tids so nesting renders per-thread,
 * exactly as kernel records do per-stream in the victim's trace.
 */
class Tracer
{
  public:
    /** @param clock time source, not owned; must outlive the tracer */
    explicit Tracer(Clock &clock) : clock_(clock) {}

    /** Open a span; returns its handle (index into events()). */
    std::size_t beginSpan(std::string name, std::string cat);

    /** Close a span opened by beginSpan. */
    void endSpan(std::size_t handle);

    /** Attach an annotation to an open or closed span. */
    void annotate(std::size_t handle, const std::string &key,
                  std::string value);

    /** Snapshot of all recorded spans, begin order. */
    std::vector<TraceEvent> events() const;

    /** Drop all recorded spans. */
    void clear();

    /**
     * Chrome trace-event JSON:
     * {"traceEvents":[{"name":..,"cat":..,"ph":"X","ts":..,"dur":..,
     *   "pid":1,"tid":..,"args":{..}},...],"displayTimeUnit":"ms"}
     */
    void exportChromeTrace(std::ostream &out) const;

    Clock &clock() { return clock_; }

  private:
    /** Dense id + live nesting depth of one traced thread. */
    struct ThreadState
    {
        int tid = 0;
        int depth = 0;
    };

    /**
     * State of the calling thread. @pre mu_ held
     *
     * States live in states_ (indexed by dense tid - 1) rather than in
     * the id map directly, so endSpan can decrement the depth of the
     * thread that *began* the span (recorded in the event's tid) even
     * when a different thread — e.g. the pool caller joining a worker's
     * span — closes it.
     */
    ThreadState &stateLocked();

    mutable std::mutex mu_;
    Clock &clock_;
    std::vector<TraceEvent> events_;
    std::vector<ThreadState> states_;           ///< states_[tid - 1]
    std::map<std::thread::id, int> threadTids_; ///< os id -> dense tid
};

/**
 * RAII span scope. Inactive when default-constructed or given a null
 * tracer — the disabled-telemetry no-op path: construction is a
 * pointer store, destruction a null check.
 */
class Span
{
  public:
    Span() = default;

    Span(Tracer *tracer, const char *name, const char *cat)
        : tracer_(tracer),
          handle_(tracer ? tracer->beginSpan(name, cat) : 0)
    {
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    Span(Span &&other) noexcept
        : tracer_(other.tracer_), handle_(other.handle_)
    {
        other.tracer_ = nullptr;
    }

    Span &
    operator=(Span &&other) noexcept
    {
        if (this != &other) {
            end();
            tracer_ = other.tracer_;
            handle_ = other.handle_;
            other.tracer_ = nullptr;
        }
        return *this;
    }

    ~Span() { end(); }

    /** Annotate; no-op when inactive. */
    void
    arg(const std::string &key, std::string value)
    {
        if (tracer_)
            tracer_->annotate(handle_, key, std::move(value));
    }

    void arg(const std::string &key, double value);
    void arg(const std::string &key, std::uint64_t value);

    /** Close early (destructor otherwise closes at scope exit). */
    void
    end()
    {
        if (tracer_) {
            tracer_->endSpan(handle_);
            tracer_ = nullptr;
        }
    }

    bool active() const { return tracer_ != nullptr; }

  private:
    Tracer *tracer_ = nullptr;
    std::size_t handle_ = 0;
};

// The disabled path must stay near-zero-cost: a Span is two words and
// its teardown cannot throw or allocate.
static_assert(sizeof(Span) <= 2 * sizeof(void *),
              "Span must stay a two-word handle");
static_assert(std::is_nothrow_destructible_v<Span>,
              "Span teardown must be noexcept");
static_assert(std::is_nothrow_move_constructible_v<Span>,
              "Span moves must be noexcept");

} // namespace decepticon::obs

#endif // DECEPTICON_OBS_TRACER_HH
