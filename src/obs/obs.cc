#include "obs/obs.hh"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace decepticon::obs {

namespace {

std::atomic<bool> g_metricsEnabled{false};
std::atomic<bool> g_traceEnabled{false};
std::atomic<int> g_flightMode{static_cast<int>(FlightMode::Off)};

std::mutex g_configMu;
ObsConfig g_config;
Clock *g_testClock = nullptr;

SteadyClock &
steadyClock()
{
    static SteadyClock clock;
    return clock;
}

MetricsRegistry &
registrySingleton()
{
    static MetricsRegistry registry;
    return registry;
}

Tracer &
tracerSingleton()
{
    // The tracer indirects through obs::clock() on every timestamp so
    // a test clock injected later is picked up.
    class IndirectClock : public Clock
    {
      public:
        std::uint64_t nowMicros() override { return clock().nowMicros(); }
    };
    static IndirectClock indirect;
    static Tracer tracer(indirect);
    return tracer;
}

FlightRecorder &
flightRecorderSingleton()
{
    static FlightRecorder recorder;
    return recorder;
}

} // anonymous namespace

ObsConfig
parseObsSpec(const std::string &spec)
{
    ObsConfig config;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const std::size_t colon = item.find(':');
        const std::string key = item.substr(0, colon);
        const std::string path =
            colon == std::string::npos ? "" : item.substr(colon + 1);
        if (key == "metrics") {
            config.metricsEnabled = true;
            config.metricsPath = path;
        } else if (key == "trace") {
            config.traceEnabled = true;
            config.tracePath = path;
        } else if (key == "on" || key == "1" || key == "all") {
            config.metricsEnabled = true;
            config.traceEnabled = true;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return config;
}

void
parseFlightSpec(const std::string &spec, ObsConfig &config)
{
    const std::size_t colon = spec.find(':');
    const std::string mode = spec.substr(0, colon);
    const std::string path =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    if (mode == "on" || mode == "1")
        config.flightMode = FlightMode::On;
    else if (mode == "on_error")
        config.flightMode = FlightMode::OnError;
    else
        config.flightMode = FlightMode::Off;
    config.flightPath =
        config.flightMode == FlightMode::Off ? "" : path;
}

void
configure(const ObsConfig &config)
{
    // Touch the singletons before registering the atexit flush so the
    // flush runs before their destructors (LIFO teardown order).
    registrySingleton();
    tracerSingleton();
    flightRecorderSingleton();
    {
        std::lock_guard<std::mutex> lock(g_configMu);
        g_config = config;
    }
    g_metricsEnabled.store(config.metricsEnabled,
                           std::memory_order_relaxed);
    g_traceEnabled.store(config.traceEnabled, std::memory_order_relaxed);
    g_flightMode.store(static_cast<int>(config.flightMode),
                       std::memory_order_relaxed);
    static bool flush_registered = false;
    if (!flush_registered &&
        (!config.metricsPath.empty() || !config.tracePath.empty() ||
         !config.flightPath.empty())) {
        flush_registered = true;
        std::atexit(flush);
    }
}

void
initFromEnv()
{
    ObsConfig config;
    bool any = false;
    const char *spec = std::getenv("DECEPTICON_OBS");
    if (spec != nullptr && *spec != '\0') {
        config = parseObsSpec(spec);
        any = true;
    }
    const char *flight = std::getenv("DECEPTICON_OBS_FLIGHT");
    if (flight != nullptr && *flight != '\0') {
        parseFlightSpec(flight, config);
        any = any || config.flightMode != FlightMode::Off;
    }
    if (any)
        configure(config);
}

void
flush()
{
    ObsConfig config;
    {
        std::lock_guard<std::mutex> lock(g_configMu);
        config = g_config;
    }
    if (config.metricsEnabled && !config.metricsPath.empty()) {
        std::ofstream out(config.metricsPath);
        if (out)
            registrySingleton().exportJsonl(out);
    }
    if (config.traceEnabled && !config.tracePath.empty()) {
        std::ofstream out(config.tracePath);
        if (out)
            tracerSingleton().exportChromeTrace(out);
    }
    if (config.flightMode != FlightMode::Off &&
        !config.flightPath.empty()) {
        const bool dump =
            config.flightMode == FlightMode::On ||
            flightRecorderSingleton().errorNoted();
        if (dump) {
            std::ofstream out(config.flightPath);
            if (out)
                flightRecorderSingleton().dumpJsonl(out);
        }
    }
}

void
shutdown()
{
    {
        std::lock_guard<std::mutex> lock(g_configMu);
        g_config = ObsConfig{};
    }
    g_metricsEnabled.store(false, std::memory_order_relaxed);
    g_traceEnabled.store(false, std::memory_order_relaxed);
    g_flightMode.store(static_cast<int>(FlightMode::Off),
                       std::memory_order_relaxed);
    registrySingleton().reset();
    tracerSingleton().clear();
    flightRecorderSingleton().clear();
}

bool
metricsEnabled()
{
    return g_metricsEnabled.load(std::memory_order_relaxed);
}

bool
traceEnabled()
{
    return g_traceEnabled.load(std::memory_order_relaxed);
}

FlightMode
flightMode()
{
    return static_cast<FlightMode>(
        g_flightMode.load(std::memory_order_relaxed));
}

MetricsRegistry &
metrics()
{
    return registrySingleton();
}

Tracer *
tracer()
{
    return traceEnabled() ? &tracerSingleton() : nullptr;
}

Clock &
clock()
{
    std::lock_guard<std::mutex> lock(g_configMu);
    return g_testClock != nullptr ? *g_testClock : steadyClock();
}

void
setClockForTest(Clock *test_clock)
{
    std::lock_guard<std::mutex> lock(g_configMu);
    g_testClock = test_clock;
}

void
count(const char *name, std::uint64_t delta)
{
    if (metricsEnabled())
        registrySingleton().add(name, delta);
}

void
gaugeSet(const char *name, double value)
{
    if (metricsEnabled())
        registrySingleton().setGauge(name, value);
}

void
observe(const char *name, double value, double lo, double hi,
        std::size_t bins)
{
    if (metricsEnabled())
        registrySingleton().observe(name, value, lo, hi, bins);
}

void
observeLatency(const char *name, double value)
{
    if (metricsEnabled())
        registrySingleton().observeLatency(name, value);
}

FlightRecorder &
flightRecorder()
{
    return flightRecorderSingleton();
}

void
flightRecord(FlightEventKind kind, const char *stage, const char *detail,
             double value)
{
    if (!flightEnabled())
        return;
    FlightEvent event;
    event.kind = kind;
    event.stage = stage;
    event.detail = detail;
    event.value = value;
    event.ts = clock().nowMicros();
    flightRecorderSingleton().record(std::move(event));
}

void
flightNoteError()
{
    if (flightEnabled())
        flightRecorderSingleton().noteError();
}

StageTimer::StageTimer(const char *stage) : stage_(stage)
{
    if (!metricsEnabled() && !flightEnabled())
        return;
    active_ = true;
    t0_ = clock().nowMicros();
    if (metricsEnabled())
        registrySingleton().add(std::string("stage.") + stage_ +
                                ".enter");
    flightRecord(FlightEventKind::StageEnter, stage_);
}

StageTimer::~StageTimer()
{
    if (!active_)
        return;
    const std::uint64_t now = clock().nowMicros();
    const double micros = static_cast<double>(now - t0_);
    if (metricsEnabled()) {
        registrySingleton().add(std::string("stage.") + stage_ +
                                ".exit");
        registrySingleton().observeLatency(
            std::string("stage.") + stage_ + ".micros", micros);
    }
    flightRecord(FlightEventKind::StageExit, stage_, "", micros);
}

} // namespace decepticon::obs
