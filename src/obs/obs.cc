#include "obs/obs.hh"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace decepticon::obs {

namespace {

std::atomic<bool> g_metricsEnabled{false};
std::atomic<bool> g_traceEnabled{false};

std::mutex g_configMu;
ObsConfig g_config;
Clock *g_testClock = nullptr;

SteadyClock &
steadyClock()
{
    static SteadyClock clock;
    return clock;
}

MetricsRegistry &
registrySingleton()
{
    static MetricsRegistry registry;
    return registry;
}

Tracer &
tracerSingleton()
{
    // The tracer indirects through obs::clock() on every timestamp so
    // a test clock injected later is picked up.
    class IndirectClock : public Clock
    {
      public:
        std::uint64_t nowMicros() override { return clock().nowMicros(); }
    };
    static IndirectClock indirect;
    static Tracer tracer(indirect);
    return tracer;
}

} // anonymous namespace

ObsConfig
parseObsSpec(const std::string &spec)
{
    ObsConfig config;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const std::size_t colon = item.find(':');
        const std::string key = item.substr(0, colon);
        const std::string path =
            colon == std::string::npos ? "" : item.substr(colon + 1);
        if (key == "metrics") {
            config.metricsEnabled = true;
            config.metricsPath = path;
        } else if (key == "trace") {
            config.traceEnabled = true;
            config.tracePath = path;
        } else if (key == "on" || key == "1" || key == "all") {
            config.metricsEnabled = true;
            config.traceEnabled = true;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return config;
}

void
configure(const ObsConfig &config)
{
    // Touch the singletons before registering the atexit flush so the
    // flush runs before their destructors (LIFO teardown order).
    registrySingleton();
    tracerSingleton();
    {
        std::lock_guard<std::mutex> lock(g_configMu);
        g_config = config;
    }
    g_metricsEnabled.store(config.metricsEnabled,
                           std::memory_order_relaxed);
    g_traceEnabled.store(config.traceEnabled, std::memory_order_relaxed);
    static bool flush_registered = false;
    if (!flush_registered &&
        (!config.metricsPath.empty() || !config.tracePath.empty())) {
        flush_registered = true;
        std::atexit(flush);
    }
}

void
initFromEnv()
{
    const char *spec = std::getenv("DECEPTICON_OBS");
    if (spec != nullptr && *spec != '\0')
        configure(parseObsSpec(spec));
}

void
flush()
{
    ObsConfig config;
    {
        std::lock_guard<std::mutex> lock(g_configMu);
        config = g_config;
    }
    if (config.metricsEnabled && !config.metricsPath.empty()) {
        std::ofstream out(config.metricsPath);
        if (out)
            registrySingleton().exportJsonl(out);
    }
    if (config.traceEnabled && !config.tracePath.empty()) {
        std::ofstream out(config.tracePath);
        if (out)
            tracerSingleton().exportChromeTrace(out);
    }
}

void
shutdown()
{
    {
        std::lock_guard<std::mutex> lock(g_configMu);
        g_config = ObsConfig{};
    }
    g_metricsEnabled.store(false, std::memory_order_relaxed);
    g_traceEnabled.store(false, std::memory_order_relaxed);
    registrySingleton().reset();
    tracerSingleton().clear();
}

bool
metricsEnabled()
{
    return g_metricsEnabled.load(std::memory_order_relaxed);
}

bool
traceEnabled()
{
    return g_traceEnabled.load(std::memory_order_relaxed);
}

MetricsRegistry &
metrics()
{
    return registrySingleton();
}

Tracer *
tracer()
{
    return traceEnabled() ? &tracerSingleton() : nullptr;
}

Clock &
clock()
{
    std::lock_guard<std::mutex> lock(g_configMu);
    return g_testClock != nullptr ? *g_testClock : steadyClock();
}

void
setClockForTest(Clock *test_clock)
{
    std::lock_guard<std::mutex> lock(g_configMu);
    g_testClock = test_clock;
}

void
count(const char *name, std::uint64_t delta)
{
    if (metricsEnabled())
        registrySingleton().add(name, delta);
}

void
gaugeSet(const char *name, double value)
{
    if (metricsEnabled())
        registrySingleton().setGauge(name, value);
}

void
observe(const char *name, double value, double lo, double hi,
        std::size_t bins)
{
    if (metricsEnabled())
        registrySingleton().observe(name, value, lo, hi, bins);
}

} // namespace decepticon::obs
