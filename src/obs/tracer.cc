#include "obs/tracer.hh"

#include <cassert>

#include "obs/metrics.hh"

namespace decepticon::obs {

Tracer::ThreadState &
Tracer::stateLocked()
{
    const auto id = std::this_thread::get_id();
    auto it = threadTids_.find(id);
    if (it == threadTids_.end()) {
        ThreadState st;
        st.tid = static_cast<int>(states_.size()) + 1;
        states_.push_back(st);
        it = threadTids_.emplace(id, st.tid).first;
    }
    return states_[static_cast<std::size_t>(it->second) - 1];
}

std::size_t
Tracer::beginSpan(std::string name, std::string cat)
{
    std::lock_guard<std::mutex> lock(mu_);
    ThreadState &st = stateLocked();
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.ts = clock_.nowMicros();
    ev.tid = st.tid;
    ev.depth = st.depth;
    ++st.depth;
    events_.push_back(std::move(ev));
    return events_.size() - 1;
}

void
Tracer::endSpan(std::size_t handle)
{
    std::lock_guard<std::mutex> lock(mu_);
    assert(handle < events_.size());
    TraceEvent &ev = events_[handle];
    ev.dur = clock_.nowMicros() - ev.ts;
    // Unwind the nesting depth of the thread the span BEGAN on (its
    // tid is in the event), not of the caller: a moved Span may be
    // closed from another thread, and decrementing the closer's depth
    // would corrupt both threads' nesting.
    ThreadState &st = states_[static_cast<std::size_t>(ev.tid) - 1];
    if (st.depth > 0)
        --st.depth;
}

void
Tracer::annotate(std::size_t handle, const std::string &key,
                 std::string value)
{
    std::lock_guard<std::mutex> lock(mu_);
    assert(handle < events_.size());
    events_[handle].args.emplace_back(key, std::move(value));
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    for (auto &st : states_)
        st.depth = 0;
}

void
Tracer::exportChromeTrace(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    out << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent &ev = events_[i];
        out << (i ? ",\n" : "\n") << "{\"name\":" << jsonQuote(ev.name)
            << ",\"cat\":" << jsonQuote(ev.cat)
            << ",\"ph\":\"X\",\"ts\":" << ev.ts << ",\"dur\":" << ev.dur
            << ",\"pid\":1,\"tid\":" << ev.tid;
        if (!ev.args.empty()) {
            out << ",\"args\":{";
            for (std::size_t a = 0; a < ev.args.size(); ++a)
                out << (a ? "," : "") << jsonQuote(ev.args[a].first)
                    << ":" << jsonQuote(ev.args[a].second);
            out << "}";
        }
        out << "}";
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
Span::arg(const std::string &key, double value)
{
    if (tracer_)
        tracer_->annotate(handle_, key, jsonNumber(value));
}

void
Span::arg(const std::string &key, std::uint64_t value)
{
    if (tracer_)
        tracer_->annotate(handle_, key, std::to_string(value));
}

} // namespace decepticon::obs
