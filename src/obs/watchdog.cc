#include "obs/watchdog.hh"

#include <sstream>

namespace decepticon::obs {

namespace {

constexpr const char *kStagePrefix = "stage.";
constexpr const char *kEnterSuffix = ".enter";
constexpr const char *kExitSuffix = ".exit";

std::uint64_t
lookup(const std::map<std::string, std::uint64_t> &counters,
       const std::string &name)
{
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void
writeFinding(std::ostream &out, const WatchdogFinding &f)
{
    out << "{\"kind\":" << jsonQuote(f.kind)
        << ",\"subject\":" << jsonQuote(f.subject)
        << ",\"value\":" << jsonNumber(f.value)
        << ",\"threshold\":" << jsonNumber(f.threshold)
        << ",\"message\":" << jsonQuote(f.message) << "}";
}

} // anonymous namespace

void
WatchdogReport::toJson(std::ostream &out) const
{
    out << "{\"ticks\":" << ticks
        << ",\"healthy\":" << (healthy() ? "true" : "false")
        << ",\"findings\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        if (i)
            out << ",";
        writeFinding(out, findings[i]);
    }
    out << "]}";
}

Watchdog::Watchdog(WatchdogConfig config) : config_(config)
{
    addFaultBand("fault.captures_corrupted", "fault.capture_attempts",
                 "trace_capture");
    addFaultBand("fault.channel.jammed_captures",
                 "fault.channel.capture_attempts", "channels");
}

void
Watchdog::addFaultBand(const std::string &corruptedCounter,
                       const std::string &attemptsCounter,
                       const std::string &subject)
{
    bands_.push_back(FaultBand{corruptedCounter, attemptsCounter, subject,
                               /*flagged=*/false});
}

std::vector<WatchdogFinding>
Watchdog::tick(MetricsRegistry &registry)
{
    const std::map<std::string, std::uint64_t> now =
        registry.counterSnapshot();
    std::vector<WatchdogFinding> fresh;

    if (havePrev_) {
        // ---- stalls: open spans with a frozen exit counter -------
        for (const auto &[name, enter] : now) {
            if (name.compare(0, 6, kStagePrefix) != 0 ||
                !endsWith(name, kEnterSuffix))
                continue;
            const std::string stage =
                name.substr(6, name.size() - 6 - 6); // strip pre/suffix
            const std::string exit_name =
                std::string(kStagePrefix) + stage + kExitSuffix;
            const std::uint64_t exit_now = lookup(now, exit_name);
            const std::uint64_t exit_prev = lookup(prev_, exit_name);
            StageState &st = stages_[stage];
            const bool open = enter > exit_now;
            const bool progressed = exit_now > exit_prev;
            if (open && !progressed) {
                ++st.stalledTicks;
                if (st.stalledTicks >= config_.stallTicks && !st.flagged) {
                    st.flagged = true;
                    std::ostringstream msg;
                    msg << "stage '" << stage << "' has "
                        << (enter - exit_now)
                        << " open span(s) and no exit progress for "
                        << st.stalledTicks << " tick(s)";
                    fresh.push_back(WatchdogFinding{
                        "stall", stage,
                        static_cast<double>(st.stalledTicks),
                        static_cast<double>(config_.stallTicks),
                        msg.str()});
                    registry.add("obs.watchdog.stalls");
                }
            } else {
                st.stalledTicks = 0;
                st.flagged = false; // recovered; re-arm
            }
        }

        // ---- fault spikes: corrupted/attempts delta rate ---------
        for (FaultBand &band : bands_) {
            const std::uint64_t att =
                lookup(now, band.attempts) - lookup(prev_, band.attempts);
            const std::uint64_t bad = lookup(now, band.corrupted) -
                                      lookup(prev_, band.corrupted);
            if (att < config_.minSamples) {
                band.flagged = false;
                continue;
            }
            const double rate =
                static_cast<double>(bad) / static_cast<double>(att);
            if (rate > config_.faultRateMax) {
                if (!band.flagged) {
                    band.flagged = true;
                    std::ostringstream msg;
                    msg << band.subject << " fault rate " << rate
                        << " over " << att
                        << " attempt(s) exceeds band "
                        << config_.faultRateMax;
                    fresh.push_back(WatchdogFinding{
                        "fault_spike", band.subject, rate,
                        config_.faultRateMax, msg.str()});
                    registry.add("obs.watchdog.fault_spikes");
                }
            } else {
                band.flagged = false;
            }
        }

        // ---- abstain anomalies: insufficient-evidence rate -------
        {
            const std::uint64_t ids =
                lookup(now, "level1.identifies") -
                lookup(prev_, "level1.identifies");
            const std::uint64_t abst =
                lookup(now, "level1.insufficient_evidence") -
                lookup(prev_, "level1.insufficient_evidence");
            if (ids >= config_.minSamples) {
                const double rate =
                    static_cast<double>(abst) / static_cast<double>(ids);
                if (rate > config_.abstainRateMax) {
                    if (!abstainFlagged_) {
                        abstainFlagged_ = true;
                        std::ostringstream msg;
                        msg << "fusion abstained on " << abst << " of "
                            << ids << " identification(s) (rate " << rate
                            << " > " << config_.abstainRateMax << ")";
                        fresh.push_back(WatchdogFinding{
                            "abstain_anomaly", "level1.fusion", rate,
                            config_.abstainRateMax, msg.str()});
                        registry.add("obs.watchdog.abstain_anomalies");
                    }
                } else {
                    abstainFlagged_ = false;
                }
            }
        }
    }

    prev_ = now;
    havePrev_ = true;
    ++report_.ticks;
    registry.add("obs.watchdog.ticks");
    if (!fresh.empty())
        registry.add("obs.watchdog.findings", fresh.size());
    report_.findings.insert(report_.findings.end(), fresh.begin(),
                            fresh.end());
    return fresh;
}

} // namespace decepticon::obs
