/**
 * @file
 * Thread-safe registry of named counters, gauges, and histograms —
 * the quantitative half of the telemetry layer. Counters accumulate
 * monotonically (bits hammered, kernels emitted), gauges hold the
 * latest value of a measurement (CNN confidence, phase wall time),
 * and histograms (util::Histogram underneath) capture distributions.
 * The whole registry exports as JSONL (one metric per line) or as a
 * single JSON object for BENCH_*.json perf snapshots.
 */

#ifndef DECEPTICON_OBS_METRICS_HH
#define DECEPTICON_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>

#include "obs/quantile.hh"
#include "util/stats.hh"

namespace decepticon::obs {

/** Named-metric store. All member functions are thread-safe. */
class MetricsRegistry
{
  public:
    /** Add delta to a counter, creating it at zero first. */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Set a gauge to the given value, creating it if needed. */
    void setGauge(const std::string &name, double value);

    /**
     * Record one sample into a named histogram. The histogram is
     * created with [lo, hi] x bins on first use; later calls ignore
     * the shape parameters (first writer wins).
     */
    void observe(const std::string &name, double value, double lo = 0.0,
                 double hi = 1.0, std::size_t bins = 16);

    /**
     * Record one sample into a named log-bucketed latency histogram
     * (LogHistogram: fixed geometry, so every registry agrees on
     * bucket boundaries and snapshots can be diffed/merged). Use for
     * anything spanning orders of magnitude — stage latencies in
     * microseconds, queue depths, retry counts.
     */
    void observeLatency(const std::string &name, double value);

    /** Current counter value (0 if absent). */
    std::uint64_t counter(const std::string &name) const;

    /** Current gauge value (0.0 if absent). */
    double gauge(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasGauge(const std::string &name) const;

    /** Copy of a histogram (nullopt if absent). */
    std::optional<util::Histogram> histogram(const std::string &name) const;

    /** Copy of a latency histogram (nullopt if absent). */
    std::optional<LogHistogram> latency(const std::string &name) const;

    /** Consistent copy of all counters (watchdog/rollup input). */
    std::map<std::string, std::uint64_t> counterSnapshot() const;

    /** Consistent copy of all gauges. */
    std::map<std::string, double> gaugeSnapshot() const;

    /** Consistent copy of all latency histograms (delta rollups). */
    std::map<std::string, LogHistogram> latencySnapshot() const;

    /** Drop every metric. */
    void reset();

    /**
     * One metric per line:
     *   {"type":"counter","name":"...","value":N}
     *   {"type":"gauge","name":"...","value":X}
     *   {"type":"histogram","name":"...","lo":..,"hi":..,
     *    "counts":[..],"total":N,"underflow":N,"overflow":N}
     *   {"type":"latency","name":"...","p50":..,"p90":..,"p99":..,
     *    "mean":..,"count":N,"underflow":N,"overflow":N,"sum":..,
     *    "counts":[..]}
     */
    void exportJsonl(std::ostream &out) const;

    /**
     * Single JSON object:
     *   {"counters":{...},"gauges":{...},"histograms":{...},
     *    "latencies":{...}}
     * The shape BENCH_*.json snapshots use so follow-up PRs can diff.
     * The "latencies" section is omitted when empty so pre-obs-v2
     * snapshots and new ones stay byte-comparable.
     */
    void exportJson(std::ostream &out) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, util::Histogram> histograms_;
    std::map<std::string, LogHistogram> latencies_;
};

/** JSON string literal (quotes + escapes) for exporters. */
std::string jsonQuote(const std::string &s);

/** Finite-safe JSON number rendering (NaN/inf become null). */
std::string jsonNumber(double v);

} // namespace decepticon::obs

#endif // DECEPTICON_OBS_METRICS_HH
