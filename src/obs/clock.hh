/**
 * @file
 * Injectable time source for the telemetry layer. Spans and metrics
 * timestamps come from a Clock so production code reads a steady
 * wall-clock while tests drive a deterministic FakeClock — the same
 * inversion the attack exploits on its victims (the trace channel is
 * nothing but somebody else's timestamps).
 */

#ifndef DECEPTICON_OBS_CLOCK_HH
#define DECEPTICON_OBS_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace decepticon::obs {

/** Monotonic microsecond time source. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Microseconds since an arbitrary fixed origin (monotone). */
    virtual std::uint64_t nowMicros() = 0;
};

/** std::chrono::steady_clock, rebased to the first construction. */
class SteadyClock : public Clock
{
  public:
    SteadyClock() : origin_(std::chrono::steady_clock::now()) {}

    std::uint64_t
    nowMicros() override
    {
        const auto delta = std::chrono::steady_clock::now() - origin_;
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(delta)
                .count());
    }

  private:
    std::chrono::steady_clock::time_point origin_;
};

/** Deterministic clock for tests: time moves only via advance(). */
class FakeClock : public Clock
{
  public:
    explicit FakeClock(std::uint64_t start_micros = 0)
        : now_(start_micros)
    {
    }

    std::uint64_t nowMicros() override { return now_; }

    void advance(std::uint64_t micros) { now_ += micros; }

  private:
    std::uint64_t now_;
};

} // namespace decepticon::obs

#endif // DECEPTICON_OBS_CLOCK_HH
