/**
 * @file
 * Pipeline watchdog — the SLO half of obs v2. A Watchdog is ticked
 * periodically (phase boundaries in a single run, a timer thread in a
 * campaign); each tick snapshots the registry's counters and compares
 * them with the previous snapshot:
 *
 *  - **stall**: a stage with open spans (stage.<s>.enter >
 *    stage.<s>.exit) whose exit counter has made no progress for
 *    `stallTicks` consecutive ticks;
 *  - **fault_spike**: a corrupted/attempts counter-pair delta rate
 *    above `faultRateMax`;
 *  - **abstain_anomaly**: the fusion insufficient-evidence rate over
 *    identification attempts above `abstainRateMax`.
 *
 * Each finding is flagged once at the threshold crossing (re-flagged
 * only after recovery), published as obs.watchdog.* counters on the
 * watched registry, and accumulated into a WatchdogReport that
 * core::AttackRunReport embeds. A healthy run yields zero findings.
 */

#ifndef DECEPTICON_OBS_WATCHDOG_HH
#define DECEPTICON_OBS_WATCHDOG_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace decepticon::obs {

/** SLO bands. Defaults are deliberately loose: the watchdog exists to
 *  catch pathology, not to grade ordinary jitter. */
struct WatchdogConfig
{
    /** Consecutive no-progress ticks (with open spans) = stall. */
    int stallTicks = 2;
    /** Max corrupted/attempts delta rate before a fault spike. */
    double faultRateMax = 0.75;
    /** Max insufficient-evidence/identify delta rate before an
     *  abstain anomaly. */
    double abstainRateMax = 0.5;
    /** Minimum attempts in a delta window before rates are judged
     *  (avoids 1-of-1 spikes). */
    std::uint64_t minSamples = 4;
};

/** One SLO violation. */
struct WatchdogFinding
{
    /** "stall" | "fault_spike" | "abstain_anomaly". */
    std::string kind;
    /** Stage or counter-pair the finding is about. */
    std::string subject;
    /** Observed value (stalled ticks or rate). */
    double value = 0.0;
    /** The configured band it crossed. */
    double threshold = 0.0;
    /** Human-readable one-liner. */
    std::string message;
};

/** Accumulated verdict over a run; embedded in AttackRunReport. */
struct WatchdogReport
{
    std::uint64_t ticks = 0;
    std::vector<WatchdogFinding> findings;

    bool healthy() const { return findings.empty(); }

    /** {"ticks":N,"healthy":b,"findings":[{...},...]} */
    void toJson(std::ostream &out) const;
};

/** Snapshot-diffing SLO monitor. Not thread-safe: tick from one
 *  place (the registry it reads *is* thread-safe). */
class Watchdog
{
  public:
    explicit Watchdog(WatchdogConfig config = {});

    /** Watch an extra corrupted/attempts counter pair. */
    void addFaultBand(const std::string &corruptedCounter,
                      const std::string &attemptsCounter,
                      const std::string &subject);

    /**
     * Snapshot `registry`, diff against the previous tick, flag
     * violations. Publishes obs.watchdog.{ticks,stalls,fault_spikes,
     * abstain_anomalies,findings} counters back onto `registry`.
     * Returns findings new in THIS tick.
     */
    std::vector<WatchdogFinding> tick(MetricsRegistry &registry);

    const WatchdogConfig &config() const { return config_; }
    const WatchdogReport &report() const { return report_; }

  private:
    struct FaultBand
    {
        std::string corrupted;
        std::string attempts;
        std::string subject;
        bool flagged = false;
    };

    struct StageState
    {
        int stalledTicks = 0;
        bool flagged = false;
    };

    WatchdogConfig config_;
    WatchdogReport report_;
    std::vector<FaultBand> bands_;
    std::map<std::string, StageState> stages_;
    std::map<std::string, std::uint64_t> prev_;
    bool havePrev_ = false;
    bool abstainFlagged_ = false;
};

} // namespace decepticon::obs

#endif // DECEPTICON_OBS_WATCHDOG_HH
