#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>

namespace decepticon::obs {

void
MetricsRegistry::add(const std::string &name, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = value;
}

void
MetricsRegistry::observe(const std::string &name, double value, double lo,
                         double hi, std::size_t bins)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, util::Histogram(lo, hi, bins)).first;
    it->second.add(value);
}

void
MetricsRegistry::observeLatency(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    latencies_[name].add(value);
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

bool
MetricsRegistry::hasCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.count(name) != 0;
}

bool
MetricsRegistry::hasGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_.count(name) != 0;
}

std::optional<util::Histogram>
MetricsRegistry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    if (it == histograms_.end())
        return std::nullopt;
    return it->second;
}

std::optional<LogHistogram>
MetricsRegistry::latency(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = latencies_.find(name);
    if (it == latencies_.end())
        return std::nullopt;
    return it->second;
}

std::map<std::string, std::uint64_t>
MetricsRegistry::counterSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

std::map<std::string, double>
MetricsRegistry::gaugeSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_;
}

std::map<std::string, LogHistogram>
MetricsRegistry::latencySnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return latencies_;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    latencies_.clear();
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace {

void
writeHistogram(std::ostream &out, const util::Histogram &h)
{
    out << "\"lo\":" << jsonNumber(h.lo) << ",\"hi\":" << jsonNumber(h.hi)
        << ",\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i)
        out << (i ? "," : "") << h.counts[i];
    out << "],\"total\":" << h.total() << ",\"underflow\":" << h.underflow
        << ",\"overflow\":" << h.overflow;
}

void
writeLatency(std::ostream &out, const LogHistogram &h)
{
    out << "\"p50\":" << jsonNumber(h.quantile(0.50))
        << ",\"p90\":" << jsonNumber(h.quantile(0.90))
        << ",\"p99\":" << jsonNumber(h.quantile(0.99))
        << ",\"mean\":" << jsonNumber(h.mean())
        << ",\"count\":" << h.total()
        << ",\"underflow\":" << h.underflow()
        << ",\"overflow\":" << h.overflow()
        << ",\"sum\":" << jsonNumber(h.sum()) << ",\"counts\":[";
    // Trailing empty buckets are elided; fromCounts zero-pads them back.
    const auto &counts = h.counts();
    std::size_t last = 0;
    for (std::size_t i = 0; i < counts.size(); ++i)
        if (counts[i] != 0)
            last = i + 1;
    for (std::size_t i = 0; i < last; ++i)
        out << (i ? "," : "") << counts[i];
    out << "]";
}

} // anonymous namespace

void
MetricsRegistry::exportJsonl(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, value] : counters_)
        out << "{\"type\":\"counter\",\"name\":" << jsonQuote(name)
            << ",\"value\":" << value << "}\n";
    for (const auto &[name, value] : gauges_)
        out << "{\"type\":\"gauge\",\"name\":" << jsonQuote(name)
            << ",\"value\":" << jsonNumber(value) << "}\n";
    for (const auto &[name, h] : histograms_) {
        out << "{\"type\":\"histogram\",\"name\":" << jsonQuote(name)
            << ",";
        writeHistogram(out, h);
        out << "}\n";
    }
    for (const auto &[name, h] : latencies_) {
        out << "{\"type\":\"latency\",\"name\":" << jsonQuote(name) << ",";
        writeLatency(out, h);
        out << "}\n";
    }
}

void
MetricsRegistry::exportJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        out << (first ? "" : ",") << jsonQuote(name) << ":" << value;
        first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges_) {
        out << (first ? "" : ",") << jsonQuote(name) << ":"
            << jsonNumber(value);
        first = false;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        out << (first ? "" : ",") << jsonQuote(name) << ":{";
        writeHistogram(out, h);
        out << "}";
        first = false;
    }
    out << "}";
    if (!latencies_.empty()) {
        out << ",\"latencies\":{";
        first = true;
        for (const auto &[name, h] : latencies_) {
            out << (first ? "" : ",") << jsonQuote(name) << ":{";
            writeLatency(out, h);
            out << "}";
            first = false;
        }
        out << "}";
    }
    out << "}\n";
}

} // namespace decepticon::obs
