#include "sched/sched.hh"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <memory>

#include "obs/obs.hh"

namespace decepticon::sched {

namespace {

/** Set while a thread is executing inside workerLoop. */
thread_local bool tl_inWorker = false;

} // anonymous namespace

std::size_t
hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
threadsFromSpec(const char *spec)
{
    if (spec == nullptr || *spec == '\0')
        return hardwareThreads();
    char *end = nullptr;
    const long v = std::strtol(spec, &end, 10);
    if (end == spec || v <= 0)
        return hardwareThreads();
    return std::min<std::size_t>(static_cast<std::size_t>(v), 512);
}

ThreadPool::ThreadPool(std::size_t threads)
    : size_(std::max<std::size_t>(1, threads))
{
    if (size_ == 1)
        return; // serial pool: the caller is the only lane
    shards_.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        shards_.push_back(std::make_unique<Shard>());
    workers_.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wakeMu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::inWorker()
{
    return tl_inWorker;
}

void
ThreadPool::submit(Task task)
{
    const std::size_t shard =
        nextShard_.fetch_add(1, std::memory_order_relaxed) % size_;
    {
        std::lock_guard<std::mutex> lock(shards_[shard]->mu);
        shards_[shard]->q.push_back(std::move(task));
    }
    const std::size_t depth =
        pending_.fetch_add(1, std::memory_order_release) + 1;
    obs::gaugeSet("sched.queue_depth", static_cast<double>(depth));
    // Distribution, not just last value: the p99 of queue depth is
    // what tells a campaign its pool is undersized.
    obs::observeLatency("sched.queue_depth", static_cast<double>(depth));
    wake_.notify_one();
}

bool
ThreadPool::popOrSteal(std::size_t self, Task &out)
{
    {
        Shard &own = *shards_[self];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.q.empty()) {
            out = std::move(own.q.front());
            own.q.pop_front();
            pending_.fetch_sub(1, std::memory_order_acquire);
            return true;
        }
    }
    for (std::size_t k = 1; k < size_; ++k) {
        Shard &victim = *shards_[(self + k) % size_];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (!victim.q.empty()) {
            out = std::move(victim.q.back());
            victim.q.pop_back();
            pending_.fetch_sub(1, std::memory_order_acquire);
            steals_.fetch_add(1, std::memory_order_relaxed);
            obs::count("sched.steals");
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    tl_inWorker = true;
    for (;;) {
        Task task;
        if (popOrSteal(self, task)) {
            {
                auto sp = obs::span("sched.task", "sched");
                task();
            }
            tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
            obs::count("sched.tasks");
            continue;
        }
        std::unique_lock<std::mutex> lock(wakeMu_);
        if (stop_)
            return;
        wake_.wait(lock, [this] {
            return stop_ || pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_)
            return;
    }
}

void
ThreadPool::parallelForRange(std::size_t n, std::size_t grain,
                             const RangeFn &fn)
{
    if (n == 0)
        return;
    const bool autoGrain = grain == 0;
    if (autoGrain)
        grain = std::max<std::size_t>(1, n / (4 * size_));

    // Inline when parallelism cannot help (serial pool, one chunk) or
    // must not be used (nested call from a pool worker — running
    // inline keeps nesting deadlock-free and, per the determinism
    // contract, cannot change results). An explicit grain still gets
    // the exact (n, grain) partition so chunk-ordered reductions see
    // the same boundaries at every pool size; auto grain makes no
    // boundary promise and runs as one chunk.
    if (size_ == 1 || n <= grain || tl_inWorker) {
        if (autoGrain || n <= grain) {
            fn(0, n);
        } else {
            for (std::size_t begin = 0; begin < n; begin += grain)
                fn(begin, std::min(n, begin + grain));
        }
        return;
    }

    const std::size_t chunks = (n + grain - 1) / grain;

    /** Join state shared by the caller and this call's chunk tasks. */
    struct ForJoin
    {
        std::mutex mu;
        std::condition_variable done;
        std::size_t remaining = 0;
        std::exception_ptr err;
    };
    auto join = std::make_shared<ForJoin>();
    join->remaining = chunks;

    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * grain;
        const std::size_t end = std::min(n, begin + grain);
        submit([join, begin, end, &fn] {
            try {
                fn(begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lock(join->mu);
                if (!join->err)
                    join->err = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(join->mu);
            if (--join->remaining == 0)
                join->done.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(join->mu);
    join->done.wait(lock, [&] { return join->remaining == 0; });
    if (join->err)
        std::rethrow_exception(join->err);
}

void
ThreadPool::parallelFor(std::size_t n, std::size_t grain, const IndexFn &fn)
{
    parallelForRange(n, grain, [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
    });
}

namespace {

std::mutex g_poolMu;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool &
poolLocked()
{
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(
            threadsFromSpec(std::getenv("DECEPTICON_THREADS")));
    return *g_pool;
}

} // anonymous namespace

ThreadPool &
pool()
{
    std::lock_guard<std::mutex> lock(g_poolMu);
    return poolLocked();
}

std::size_t
configuredThreads()
{
    return pool().size();
}

void
setThreads(std::size_t n)
{
    std::unique_ptr<ThreadPool> replacement = std::make_unique<ThreadPool>(
        n == 0 ? threadsFromSpec(std::getenv("DECEPTICON_THREADS")) : n);
    std::lock_guard<std::mutex> lock(g_poolMu);
    g_pool = std::move(replacement); // old pool joins its workers here
    obs::gaugeSet("sched.threads", static_cast<double>(g_pool->size()));
}

void
parallelFor(std::size_t n, std::size_t grain, const IndexFn &fn)
{
    pool().parallelFor(n, grain, fn);
}

void
parallelForRange(std::size_t n, std::size_t grain, const RangeFn &fn)
{
    pool().parallelForRange(n, grain, fn);
}

} // namespace decepticon::sched
