/**
 * @file
 * Deterministic parallel execution engine. A fixed-size work-stealing
 * ThreadPool with a blocking parallelFor primitive drives every
 * embarrassingly parallel stage of the attack pipeline (per-model
 * trace capture, fingerprint dataset generation, batch inference,
 * extraction planning/decoding, robustness sweeps).
 *
 * The determinism contract (DESIGN.md §9): results must be
 * bit-identical regardless of thread count or scheduling order.
 * parallelFor guarantees its half — the index space is partitioned
 * into chunks that depend only on (n, grain), never on the pool size
 * or timing — and callers guarantee theirs:
 *
 *  - each index writes only its own output slot;
 *  - any randomness is derived per task, either from a seed schedule
 *    drawn serially before the loop (preserving a legacy stream) or
 *    via util::Rng::split(task_index) (a pure function of generator
 *    state and index, no draw-order dependence);
 *  - reductions combine per-chunk partials in chunk order.
 *
 * Pool size comes from DECEPTICON_THREADS (default: hardware
 * concurrency). Size 1 is the exact legacy serial path: no worker
 * threads exist and parallelFor degenerates to the plain loop.
 */

#ifndef DECEPTICON_SCHED_SCHED_HH
#define DECEPTICON_SCHED_SCHED_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace decepticon::sched {

/** Loop body over one index. */
using IndexFn = std::function<void(std::size_t)>;

/** Loop body over a contiguous index range [begin, end). */
using RangeFn = std::function<void(std::size_t, std::size_t)>;

/** Hardware concurrency, never reported as 0. */
std::size_t hardwareThreads();

/**
 * Parse a DECEPTICON_THREADS-style spec. Null, empty, zero, or
 * unparseable specs resolve to hardwareThreads(); anything else is
 * clamped to [1, 512].
 */
std::size_t threadsFromSpec(const char *spec);

/**
 * Fixed-size work-stealing pool. Each worker owns a deque; tasks are
 * submitted round-robin; an idle worker pops its own deque from the
 * front and steals from the back of a victim's. Instrumented with the
 * obs layer: "sched.tasks" / "sched.steals" counters, a
 * "sched.queue_depth" gauge, and a per-task span when tracing is on.
 */
class ThreadPool
{
  public:
    /** @param threads total lanes; 1 = serial, no workers spawned. */
    explicit ThreadPool(std::size_t threads);

    /** Joins all workers. @pre no parallelFor is in flight. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of lanes (worker threads, or 1 for the serial pool). */
    std::size_t size() const { return size_; }

    /**
     * Run fn(begin, end) over a chunked partition of [0, n) and block
     * until every chunk finished. With an explicit grain, chunk
     * boundaries are a pure function of (n, grain) — never of the pool
     * size or whether chunks run inline — so a conforming body (see
     * file header) produces identical results at any thread count,
     * including chunk-ordered reductions.
     *
     * @param grain max indices per chunk; 0 picks a default that
     *        yields ~4 chunks per lane (boundaries then depend on the
     *        pool size, so grain 0 is only for bodies whose chunking
     *        is unobservable — each index filling its own slot). When
     *        n <= grain, the pool is serial, or the caller is itself a
     *        pool worker (nested parallelism), chunks run inline on
     *        the caller.
     *
     * The first exception thrown by any chunk is rethrown on the
     * caller after all chunks have completed.
     */
    void parallelForRange(std::size_t n, std::size_t grain,
                          const RangeFn &fn);

    /** parallelForRange with a per-index body. */
    void parallelFor(std::size_t n, std::size_t grain, const IndexFn &fn);

    /** Tasks executed by pool workers (lifetime total). */
    std::uint64_t taskCount() const
    {
        return tasksExecuted_.load(std::memory_order_relaxed);
    }

    /** Tasks a worker obtained from another worker's deque. */
    std::uint64_t stealCount() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /** Whether the calling thread is a worker of any ThreadPool. */
    static bool inWorker();

  private:
    using Task = std::function<void()>;

    /** One worker's deque (own pops at front, thieves at back). */
    struct Shard
    {
        std::mutex mu;
        std::deque<Task> q;
    };

    void submit(Task task);
    bool popOrSteal(std::size_t self, Task &out);
    void workerLoop(std::size_t self);

    std::size_t size_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> workers_;

    std::mutex wakeMu_;
    std::condition_variable wake_;
    bool stop_ = false;

    std::atomic<std::size_t> nextShard_{0};
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::uint64_t> tasksExecuted_{0};
    std::atomic<std::uint64_t> steals_{0};
};

/**
 * The process-wide pool, created on first use with
 * threadsFromSpec(getenv("DECEPTICON_THREADS")) lanes.
 */
ThreadPool &pool();

/** Lanes of the global pool (creates it on first call). */
std::size_t configuredThreads();

/**
 * Rebuild the global pool with n lanes (0 = re-read the environment).
 * Test/bench hook for exercising several thread counts in one
 * process. @pre no parallelFor is in flight on the global pool.
 */
void setThreads(std::size_t n);

/** parallelFor on the global pool. */
void parallelFor(std::size_t n, std::size_t grain, const IndexFn &fn);

/** parallelForRange on the global pool. */
void parallelForRange(std::size_t n, std::size_t grain, const RangeFn &fn);

} // namespace decepticon::sched

#endif // DECEPTICON_SCHED_SCHED_HH
