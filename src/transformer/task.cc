#include "transformer/task.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace decepticon::transformer {

Dataset
Dataset::fraction(double f) const
{
    Dataset out;
    out.numClasses = numClasses;
    const auto n = static_cast<std::size_t>(
        std::max(1.0, f * static_cast<double>(examples.size())));
    out.examples.assign(examples.begin(),
                        examples.begin() +
                            std::min(n, examples.size()));
    return out;
}

namespace {

/** Build one row-stochastic matrix row as a cumulative distribution. */
std::vector<double>
makeCumulativeRow(util::Rng &rng, std::size_t vocab, double sharpness)
{
    std::vector<double> logits(vocab);
    for (auto &v : logits)
        v = rng.gaussian() * sharpness;
    double mx = logits[0];
    for (double v : logits)
        mx = std::max(mx, v);
    double sum = 0.0;
    for (auto &v : logits) {
        v = std::exp(v - mx);
        sum += v;
    }
    std::vector<double> cum(vocab);
    double acc = 0.0;
    for (std::size_t i = 0; i < vocab; ++i) {
        acc += logits[i] / sum;
        cum[i] = acc;
    }
    cum.back() = 1.0;
    return cum;
}

int
sampleFromCumulative(const std::vector<double> &cum, double u)
{
    auto it = std::lower_bound(cum.begin(), cum.end(), u);
    if (it == cum.end())
        --it;
    return static_cast<int>(it - cum.begin());
}

} // anonymous namespace

MarkovTask::MarkovTask(std::size_t vocab, std::size_t num_classes,
                       std::size_t seq_len, std::uint64_t seed,
                       double sharpness)
    : vocab_(vocab), numClasses_(num_classes), seqLen_(seq_len)
{
    assert(vocab > 1 && num_classes > 1 && seq_len > 1);
    util::Rng rng(seed);
    cumulative_.resize(num_classes);
    initial_.resize(num_classes);
    for (std::size_t c = 0; c < num_classes; ++c) {
        initial_[c] = makeCumulativeRow(rng, vocab, sharpness);
        cumulative_[c].reserve(vocab * vocab);
        for (std::size_t t = 0; t < vocab; ++t) {
            auto row = makeCumulativeRow(rng, vocab, sharpness);
            cumulative_[c].insert(cumulative_[c].end(), row.begin(),
                                  row.end());
        }
    }
}

Dataset
MarkovTask::sample(std::size_t n, std::uint64_t seed) const
{
    util::Rng rng(seed);
    Dataset ds;
    ds.numClasses = numClasses_;
    ds.examples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = i % numClasses_;
        Example ex;
        ex.label = static_cast<int>(c);
        ex.tokens.resize(seqLen_);
        ex.tokens[0] = sampleFromCumulative(initial_[c], rng.uniform());
        for (std::size_t t = 1; t < seqLen_; ++t) {
            const auto prev = static_cast<std::size_t>(ex.tokens[t - 1]);
            const double u = rng.uniform();
            const double *row_begin = cumulative_[c].data() + prev * vocab_;
            const double *row_end = row_begin + vocab_;
            const double *it = std::lower_bound(row_begin, row_end, u);
            if (it == row_end)
                --it;
            ex.tokens[t] = static_cast<int>(it - row_begin);
        }
        ds.examples.push_back(std::move(ex));
    }
    rng.shuffle(ds.examples);
    return ds;
}

MaskedTokenTask::MaskedTokenTask(std::size_t vocab, std::size_t seq_len,
                                 std::uint64_t seed, bool mask_front,
                                 double sharpness)
    : vocab_(vocab),
      seqLen_(seq_len),
      maskFront_(mask_front),
      // A two-chain corpus gives the token stream some diversity; the
      // chain label is discarded.
      corpus_(vocab, 2, seq_len, seed, sharpness)
{
    assert(vocab > 1 && seq_len > 1);
}

Dataset
MaskedTokenTask::sample(std::size_t n, std::uint64_t seed) const
{
    Dataset corpus_ds = corpus_.sample(n, seed);
    Dataset out;
    out.numClasses = vocab_;
    out.examples.reserve(n);
    for (auto &ex : corpus_ds.examples) {
        const std::size_t pos = maskFront_ ? 0 : seqLen_ - 1;
        Example masked;
        masked.tokens = std::move(ex.tokens);
        masked.label = masked.tokens[pos];
        masked.tokens[pos] = maskToken();
        out.examples.push_back(std::move(masked));
    }
    return out;
}

} // namespace decepticon::transformer
