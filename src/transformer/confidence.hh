/**
 * @file
 * Attention-head confidence (Voita et al.): the mean of each head's
 * per-query maximum attention weight. The paper (Sec. 8, Fig. 20) uses
 * the Pearson correlation of head confidences between a pre-trained
 * model and a fine-tuned model to locate pruned heads and confirm
 * lineage.
 */

#ifndef DECEPTICON_TRANSFORMER_CONFIDENCE_HH
#define DECEPTICON_TRANSFORMER_CONFIDENCE_HH

#include <vector>

#include "transformer/classifier.hh"
#include "transformer/task.hh"

namespace decepticon::transformer {

/**
 * Per-(layer, head) confidence matrix averaged over a sample set.
 * Entry [l][h] is the mean over sequences and query positions of the
 * maximum attention probability of head h in layer l. Pruned heads
 * report 0.
 */
std::vector<std::vector<double>>
headConfidence(TransformerClassifier &model,
               const std::vector<Example> &samples);

/** Flatten a confidence matrix row-major into one series. */
std::vector<double>
flattenConfidence(const std::vector<std::vector<double>> &conf);

} // namespace decepticon::transformer

#endif // DECEPTICON_TRANSFORMER_CONFIDENCE_HH
