/**
 * @file
 * One transformer encoder block (multi-head self-attention + position-
 * wise feed-forward, post-LayerNorm residuals) with a hand-written
 * backward pass and support for head pruning (paper Sec. 8).
 */

#ifndef DECEPTICON_TRANSFORMER_ENCODER_HH
#define DECEPTICON_TRANSFORMER_ENCODER_HH

#include <string>
#include <vector>

#include "nn/activations.hh"
#include "nn/layernorm.hh"
#include "nn/linear.hh"
#include "nn/param.hh"
#include "transformer/config.hh"

namespace decepticon::transformer {

/**
 * BERT-style encoder layer operating on a single (T, D) sequence.
 * Backward must immediately follow the forward it corresponds to
 * (per-sequence gradient accumulation); batches are formed by
 * accumulating gradients across sequences before an optimizer step.
 */
class EncoderLayer
{
  public:
    EncoderLayer(const std::string &name, const TransformerConfig &cfg,
                 util::Rng &rng);

    /** Forward one sequence of activations (T, hidden). */
    tensor::Tensor forward(const tensor::Tensor &x);

    /** Backward; accumulates parameter grads, returns d-input. */
    tensor::Tensor backward(const tensor::Tensor &dy);

    /** All trainable parameters of this block. */
    nn::ParamRefs params();

    /**
     * Enable/disable attention heads. Pruned heads contribute zeros to
     * the attention output (their weights are dead), matching head
     * pruning as deployed after fine-tuning.
     */
    void setActiveHeads(std::vector<bool> active);

    const std::vector<bool> &activeHeads() const { return activeHeads_; }

    std::size_t numHeads() const { return numHeads_; }

    /**
     * Attention probability matrix (T, T) of head h from the most
     * recent forward pass. Used for head-confidence analysis.
     */
    const tensor::Tensor &attentionProbs(std::size_t h) const;

  private:
    std::size_t hidden_;
    std::size_t numHeads_;
    std::size_t headDim_;
    bool causal_;

    nn::Linear wq_, wk_, wv_, wo_;
    nn::LayerNorm ln1_, ln2_;
    nn::Linear ff1_, ff2_; ///< GELU is fused into ff1's epilogue

    std::vector<bool> activeHeads_;

    // Per-sequence caches for backward.
    tensor::Tensor cachedQ_, cachedK_, cachedV_;
    std::vector<tensor::Tensor> cachedProbs_; // per head, (T, T)
};

/** Copy head columns [h*dh, (h+1)*dh) of a (T, D) tensor into (T, dh). */
tensor::Tensor sliceHead(const tensor::Tensor &x, std::size_t h,
                         std::size_t head_dim);

/** Add a (T, dh) block back into head h's columns of a (T, D) tensor. */
void scatterHead(tensor::Tensor &dst, const tensor::Tensor &block,
                 std::size_t h, std::size_t head_dim);

} // namespace decepticon::transformer

#endif // DECEPTICON_TRANSFORMER_ENCODER_HH
