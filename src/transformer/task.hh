/**
 * @file
 * Synthetic sequence-classification tasks standing in for the paper's
 * GLUE/SQuAD workloads. Each task is a family of per-class Markov
 * chains over a shared vocabulary; classification amounts to inferring
 * which chain generated a sequence. The shared vocabulary is what lets
 * a pre-trained backbone transfer across tasks, mirroring real
 * transfer learning.
 */

#ifndef DECEPTICON_TRANSFORMER_TASK_HH
#define DECEPTICON_TRANSFORMER_TASK_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace decepticon::transformer {

/** One labeled sequence. */
struct Example
{
    std::vector<int> tokens;
    int label = 0;
};

/** A labeled dataset with a known class count. */
struct Dataset
{
    std::vector<Example> examples;
    std::size_t numClasses = 2;

    std::size_t size() const { return examples.size(); }

    /** First max(1, fraction * size) examples (Fig. 17 sweeps). */
    Dataset fraction(double f) const;
};

/**
 * Markov-chain classification task. Class c's sequences follow a
 * class-specific token transition matrix; sharper matrices make the
 * task easier.
 */
class MarkovTask
{
  public:
    /**
     * @param vocab vocabulary size shared with the model
     * @param num_classes number of generating chains
     * @param seq_len sequence length of every example
     * @param seed determines the chains (task identity)
     * @param sharpness concentration of the transition rows (>0);
     *        higher is easier
     */
    MarkovTask(std::size_t vocab, std::size_t num_classes,
               std::size_t seq_len, std::uint64_t seed,
               double sharpness = 3.0);

    /** Sample a dataset of n examples with balanced classes. */
    Dataset sample(std::size_t n, std::uint64_t seed) const;

    std::size_t numClasses() const { return numClasses_; }
    std::size_t seqLen() const { return seqLen_; }
    std::size_t vocab() const { return vocab_; }

  private:
    std::size_t vocab_;
    std::size_t numClasses_;
    std::size_t seqLen_;
    // transitions_[c] is a (vocab x vocab) row-stochastic matrix,
    // stored as cumulative rows for O(log V) sampling.
    std::vector<std::vector<double>> cumulative_;
    std::vector<std::vector<double>> initial_;
};

/**
 * Masked-token pre-training task: the scaled-down analog of BERT's
 * masked-language-model objective. Sequences are drawn from a Markov
 * corpus; the token at the pooling position is replaced with a
 * reserved [MASK] id and becomes the label, so the backbone must
 * learn the corpus' token statistics to solve it — exactly the kind
 * of task-agnostic representation transfer learning reuses.
 *
 * Models trained on this task need `modelVocab()` embeddings (the
 * corpus vocabulary plus the mask id) and `numClasses()` outputs.
 */
class MaskedTokenTask
{
  public:
    /**
     * @param vocab corpus vocabulary size (mask id is vocab)
     * @param seq_len sequence length of every example
     * @param seed corpus identity
     * @param mask_front mask the first token (encoder/CLS pooling) or
     *        the last token (decoder/last-token pooling)
     */
    MaskedTokenTask(std::size_t vocab, std::size_t seq_len,
                    std::uint64_t seed, bool mask_front = true,
                    double sharpness = 3.0);

    /** The reserved [MASK] token id. */
    int maskToken() const { return static_cast<int>(vocab_); }

    /** Embedding-table size a model needs: corpus vocab + [MASK]. */
    std::size_t modelVocab() const { return vocab_ + 1; }

    /** Output classes: the corpus vocabulary. */
    std::size_t numClasses() const { return vocab_; }

    /** Sample n masked examples. */
    Dataset sample(std::size_t n, std::uint64_t seed) const;

  private:
    std::size_t vocab_;
    std::size_t seqLen_;
    bool maskFront_;
    MarkovTask corpus_;
};

} // namespace decepticon::transformer

#endif // DECEPTICON_TRANSFORMER_TASK_HH
