/**
 * @file
 * End-to-end trainable transformer sequence classifier: token +
 * position embeddings, a stack of encoder blocks, first-token pooling,
 * and a task-specific linear head. This is the reproduction's stand-in
 * for BERT-style fine-tuned models: the backbone is the "pre-trained"
 * part that transfer learning reuses, the head is the task layer that
 * fine-tuning replaces (paper Sec. 4.1).
 */

#ifndef DECEPTICON_TRANSFORMER_CLASSIFIER_HH
#define DECEPTICON_TRANSFORMER_CLASSIFIER_HH

#include <memory>
#include <vector>

#include "nn/embedding.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "transformer/config.hh"
#include "transformer/encoder.hh"

namespace decepticon::transformer {

/** Trainable transformer classifier over token sequences. */
class TransformerClassifier
{
  public:
    /** Build with fresh random weights derived from the seed. */
    TransformerClassifier(const TransformerConfig &cfg, std::uint64_t seed);

    /** Deep copy (weights, config, head state). */
    TransformerClassifier(const TransformerClassifier &other);
    TransformerClassifier &operator=(const TransformerClassifier &) = delete;

    /** Class logits for one token sequence; shape (1, numClasses). */
    tensor::Tensor logits(const std::vector<int> &tokens);

    /** Argmax class prediction for one sequence. */
    int predict(const std::vector<int> &tokens);

    /**
     * Forward + loss + full backward for one (sequence, label) pair.
     * Accumulates gradients into every parameter; the caller batches
     * by invoking this repeatedly before an optimizer step.
     * @return the cross-entropy loss of this sample.
     */
    float lossAndBackward(const std::vector<int> &tokens, int label);

    /**
     * Gradient of the loss with respect to the embedding-layer output
     * (shape (T, hidden)), as used by HotFlip-style adversarial input
     * crafting. Parameter gradients accumulated as a side effect
     * should be cleared by the caller if it is not training.
     */
    tensor::Tensor embeddingGradient(const std::vector<int> &tokens,
                                     int label);

    /** Every trainable parameter (backbone + head). */
    nn::ParamRefs params();

    /** Backbone parameters only (embeddings + all encoders). */
    nn::ParamRefs backboneParams();

    /** Task-head parameters only. */
    nn::ParamRefs headParams();

    /** Parameters of one encoder layer. */
    nn::ParamRefs encoderParams(std::size_t layer);

    /** Encoder block access (head pruning, confidence probes). */
    EncoderLayer &encoder(std::size_t i) { return *encoders_[i]; }
    const EncoderLayer &encoder(std::size_t i) const
    {
        return *encoders_[i];
    }

    nn::Embedding &embedding() { return tokEmb_; }

    const TransformerConfig &config() const { return cfg_; }
    std::size_t numLayers() const { return encoders_.size(); }

    /** Copy all weights (backbone + head) from a same-shape model. */
    void copyWeightsFrom(const TransformerClassifier &other);

    /** Copy only the backbone (transfer-learning initialization). */
    void copyBackboneFrom(const TransformerClassifier &other);

    /** Copy the weights of a single encoder layer (layer freezing). */
    void copyEncoderFrom(const TransformerClassifier &other,
                         std::size_t layer);

    /**
     * Replace the task head with a fresh randomly initialized head of
     * num_classes outputs — the "newly added last layer" of
     * fine-tuning in the paper.
     */
    void resetHead(std::size_t num_classes, std::uint64_t seed);

  private:
    tensor::Tensor forwardBackbone(const std::vector<int> &tokens);
    tensor::Tensor backwardFromLogits(const tensor::Tensor &dlogits,
                                      std::size_t seq_len);

    TransformerConfig cfg_;
    util::Rng rng_; // must precede the members it initializes
    nn::Embedding tokEmb_;
    nn::Parameter posEmb_;
    std::vector<std::unique_ptr<EncoderLayer>> encoders_;
    std::unique_ptr<nn::Linear> head_;
    nn::SoftmaxCrossEntropy loss_;
};

/**
 * Argmax class for each sequence, computed in parallel on the sched
 * pool. Each worker chunk predicts on its own deep copy of the model
 * (forward caches make predict() non-const, but the prediction is a
 * pure function of the weights), so the result vector is identical to
 * a serial predict() loop at any thread count.
 */
std::vector<int>
predictBatch(const TransformerClassifier &model,
             const std::vector<std::vector<int>> &sequences);

} // namespace decepticon::transformer

#endif // DECEPTICON_TRANSFORMER_CLASSIFIER_HH
