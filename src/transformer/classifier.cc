#include "transformer/classifier.hh"

#include <string>

#include "sched/sched.hh"

namespace decepticon::transformer {

TransformerClassifier::TransformerClassifier(const TransformerConfig &cfg,
                                             std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      tokEmb_("tok_emb", cfg.vocab, cfg.hidden, rng_),
      posEmb_("pos_emb", {cfg.maxSeqLen, cfg.hidden})
{
    assert(cfg.valid());
    posEmb_.value.fillGaussian(rng_, 0.02f);
    encoders_.reserve(cfg.numLayers);
    for (std::size_t i = 0; i < cfg.numLayers; ++i) {
        encoders_.push_back(std::make_unique<EncoderLayer>(
            "encoder" + std::to_string(i), cfg, rng_));
    }
    head_ = std::make_unique<nn::Linear>("head", cfg.hidden,
                                         cfg.numClasses, rng_);
}

TransformerClassifier::TransformerClassifier(
    const TransformerClassifier &other)
    : TransformerClassifier(other.cfg_, /*seed=*/0)
{
    copyWeightsFrom(other);
    for (std::size_t i = 0; i < encoders_.size(); ++i)
        encoders_[i]->setActiveHeads(other.encoders_[i]->activeHeads());
}

tensor::Tensor
TransformerClassifier::forwardBackbone(const std::vector<int> &tokens)
{
    assert(!tokens.empty() && tokens.size() <= cfg_.maxSeqLen);
    tensor::Tensor x = tokEmb_.forward(tokens);
    const std::size_t t = tokens.size();
    for (std::size_t i = 0; i < t; ++i) {
        float *row = x.data() + i * cfg_.hidden;
        const float *pos = posEmb_.value.data() + i * cfg_.hidden;
        for (std::size_t j = 0; j < cfg_.hidden; ++j)
            row[j] += pos[j];
    }
    for (auto &enc : encoders_)
        x = enc->forward(x);
    return x;
}

tensor::Tensor
TransformerClassifier::logits(const std::vector<int> &tokens)
{
    tensor::Tensor x = forwardBackbone(tokens);
    // Encoder models pool the first ([CLS]-style) token; decoder
    // (causal) models pool the last token, whose state has seen the
    // whole sequence.
    const std::size_t pool = cfg_.causal ? tokens.size() - 1 : 0;
    tensor::Tensor pooled({1, cfg_.hidden});
    for (std::size_t j = 0; j < cfg_.hidden; ++j)
        pooled[j] = x.at(pool, j);
    return head_->forward(pooled);
}

int
TransformerClassifier::predict(const std::vector<int> &tokens)
{
    return nn::argmaxRows(logits(tokens))[0];
}

tensor::Tensor
TransformerClassifier::backwardFromLogits(const tensor::Tensor &dlogits,
                                          std::size_t seq_len)
{
    tensor::Tensor dpooled = head_->backward(dlogits);
    tensor::Tensor dx({seq_len, cfg_.hidden});
    const std::size_t pool = cfg_.causal ? seq_len - 1 : 0;
    for (std::size_t j = 0; j < cfg_.hidden; ++j)
        dx.at(pool, j) = dpooled[j];
    for (auto it = encoders_.rbegin(); it != encoders_.rend(); ++it)
        dx = (*it)->backward(dx);

    // dx is now the gradient at the embedding-sum output.
    for (std::size_t i = 0; i < seq_len; ++i) {
        const float *src = dx.data() + i * cfg_.hidden;
        float *dst = posEmb_.grad.data() + i * cfg_.hidden;
        for (std::size_t j = 0; j < cfg_.hidden; ++j)
            dst[j] += src[j];
    }
    tokEmb_.backward(dx);
    return dx;
}

float
TransformerClassifier::lossAndBackward(const std::vector<int> &tokens,
                                       int label)
{
    tensor::Tensor lg = logits(tokens);
    const float loss = loss_.forward(lg, {label});
    backwardFromLogits(loss_.backward(), tokens.size());
    return loss;
}

tensor::Tensor
TransformerClassifier::embeddingGradient(const std::vector<int> &tokens,
                                         int label)
{
    tensor::Tensor lg = logits(tokens);
    loss_.forward(lg, {label});
    return backwardFromLogits(loss_.backward(), tokens.size());
}

nn::ParamRefs
TransformerClassifier::params()
{
    nn::ParamRefs out = backboneParams();
    auto hp = headParams();
    out.insert(out.end(), hp.begin(), hp.end());
    return out;
}

nn::ParamRefs
TransformerClassifier::backboneParams()
{
    nn::ParamRefs out;
    auto ep = tokEmb_.params();
    out.insert(out.end(), ep.begin(), ep.end());
    out.push_back(&posEmb_);
    for (auto &enc : encoders_) {
        auto ps = enc->params();
        out.insert(out.end(), ps.begin(), ps.end());
    }
    return out;
}

nn::ParamRefs
TransformerClassifier::headParams()
{
    return head_->params();
}

nn::ParamRefs
TransformerClassifier::encoderParams(std::size_t layer)
{
    assert(layer < encoders_.size());
    return encoders_[layer]->params();
}

void
TransformerClassifier::copyWeightsFrom(const TransformerClassifier &other)
{
    auto *self = this;
    auto *src = const_cast<TransformerClassifier *>(&other);
    copyBackboneFrom(other);
    if (head_->outFeatures() != src->head_->outFeatures()) {
        cfg_.numClasses = src->cfg_.numClasses;
        head_ = std::make_unique<nn::Linear>("head", cfg_.hidden,
                                             cfg_.numClasses, rng_);
    }
    auto dst_head = self->headParams();
    auto src_head = src->headParams();
    for (std::size_t i = 0; i < dst_head.size(); ++i)
        dst_head[i]->value = src_head[i]->value;
}

void
TransformerClassifier::copyBackboneFrom(const TransformerClassifier &other)
{
    auto *src = const_cast<TransformerClassifier *>(&other);
    auto dst = backboneParams();
    auto sp = src->backboneParams();
    assert(dst.size() == sp.size());
    for (std::size_t i = 0; i < dst.size(); ++i) {
        assert(dst[i]->size() == sp[i]->size());
        dst[i]->value = sp[i]->value;
    }
}

void
TransformerClassifier::copyEncoderFrom(const TransformerClassifier &other,
                                       std::size_t layer)
{
    auto *src = const_cast<TransformerClassifier *>(&other);
    auto dst = encoderParams(layer);
    auto sp = src->encoderParams(layer);
    assert(dst.size() == sp.size());
    for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i]->value = sp[i]->value;
}

void
TransformerClassifier::resetHead(std::size_t num_classes, std::uint64_t seed)
{
    cfg_.numClasses = num_classes;
    util::Rng rng(seed);
    head_ = std::make_unique<nn::Linear>("head", cfg_.hidden, num_classes,
                                         rng);
}

std::vector<int>
predictBatch(const TransformerClassifier &model,
             const std::vector<std::vector<int>> &sequences)
{
    std::vector<int> out(sequences.size());
    sched::parallelForRange(
        sequences.size(), 0, [&](std::size_t begin, std::size_t end) {
            TransformerClassifier local(model); // private forward caches
            for (std::size_t i = begin; i < end; ++i)
                out[i] = local.predict(sequences[i]);
        });
    return out;
}

} // namespace decepticon::transformer
