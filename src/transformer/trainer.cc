#include "transformer/trainer.hh"

#include <algorithm>
#include <cassert>

#include "nn/optim.hh"
#include "tensor/kernels/arena.hh"
#include "util/rng.hh"

namespace decepticon::transformer {

namespace {

std::vector<EpochStats>
runTraining(TransformerClassifier &model, const Dataset &full_data,
            const TrainOptions &opts, const nn::ParamRefs &trainable_body,
            const nn::ParamRefs &trainable_head)
{
    const Dataset data = full_data.fraction(opts.dataFraction);
    assert(!data.examples.empty());

    nn::Adam optim(trainable_body, opts.lr, 0.9f, 0.999f, 1e-8f,
                   opts.weightDecay);
    nn::Adam head_optim(trainable_head, opts.lr * opts.headLrMultiplier,
                        0.9f, 0.999f, 1e-8f, opts.weightDecay);
    util::Rng rng(opts.shuffleSeed);

    std::vector<std::size_t> order(data.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    std::vector<EpochStats> history;
    // Gradients may have been accumulated by earlier probing calls on
    // this model (e.g. adversarial gradient queries); clear everything,
    // including frozen parameters we never step.
    nn::zeroGrads(model.params());
    for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
        rng.shuffle(order);
        EpochStats stats;
        double loss_sum = 0.0;
        std::size_t correct = 0;
        std::size_t in_batch = 0;
        for (std::size_t idx : order) {
            const Example &ex = data.examples[idx];
            loss_sum += model.lossAndBackward(ex.tokens, ex.label);
            ++in_batch;
            if (in_batch == opts.batchSize) {
                optim.step();
                head_optim.step();
                nn::zeroGrads(model.params());
                tensor::kernels::recycleActivations();
                in_batch = 0;
            }
        }
        if (in_batch > 0) {
            optim.step();
            head_optim.step();
            nn::zeroGrads(model.params());
            tensor::kernels::recycleActivations();
        }
        for (const Example &ex : data.examples) {
            if (model.predict(ex.tokens) == ex.label)
                ++correct;
        }
        stats.meanLoss =
            static_cast<float>(loss_sum / static_cast<double>(data.size()));
        stats.trainAccuracy = static_cast<double>(correct) /
                              static_cast<double>(data.size());
        history.push_back(stats);
        if (opts.epochCallback)
            opts.epochCallback(epoch);
    }
    return history;
}

} // anonymous namespace

std::vector<EpochStats>
Trainer::train(TransformerClassifier &model, const Dataset &data,
               const TrainOptions &opts)
{
    return runTraining(model, data, opts, model.backboneParams(),
                       model.headParams());
}

std::vector<EpochStats>
Trainer::fineTune(TransformerClassifier &model, const Dataset &data,
                  const TrainOptions &opts)
{
    assert(opts.freezeFirstN <= model.numLayers());

    // Trainable set: embeddings + encoders [freezeFirstN, L) + head.
    nn::ParamRefs trainable;
    auto emb = model.embedding().params();
    trainable.insert(trainable.end(), emb.begin(), emb.end());
    for (std::size_t l = opts.freezeFirstN; l < model.numLayers(); ++l) {
        auto ps = model.encoderParams(l);
        trainable.insert(trainable.end(), ps.begin(), ps.end());
    }
    return runTraining(model, data, opts, trainable, model.headParams());
}

EvalResult
Trainer::evaluate(TransformerClassifier &model, const Dataset &data)
{
    EvalResult res;
    res.predictions.reserve(data.size());
    std::vector<int> labels;
    labels.reserve(data.size());
    std::size_t correct = 0;
    for (const Example &ex : data.examples) {
        const int pred = model.predict(ex.tokens);
        res.predictions.push_back(pred);
        labels.push_back(ex.label);
        if (pred == ex.label)
            ++correct;
    }
    res.accuracy = data.size() == 0
                       ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(data.size());
    res.macroF1 = macroF1(res.predictions, labels, data.numClasses);
    return res;
}

double
Trainer::agreement(const std::vector<int> &a, const std::vector<int> &b)
{
    assert(a.size() == b.size());
    if (a.empty())
        return 0.0;
    std::size_t same = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] == b[i])
            ++same;
    }
    return static_cast<double>(same) / static_cast<double>(a.size());
}

double
macroF1(const std::vector<int> &predictions, const std::vector<int> &labels,
        std::size_t num_classes)
{
    assert(predictions.size() == labels.size());
    if (predictions.empty() || num_classes == 0)
        return 0.0;
    double f1_sum = 0.0;
    for (std::size_t c = 0; c < num_classes; ++c) {
        std::size_t tp = 0, fp = 0, fn = 0;
        for (std::size_t i = 0; i < predictions.size(); ++i) {
            const bool pred_c = predictions[i] == static_cast<int>(c);
            const bool true_c = labels[i] == static_cast<int>(c);
            if (pred_c && true_c)
                ++tp;
            else if (pred_c)
                ++fp;
            else if (true_c)
                ++fn;
        }
        const double denom = 2.0 * tp + fp + fn;
        f1_sum += denom == 0.0 ? 0.0 : 2.0 * tp / denom;
    }
    return f1_sum / static_cast<double>(num_classes);
}

} // namespace decepticon::transformer
