/**
 * @file
 * Training/fine-tuning driver and evaluation metrics for
 * TransformerClassifier. Fine-tuning follows the regime the paper
 * characterizes: small learning rate, weight decay, few epochs, a
 * freshly initialized task head, and optionally frozen early layers.
 */

#ifndef DECEPTICON_TRANSFORMER_TRAINER_HH
#define DECEPTICON_TRANSFORMER_TRAINER_HH

#include <functional>
#include <vector>

#include "transformer/classifier.hh"
#include "transformer/task.hh"

namespace decepticon::transformer {

/** Knobs of a training run. */
struct TrainOptions
{
    std::size_t epochs = 3;
    float lr = 1e-3f;
    /**
     * Learning-rate multiplier for the task head. Fine-tuning
     * typically trains the fresh head aggressively while nudging the
     * backbone with a small rate — the regime whose tiny backbone
     * deltas the paper exploits.
     */
    float headLrMultiplier = 1.0f;
    std::size_t batchSize = 8;
    float weightDecay = 0.01f;
    /** Encoder layers [0, freezeFirstN) are excluded from updates. */
    std::size_t freezeFirstN = 0;
    /** Use only this leading fraction of the training data. */
    double dataFraction = 1.0;
    std::uint64_t shuffleSeed = 1;
    /** Invoked after each epoch (snapshotting for Fig. 6). */
    std::function<void(std::size_t epoch)> epochCallback;
};

/** Per-epoch training statistics. */
struct EpochStats
{
    float meanLoss = 0.0f;
    double trainAccuracy = 0.0;
};

/** Evaluation output. */
struct EvalResult
{
    double accuracy = 0.0;
    double macroF1 = 0.0;
    std::vector<int> predictions;
};

/** Stateless training/eval entry points. */
class Trainer
{
  public:
    /**
     * Train every parameter of the model on the dataset (used for
     * pre-training a backbone).
     */
    static std::vector<EpochStats> train(TransformerClassifier &model,
                                         const Dataset &data,
                                         const TrainOptions &opts);

    /**
     * Fine-tune: trains backbone (minus frozen layers) + head.
     * Callers reset the head for a new task beforehand via
     * TransformerClassifier::resetHead().
     */
    static std::vector<EpochStats> fineTune(TransformerClassifier &model,
                                            const Dataset &data,
                                            const TrainOptions &opts);

    /** Accuracy / macro-F1 / raw predictions over a dataset. */
    static EvalResult evaluate(TransformerClassifier &model,
                               const Dataset &data);

    /** Fraction of positions where two prediction vectors agree. */
    static double agreement(const std::vector<int> &a,
                            const std::vector<int> &b);
};

/** Macro-averaged F1 over the label set [0, num_classes). */
double macroF1(const std::vector<int> &predictions,
               const std::vector<int> &labels, std::size_t num_classes);

} // namespace decepticon::transformer

#endif // DECEPTICON_TRANSFORMER_TRAINER_HH
