#include "transformer/confidence.hh"

#include <cassert>

namespace decepticon::transformer {

std::vector<std::vector<double>>
headConfidence(TransformerClassifier &model,
               const std::vector<Example> &samples)
{
    const std::size_t layers = model.numLayers();
    const std::size_t heads = model.config().numHeads;
    std::vector<std::vector<double>> conf(
        layers, std::vector<double>(heads, 0.0));
    if (samples.empty())
        return conf;

    std::vector<std::vector<std::size_t>> counts(
        layers, std::vector<std::size_t>(heads, 0));

    for (const Example &ex : samples) {
        // Forward pass populates per-layer attention caches.
        model.logits(ex.tokens);
        for (std::size_t l = 0; l < layers; ++l) {
            const EncoderLayer &enc = model.encoder(l);
            for (std::size_t h = 0; h < heads; ++h) {
                if (!enc.activeHeads()[h])
                    continue;
                const tensor::Tensor &p = enc.attentionProbs(h);
                const std::size_t t = p.dim(0);
                for (std::size_t i = 0; i < t; ++i) {
                    const float *row = p.data() + i * t;
                    float mx = row[0];
                    for (std::size_t j = 1; j < t; ++j)
                        mx = std::max(mx, row[j]);
                    conf[l][h] += mx;
                    ++counts[l][h];
                }
            }
        }
    }
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t h = 0; h < heads; ++h) {
            if (counts[l][h] > 0)
                conf[l][h] /= static_cast<double>(counts[l][h]);
        }
    }
    return conf;
}

std::vector<double>
flattenConfidence(const std::vector<std::vector<double>> &conf)
{
    std::vector<double> flat;
    for (const auto &row : conf)
        flat.insert(flat.end(), row.begin(), row.end());
    return flat;
}

} // namespace decepticon::transformer
