#include "transformer/encoder.hh"

#include <cmath>

namespace decepticon::transformer {

tensor::Tensor
sliceHead(const tensor::Tensor &x, std::size_t h, std::size_t head_dim)
{
    assert(x.rank() == 2);
    const std::size_t t = x.dim(0), d = x.dim(1);
    assert((h + 1) * head_dim <= d);
    tensor::Tensor out({t, head_dim});
    for (std::size_t i = 0; i < t; ++i) {
        const float *src = x.data() + i * d + h * head_dim;
        float *dst = out.data() + i * head_dim;
        for (std::size_t j = 0; j < head_dim; ++j)
            dst[j] = src[j];
    }
    return out;
}

void
scatterHead(tensor::Tensor &dst, const tensor::Tensor &block, std::size_t h,
            std::size_t head_dim)
{
    assert(dst.rank() == 2 && block.rank() == 2);
    const std::size_t t = dst.dim(0), d = dst.dim(1);
    assert(block.dim(0) == t && block.dim(1) == head_dim);
    for (std::size_t i = 0; i < t; ++i) {
        float *out = dst.data() + i * d + h * head_dim;
        const float *src = block.data() + i * head_dim;
        for (std::size_t j = 0; j < head_dim; ++j)
            out[j] += src[j];
    }
}

EncoderLayer::EncoderLayer(const std::string &name,
                           const TransformerConfig &cfg, util::Rng &rng)
    : hidden_(cfg.hidden),
      numHeads_(cfg.numHeads),
      headDim_(cfg.headDim()),
      causal_(cfg.causal),
      wq_(name + ".attn.q", cfg.hidden, cfg.hidden, rng),
      wk_(name + ".attn.k", cfg.hidden, cfg.hidden, rng),
      wv_(name + ".attn.v", cfg.hidden, cfg.hidden, rng),
      wo_(name + ".attn.out", cfg.hidden, cfg.hidden, rng),
      ln1_(name + ".ln1", cfg.hidden),
      ln2_(name + ".ln2", cfg.hidden),
      ff1_(name + ".ffn.1", cfg.hidden, cfg.ffnDim, rng),
      ff2_(name + ".ffn.2", cfg.ffnDim, cfg.hidden, rng),
      activeHeads_(cfg.numHeads, true)
{
    assert(cfg.valid());
}

tensor::Tensor
EncoderLayer::forward(const tensor::Tensor &x)
{
    assert(x.rank() == 2 && x.dim(1) == hidden_);
    const std::size_t t = x.dim(0);

    cachedQ_ = wq_.forward(x);
    cachedK_ = wk_.forward(x);
    cachedV_ = wv_.forward(x);
    cachedProbs_.assign(numHeads_, tensor::Tensor());

    tensor::Tensor attn_cat({t, hidden_});
    const float scale = 1.0f / std::sqrt(static_cast<float>(headDim_));
    for (std::size_t h = 0; h < numHeads_; ++h) {
        if (!activeHeads_[h])
            continue;
        tensor::Tensor qh = sliceHead(cachedQ_, h, headDim_);
        tensor::Tensor kh = sliceHead(cachedK_, h, headDim_);
        tensor::Tensor vh = sliceHead(cachedV_, h, headDim_);
        tensor::Tensor scores = tensor::matmulTransposeB(qh, kh);
        tensor::scaleInPlace(scores, scale);
        if (causal_) {
            // Masked self-attention (decoder block): position i may
            // not attend to the future. Masked probabilities are
            // exactly zero, so the softmax backward needs no change.
            for (std::size_t i = 0; i < t; ++i) {
                float *row = scores.data() + i * t;
                for (std::size_t j = i + 1; j < t; ++j)
                    row[j] = -1e30f;
            }
        }
        cachedProbs_[h] = tensor::softmaxRows(scores);
        tensor::Tensor oh = tensor::matmul(cachedProbs_[h], vh);
        scatterHead(attn_cat, oh, h, headDim_);
    }

    tensor::Tensor ao = wo_.forward(attn_cat);
    tensor::Tensor r1 = tensor::add(x, ao);
    tensor::Tensor h1 = ln1_.forward(r1);

    tensor::Tensor f = ff2_.forward(act_.forward(ff1_.forward(h1)));
    tensor::Tensor r2 = tensor::add(h1, f);
    return ln2_.forward(r2);
}

tensor::Tensor
EncoderLayer::backward(const tensor::Tensor &dy)
{
    const std::size_t t = dy.dim(0);

    tensor::Tensor dr2 = ln2_.backward(dy);
    // r2 = h1 + f: gradient flows unchanged to both addends.
    tensor::Tensor dh1_ffn =
        ff1_.backward(act_.backward(ff2_.backward(dr2)));
    tensor::Tensor dh1 = tensor::add(dr2, dh1_ffn);

    tensor::Tensor dr1 = ln1_.backward(dh1);
    tensor::Tensor d_attn_cat = wo_.backward(dr1);

    tensor::Tensor dq({t, hidden_});
    tensor::Tensor dk({t, hidden_});
    tensor::Tensor dv({t, hidden_});
    const float scale = 1.0f / std::sqrt(static_cast<float>(headDim_));

    for (std::size_t h = 0; h < numHeads_; ++h) {
        if (!activeHeads_[h])
            continue;
        tensor::Tensor doh = sliceHead(d_attn_cat, h, headDim_);
        tensor::Tensor qh = sliceHead(cachedQ_, h, headDim_);
        tensor::Tensor kh = sliceHead(cachedK_, h, headDim_);
        tensor::Tensor vh = sliceHead(cachedV_, h, headDim_);
        const tensor::Tensor &p = cachedProbs_[h];

        // oh = P vh.
        tensor::Tensor dp = tensor::matmulTransposeB(doh, vh);
        tensor::Tensor dvh = tensor::matmulTransposeA(p, doh);

        // Softmax backward per row: ds = P .* (dp - rowsum(dp .* P)).
        tensor::Tensor ds({t, t});
        for (std::size_t i = 0; i < t; ++i) {
            const float *prow = p.data() + i * t;
            const float *dprow = dp.data() + i * t;
            float dot = 0.0f;
            for (std::size_t j = 0; j < t; ++j)
                dot += dprow[j] * prow[j];
            float *dsrow = ds.data() + i * t;
            for (std::size_t j = 0; j < t; ++j)
                dsrow[j] = prow[j] * (dprow[j] - dot);
        }
        tensor::scaleInPlace(ds, scale);

        // scores = qh kh^T (pre-scale): dq = ds kh, dk = ds^T qh.
        tensor::Tensor dqh = tensor::matmul(ds, kh);
        tensor::Tensor dkh = tensor::matmulTransposeA(ds, qh);

        scatterHead(dq, dqh, h, headDim_);
        scatterHead(dk, dkh, h, headDim_);
        scatterHead(dv, dvh, h, headDim_);
    }

    tensor::Tensor dx = wq_.backward(dq);
    dx = tensor::add(dx, wk_.backward(dk));
    dx = tensor::add(dx, wv_.backward(dv));
    dx = tensor::add(dx, dr1); // residual path r1 = x + ao
    return dx;
}

nn::ParamRefs
EncoderLayer::params()
{
    nn::ParamRefs out;
    for (auto *group : {&wq_, &wk_, &wv_, &wo_, &ff1_, &ff2_}) {
        auto ps = group->params();
        out.insert(out.end(), ps.begin(), ps.end());
    }
    for (auto *ln : {&ln1_, &ln2_}) {
        auto ps = ln->params();
        out.insert(out.end(), ps.begin(), ps.end());
    }
    return out;
}

void
EncoderLayer::setActiveHeads(std::vector<bool> active)
{
    assert(active.size() == numHeads_);
    activeHeads_ = std::move(active);
}

const tensor::Tensor &
EncoderLayer::attentionProbs(std::size_t h) const
{
    assert(h < cachedProbs_.size());
    return cachedProbs_[h];
}

} // namespace decepticon::transformer
