#include "transformer/encoder.hh"

#include <cmath>

#include "tensor/kernels/kernels.hh"

namespace decepticon::transformer {

namespace kernels = tensor::kernels;

tensor::Tensor
sliceHead(const tensor::Tensor &x, std::size_t h, std::size_t head_dim)
{
    assert(x.rank() == 2);
    const std::size_t t = x.dim(0), d = x.dim(1);
    assert((h + 1) * head_dim <= d);
    tensor::Tensor out({t, head_dim});
    for (std::size_t i = 0; i < t; ++i) {
        const float *src = x.data() + i * d + h * head_dim;
        float *dst = out.data() + i * head_dim;
        for (std::size_t j = 0; j < head_dim; ++j)
            dst[j] = src[j];
    }
    return out;
}

void
scatterHead(tensor::Tensor &dst, const tensor::Tensor &block, std::size_t h,
            std::size_t head_dim)
{
    assert(dst.rank() == 2 && block.rank() == 2);
    const std::size_t t = dst.dim(0), d = dst.dim(1);
    assert(block.dim(0) == t && block.dim(1) == head_dim);
    for (std::size_t i = 0; i < t; ++i) {
        float *out = dst.data() + i * d + h * head_dim;
        const float *src = block.data() + i * head_dim;
        for (std::size_t j = 0; j < head_dim; ++j)
            out[j] += src[j];
    }
}

EncoderLayer::EncoderLayer(const std::string &name,
                           const TransformerConfig &cfg, util::Rng &rng)
    : hidden_(cfg.hidden),
      numHeads_(cfg.numHeads),
      headDim_(cfg.headDim()),
      causal_(cfg.causal),
      wq_(name + ".attn.q", cfg.hidden, cfg.hidden, rng),
      wk_(name + ".attn.k", cfg.hidden, cfg.hidden, rng),
      wv_(name + ".attn.v", cfg.hidden, cfg.hidden, rng),
      wo_(name + ".attn.out", cfg.hidden, cfg.hidden, rng),
      ln1_(name + ".ln1", cfg.hidden),
      ln2_(name + ".ln2", cfg.hidden),
      ff1_(name + ".ffn.1", cfg.hidden, cfg.ffnDim, rng),
      ff2_(name + ".ffn.2", cfg.ffnDim, cfg.hidden, rng),
      activeHeads_(cfg.numHeads, true)
{
    assert(cfg.valid());
    ff1_.setActivation(tensor::kernels::Act::Gelu);
}

tensor::Tensor
EncoderLayer::forward(const tensor::Tensor &x)
{
    assert(x.rank() == 2 && x.dim(1) == hidden_);
    const std::size_t t = x.dim(0);

    cachedQ_ = wq_.forward(x);
    cachedK_ = wk_.forward(x);
    cachedV_ = wv_.forward(x);
    cachedProbs_.assign(numHeads_, tensor::Tensor());

    // Per-head attention runs on column slices of the packed Q/K/V
    // matrices through the strided-GEMM interface (lda = hidden), so
    // no head is ever copied out; the context GEMM writes its result
    // straight into head h's columns of attn_cat (ldc = hidden).
    // Pruned heads leave their zero-initialized columns untouched.
    tensor::Tensor attn_cat({t, hidden_});
    const float scale = 1.0f / std::sqrt(static_cast<float>(headDim_));
    for (std::size_t h = 0; h < numHeads_; ++h) {
        if (!activeHeads_[h])
            continue;
        tensor::Tensor scores({t, t});
        kernels::GemmCall sc;
        sc.n = t;
        sc.m = t;
        sc.k = headDim_;
        sc.a = cachedQ_.data() + h * headDim_;
        sc.lda = hidden_;
        sc.b = cachedK_.data() + h * headDim_;
        sc.ldb = hidden_;
        sc.c = scores.data();
        kernels::gemm(kernels::Trans::NT, sc);
        tensor::scaleInPlace(scores, scale);
        if (causal_) {
            // Masked self-attention (decoder block): position i may
            // not attend to the future. Masked probabilities are
            // exactly zero, so the softmax backward needs no change.
            for (std::size_t i = 0; i < t; ++i) {
                float *row = scores.data() + i * t;
                for (std::size_t j = i + 1; j < t; ++j)
                    row[j] = -1e30f;
            }
        }
        cachedProbs_[h] = tensor::softmaxRows(scores);
        kernels::GemmCall ctx;
        ctx.n = t;
        ctx.m = headDim_;
        ctx.k = t;
        ctx.a = cachedProbs_[h].data();
        ctx.b = cachedV_.data() + h * headDim_;
        ctx.ldb = hidden_;
        ctx.c = attn_cat.data() + h * headDim_;
        ctx.ldc = hidden_;
        kernels::gemm(kernels::Trans::NN, ctx);
    }

    tensor::Tensor ao = wo_.forward(attn_cat);
    tensor::Tensor r1 = tensor::add(x, ao);
    tensor::Tensor h1 = ln1_.forward(r1);

    tensor::Tensor f = ff2_.forward(ff1_.forward(h1));
    tensor::Tensor r2 = tensor::add(h1, f);
    return ln2_.forward(r2);
}

tensor::Tensor
EncoderLayer::backward(const tensor::Tensor &dy)
{
    const std::size_t t = dy.dim(0);

    tensor::Tensor dr2 = ln2_.backward(dy);
    // r2 = h1 + f: gradient flows unchanged to both addends.
    tensor::Tensor dh1_ffn = ff1_.backward(ff2_.backward(dr2));
    tensor::Tensor dh1 = tensor::add(dr2, dh1_ffn);

    tensor::Tensor dr1 = ln1_.backward(dh1);
    tensor::Tensor d_attn_cat = wo_.backward(dr1);

    // Head gradients mirror the forward slicing: every per-head GEMM
    // reads head columns in place (lda/ldb = hidden) and the dq/dk/dv
    // results land directly in their head's columns (ldc = hidden);
    // the columns of pruned heads stay zero.
    tensor::Tensor dq({t, hidden_});
    tensor::Tensor dk({t, hidden_});
    tensor::Tensor dv({t, hidden_});
    const float scale = 1.0f / std::sqrt(static_cast<float>(headDim_));

    for (std::size_t h = 0; h < numHeads_; ++h) {
        if (!activeHeads_[h])
            continue;
        const tensor::Tensor &p = cachedProbs_[h];
        const std::size_t off = h * headDim_;

        // oh = P vh: dp = doh vh^T, dvh = P^T doh.
        tensor::Tensor dp({t, t});
        kernels::GemmCall dpc;
        dpc.n = t;
        dpc.m = t;
        dpc.k = headDim_;
        dpc.a = d_attn_cat.data() + off;
        dpc.lda = hidden_;
        dpc.b = cachedV_.data() + off;
        dpc.ldb = hidden_;
        dpc.c = dp.data();
        kernels::gemm(kernels::Trans::NT, dpc);

        kernels::GemmCall dvc;
        dvc.n = t;
        dvc.m = headDim_;
        dvc.k = t;
        dvc.a = p.data();
        dvc.b = d_attn_cat.data() + off;
        dvc.ldb = hidden_;
        dvc.c = dv.data() + off;
        dvc.ldc = hidden_;
        kernels::gemm(kernels::Trans::TN, dvc);

        // Softmax backward per row: ds = P .* (dp - rowsum(dp .* P)).
        tensor::Tensor ds({t, t});
        for (std::size_t i = 0; i < t; ++i) {
            const float *prow = p.data() + i * t;
            const float *dprow = dp.data() + i * t;
            float dot = 0.0f;
            for (std::size_t j = 0; j < t; ++j)
                dot += dprow[j] * prow[j];
            float *dsrow = ds.data() + i * t;
            for (std::size_t j = 0; j < t; ++j)
                dsrow[j] = prow[j] * (dprow[j] - dot);
        }
        tensor::scaleInPlace(ds, scale);

        // scores = qh kh^T (pre-scale): dq = ds kh, dk = ds^T qh.
        kernels::GemmCall dqc;
        dqc.n = t;
        dqc.m = headDim_;
        dqc.k = t;
        dqc.a = ds.data();
        dqc.b = cachedK_.data() + off;
        dqc.ldb = hidden_;
        dqc.c = dq.data() + off;
        dqc.ldc = hidden_;
        kernels::gemm(kernels::Trans::NN, dqc);

        kernels::GemmCall dkc;
        dkc.n = t;
        dkc.m = headDim_;
        dkc.k = t;
        dkc.a = ds.data();
        dkc.b = cachedQ_.data() + off;
        dkc.ldb = hidden_;
        dkc.c = dk.data() + off;
        dkc.ldc = hidden_;
        kernels::gemm(kernels::Trans::TN, dkc);
    }

    tensor::Tensor dx = wq_.backward(dq);
    dx = tensor::add(dx, wk_.backward(dk));
    dx = tensor::add(dx, wv_.backward(dv));
    dx = tensor::add(dx, dr1); // residual path r1 = x + ao
    return dx;
}

nn::ParamRefs
EncoderLayer::params()
{
    nn::ParamRefs out;
    for (auto *group : {&wq_, &wk_, &wv_, &wo_, &ff1_, &ff2_}) {
        auto ps = group->params();
        out.insert(out.end(), ps.begin(), ps.end());
    }
    for (auto *ln : {&ln1_, &ln2_}) {
        auto ps = ln->params();
        out.insert(out.end(), ps.begin(), ps.end());
    }
    return out;
}

void
EncoderLayer::setActiveHeads(std::vector<bool> active)
{
    assert(active.size() == numHeads_);
    activeHeads_ = std::move(active);
}

const tensor::Tensor &
EncoderLayer::attentionProbs(std::size_t h) const
{
    assert(h < cachedProbs_.size());
    return cachedProbs_[h];
}

} // namespace decepticon::transformer
