/**
 * @file
 * Architecture configuration for the trainable transformer classifier.
 * Presets mirror the BERT family's size ladder (tiny/mini/small/base/
 * large) scaled down so real pre-training and fine-tuning run on one
 * CPU core; the *ratios* between presets (layer count, hidden size)
 * match the real family so fingerprint experiments see the same
 * structural differences the paper exploits.
 */

#ifndef DECEPTICON_TRANSFORMER_CONFIG_HH
#define DECEPTICON_TRANSFORMER_CONFIG_HH

#include <cstddef>
#include <string>

namespace decepticon::transformer {

/** Hyper-parameters of a TransformerClassifier. */
struct TransformerConfig
{
    std::size_t vocab = 64;
    std::size_t maxSeqLen = 16;
    std::size_t hidden = 32;
    std::size_t numLayers = 2;
    std::size_t numHeads = 2;
    std::size_t ffnDim = 64;
    std::size_t numClasses = 2;
    /**
     * Decoder-style (GPT-2-like) masked self-attention: position i
     * attends only to positions <= i, and the classifier pools the
     * last token instead of the first (paper Sec. 2.2: "decoders are
     * similar to encoders, except the masked self-attention").
     */
    bool causal = false;

    /** Hidden size per attention head. */
    std::size_t headDim() const { return hidden / numHeads; }

    /** Sanity-check divisibility and non-zero sizes. */
    bool
    valid() const
    {
        return vocab > 0 && maxSeqLen > 0 && hidden > 0 && numLayers > 0 &&
               numHeads > 0 && ffnDim > 0 && numClasses > 0 &&
               hidden % numHeads == 0;
    }
};

/** Scaled-down analog of BERT-tiny (2 layers). */
TransformerConfig inline
makeTinyConfig()
{
    TransformerConfig c;
    c.vocab = 64;
    c.maxSeqLen = 16;
    c.hidden = 16;
    c.numLayers = 2;
    c.numHeads = 2;
    c.ffnDim = 32;
    return c;
}

/** Scaled-down analog of BERT-mini (4 layers). */
TransformerConfig inline
makeMiniConfig()
{
    TransformerConfig c;
    c.vocab = 64;
    c.maxSeqLen = 16;
    c.hidden = 32;
    c.numLayers = 4;
    c.numHeads = 2;
    c.ffnDim = 64;
    return c;
}

/** Scaled-down analog of BERT-base (12 layers, 12:16 hidden ratio). */
TransformerConfig inline
makeBaseConfig()
{
    TransformerConfig c;
    c.vocab = 64;
    c.maxSeqLen = 16;
    c.hidden = 48;
    c.numLayers = 6;
    c.numHeads = 4;
    c.ffnDim = 96;
    return c;
}

/** Scaled-down decoder-only analog of GPT-2. */
TransformerConfig inline
makeGpt2Config()
{
    TransformerConfig c = makeMiniConfig();
    c.causal = true;
    return c;
}

} // namespace decepticon::transformer

#endif // DECEPTICON_TRANSFORMER_CONFIG_HH
