#include "campaign/cache.hh"

#include <cassert>
#include <utility>

namespace decepticon::campaign {

FingerprintCache::FingerprintCache(CacheOptions opts) : opts_(opts)
{
}

void
FingerprintCache::touch(Entry &entry, const std::string &key)
{
    lru_.erase(entry.lruIt);
    lru_.push_front(key);
    entry.lruIt = lru_.begin();
}

CacheLookup
FingerprintCache::lookup(const std::string &key, std::size_t tick)
{
    CacheLookup result;
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return result;
    }

    Entry &entry = it->second;
    touch(entry, key);
    assert(tick >= entry.identityTick && "ticks are queue positions");
    result.identity = entry.identity;
    if (tick - entry.identityTick > opts_.identityTtl) {
        ++stats_.stale;
        result.outcome = CacheOutcome::Stale;
        return result;
    }

    ++stats_.hits;
    result.outcome = CacheOutcome::Hit;
    if (entry.clone && tick - entry.cloneTick <= opts_.cloneTtl) {
        result.clone = entry.clone;
        result.cloneFresh = true;
    }
    return result;
}

void
FingerprintCache::storeIdentity(const std::string &key,
                                const std::string &identity,
                                std::size_t tick)
{
    if (opts_.capacity == 0)
        return;

    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        Entry &entry = it->second;
        if (entry.identity != identity && entry.clone) {
            // The cached clone descends from a parent this signature
            // no longer resolves to — stale-invalidate it.
            entry.clone.reset();
            ++stats_.invalidations;
        }
        entry.identity = identity;
        entry.identityTick = tick;
        touch(entry, key);
        return;
    }

    if (entries_.size() >= opts_.capacity) {
        const std::string victim = lru_.back();
        lru_.pop_back();
        entries_.erase(victim);
        ++stats_.evictions;
    }
    lru_.push_front(key);
    Entry entry;
    entry.identity = identity;
    entry.identityTick = tick;
    entry.lruIt = lru_.begin();
    entries_.emplace(key, std::move(entry));
}

void
FingerprintCache::storeClone(
    const std::string &key,
    std::shared_ptr<const transformer::TransformerClassifier> clone,
    std::size_t tick)
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    it->second.clone = std::move(clone);
    it->second.cloneTick = tick;
}

void
FingerprintCache::invalidate(const std::string &key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    lru_.erase(it->second.lruIt);
    entries_.erase(it);
    ++stats_.invalidations;
}

} // namespace decepticon::campaign
