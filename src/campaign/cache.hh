/**
 * @file
 * Fingerprint→identity result cache for campaign runs. Serving fleets
 * reuse a handful of public pre-trained releases, so the expensive
 * level-1 classification of a victim whose software signature was
 * already attacked is usually wasted work: the cache keys resolved
 * identities (and, optionally, extracted clones) by signature and
 * lets the driver skip level-1 on a hit and level-2 when the cached
 * clone is still fresh.
 *
 * Time is logical: the campaign queue position is the clock tick, so
 * freshness decisions are a pure function of the queue and replay
 * bit-for-bit. Invalidation rules (DESIGN.md §14): identities expire
 * after identityTtl ticks (lookup reports Stale, forcing level-1
 * revalidation); a revalidation that flips the identity drops the
 * cached clone; clones expire after cloneTtl ticks but leave the
 * identity intact; capacity overflow evicts the least recently used
 * signature wholesale.
 */

#ifndef DECEPTICON_CAMPAIGN_CACHE_HH
#define DECEPTICON_CAMPAIGN_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "transformer/classifier.hh"

namespace decepticon::campaign {

/** Cache sizing and freshness knobs (ticks = queue positions). */
struct CacheOptions
{
    /** Max distinct signatures held; 0 disables the cache. */
    std::size_t capacity = 64;
    /** Ticks an identity stays valid before revalidation. */
    std::size_t identityTtl = 1024;
    /** Ticks a cached clone stays fresh enough to reuse. */
    std::size_t cloneTtl = 256;
};

/** Monotone cache health counters. */
struct CacheStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t stale = 0;
    std::size_t evictions = 0;
    std::size_t invalidations = 0;
};

/** What a lookup found. */
enum class CacheOutcome
{
    /** Signature never seen (or evicted): run level-1 from scratch. */
    Miss,
    /** Fresh identity: skip level-1. */
    Hit,
    /** Identity known but past its TTL: rerun level-1 to revalidate. */
    Stale,
};

/** Lookup result. */
struct CacheLookup
{
    CacheOutcome outcome = CacheOutcome::Miss;
    /** Cached identity (set on Hit and Stale). */
    std::string identity;
    /** Cached clone, or nullptr (set only on Hit with a live clone). */
    std::shared_ptr<const transformer::TransformerClassifier> clone;
    /** The clone above is within cloneTtl (level-2 skippable). */
    bool cloneFresh = false;
};

/** LRU fingerprint→identity cache. Not thread-safe: the campaign
 *  driver consults it serially in queue order (DESIGN §9 rule 3). */
class FingerprintCache
{
  public:
    explicit FingerprintCache(CacheOptions opts = {});

    /** Consult the cache; updates hit/miss/stale stats and LRU order. */
    CacheLookup lookup(const std::string &key, std::size_t tick);

    /**
     * Record a resolved identity. A revalidation that changes the
     * identity drops the cached clone (it descends from the wrong
     * parent) and counts an invalidation. May evict the LRU entry.
     */
    void storeIdentity(const std::string &key, const std::string &identity,
                       std::size_t tick);

    /** Attach an extracted clone to an existing entry (no-op when the
     *  signature is absent, e.g. already evicted). */
    void storeClone(
        const std::string &key,
        std::shared_ptr<const transformer::TransformerClassifier> clone,
        std::size_t tick);

    /** Drop one signature outright (counts an invalidation). */
    void invalidate(const std::string &key);

    const CacheStats &stats() const { return stats_; }
    std::size_t size() const { return entries_.size(); }
    const CacheOptions &options() const { return opts_; }

  private:
    struct Entry
    {
        std::string identity;
        std::size_t identityTick = 0;
        std::shared_ptr<const transformer::TransformerClassifier> clone;
        std::size_t cloneTick = 0;
        /** Position in lru_ (front = most recently used). */
        std::list<std::string>::iterator lruIt;
    };

    void touch(Entry &entry, const std::string &key);

    CacheOptions opts_;
    CacheStats stats_;
    std::unordered_map<std::string, Entry> entries_;
    std::list<std::string> lru_;
};

} // namespace decepticon::campaign

#endif // DECEPTICON_CAMPAIGN_CACHE_HH
