/**
 * @file
 * The attack-as-a-service campaign driver: dequeues victim sessions,
 * ingests their (possibly faulty) trace captures in parallel, runs
 * batched level-1 classification across victims, consults the
 * fingerprint result cache, extracts clones over the serial bit-probe
 * channel, and rolls the whole queue up into a core::CampaignReport.
 *
 * Batch pipeline (barrier points documented in DESIGN.md §14):
 *   S1 parallel ingest — trace generation, fault corruption, repair;
 *      pure per session, fans out on src/sched;
 *   S2 serial cache consult in queue order;
 *   S3 batched level-1 over the miss/stale sessions
 *      (Decepticon::identifyBatch: parallel rasterize + CNN — or
 *      parallel embed + indexed shortlist on large zoos — serial
 *      decision tail);
 *   S4 serial blackout verdicts (identifyFused abstains honestly);
 *   S5 serial cache update in queue order;
 *   S6 serial level-2 extraction (the bit-probe channel is stateful,
 *      DESIGN §9 rule 3) and rollup.
 * Every cross-session reduction happens in queue order, so the
 * resulting CampaignReport JSON is byte-identical at any lane count.
 */

#ifndef DECEPTICON_CAMPAIGN_CAMPAIGN_HH
#define DECEPTICON_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "core/campaign_report.hh"
#include "core/two_level.hh"
#include "zoo/session.hh"

namespace decepticon::campaign {

/** Campaign driver knobs. */
struct CampaignOptions
{
    /** Sessions ingested and classified per batch. */
    std::size_t batchSize = 32;
    /** Fingerprint result cache sizing and freshness. */
    CacheOptions cache;
    /** Level-2 extraction policy applied to every session. */
    extraction::ClonerOptions cloner;
    /** Run level-2 at all (off = identification-only campaign). */
    bool runLevel2 = true;
    /** Reuse a fresh cached clone instead of re-extracting. */
    bool reuseCachedClones = true;
    /** Give level-1 query-probe access to ambiguous victims. */
    bool useQueryProbes = true;
    /** Query-set size for the extraction stopping rule. */
    std::size_t querySetSize = 24;
    /** Architecture of the victims' (tiny) serving models; must match
     *  the candidates registered with the TwoLevelAttack. */
    transformer::TransformerConfig victimConfig;
    /** Campaign-level seed (query tasks, capture jitter). */
    std::uint64_t seed = 1;
    /** recordDropRate at traceFaultSeverity = 1 (linear scale). */
    double maxRecordDropRate = 0.35;
    /** truncateProbability at traceFaultSeverity = 1. */
    double maxTruncateProbability = 0.5;
};

/**
 * The cache key of a victim session: software signature + the
 * architecture dims the trace shape leaks. Two sessions with equal
 * keys are indistinguishable at the fingerprint layer, which is what
 * makes caching sound.
 */
std::string sessionCacheKey(const zoo::VictimSessionSpec &spec);

/** Multi-victim campaign driver over one prepared TwoLevelAttack. */
class CampaignDriver
{
  public:
    /**
     * @param attack prepared attack (candidates registered, prepare()
     *        already called); reused across every session
     * @param opts campaign knobs
     */
    CampaignDriver(core::TwoLevelAttack &attack, CampaignOptions opts);

    /** Run the whole queue; returns the campaign rollup. */
    core::CampaignReport run(
        const std::vector<zoo::VictimSessionSpec> &sessions);

    /** The cache (inspectable between runs; persists across run()). */
    const FingerprintCache &cache() const { return cache_; }

  private:
    core::TwoLevelAttack &attack_;
    CampaignOptions opts_;
    FingerprintCache cache_;
    /** Monotonic cache clock: one tick per session ever processed.
     *  Queue positions alone would rewind between run() calls. */
    std::uint64_t cacheClock_ = 0;
};

} // namespace decepticon::campaign

#endif // DECEPTICON_CAMPAIGN_CAMPAIGN_HH
