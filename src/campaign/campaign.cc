#include "campaign/campaign.hh"

#include <cassert>
#include <utility>

#include "fault/fault.hh"
#include "gpusim/trace_generator.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"
#include "trace/repair.hh"
#include "transformer/task.hh"
#include "util/rng.hh"

namespace decepticon::campaign {

std::string
sessionCacheKey(const zoo::VictimSessionSpec &spec)
{
    assert(spec.lineage != nullptr);
    return spec.lineage->signature.toString() + "/L" +
           std::to_string(spec.lineage->arch.numLayers) + "x" +
           std::to_string(spec.lineage->arch.hidden);
}

namespace {

/** S1 output: one session's repaired consensus trace. */
struct Ingest
{
    gpusim::KernelTrace consensus;
    bool hasTrace = false;
};

} // anonymous namespace

CampaignDriver::CampaignDriver(core::TwoLevelAttack &attack,
                               CampaignOptions opts)
    : attack_(attack), opts_(std::move(opts)), cache_(opts_.cache)
{
    assert(opts_.batchSize > 0);
}

core::CampaignReport
CampaignDriver::run(const std::vector<zoo::VictimSessionSpec> &sessions)
{
    core::CampaignReport report;
    const CacheStats stats_at_start = cache_.stats();

    auto campaign_span = obs::span("campaign.run", "campaign");
    campaign_span.arg("sessions",
                      static_cast<std::uint64_t>(sessions.size()));
    obs::Watchdog watchdog;
    if (obs::metricsEnabled())
        watchdog.tick(obs::metrics()); // baseline snapshot

    for (std::size_t batch_start = 0; batch_start < sessions.size();
         batch_start += opts_.batchSize) {
        const std::size_t batch_end = std::min(
            batch_start + opts_.batchSize, sessions.size());
        const std::size_t batch_n = batch_end - batch_start;
        const std::uint64_t t_batch = obs::clock().nowMicros();
        obs::StageTimer batch_timer("campaign_batch");

        // ---- S1: parallel ingest. Trace synthesis, fault corruption
        // and repair are pure per session (all randomness derives from
        // the session seed), so the jobs fill independent slots.
        std::vector<Ingest> ingest(batch_n);
        sched::parallelFor(batch_n, 1, [&](std::size_t j) {
            const zoo::VictimSessionSpec &spec =
                sessions[batch_start + j];
            if (spec.blackout)
                return;
            util::Rng rng(spec.seed);
            const gpusim::TraceGenerator gen(spec.lineage->signature);
            const gpusim::KernelTrace truth =
                gen.generate(spec.lineage->arch, rng.nextU64());
            if (spec.traceFaultSeverity > 0.0) {
                fault::FaultSpec fs;
                fs.recordDropRate =
                    opts_.maxRecordDropRate * spec.traceFaultSeverity;
                fs.recordDuplicateRate =
                    0.1 * spec.traceFaultSeverity;
                fs.truncateProbability = opts_.maxTruncateProbability *
                                         spec.traceFaultSeverity;
                fs.seed = spec.seed ^ 0xfa1ee7ULL;
                fault::FaultInjector injector(fs);
                std::vector<gpusim::KernelTrace> captures;
                captures.reserve(spec.captures);
                for (std::size_t c = 0; c < spec.captures; ++c)
                    captures.push_back(
                        injector.corruptTrace(truth, rng.nextU64()));
                ingest[j].consensus = trace::repairTraces(captures);
            } else {
                ingest[j].consensus = truth;
            }
            ingest[j].hasTrace = true;
        });

        // ---- S2: serial cache consult in queue order.
        std::vector<CacheLookup> looked(batch_n);
        std::vector<std::size_t> classify; // batch-local indices
        for (std::size_t j = 0; j < batch_n; ++j) {
            const zoo::VictimSessionSpec &spec =
                sessions[batch_start + j];
            if (!ingest[j].hasTrace)
                continue; // nothing captured, nothing to look up
            looked[j] = cache_.lookup(sessionCacheKey(spec),
                                      cacheClock_ + batch_start + j);
            if (looked[j].outcome != CacheOutcome::Hit)
                classify.push_back(j);
        }

        // ---- S3: batched level-1 over the misses and stale entries.
        std::vector<const gpusim::KernelTrace *> traces;
        std::vector<std::function<std::vector<bool>()>> hooks;
        traces.reserve(classify.size());
        hooks.reserve(classify.size());
        for (std::size_t j : classify) {
            const zoo::VictimSessionSpec &spec =
                sessions[batch_start + j];
            traces.push_back(&ingest[j].consensus);
            hooks.push_back(opts_.useQueryProbes
                                ? core::makeVictimQueryHook(
                                      spec.lineage->vocabProfile)
                                : std::function<std::vector<bool>()>{});
        }
        const std::vector<core::IdentificationResult> fresh =
            attack_.level1().identifyBatch(traces, hooks);

        // ---- S4: blackout sessions abstain through the fused path
        // (honest insufficient-evidence verdict, counted like any
        // other identification attempt).
        std::vector<core::IdentificationResult> idents(batch_n);
        for (std::size_t j = 0; j < batch_n; ++j) {
            const zoo::VictimSessionSpec &spec =
                sessions[batch_start + j];
            if (!spec.blackout)
                continue;
            idents[j] = attack_.level1().identifyFused(
                core::MultiChannelCapture{});
        }
        for (std::size_t k = 0; k < classify.size(); ++k)
            idents[classify[k]] = fresh[k];

        // ---- S5: serial cache update in queue order. A stale entry's
        // revalidation goes through storeIdentity too, which drops the
        // cached clone when the identity flipped.
        for (std::size_t j = 0; j < batch_n; ++j) {
            const zoo::VictimSessionSpec &spec =
                sessions[batch_start + j];
            if (!ingest[j].hasTrace ||
                looked[j].outcome == CacheOutcome::Hit)
                continue;
            if (!idents[j].insufficientEvidence &&
                !idents[j].pretrainedName.empty())
                cache_.storeIdentity(sessionCacheKey(spec),
                                     idents[j].pretrainedName,
                                     cacheClock_ + batch_start + j);
        }

        const std::uint64_t t_classified = obs::clock().nowMicros();
        // Ingest + classification ran batch-wide; amortize their wall
        // time evenly across the batch for per-victim attribution.
        const std::uint64_t shared_micros =
            (t_classified - t_batch) / batch_n;

        // ---- S6: serial level-2 + rollup, queue order (the bit-probe
        // channel is stateful; DESIGN §9 rule 3 keeps it serial).
        for (std::size_t j = 0; j < batch_n; ++j) {
            const zoo::VictimSessionSpec &spec =
                sessions[batch_start + j];
            const std::uint64_t t_session = obs::clock().nowMicros();
            obs::count("campaign.sessions");

            core::VictimOutcome out;
            out.index = spec.index;
            out.lineage = spec.lineage->name;
            out.blackout = spec.blackout;

            const bool cache_hit =
                ingest[j].hasTrace &&
                looked[j].outcome == CacheOutcome::Hit;
            if (cache_hit) {
                out.cacheHit = true;
                out.identifiedParent = looked[j].identity;
            } else if (!idents[j].insufficientEvidence) {
                out.identifiedParent = idents[j].pretrainedName;
            } else {
                out.abstained = true;
            }
            out.identityCorrect =
                !out.abstained &&
                out.identifiedParent == spec.lineage->pretrainedName;

            if (opts_.runLevel2 && !out.abstained) {
                const transformer::TransformerClassifier *pretrained =
                    attack_.candidateWeights(out.identifiedParent);
                if (cache_hit && looked[j].cloneFresh &&
                    opts_.reuseCachedClones) {
                    out.cloneReused = true;
                } else if (pretrained != nullptr) {
                    // The victim: the true lineage's weights behind a
                    // privately fine-tuned head, reachable only via
                    // the probe channel and its query API.
                    const transformer::TransformerClassifier *truth =
                        attack_.candidateWeights(spec.lineage->name);
                    assert(truth != nullptr &&
                           "queue lineages come from the pool");
                    transformer::TransformerClassifier victim(*truth);
                    victim.resetHead(spec.numClasses,
                                     spec.seed ^ 0x4eadULL);
                    const transformer::MarkovTask task(
                        opts_.victimConfig.vocab, spec.numClasses,
                        opts_.victimConfig.maxSeqLen,
                        opts_.seed ^ spec.seed, 4.0);
                    const transformer::Dataset query_set = task.sample(
                        opts_.querySetSize, spec.seed ^ 0x9e5ULL);
                    extraction::CloneResult cloned =
                        extraction::ModelCloner::extract(
                            victim, *pretrained, query_set.examples,
                            opts_.cloner);
                    out.cloned = cloned.clone != nullptr;
                    out.agreement =
                        cloned.agreementTrajectory.empty()
                            ? 0.0
                            : cloned.agreementTrajectory.back();
                    if (out.cloned && ingest[j].hasTrace)
                        cache_.storeClone(sessionCacheKey(spec),
                                          std::move(cloned.clone),
                                          cacheClock_ + batch_start + j);
                }
            }

            out.timeToCloneMicros =
                shared_micros +
                (obs::clock().nowMicros() - t_session);
            obs::observeLatency(
                "campaign.time_to_clone.micros",
                static_cast<double>(out.timeToCloneMicros));
            obs::flightRecord(obs::FlightEventKind::Verdict, "campaign",
                              out.abstained      ? "abstain"
                              : out.cloneReused  ? "clone_reused"
                              : out.cacheHit     ? "cache_hit"
                                                 : "identified",
                              static_cast<double>(spec.index));
            report.recordVictim(std::move(out));
        }

        report.totalMicros += obs::clock().nowMicros() - t_batch;
        if (obs::metricsEnabled())
            watchdog.tick(obs::metrics());
    }
    cacheClock_ += sessions.size();

    const CacheStats &stats_now = cache_.stats();
    report.cacheHits = stats_now.hits - stats_at_start.hits;
    report.cacheMisses = stats_now.misses - stats_at_start.misses;
    report.cacheStale = stats_now.stale - stats_at_start.stale;
    report.cacheEvictions =
        stats_now.evictions - stats_at_start.evictions;
    report.cacheInvalidations =
        stats_now.invalidations - stats_at_start.invalidations;
    report.watchdog = watchdog.report();
    campaign_span.arg("victims_per_sec", report.victimsPerSec());
    if (obs::metricsEnabled())
        report.toMetrics(obs::metrics());
    return report;
}

} // namespace decepticon::campaign
