/**
 * @file
 * Adversarial-input attack (paper Sec. 6.2 / Fig. 18): the attacker
 * crafts inputs on a surrogate model (the Decepticon clone, or a
 * baseline substitute) and fires them at the black-box victim. Token
 * sequences are attacked HotFlip-style: the gradient of the loss with
 * respect to the embedding output scores candidate token
 * substitutions by first-order loss increase.
 */

#ifndef DECEPTICON_ATTACK_ADVERSARIAL_HH
#define DECEPTICON_ATTACK_ADVERSARIAL_HH

#include <vector>

#include "transformer/classifier.hh"
#include "transformer/task.hh"

namespace decepticon::attack {

/** Adversarial crafting knobs. */
struct AdversarialOptions
{
    /** Maximum token substitutions per input. */
    std::size_t maxFlips = 2;
    /** Candidate tokens scored per position (0 = full vocabulary). */
    std::size_t candidateLimit = 0;
};

/**
 * Craft one adversarial variant of a sequence using the surrogate's
 * gradients. Returns the perturbed tokens (may equal the input when
 * no loss-increasing flip exists).
 */
std::vector<int> craftAdversarial(
    transformer::TransformerClassifier &surrogate,
    const std::vector<int> &tokens, int true_label,
    const AdversarialOptions &opts);

/** Outcome of an adversarial transfer evaluation. */
struct TransferResult
{
    /** Seeds the victim originally classified correctly. */
    std::size_t eligible = 0;
    /** Of those, inputs whose adversarial variant fooled the victim. */
    std::size_t fooled = 0;

    double
    successRate() const
    {
        return eligible == 0 ? 0.0
                             : static_cast<double>(fooled) /
                                   static_cast<double>(eligible);
    }
};

/**
 * Craft adversarial inputs on the surrogate for every seed the victim
 * classifies correctly, then measure how many flips the victim's
 * prediction — the success-rate metric of Fig. 18.
 */
TransferResult evaluateTransfer(
    transformer::TransformerClassifier &victim,
    transformer::TransformerClassifier &surrogate,
    const std::vector<transformer::Example> &seeds,
    const AdversarialOptions &opts);

} // namespace decepticon::attack

#endif // DECEPTICON_ATTACK_ADVERSARIAL_HH
