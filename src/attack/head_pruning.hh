/**
 * @file
 * Head-pruning audit (paper Sec. 8, Figs. 20-21): the attacker
 * (a) verifies lineage and ranks heads via the Pearson correlation of
 * attention-head confidences between the candidate pre-trained model
 * and fine-tuned models, and (b) estimates how many heads a victim
 * pruned from the duration shrinkage of the short attention kernels in
 * its execution trace; combining both locates exactly which heads were
 * pruned so the weight matrices can be re-aligned for extraction.
 */

#ifndef DECEPTICON_ATTACK_HEAD_PRUNING_HH
#define DECEPTICON_ATTACK_HEAD_PRUNING_HH

#include <cstddef>
#include <vector>

#include "gpusim/kernel.hh"
#include "gpusim/trace_generator.hh"
#include "transformer/classifier.hh"
#include "transformer/confidence.hh"
#include "transformer/task.hh"

namespace decepticon::attack {

/**
 * Pearson correlation between the flattened head-confidence matrices
 * of two models evaluated on the same samples (Fig. 20's cell values,
 * aggregated).
 */
double confidenceCorrelation(transformer::TransformerClassifier &a,
                             transformer::TransformerClassifier &b,
                             const std::vector<transformer::Example>
                                 &samples);

/**
 * Estimate the number of pruned heads from trace timing: the mean
 * duration of short attention-class kernels scales with the live-head
 * ratio, so comparing a victim trace against a dense reference trace
 * of the same lineage reveals the pruned count (Fig. 21).
 */
std::size_t estimatePrunedHeadCount(const gpusim::KernelTrace &victim,
                                    const gpusim::KernelTrace &dense_ref,
                                    std::size_t num_heads);

/**
 * Rank (layer, head) pairs by confidence computed on the pre-trained
 * model and return the pruned_count lowest-confidence pairs — the
 * heads a confidence-based pruner removes, which the attacker can
 * predict thanks to the confidence correlation.
 */
std::vector<std::pair<std::size_t, std::size_t>>
predictPrunedHeads(transformer::TransformerClassifier &pretrained,
                   const std::vector<transformer::Example> &samples,
                   std::size_t pruned_count);

/** Mean duration of short (attention/softmax/reduction) kernels. */
double meanShortKernelDuration(const gpusim::KernelTrace &trace);

} // namespace decepticon::attack

#endif // DECEPTICON_ATTACK_HEAD_PRUNING_HH
