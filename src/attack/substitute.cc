#include "attack/substitute.hh"

namespace decepticon::attack {

transformer::Dataset
recordPredictions(transformer::TransformerClassifier &victim,
                  const std::vector<transformer::Example> &inputs)
{
    transformer::Dataset records;
    records.numClasses = victim.config().numClasses;
    records.examples.reserve(inputs.size());
    for (const auto &ex : inputs) {
        transformer::Example rec;
        rec.tokens = ex.tokens;
        rec.label = victim.predict(ex.tokens);
        records.examples.push_back(std::move(rec));
    }
    return records;
}

std::unique_ptr<transformer::TransformerClassifier>
buildSubstitute(const transformer::TransformerClassifier &pretrained,
                const transformer::Dataset &prediction_records,
                const transformer::TrainOptions &opts,
                std::uint64_t head_seed)
{
    auto sub = std::make_unique<transformer::TransformerClassifier>(
        pretrained);
    sub->resetHead(prediction_records.numClasses, head_seed);
    transformer::Trainer::fineTune(*sub, prediction_records, opts);
    return sub;
}

} // namespace decepticon::attack
