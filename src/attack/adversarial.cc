#include "attack/adversarial.hh"

#include <cassert>

#include "nn/param.hh"

namespace decepticon::attack {

std::vector<int>
craftAdversarial(transformer::TransformerClassifier &surrogate,
                 const std::vector<int> &tokens, int true_label,
                 const AdversarialOptions &opts)
{
    std::vector<int> adv = tokens;
    const auto &emb = surrogate.embedding();
    const std::size_t vocab = emb.vocab();
    const std::size_t dim = emb.dim();

    for (std::size_t flip = 0; flip < opts.maxFlips; ++flip) {
        // Gradient of the loss w.r.t. the embedding output; positive
        // dot products with (e_new - e_old) increase the loss.
        tensor::Tensor g = surrogate.embeddingGradient(adv, true_label);
        nn::zeroGrads(surrogate.params()); // probing, not training

        double best_score = 0.0;
        std::size_t best_pos = 0;
        int best_tok = -1;
        const std::size_t cand =
            opts.candidateLimit == 0
                ? vocab
                : std::min<std::size_t>(opts.candidateLimit, vocab);
        for (std::size_t pos = 0; pos < adv.size(); ++pos) {
            const float *grow = g.data() + pos * dim;
            const float *eold = emb.table.value.data() +
                static_cast<std::size_t>(adv[pos]) * dim;
            for (std::size_t v = 0; v < cand; ++v) {
                if (static_cast<int>(v) == adv[pos])
                    continue;
                const float *enew = emb.table.value.data() + v * dim;
                double score = 0.0;
                for (std::size_t j = 0; j < dim; ++j)
                    score += static_cast<double>(grow[j]) *
                             (enew[j] - eold[j]);
                if (score > best_score) {
                    best_score = score;
                    best_pos = pos;
                    best_tok = static_cast<int>(v);
                }
            }
        }
        if (best_tok < 0)
            break; // no loss-increasing substitution exists
        adv[best_pos] = best_tok;
        // Early exit once the surrogate itself is fooled.
        if (surrogate.predict(adv) != true_label)
            break;
    }
    return adv;
}

TransferResult
evaluateTransfer(transformer::TransformerClassifier &victim,
                 transformer::TransformerClassifier &surrogate,
                 const std::vector<transformer::Example> &seeds,
                 const AdversarialOptions &opts)
{
    TransferResult result;
    for (const auto &ex : seeds) {
        if (victim.predict(ex.tokens) != ex.label)
            continue; // only originally correct predictions count
        ++result.eligible;
        const std::vector<int> adv =
            craftAdversarial(surrogate, ex.tokens, ex.label, opts);
        if (victim.predict(adv) != ex.label)
            ++result.fooled;
    }
    return result;
}

} // namespace decepticon::attack
