#include "attack/head_pruning.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.hh"

namespace decepticon::attack {

double
confidenceCorrelation(transformer::TransformerClassifier &a,
                      transformer::TransformerClassifier &b,
                      const std::vector<transformer::Example> &samples)
{
    const auto ca =
        transformer::flattenConfidence(transformer::headConfidence(a,
                                                                   samples));
    const auto cb =
        transformer::flattenConfidence(transformer::headConfidence(b,
                                                                   samples));
    assert(ca.size() == cb.size());
    return util::pearson(ca, cb);
}

double
meanShortKernelDuration(const gpusim::KernelTrace &trace)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &rec : trace.records) {
        switch (rec.klass) {
          case gpusim::KernelClass::AttnGemm:
          case gpusim::KernelClass::Softmax:
          case gpusim::KernelClass::Reduction:
            sum += rec.duration();
            ++n;
            break;
          default:
            break;
        }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::size_t
estimatePrunedHeadCount(const gpusim::KernelTrace &victim,
                        const gpusim::KernelTrace &dense_ref,
                        std::size_t num_heads)
{
    const double v = meanShortKernelDuration(victim);
    const double d = meanShortKernelDuration(dense_ref);
    if (d <= 0.0 || num_heads == 0)
        return 0;
    const double ratio = std::clamp(v / d, 0.0, 1.0);
    const double pruned =
        std::round((1.0 - ratio) * static_cast<double>(num_heads));
    return static_cast<std::size_t>(
        std::clamp(pruned, 0.0, static_cast<double>(num_heads - 1)));
}

std::vector<std::pair<std::size_t, std::size_t>>
predictPrunedHeads(transformer::TransformerClassifier &pretrained,
                   const std::vector<transformer::Example> &samples,
                   std::size_t pruned_count)
{
    const auto conf = transformer::headConfidence(pretrained, samples);
    std::vector<std::pair<std::size_t, std::size_t>> heads;
    for (std::size_t l = 0; l < conf.size(); ++l)
        for (std::size_t h = 0; h < conf[l].size(); ++h)
            heads.emplace_back(l, h);
    std::stable_sort(heads.begin(), heads.end(),
                     [&](const auto &x, const auto &y) {
                         return conf[x.first][x.second] <
                                conf[y.first][y.second];
                     });
    heads.resize(std::min(pruned_count, heads.size()));
    return heads;
}

} // namespace decepticon::attack
