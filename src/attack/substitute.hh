/**
 * @file
 * Substitute-model baselines for the adversarial comparison (paper
 * Sec. 7.6): instead of Decepticon's extracted clone, a baseline
 * attacker downloads a random pre-trained model and fine-tunes it on
 * the victim's prediction records (the Thieves-on-Sesame-Street [27]
 * style of model stealing).
 */

#ifndef DECEPTICON_ATTACK_SUBSTITUTE_HH
#define DECEPTICON_ATTACK_SUBSTITUTE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "transformer/classifier.hh"
#include "transformer/task.hh"
#include "transformer/trainer.hh"

namespace decepticon::attack {

/**
 * Record the victim's predictions on a set of inputs — the labeled
 * dataset a query-based stealing attacker can assemble.
 */
transformer::Dataset recordPredictions(
    transformer::TransformerClassifier &victim,
    const std::vector<transformer::Example> &inputs);

/**
 * Build one substitute: copy the given (randomly chosen) pre-trained
 * model, attach a fresh head sized to the victim's output, and
 * fine-tune on the victim's prediction records.
 */
std::unique_ptr<transformer::TransformerClassifier>
buildSubstitute(const transformer::TransformerClassifier &pretrained,
                const transformer::Dataset &prediction_records,
                const transformer::TrainOptions &opts,
                std::uint64_t head_seed);

} // namespace decepticon::attack

#endif // DECEPTICON_ATTACK_SUBSTITUTE_HH
