/**
 * @file
 * Fingerprint training-set construction (paper Fig. 11): kernel traces
 * of every zoo model are captured, pre-processed (encoder-region
 * cropping for irregular traces), rasterized to grayscale images, and
 * labeled with the *pre-trained lineage name* — a fine-tuned model's
 * image carries its parent's label, which is exactly what lets the CNN
 * identify the pre-trained model behind a black-box fine-tuned victim.
 */

#ifndef DECEPTICON_FINGERPRINT_DATASET_HH
#define DECEPTICON_FINGERPRINT_DATASET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"
#include "zoo/zoo.hh"

namespace decepticon::fingerprint {

/** One labeled fingerprint image. */
struct FingerprintSample
{
    tensor::Tensor image; ///< (res, res) grayscale in [0, 1]
    int label = 0;        ///< index into FingerprintDataset::classNames
    std::string modelName;
};

/** Labeled image dataset over a set of pre-trained lineages. */
struct FingerprintDataset
{
    std::vector<FingerprintSample> samples;
    std::vector<std::string> classNames; ///< lineage names
    std::size_t resolution = 64;

    std::size_t numClasses() const { return classNames.size(); }

    /** Deterministic shuffled train/test split (paper uses 80/20). */
    std::pair<FingerprintDataset, FingerprintDataset>
    split(double train_fraction, std::uint64_t seed) const;
};

/** Dataset construction knobs. */
struct DatasetOptions
{
    std::size_t imagesPerModel = 5;
    std::size_t resolution = 64;
    /** Crop XLA-style irregular traces to encoder regions first. */
    bool cropIrregular = true;
    /** Use only the first N lineages (0 = all). */
    std::size_t lineageLimit = 0;
    std::uint64_t seed = 1;
};

/** Build the labeled image dataset from a model zoo. */
FingerprintDataset buildDataset(const zoo::ModelZoo &zoo,
                                const DatasetOptions &opts);

/**
 * Rasterize one model's inference trace the same way the dataset
 * builder does (capture + optional crop + rasterize). Used to prepare
 * a victim's observed trace for classification.
 */
tensor::Tensor fingerprintImage(const zoo::ModelIdentity &model,
                                std::size_t resolution,
                                std::uint64_t run_seed,
                                bool crop_irregular = true);

/** Same pipeline applied to an already-captured trace. */
tensor::Tensor fingerprintImage(const gpusim::KernelTrace &trace,
                                std::size_t resolution,
                                bool crop_irregular = true);

} // namespace decepticon::fingerprint

#endif // DECEPTICON_FINGERPRINT_DATASET_HH
