/**
 * @file
 * Layer boundary identification (paper Sec. 5.4.1, Fig. 10): detect
 * the repeated kernel group inside a trace, count its repetitions
 * (= number of encoders), and read the peak kernel duration (= hidden
 * size proxy). Also provides the corner-case pre-processing of
 * Sec. 5.4.3: cropping a trace to its periodic encoder region(s) when
 * XLA bursts or other optimizations break the simple global pattern.
 */

#ifndef DECEPTICON_FINGERPRINT_BOUNDARY_HH
#define DECEPTICON_FINGERPRINT_BOUNDARY_HH

#include <cstddef>
#include <vector>

#include "gpusim/kernel.hh"

namespace decepticon::fingerprint {

/** Output of periodic-structure detection on one trace. */
struct BoundaryResult
{
    /** Detected kernel-group period (kernels per encoder). */
    std::size_t period = 0;
    /** Detected number of group repetitions (= encoder count). */
    std::size_t repetitions = 0;
    /** Peak kernel duration within the periodic region (us). */
    double peakDurationUs = 0.0;
    /** Record-index ranges [begin, end) of each periodic region. */
    std::vector<std::pair<std::size_t, std::size_t>> regions;
    /** Fraction of trace records covered by the periodic regions. */
    double coverage = 0.0;

    bool found() const { return period > 0 && repetitions >= 2; }
};

/**
 * Detect the repeating kernel group of a trace from its kernel-id
 * sequence. Works without any ground-truth phase information: for each
 * candidate period, maximal self-matching runs are located and the
 * period explaining the most records (preferring the shortest such
 * period) wins. Traces with an XLA burst yield two regions whose
 * repetitions are summed.
 */
BoundaryResult detectLayerBoundaries(const gpusim::KernelTrace &trace);

/**
 * Crop a trace to its detected periodic (encoder) region, dropping
 * prologue, XLA bursts, and the output layer — the pre-processing
 * applied before CNN classification for irregular traces (Fig. 12).
 * Returns the dominant region's records; the input trace unchanged if
 * no periodicity is found.
 */
gpusim::KernelTrace cropToEncoderRegion(const gpusim::KernelTrace &trace);

} // namespace decepticon::fingerprint

#endif // DECEPTICON_FINGERPRINT_BOUNDARY_HH
