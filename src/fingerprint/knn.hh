/**
 * @file
 * Nearest-neighbor fingerprint classifier — the natural baseline for
 * the CNN extractor. The paper chooses a CNN for its inherent noise
 * tolerance (Sec. 5.4.2, citing error-tolerant CNN inference); this
 * baseline makes that design decision measurable: template matching
 * works on clean traces but degrades faster under timing noise.
 */

#ifndef DECEPTICON_FINGERPRINT_KNN_HH
#define DECEPTICON_FINGERPRINT_KNN_HH

#include "fingerprint/dataset.hh"

namespace decepticon::fingerprint {

/**
 * k-nearest-neighbor classifier over blurred fingerprint images with
 * L1 pixel distance and majority voting.
 */
class NearestNeighborClassifier
{
  public:
    explicit NearestNeighborClassifier(std::size_t k = 1) : k_(k) {}

    /** Store (blurred) training templates. */
    void train(const FingerprintDataset &data);

    /** Majority label of the k nearest templates. */
    int predict(const tensor::Tensor &image) const;

    /** Classification accuracy over a dataset. */
    double evaluate(const FingerprintDataset &data) const;

    std::size_t templateCount() const { return templates_.size(); }

  private:
    std::size_t k_;
    std::size_t numClasses_ = 0;
    std::vector<tensor::Tensor> templates_; // blurred
    std::vector<int> labels_;
};

} // namespace decepticon::fingerprint

#endif // DECEPTICON_FINGERPRINT_KNN_HH
