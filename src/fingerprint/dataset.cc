#include "fingerprint/dataset.hh"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "fingerprint/boundary.hh"
#include "gpusim/trace_generator.hh"
#include "sched/sched.hh"
#include "trace/image.hh"
#include "util/rng.hh"

namespace decepticon::fingerprint {

std::pair<FingerprintDataset, FingerprintDataset>
FingerprintDataset::split(double train_fraction, std::uint64_t seed) const
{
    FingerprintDataset train, test;
    train.classNames = test.classNames = classNames;
    train.resolution = test.resolution = resolution;

    std::vector<std::size_t> order(samples.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    util::Rng rng(seed);
    rng.shuffle(order);

    const auto n_train = static_cast<std::size_t>(
        train_fraction * static_cast<double>(samples.size()));
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (i < n_train)
            train.samples.push_back(samples[order[i]]);
        else
            test.samples.push_back(samples[order[i]]);
    }
    return {std::move(train), std::move(test)};
}

tensor::Tensor
fingerprintImage(const gpusim::KernelTrace &trace, std::size_t resolution,
                 bool crop_irregular)
{
    if (crop_irregular) {
        const gpusim::KernelTrace cropped = cropToEncoderRegion(trace);
        if (!cropped.records.empty())
            return trace::rasterize(cropped, resolution);
    }
    return trace::rasterize(trace, resolution);
}

tensor::Tensor
fingerprintImage(const zoo::ModelIdentity &model, std::size_t resolution,
                 std::uint64_t run_seed, bool crop_irregular)
{
    const gpusim::TraceGenerator gen(model.signature);
    const gpusim::KernelTrace trace = gen.generate(model.arch, run_seed);
    return fingerprintImage(trace, resolution, crop_irregular);
}

FingerprintDataset
buildDataset(const zoo::ModelZoo &zoo, const DatasetOptions &opts)
{
    FingerprintDataset ds;
    ds.resolution = opts.resolution;

    std::vector<std::string> lineages = zoo.lineageNames();
    if (opts.lineageLimit > 0 && opts.lineageLimit < lineages.size())
        lineages.resize(opts.lineageLimit);
    ds.classNames = lineages;

    std::unordered_map<std::string, int> label_of;
    for (std::size_t i = 0; i < lineages.size(); ++i)
        label_of[lineages[i]] = static_cast<int>(i);

    // Draw every run seed up front, in the exact order the serial loop
    // would: the per-image streams (and thus the dataset bytes) are
    // independent of how the rasterization work is scheduled below.
    struct Job
    {
        const zoo::ModelIdentity *model;
        int label;
        std::uint64_t runSeed;
    };
    std::vector<Job> jobs;
    util::Rng rng(opts.seed);
    for (const auto &model : zoo.models()) {
        auto it = label_of.find(model.pretrainedName);
        if (it == label_of.end())
            continue; // lineage outside the requested subset
        for (std::size_t k = 0; k < opts.imagesPerModel; ++k)
            jobs.push_back({&model, it->second, rng.nextU64()});
    }

    ds.samples.resize(jobs.size());
    sched::parallelFor(jobs.size(), 1, [&](std::size_t i) {
        const Job &job = jobs[i];
        FingerprintSample &sample = ds.samples[i];
        sample.label = job.label;
        sample.modelName = job.model->name;
        sample.image = fingerprintImage(*job.model, opts.resolution,
                                        job.runSeed, opts.cropIrregular);
    });
    return ds;
}

} // namespace decepticon::fingerprint
