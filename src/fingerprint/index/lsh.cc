#include "fingerprint/index/lsh.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fingerprint/index/embedding.hh"
#include "util/rng.hh"

namespace decepticon::fingerprint {

namespace {

std::size_t
autoHashBits(std::size_t refs)
{
    std::size_t bits = 4;
    std::size_t capacity = std::size_t{1} << bits;
    while (capacity < refs && bits < 16) {
        ++bits;
        capacity <<= 1;
    }
    return bits;
}

} // anonymous namespace

FingerprintIndex::FingerprintIndex(const IndexOptions &opts) : opts_(opts)
{
    assert(opts_.tables > 0);
    assert(opts_.profilesPerLineage > 0);
}

void
FingerprintIndex::build(std::vector<std::vector<float>> ref_embeddings,
                        std::vector<std::size_t> ref_class,
                        std::size_t num_classes)
{
    assert(!ref_embeddings.empty());
    assert(ref_embeddings.size() == ref_class.size());
    numClasses_ = num_classes;
    dim_ = ref_embeddings.front().size();

    // Store references grouped by class (stable within a class) so the
    // re-rank loop touches exactly [offset[c], offset[c+1]) — O(refs
    // per class), never O(zoo).
    std::vector<std::size_t> order(ref_embeddings.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return ref_class[a] < ref_class[b];
                     });
    refs_.clear();
    refClass_.clear();
    refs_.reserve(order.size());
    refClass_.reserve(order.size());
    for (std::size_t i : order) {
        refs_.push_back(std::move(ref_embeddings[i]));
        refClass_.push_back(ref_class[i]);
    }
    classOffset_.assign(numClasses_ + 1, 0);
    for (std::size_t c : refClass_)
        ++classOffset_[c + 1];
    for (std::size_t c = 0; c < numClasses_; ++c)
        classOffset_[c + 1] += classOffset_[c];
    bits_ = opts_.hashBits == 0 ? autoHashBits(refs_.size())
                                : std::min<std::size_t>(opts_.hashBits, 63);

    // Center of the reference cloud (see center_ in the header):
    // hashing emb - center_ turns the one-orthant embedding cone into
    // sign-balanced coordinates. Accumulated in reference order, so
    // the center is as deterministic as the references themselves.
    center_.assign(dim_, 0.0f);
    for (const auto &r : refs_) {
        for (std::size_t d = 0; d < dim_; ++d)
            center_[d] += r[d];
    }
    const float inv = 1.0f / static_cast<float>(refs_.size());
    for (auto &v : center_)
        v *= inv;

    // One projection matrix per table, derived via split(table) so the
    // hash family is a pure function of (seed, table) — independent of
    // build order, thread count, or any other draw in the process.
    const util::Rng root(opts_.seed);
    projections_.assign(opts_.tables, {});
    for (std::size_t t = 0; t < opts_.tables; ++t) {
        util::Rng rng = root.split(t);
        auto &proj = projections_[t];
        proj.resize(bits_ * dim_);
        for (auto &v : proj)
            v = static_cast<float>(rng.gaussian());
    }

    buckets_.assign(opts_.tables, {});
    for (std::size_t t = 0; t < opts_.tables; ++t) {
        auto &table = buckets_[t];
        table.reserve(refs_.size());
        for (std::size_t i = 0; i < refs_.size(); ++i) {
            assert(refs_[i].size() == dim_);
            table.emplace_back(hashOf(t, refs_[i]),
                               static_cast<std::uint32_t>(i));
        }
        std::sort(table.begin(), table.end());
    }
}

std::uint64_t
FingerprintIndex::hashOf(std::size_t table,
                         const std::vector<float> &embedding) const
{
    assert(embedding.size() == dim_);
    const float *proj = projections_[table].data();
    std::uint64_t h = 0;
    for (std::size_t b = 0; b < bits_; ++b) {
        double dot = 0.0;
        const float *row = proj + b * dim_;
        for (std::size_t d = 0; d < dim_; ++d)
            dot += static_cast<double>(row[d]) *
                   (static_cast<double>(embedding[d]) -
                    static_cast<double>(center_[d]));
        h = (h << 1) | (dot >= 0.0 ? 1u : 0u);
    }
    return h;
}

std::vector<std::size_t>
FingerprintIndex::shortlist(const std::vector<float> &embedding,
                            IndexLookupStats *stats) const
{
    assert(!refs_.empty() && "build() must run first");
    std::vector<std::size_t> classes;
    std::size_t probes = 0;
    for (std::size_t t = 0; t < opts_.tables; ++t) {
        const std::uint64_t h = hashOf(t, embedding);
        const auto &table = buckets_[t];
        const auto lo = std::lower_bound(
            table.begin(), table.end(),
            std::make_pair(h, std::uint32_t{0}));
        for (auto it = lo; it != table.end() && it->first == h; ++it) {
            classes.push_back(refClass_[it->second]);
            ++probes;
        }
    }
    std::sort(classes.begin(), classes.end());
    classes.erase(std::unique(classes.begin(), classes.end()),
                  classes.end());

    bool fallback = false;
    if (classes.empty()) {
        // A query whose bucket is empty in every table (an embedding
        // far from every reference) degrades to the exhaustive scan
        // rather than returning an empty verdict.
        classes = allClasses();
        fallback = true;
    }
    if (stats != nullptr) {
        stats->shortlistClasses = classes.size();
        stats->bucketProbes = probes;
        stats->exhaustiveFallback = fallback;
    }
    return classes;
}

std::vector<std::size_t>
FingerprintIndex::allClasses() const
{
    std::vector<std::size_t> out(numClasses_);
    for (std::size_t c = 0; c < numClasses_; ++c)
        out[c] = c;
    return out;
}

std::vector<double>
FingerprintIndex::scores(const std::vector<float> &embedding,
                         const std::vector<std::size_t> &candidates) const
{
    assert(!candidates.empty());
    // Min reference distance per candidate class. References are
    // grouped by class, so each candidate costs O(refs per class) —
    // the re-rank stays independent of total zoo size.
    std::vector<double> dist(candidates.size());
    for (std::size_t k = 0; k < candidates.size(); ++k) {
        const std::size_t c = candidates[k];
        assert(c < numClasses_);
        double best = -1.0;
        for (std::size_t i = classOffset_[c]; i < classOffset_[c + 1];
             ++i) {
            const double d = embeddingDistance(embedding, refs_[i]);
            if (best < 0.0 || d < best)
                best = d;
        }
        dist[k] = best < 0.0 ? 1e9 : best;
    }
    // Shortlist softmax in candidate (ascending class) order — a
    // fixed summation order keeps the probabilities bit-reproducible.
    double min_d = dist[0];
    for (double d : dist)
        min_d = std::min(min_d, d);
    double z = 0.0;
    std::vector<double> expd(candidates.size());
    for (std::size_t k = 0; k < candidates.size(); ++k) {
        expd[k] = std::exp(-opts_.softmaxSharpness * (dist[k] - min_d));
        z += expd[k];
    }
    std::vector<double> probs(numClasses_, 0.0);
    for (std::size_t k = 0; k < candidates.size(); ++k)
        probs[candidates[k]] = expd[k] / z;
    return probs;
}

std::size_t
FingerprintIndex::classify(const std::vector<float> &embedding,
                           IndexLookupStats *stats) const
{
    const std::vector<std::size_t> candidates =
        shortlist(embedding, stats);
    const std::vector<double> probs = scores(embedding, candidates);
    std::size_t best = candidates.front();
    for (std::size_t c : candidates) {
        if (probs[c] > probs[best])
            best = c;
    }
    return best;
}

} // namespace decepticon::fingerprint
