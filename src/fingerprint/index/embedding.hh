/**
 * @file
 * Compact fingerprint embeddings — the cheap first-stage key of the
 * sublinear zoo index. Instead of rasterizing a trace into a CNN
 * image, the embedding summarizes it with InferNet-style aggregate
 * profiler features (kernel-class mix, duration shares, depth and
 * scale statistics): PAPERS.md's InferNet shows such aggregates
 * suffice for architecture-level inference, and DeepSniffer-style
 * fingerprints cluster by family, so nearby embeddings are exactly
 * the candidates worth exact re-ranking.
 */

#ifndef DECEPTICON_FINGERPRINT_INDEX_EMBEDDING_HH
#define DECEPTICON_FINGERPRINT_INDEX_EMBEDDING_HH

#include <cstddef>
#include <vector>

#include "gpusim/kernel.hh"

namespace decepticon::fingerprint {

/** Dimensionality of traceEmbedding output. */
inline constexpr std::size_t kTraceEmbeddingDim = 24;

/**
 * Embed one kernel trace into a fixed L2-normalized feature vector.
 * Pure function of the trace (no RNG, no global state), so two
 * captures of the same release differ only through run jitter — which
 * the aggregate features average out. Layout:
 *
 *   [0..7]   per-KernelClass record-count fractions
 *   [8..15]  per-KernelClass duration fractions
 *   [16..23] scale/shape statistics (record count, total/peak/mean
 *            duration, distinct kernels, encoder depth, encoder and
 *            non-encoder record shares), log-compressed
 */
std::vector<float> traceEmbedding(const gpusim::KernelTrace &trace);

/** Squared L2 distance between two embeddings of equal length. */
double embeddingDistance(const std::vector<float> &a,
                         const std::vector<float> &b);

} // namespace decepticon::fingerprint

#endif // DECEPTICON_FINGERPRINT_INDEX_EMBEDDING_HH
