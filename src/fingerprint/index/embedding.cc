#include "fingerprint/index/embedding.hh"

#include <cassert>
#include <cmath>

namespace decepticon::fingerprint {

namespace {

constexpr std::size_t kNumKernelClasses = 8;

/** log1p compressed to a comparable O(1) range. */
float
squash(double v, double scale)
{
    return static_cast<float>(std::log1p(v) / scale);
}

} // anonymous namespace

std::vector<float>
traceEmbedding(const gpusim::KernelTrace &trace)
{
    std::vector<float> e(kTraceEmbeddingDim, 0.0f);
    const std::size_t n = trace.records.size();
    if (n == 0)
        return e;

    double class_count[kNumKernelClasses] = {};
    double class_duration[kNumKernelClasses] = {};
    double total_duration = 0.0;
    double peak = 0.0;
    std::size_t encoder_records = 0;
    int max_layer = -1;
    for (const auto &r : trace.records) {
        const auto k = static_cast<std::size_t>(r.klass);
        assert(k < kNumKernelClasses);
        const double d = r.duration();
        class_count[k] += 1.0;
        class_duration[k] += d;
        total_duration += d;
        peak = std::max(peak, d);
        if (r.phase == gpusim::Phase::Encoder)
            ++encoder_records;
        max_layer = std::max(max_layer, r.layerIndex);
    }

    const double inv_n = 1.0 / static_cast<double>(n);
    const double inv_d =
        total_duration > 0.0 ? 1.0 / total_duration : 0.0;
    for (std::size_t k = 0; k < kNumKernelClasses; ++k) {
        e[k] = static_cast<float>(class_count[k] * inv_n);
        e[8 + k] = static_cast<float>(class_duration[k] * inv_d);
    }
    e[16] = squash(static_cast<double>(n), 8.0);
    e[17] = squash(total_duration, 12.0);
    e[18] = squash(peak, 10.0);
    e[19] = squash(total_duration * inv_n, 8.0);
    e[20] = squash(static_cast<double>(trace.uniqueKernelCount()), 6.0);
    e[21] = squash(static_cast<double>(max_layer + 1), 6.0);
    e[22] = static_cast<float>(static_cast<double>(encoder_records) *
                               inv_n);
    e[23] = static_cast<float>(
        static_cast<double>(n - encoder_records) * inv_n);

    // L2 normalization: signed-random-projection hashing keys on the
    // embedding's direction, so scale differences between short and
    // long traces must not dominate the angle.
    double norm_sq = 0.0;
    for (float v : e)
        norm_sq += static_cast<double>(v) * v;
    if (norm_sq > 0.0) {
        const auto inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
        for (auto &v : e)
            v *= inv;
    }
    return e;
}

double
embeddingDistance(const std::vector<float> &a, const std::vector<float> &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d =
            static_cast<double>(a[i]) - static_cast<double>(b[i]);
        s += d * d;
    }
    return s;
}

} // namespace decepticon::fingerprint
