/**
 * @file
 * Sublinear fingerprint lookup: a multi-table signed-random-projection
 * LSH over compact trace embeddings, with exact re-ranking on the
 * bucket-union shortlist. Replaces the exhaustive score-every-lineage
 * scan of level-1 once the zoo outgrows the CNN classifier
 * (DESIGN.md §15).
 *
 * Determinism contract: every projection is derived via
 * util::Rng::split(table), bucket tables are sorted vectors probed by
 * binary search, and the shortlist is returned as a sorted, deduped
 * class-id list — a pure function of (options, reference embeddings,
 * query). All lookup methods are const and touch no global state, so
 * campaign batches score shortlists from parallel sched workers.
 */

#ifndef DECEPTICON_FINGERPRINT_INDEX_LSH_HH
#define DECEPTICON_FINGERPRINT_INDEX_LSH_HH

#include <cstdint>
#include <vector>

namespace decepticon::fingerprint {

/** Geometry and seeding of the fingerprint index. */
struct IndexOptions
{
    /** Independent hash tables; each adds one recall chance. */
    std::size_t tables = 8;
    /**
     * Sign bits per table key. 0 = auto: ~log2(reference count),
     * clamped to [4, 16], so expected bucket load stays O(1) as the
     * zoo grows.
     */
    std::size_t hashBits = 0;
    /** Reference profiling runs embedded per lineage. */
    std::size_t profilesPerLineage = 2;
    /**
     * Sharpness of the shortlist softmax that converts re-rank
     * distances into the probability vector consumed by the shared
     * level-1 decision tail.
     */
    double softmaxSharpness = 48.0;
    /** Root seed of the per-table projection streams. */
    std::uint64_t seed = 0x1d5eedULL;
};

/** Per-lookup accounting surfaced through src/obs by the caller. */
struct IndexLookupStats
{
    /** Distinct candidate classes in the shortlist. */
    std::size_t shortlistClasses = 0;
    /** Reference entries gathered across all table probes. */
    std::size_t bucketProbes = 0;
    /** Every table bucket was empty: exhaustive scan taken instead. */
    bool exhaustiveFallback = false;
};

/**
 * The index itself: reference embeddings labeled by class (lineage),
 * hashed into `tables` sorted bucket tables.
 */
class FingerprintIndex
{
  public:
    explicit FingerprintIndex(const IndexOptions &opts = {});

    /**
     * Build from reference embeddings. ref_class[i] labels
     * ref_embeddings[i]; classes must cover [0, num_classes).
     */
    void build(std::vector<std::vector<float>> ref_embeddings,
               std::vector<std::size_t> ref_class,
               std::size_t num_classes);

    std::size_t numClasses() const { return numClasses_; }
    std::size_t referenceCount() const { return refs_.size(); }
    std::size_t tableCount() const { return opts_.tables; }
    std::size_t hashBits() const { return bits_; }

    /**
     * Candidate classes for a query embedding: the union of the
     * query's bucket across every table, deduped and sorted ascending.
     * Falls back to every class (stats->exhaustiveFallback) when all
     * probed buckets are empty, so a lookup never returns nothing.
     */
    std::vector<std::size_t>
    shortlist(const std::vector<float> &embedding,
              IndexLookupStats *stats = nullptr) const;

    /** Every class id — the exhaustive-scan candidate list. */
    std::vector<std::size_t> allClasses() const;

    /**
     * Exact re-rank: full-size probability vector over all classes,
     * softmax of -sharpness * (min reference distance) over the
     * candidates, exact zero elsewhere. Feeding this to the shared
     * decision tail keeps the tail bit-identical between the indexed
     * and exhaustive paths — only the candidate set differs.
     */
    std::vector<double>
    scores(const std::vector<float> &embedding,
           const std::vector<std::size_t> &candidates) const;

    /** Argmax class over the shortlist (ties to the lowest id). */
    std::size_t classify(const std::vector<float> &embedding,
                         IndexLookupStats *stats = nullptr) const;

  private:
    std::uint64_t hashOf(std::size_t table,
                         const std::vector<float> &embedding) const;

    IndexOptions opts_;
    std::size_t numClasses_ = 0;
    std::size_t bits_ = 0;
    std::size_t dim_ = 0;
    /** Reference embeddings, grouped by class. */
    std::vector<std::vector<float>> refs_;
    /**
     * Mean reference embedding, subtracted before hashing. Trace
     * embeddings are all-nonnegative (count/duration fractions), so
     * uncentered they crowd one orthant and every signed projection
     * bit degenerates to a constant — centering is what makes the
     * hash family discriminative.
     */
    std::vector<float> center_;
    std::vector<std::size_t> refClass_;
    /** refs_ of class c live in [classOffset_[c], classOffset_[c+1]). */
    std::vector<std::size_t> classOffset_;
    /** Per table: bits_ stacked projection rows of length dim_. */
    std::vector<std::vector<float>> projections_;
    /** Per table: (hash, reference index), sorted for binary search.
     *  Sorted vectors instead of a hash map keep iteration order a
     *  non-question (lint R3) and probes cache-friendly. */
    std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>>
        buckets_;
};

} // namespace decepticon::fingerprint

#endif // DECEPTICON_FINGERPRINT_INDEX_LSH_HH
