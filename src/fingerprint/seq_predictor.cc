#include "fingerprint/seq_predictor.hh"

#include <array>
#include <cassert>
#include <map>

#include "util/edit_distance.hh"
#include "util/rng.hh"

namespace decepticon::fingerprint {

LayerOp
groundTruthOp(const gpusim::KernelRecord &rec)
{
    switch (rec.klass) {
      case gpusim::KernelClass::Gemm:
        return LayerOp::Gemm;
      case gpusim::KernelClass::AttnGemm:
        return LayerOp::Attention;
      case gpusim::KernelClass::Softmax:
        return LayerOp::Softmax;
      case gpusim::KernelClass::LayerNorm:
        return LayerOp::Norm;
      default:
        return LayerOp::NoOp;
    }
}

std::vector<int>
groundTruthOpSequence(const gpusim::KernelTrace &trace)
{
    std::vector<int> out;
    for (const auto &rec : trace.records) {
        const LayerOp op = groundTruthOp(rec);
        if (op != LayerOp::NoOp)
            out.push_back(static_cast<int>(op));
    }
    return out;
}

void
KernelSequencePredictor::train(
    const std::vector<gpusim::KernelTrace> &traces)
{
    // Majority-vote operator per kernel name across the profile runs.
    // Ordered map on purpose: the tally below iterates it, and
    // iterating an unordered_map here would make the vote-resolution
    // order (and with it any future tie-break or logging added to
    // this loop) depend on the hash layout instead of the input.
    std::map<std::string, std::array<std::size_t, 5>> votes;
    for (const auto &trace : traces) {
        for (const auto &rec : trace.records) {
            const auto op = static_cast<std::size_t>(groundTruthOp(rec));
            const std::string &name = trace.kernelNames[rec.kernelId];
            ++votes[name][op];
        }
    }
    opOfKernel_.clear();
    for (const auto &[name, v] : votes) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < v.size(); ++i) {
            if (v[i] > v[best])
                best = i;
        }
        opOfKernel_[name] = static_cast<LayerOp>(best);
    }
}

std::vector<int>
KernelSequencePredictor::predict(const gpusim::KernelTrace &trace) const
{
    std::vector<int> out;
    for (const auto &rec : trace.records) {
        const std::string &name = trace.kernelNames[rec.kernelId];
        const auto it = opOfKernel_.find(name);
        LayerOp op;
        if (it != opOfKernel_.end()) {
            op = it->second;
        } else {
            // Out-of-vocabulary kernel: the decoder emits essentially
            // arbitrary operators (deterministic per name so the
            // experiment is reproducible).
            op = static_cast<LayerOp>(
                util::hashString(name.c_str()) % 5);
        }
        if (op != LayerOp::NoOp)
            out.push_back(static_cast<int>(op));
    }
    return out;
}

double
KernelSequencePredictor::layerErrorRate(
    const gpusim::KernelTrace &trace) const
{
    const std::vector<int> truth = groundTruthOpSequence(trace);
    assert(!truth.empty());
    return util::layerErrorRate(predict(trace), truth);
}

} // namespace decepticon::fingerprint
