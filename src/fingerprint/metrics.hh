/**
 * @file
 * Evaluation metrics for the pre-trained model extractor: confusion
 * matrix, per-class precision/recall, and top-k accuracy. Top-k
 * matters operationally: the Decepticon pipeline forwards the CNN's
 * top candidates to the query-output variant detector, so a victim is
 * recoverable whenever the true lineage appears in the top-k.
 */

#ifndef DECEPTICON_FINGERPRINT_METRICS_HH
#define DECEPTICON_FINGERPRINT_METRICS_HH

#include <string>
#include <vector>

#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"

namespace decepticon::fingerprint {

/** Row-major confusion matrix: counts[truth][prediction]. */
struct ConfusionMatrix
{
    std::vector<std::vector<std::size_t>> counts;
    std::vector<std::string> classNames;

    std::size_t numClasses() const { return counts.size(); }

    /** Total samples recorded. */
    std::size_t total() const;

    /** Overall accuracy (trace / total). */
    double accuracy() const;

    /** Precision of one class (0 when never predicted). */
    double precision(std::size_t c) const;

    /** Recall of one class (0 when never seen). */
    double recall(std::size_t c) const;

    /** Render as an aligned ASCII table. */
    std::string toString() const;
};

/** Evaluate a CNN over a dataset into a confusion matrix. */
ConfusionMatrix confusionMatrix(FingerprintCnn &cnn,
                                const FingerprintDataset &data);

/**
 * Top-k accuracy: fraction of samples whose true class appears among
 * the CNN's k highest-probability candidates.
 */
double topKAccuracy(FingerprintCnn &cnn, const FingerprintDataset &data,
                    std::size_t k);

} // namespace decepticon::fingerprint

#endif // DECEPTICON_FINGERPRINT_METRICS_HH
