#include "fingerprint/knn.hh"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "obs/obs.hh"
#include "sched/sched.hh"
#include "trace/image.hh"

namespace decepticon::fingerprint {

void
NearestNeighborClassifier::train(const FingerprintDataset &data)
{
    assert(!data.samples.empty());
    numClasses_ = data.numClasses();
    templates_.clear();
    labels_.clear();
    templates_.reserve(data.samples.size());
    labels_.reserve(data.samples.size());
    for (const auto &s : data.samples) {
        templates_.push_back(trace::boxBlur3(s.image));
        labels_.push_back(s.label);
    }
}

int
NearestNeighborClassifier::predict(const tensor::Tensor &image) const
{
    assert(!templates_.empty());
    obs::count("fingerprint.knn.predicts");
    const tensor::Tensor probe = trace::boxBlur3(image);

    std::vector<std::pair<double, int>> dist;
    dist.reserve(templates_.size());
    for (std::size_t i = 0; i < templates_.size(); ++i)
        dist.emplace_back(trace::imageDistance(probe, templates_[i]),
                          labels_[i]);
    const std::size_t k = std::min(k_, dist.size());
    std::partial_sort(dist.begin(),
                      dist.begin() + static_cast<long>(k), dist.end());

    std::vector<std::size_t> votes(numClasses_, 0);
    for (std::size_t i = 0; i < k; ++i)
        ++votes[static_cast<std::size_t>(dist[i].second)];
    return static_cast<int>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
}

double
NearestNeighborClassifier::evaluate(const FingerprintDataset &data) const
{
    if (data.samples.empty())
        return 0.0;
    // predict() is const and each index owns its slot, so the chunked
    // partial counts merge to the same total at any thread count.
    const std::size_t n = data.samples.size();
    std::vector<std::uint8_t> hit(n, 0);
    sched::parallelFor(n, 0, [&](std::size_t i) {
        const auto &s = data.samples[i];
        hit[i] = predict(s.image) == s.label ? 1 : 0;
    });
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n; ++i)
        correct += hit[i];
    return static_cast<double>(correct) / static_cast<double>(n);
}

} // namespace decepticon::fingerprint
