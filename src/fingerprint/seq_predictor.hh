/**
 * @file
 * DeepSniffer-style kernel-sequence -> layer-sequence predictor, the
 * state-of-the-art baseline the paper evaluates in Table 2. The
 * predictor learns which kernel names implement architectural
 * operators from profiled traces of its own source, then predicts the
 * operator sequence of a victim trace. The paper's finding: because
 * every source has its own kernel fingerprint, the predictor's Layer
 * prediction Error Rate (LER) collapses from ~0.09 in-distribution to
 * 0.5-6.8 on traces from other sources, which is why Decepticon uses
 * the fingerprint itself instead of fighting it.
 */

#ifndef DECEPTICON_FINGERPRINT_SEQ_PREDICTOR_HH
#define DECEPTICON_FINGERPRINT_SEQ_PREDICTOR_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/kernel.hh"

namespace decepticon::fingerprint {

/**
 * Architectural operator alphabet predicted by the baseline. Only
 * these operators appear in ground-truth layer sequences; the rest of
 * a trace (copies, converts, fusion wrappers, short reductions) is
 * framework noise the predictor must learn to drop.
 */
enum class LayerOp : int
{
    Gemm = 0,
    Attention = 1,
    Softmax = 2,
    Norm = 3,
    NoOp = 4, ///< non-architectural kernel (dropped from sequences)
};

/** Ground-truth operator of one kernel record. */
LayerOp groundTruthOp(const gpusim::KernelRecord &rec);

/** Ground-truth architectural operator sequence of a trace. */
std::vector<int> groundTruthOpSequence(const gpusim::KernelTrace &trace);

/**
 * The trainable baseline. train() learns a kernel-name -> operator
 * table from traces whose operator labels are known (the attacker
 * profiles models he controls, as DeepSniffer does); predict() maps a
 * victim trace through the table. Never-seen kernel names decode to
 * an effectively arbitrary operator (modelled as a hash of the name),
 * the way a sequence decoder emits noise on out-of-distribution
 * input — the behaviour that makes cross-source predictions collapse.
 */
class KernelSequencePredictor
{
  public:
    /** Learn the name->operator table from labeled traces. */
    void train(const std::vector<gpusim::KernelTrace> &traces);

    /** Predicted architectural operator sequence for a trace. */
    std::vector<int> predict(const gpusim::KernelTrace &trace) const;

    /** LER of this predictor on a trace (edit distance / truth len). */
    double layerErrorRate(const gpusim::KernelTrace &trace) const;

    /** Number of kernel names learned. */
    std::size_t vocabularySize() const { return opOfKernel_.size(); }

  private:
    std::unordered_map<std::string, LayerOp> opOfKernel_;
};

} // namespace decepticon::fingerprint

#endif // DECEPTICON_FINGERPRINT_SEQ_PREDICTOR_HH
