/**
 * @file
 * The pre-trained model extractor's CNN classifier (paper Sec. 5.4.2):
 * two convolution+pooling stages followed by three fully connected
 * layers, trained on fingerprint images labeled with pre-trained model
 * names. The paper's exact topology targets 1024x1024 inputs; this one
 * keeps the conv/pool/fc structure with pooling scaled to the raster
 * resolution (see DESIGN.md substitution table).
 */

#ifndef DECEPTICON_FINGERPRINT_CNN_HH
#define DECEPTICON_FINGERPRINT_CNN_HH

#include <cstdint>
#include <vector>

#include "fingerprint/dataset.hh"
#include "nn/conv.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/param.hh"

namespace decepticon::fingerprint {

/** Training knobs for the fingerprint CNN. */
struct CnnTrainOptions
{
    std::size_t epochs = 30;
    float lr = 2e-3f;
    std::size_t batchSize = 8;
    std::uint64_t shuffleSeed = 7;
};

/**
 * conv(1->6, 5x5) / pool(4,4) / conv(6->16, 5x5) / pool(2,2) /
 * fc(->120) / fc(120->84) / fc(84->classes), ReLU activations —
 * the paper's LeNet-style extractor adapted to the raster size.
 */
class FingerprintCnn
{
  public:
    FingerprintCnn(std::size_t resolution, std::size_t num_classes,
                   std::uint64_t seed);

    /** Train on a labeled dataset; returns final-epoch mean loss. */
    float train(const FingerprintDataset &data,
                const CnnTrainOptions &opts);

    /** Softmax class probabilities for one image. */
    std::vector<double> classProbabilities(const tensor::Tensor &image);

    /**
     * Softmax class probabilities for many images, forwarded in
     * sub-batches under one ScratchArena frame each, so conv/GEMM
     * packing panels reuse the same hot scratch slabs across the whole
     * run instead of re-growing per image. out[i] equals a serial
     * classProbabilities(*images[i]) bit for bit: every per-sample
     * value is accumulated in the same order regardless of how many
     * rows share the batch.
     */
    std::vector<std::vector<double>> classProbabilitiesBatch(
        const std::vector<const tensor::Tensor *> &images);

    /** Argmax class for one image. */
    int predict(const tensor::Tensor &image);

    /** Indices of the k highest-probability classes, descending. */
    std::vector<int> topK(const tensor::Tensor &image, std::size_t k);

    /** Classification accuracy over a dataset. */
    double evaluate(const FingerprintDataset &data);

    std::size_t numClasses() const { return numClasses_; }
    std::size_t resolution() const { return resolution_; }

    nn::ParamRefs params();

  private:
    tensor::Tensor forward(const tensor::Tensor &batch_images);
    void backward(const tensor::Tensor &dlogits);
    tensor::Tensor toBatchTensor(
        const std::vector<const tensor::Tensor *> &images) const;

    std::size_t resolution_;
    std::size_t numClasses_;
    std::size_t flatDim_;

    util::Rng rng_; // must precede the layers it initializes
    // ReLU activations are fused into the conv/fc epilogues (fc3
    // produces raw logits).
    nn::Conv2d conv1_;
    nn::MaxPool2d pool1_;
    nn::Conv2d conv2_;
    nn::MaxPool2d pool2_;
    nn::Linear fc1_, fc2_, fc3_;
    nn::SoftmaxCrossEntropy loss_;

    std::vector<std::size_t> convOutShape_; // shape after pool2
};

/**
 * Argmax class for each image, computed in parallel on the sched
 * pool. Each worker chunk predicts on its own copy of the CNN (the
 * forward caches make predict() non-const, but the prediction itself
 * is a pure function of the weights), so the result vector is
 * identical to a serial predict() loop at any thread count.
 */
std::vector<int>
predictBatch(const FingerprintCnn &cnn,
             const std::vector<const tensor::Tensor *> &images);

/**
 * Full softmax probability vector for each image, computed in
 * parallel on the sched pool under the same per-chunk-copy contract
 * as predictBatch: out[i] equals a serial classProbabilities(images
 * [i]) call bit for bit at any thread count. This is the primitive
 * behind cross-victim batched level-1 classification in campaigns.
 */
std::vector<std::vector<double>>
probabilitiesBatch(const FingerprintCnn &cnn,
                   const std::vector<const tensor::Tensor *> &images);

} // namespace decepticon::fingerprint

#endif // DECEPTICON_FINGERPRINT_CNN_HH
