#include "fingerprint/metrics.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace decepticon::fingerprint {

std::size_t
ConfusionMatrix::total() const
{
    std::size_t n = 0;
    for (const auto &row : counts)
        for (auto c : row)
            n += c;
    return n;
}

double
ConfusionMatrix::accuracy() const
{
    const std::size_t n = total();
    if (n == 0)
        return 0.0;
    std::size_t diag = 0;
    for (std::size_t i = 0; i < counts.size(); ++i)
        diag += counts[i][i];
    return static_cast<double>(diag) / static_cast<double>(n);
}

double
ConfusionMatrix::precision(std::size_t c) const
{
    assert(c < counts.size());
    std::size_t predicted = 0;
    for (std::size_t t = 0; t < counts.size(); ++t)
        predicted += counts[t][c];
    return predicted == 0 ? 0.0
                          : static_cast<double>(counts[c][c]) /
                                static_cast<double>(predicted);
}

double
ConfusionMatrix::recall(std::size_t c) const
{
    assert(c < counts.size());
    std::size_t seen = 0;
    for (std::size_t p = 0; p < counts.size(); ++p)
        seen += counts[c][p];
    return seen == 0 ? 0.0
                     : static_cast<double>(counts[c][c]) /
                           static_cast<double>(seen);
}

std::string
ConfusionMatrix::toString() const
{
    std::ostringstream oss;
    oss << "truth\\pred";
    for (std::size_t c = 0; c < counts.size(); ++c)
        oss << "\t" << c;
    oss << "\n";
    for (std::size_t t = 0; t < counts.size(); ++t) {
        oss << t;
        if (t < classNames.size())
            oss << " (" << classNames[t].substr(0, 18) << ")";
        for (std::size_t p = 0; p < counts.size(); ++p)
            oss << "\t" << counts[t][p];
        oss << "\n";
    }
    return oss.str();
}

ConfusionMatrix
confusionMatrix(FingerprintCnn &cnn, const FingerprintDataset &data)
{
    ConfusionMatrix cm;
    cm.classNames = data.classNames;
    cm.counts.assign(data.numClasses(),
                     std::vector<std::size_t>(data.numClasses(), 0));
    for (const auto &sample : data.samples) {
        const int pred = cnn.predict(sample.image);
        assert(pred >= 0 &&
               static_cast<std::size_t>(pred) < data.numClasses());
        ++cm.counts[static_cast<std::size_t>(sample.label)]
                   [static_cast<std::size_t>(pred)];
    }
    return cm;
}

double
topKAccuracy(FingerprintCnn &cnn, const FingerprintDataset &data,
             std::size_t k)
{
    if (data.samples.empty())
        return 0.0;
    std::size_t hits = 0;
    for (const auto &sample : data.samples) {
        const auto top = cnn.topK(sample.image, k);
        if (std::find(top.begin(), top.end(), sample.label) != top.end())
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(data.samples.size());
}

} // namespace decepticon::fingerprint
