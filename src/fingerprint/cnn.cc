#include "fingerprint/cnn.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "nn/optim.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"
#include "tensor/kernels/arena.hh"
#include "util/rng.hh"

namespace decepticon::fingerprint {

namespace {

/** Output size of a valid conv/pool stage: (in - k) / s + 1. */
std::size_t
stageOut(std::size_t in, std::size_t k, std::size_t s)
{
    assert(in >= k);
    return (in - k) / s + 1;
}

} // anonymous namespace

FingerprintCnn::FingerprintCnn(std::size_t resolution,
                               std::size_t num_classes, std::uint64_t seed)
    : resolution_(resolution),
      numClasses_(num_classes),
      flatDim_(0),
      rng_(seed),
      conv1_("cnn.conv1", 1, 6, 5, rng_),
      pool1_(4, 4),
      conv2_("cnn.conv2", 6, 16, 5, rng_),
      pool2_(2, 2),
      fc1_("cnn.fc1",
           [&] {
               const std::size_t c1 = stageOut(resolution, 5, 1);
               const std::size_t p1 = stageOut(c1, 4, 4);
               const std::size_t c2 = stageOut(p1, 5, 1);
               const std::size_t p2 = stageOut(c2, 2, 2);
               return 16 * p2 * p2;
           }(),
           120, rng_),
      fc2_("cnn.fc2", 120, 84, rng_),
      fc3_("cnn.fc3", 84, num_classes, rng_)
{
    // conv5/pool4/conv5/pool2 needs at least 28 input pixels for a
    // non-empty final feature map.
    assert(resolution >= 28);
    flatDim_ = fc1_.inFeatures();
    conv1_.setActivation(tensor::kernels::Act::Relu);
    conv2_.setActivation(tensor::kernels::Act::Relu);
    fc1_.setActivation(tensor::kernels::Act::Relu);
    fc2_.setActivation(tensor::kernels::Act::Relu);
}

tensor::Tensor
FingerprintCnn::toBatchTensor(
    const std::vector<const tensor::Tensor *> &images) const
{
    const std::size_t b = images.size();
    tensor::Tensor batch({b, 1, resolution_, resolution_});
    const std::size_t plane = resolution_ * resolution_;
    for (std::size_t i = 0; i < b; ++i) {
        assert(images[i]->size() == plane);
        std::copy(images[i]->data(), images[i]->data() + plane,
                  batch.data() + i * plane);
    }
    return batch;
}

tensor::Tensor
FingerprintCnn::forward(const tensor::Tensor &batch_images)
{
    const std::size_t b = batch_images.dim(0);
    tensor::Tensor x = conv1_.forward(batch_images);
    x = pool1_.forward(x);
    x = conv2_.forward(x);
    x = pool2_.forward(x);
    convOutShape_ = x.shape();
    x = x.reshaped({b, flatDim_});
    x = fc1_.forward(x);
    x = fc2_.forward(x);
    return fc3_.forward(x);
}

void
FingerprintCnn::backward(const tensor::Tensor &dlogits)
{
    tensor::Tensor d = fc3_.backward(dlogits);
    d = fc2_.backward(d);
    d = fc1_.backward(d);
    d = d.reshaped(convOutShape_);
    d = pool2_.backward(d);
    d = conv2_.backward(d);
    d = pool1_.backward(d);
    conv1_.backward(d);
}

nn::ParamRefs
FingerprintCnn::params()
{
    nn::ParamRefs out;
    for (auto ps : {conv1_.params(), conv2_.params(), fc1_.params(),
                    fc2_.params(), fc3_.params()})
        out.insert(out.end(), ps.begin(), ps.end());
    return out;
}

float
FingerprintCnn::train(const FingerprintDataset &data,
                      const CnnTrainOptions &opts)
{
    assert(!data.samples.empty());
    assert(data.resolution == resolution_);

    auto sp = obs::span("fingerprint.cnn.train", "fingerprint");
    sp.arg("samples", static_cast<std::uint64_t>(data.samples.size()));
    sp.arg("epochs", static_cast<std::uint64_t>(opts.epochs));

    nn::Adam optim(params(), opts.lr);
    util::Rng rng(opts.shuffleSeed);
    std::vector<std::size_t> order(data.samples.size());
    std::iota(order.begin(), order.end(), 0);

    float last_epoch_loss = 0.0f;
    for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
        rng.shuffle(order);
        double loss_sum = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start < order.size();
             start += opts.batchSize) {
            const std::size_t end =
                std::min(start + opts.batchSize, order.size());
            std::vector<const tensor::Tensor *> images;
            std::vector<int> labels;
            for (std::size_t i = start; i < end; ++i) {
                images.push_back(&data.samples[order[i]].image);
                labels.push_back(data.samples[order[i]].label);
            }
            optim.zeroGrad();
            tensor::Tensor logits = forward(toBatchTensor(images));
            loss_sum += loss_.forward(logits, labels);
            backward(loss_.backward());
            optim.step();
            // Forward caches for this batch are dead once the step is
            // taken; a stray backward() against them now asserts.
            tensor::kernels::recycleActivations();
            ++batches;
        }
        last_epoch_loss =
            static_cast<float>(loss_sum / std::max<std::size_t>(1, batches));
    }
    return last_epoch_loss;
}

std::vector<double>
FingerprintCnn::classProbabilities(const tensor::Tensor &image)
{
    tensor::Tensor logits = forward(toBatchTensor({&image}));
    tensor::Tensor probs = tensor::softmaxRows(logits);
    std::vector<double> out(numClasses_);
    for (std::size_t i = 0; i < numClasses_; ++i)
        out[i] = probs[i];
    return out;
}

std::vector<std::vector<double>>
FingerprintCnn::classProbabilitiesBatch(
    const std::vector<const tensor::Tensor *> &images)
{
    // Small fixed sub-batch: big enough that fc GEMMs amortize packing
    // and the scratch slabs stay warm, small enough that activation
    // footprint stays bounded at campaign batch sizes.
    constexpr std::size_t kSubBatch = 8;
    std::vector<std::vector<double>> out(images.size());
    for (std::size_t start = 0; start < images.size();
         start += kSubBatch) {
        const std::size_t end =
            std::min(start + kSubBatch, images.size());
        const std::vector<const tensor::Tensor *> sub(
            images.begin() + static_cast<std::ptrdiff_t>(start),
            images.begin() + static_cast<std::ptrdiff_t>(end));
        // One arena frame per sub-batch: every buffer the forward
        // pass bump-allocates is reclaimed (not freed) here, so the
        // next sub-batch reuses the identical hot pages.
        tensor::kernels::ScratchArena::Frame frame(
            tensor::kernels::scratch());
        tensor::Tensor logits = forward(toBatchTensor(sub));
        tensor::Tensor probs = tensor::softmaxRows(logits);
        for (std::size_t i = start; i < end; ++i) {
            std::vector<double> row(numClasses_);
            for (std::size_t c = 0; c < numClasses_; ++c)
                row[c] = probs[(i - start) * numClasses_ + c];
            out[i] = std::move(row);
        }
    }
    return out;
}

int
FingerprintCnn::predict(const tensor::Tensor &image)
{
    const auto probs = classProbabilities(image);
    return static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int>
FingerprintCnn::topK(const tensor::Tensor &image, std::size_t k)
{
    const auto probs = classProbabilities(image);
    std::vector<int> idx(probs.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
        return probs[static_cast<std::size_t>(a)] >
               probs[static_cast<std::size_t>(b)];
    });
    idx.resize(std::min(k, idx.size()));
    return idx;
}

double
FingerprintCnn::evaluate(const FingerprintDataset &data)
{
    if (data.samples.empty())
        return 0.0;
    std::vector<const tensor::Tensor *> images;
    images.reserve(data.samples.size());
    for (const auto &s : data.samples)
        images.push_back(&s.image);
    const std::vector<int> preds = predictBatch(*this, images);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == data.samples[i].label)
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(data.samples.size());
}

std::vector<int>
predictBatch(const FingerprintCnn &cnn,
             const std::vector<const tensor::Tensor *> &images)
{
    std::vector<int> out(images.size());
    sched::parallelForRange(
        images.size(), 0, [&](std::size_t begin, std::size_t end) {
            FingerprintCnn local(cnn); // private forward caches
            const std::vector<const tensor::Tensor *> chunk(
                images.begin() + static_cast<std::ptrdiff_t>(begin),
                images.begin() + static_cast<std::ptrdiff_t>(end));
            const auto rows = local.classProbabilitiesBatch(chunk);
            for (std::size_t i = begin; i < end; ++i) {
                const auto &p = rows[i - begin];
                out[i] = static_cast<int>(
                    std::max_element(p.begin(), p.end()) - p.begin());
            }
        });
    return out;
}

std::vector<std::vector<double>>
probabilitiesBatch(const FingerprintCnn &cnn,
                   const std::vector<const tensor::Tensor *> &images)
{
    std::vector<std::vector<double>> out(images.size());
    sched::parallelForRange(
        images.size(), 0, [&](std::size_t begin, std::size_t end) {
            FingerprintCnn local(cnn); // private forward caches
            const std::vector<const tensor::Tensor *> chunk(
                images.begin() + static_cast<std::ptrdiff_t>(begin),
                images.begin() + static_cast<std::ptrdiff_t>(end));
            auto rows = local.classProbabilitiesBatch(chunk);
            for (std::size_t i = begin; i < end; ++i)
                out[i] = std::move(rows[i - begin]);
        });
    return out;
}

} // namespace decepticon::fingerprint
