#include "fingerprint/boundary.hh"

#include <algorithm>

#include "trace/image.hh"

namespace decepticon::fingerprint {

namespace {

struct Run
{
    std::size_t begin; // first matching index
    std::size_t end;   // one past last matching index
};

/** Maximal runs of i where seq[i] == seq[i+p]. */
std::vector<Run>
selfMatchRuns(const std::vector<int> &seq, std::size_t p)
{
    std::vector<Run> runs;
    const std::size_t n = seq.size();
    std::size_t i = 0;
    while (i + p < n) {
        if (seq[i] == seq[i + p]) {
            std::size_t s = i;
            while (i + p < n && seq[i] == seq[i + p])
                ++i;
            runs.push_back({s, i});
        } else {
            ++i;
        }
    }
    return runs;
}

} // anonymous namespace

BoundaryResult
detectLayerBoundaries(const gpusim::KernelTrace &trace)
{
    BoundaryResult best;
    const std::vector<int> seq = trace.kernelIdSequence();
    const std::size_t n = seq.size();
    if (n < 4)
        return best;

    const std::size_t max_period = std::min<std::size_t>(n / 2, 600);

    std::size_t best_coverage = 0;
    std::vector<std::pair<std::size_t, BoundaryResult>> candidates;

    for (std::size_t p = 2; p <= max_period; ++p) {
        BoundaryResult cand;
        cand.period = p;
        std::size_t coverage = 0;
        for (const Run &run : selfMatchRuns(seq, p)) {
            const std::size_t len = run.end - run.begin;
            if (len < p)
                continue; // fewer than two repetitions
            cand.regions.emplace_back(run.begin, run.end + p);
            cand.repetitions += len / p + 1;
            coverage += len + p;
        }
        if (cand.repetitions < 2)
            continue;
        candidates.emplace_back(coverage, cand);
        best_coverage = std::max(best_coverage, coverage);
    }
    if (candidates.empty())
        return best;

    // Prefer the shortest period whose coverage is essentially as good
    // as the best (longer multiples of the true period cover slightly
    // less; unrelated short periods cover far less).
    const auto threshold =
        static_cast<std::size_t>(0.98 * static_cast<double>(best_coverage));
    for (const auto &[coverage, cand] : candidates) {
        if (coverage >= threshold) {
            best = cand;
            best.coverage = static_cast<double>(coverage) /
                            static_cast<double>(n);
            break;
        }
    }

    // An encoder region dominates its trace; short accidental
    // repetitions inside a single group (repeated decoration kernels)
    // must not count as layer structure.
    if (best.coverage < 0.25)
        return BoundaryResult{};

    for (const auto &[begin, end] : best.regions) {
        for (std::size_t i = begin; i < end && i < trace.records.size();
             ++i) {
            best.peakDurationUs =
                std::max(best.peakDurationUs, trace.records[i].duration());
        }
    }
    return best;
}

gpusim::KernelTrace
cropToEncoderRegion(const gpusim::KernelTrace &trace)
{
    const BoundaryResult res = detectLayerBoundaries(trace);
    if (!res.found())
        return trace;

    gpusim::KernelTrace out;
    out.kernelNames = trace.kernelNames;
    double t = 0.0;
    for (const auto &[begin, end] : res.regions) {
        const gpusim::KernelTrace part =
            trace::cropRecords(trace, begin,
                               std::min(end, trace.records.size()));
        for (gpusim::KernelRecord rec : part.records) {
            const double dur = rec.duration();
            rec.tStart += t;
            rec.tEnd = rec.tStart + dur;
            out.records.push_back(rec);
        }
        if (!part.records.empty())
            t = out.records.back().tEnd + 2.0;
    }
    return out;
}

} // namespace decepticon::fingerprint
