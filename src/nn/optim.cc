#include "nn/optim.hh"

#include <cmath>

namespace decepticon::nn {

Sgd::Sgd(ParamRefs params, float lr, float momentum, float weight_decay)
    : params_(std::move(params)), lr_(lr), momentum_(momentum),
      weightDecay_(weight_decay)
{
    if (momentum_ != 0.0f) {
        velocity_.reserve(params_.size());
        for (auto *p : params_)
            velocity_.emplace_back(p->value.shape());
    }
}

void
Sgd::step()
{
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        Parameter &p = *params_[pi];
        for (std::size_t i = 0; i < p.value.size(); ++i) {
            float g = p.grad[i];
            if (weightDecay_ != 0.0f)
                g += weightDecay_ * p.value[i];
            if (momentum_ != 0.0f) {
                float &v = velocity_[pi][i];
                v = momentum_ * v + g;
                g = v;
            }
            p.value[i] -= lr_ * g;
        }
    }
}

void
Sgd::zeroGrad()
{
    zeroGrads(params_);
}

Adam::Adam(ParamRefs params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps), weightDecay_(weight_decay)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (auto *p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void
Adam::step()
{
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        Parameter &p = *params_[pi];
        for (std::size_t i = 0; i < p.value.size(); ++i) {
            const float g = p.grad[i];
            float &m = m_[pi][i];
            float &v = v_[pi][i];
            m = beta1_ * m + (1.0f - beta1_) * g;
            v = beta2_ * v + (1.0f - beta2_) * g * g;
            const float mhat = m / bc1;
            const float vhat = v / bc2;
            float update = mhat / (std::sqrt(vhat) + eps_);
            if (weightDecay_ != 0.0f)
                update += weightDecay_ * p.value[i];
            p.value[i] -= lr_ * update;
        }
    }
}

void
Adam::zeroGrad()
{
    zeroGrads(params_);
}

} // namespace decepticon::nn
