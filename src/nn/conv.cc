#include "nn/conv.hh"

#include <cmath>
#include <cstring>
#include <limits>

namespace decepticon::nn {

namespace kernels = tensor::kernels;

Conv2d::Conv2d(std::string name, std::size_t in_channels,
               std::size_t out_channels, std::size_t kernel, util::Rng &rng)
    : weight(name + ".weight", {out_channels, in_channels, kernel, kernel}),
      bias(name + ".bias", {out_channels}),
      inChannels_(in_channels),
      outChannels_(out_channels),
      kernel_(kernel)
{
    weight.value.fillXavier(rng, in_channels * kernel * kernel,
                            out_channels * kernel * kernel);
}

tensor::Tensor
Conv2d::forward(const tensor::Tensor &x)
{
    assert(x.rank() == 4);
    assert(x.dim(1) == inChannels_);
    const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    assert(h >= kernel_ && w >= kernel_);

    naiveForward_ = kernels::naiveEnabled();
    if (naiveForward_)
        return forwardNaive(x);

    const std::size_t oh = h - kernel_ + 1;
    const std::size_t ow = w - kernel_ + 1;
    const std::size_t in_plane = h * w;
    const std::size_t out_plane = oh * ow;
    const std::size_t ck2 = inChannels_ * kernel_ * kernel_;
    inShape_ = x.shape();

    tensor::Tensor y({n, outChannels_, oh, ow});
    float *col_all = colCache_.prepare(n * ck2 * out_plane);
    float *preact_all = act_ != kernels::Act::None
        ? preactCache_.prepare(n * outChannels_ * out_plane)
        : nullptr;

    for (std::size_t b = 0; b < n; ++b) {
        // im2col: patch row q = (ci*k + kr)*k + kc holds the input
        // window element (ci, r+kr, c+kc) for every output cell
        // (r, c). Each (q, r) segment is ow contiguous input floats.
        float *col = col_all + b * ck2 * out_plane;
        const float *xb = x.data() + b * inChannels_ * in_plane;
        std::size_t q = 0;
        for (std::size_t ci = 0; ci < inChannels_; ++ci) {
            const float *xplane = xb + ci * in_plane;
            for (std::size_t kr = 0; kr < kernel_; ++kr) {
                for (std::size_t kc = 0; kc < kernel_; ++kc, ++q) {
                    float *crow = col + q * out_plane;
                    for (std::size_t r = 0; r < oh; ++r)
                        std::memcpy(crow + r * ow,
                                    xplane + (r + kr) * w + kc,
                                    ow * sizeof(float));
                }
            }
        }
        // y_b = act(W_(Cout, ck2) · col + bias) in one fused GEMM.
        kernels::GemmCall call;
        call.n = outChannels_;
        call.m = out_plane;
        call.k = ck2;
        call.a = weight.value.data();
        call.b = col;
        call.c = y.data() + b * outChannels_ * out_plane;
        call.rowBias = bias.value.data();
        call.act = act_;
        if (preact_all)
            call.preact = preact_all + b * outChannels_ * out_plane;
        kernels::gemm(kernels::Trans::NN, call);
    }
    return y;
}

tensor::Tensor
Conv2d::backward(const tensor::Tensor &dy)
{
    assert(dy.rank() == 4 && dy.dim(1) == outChannels_);
    if (naiveForward_)
        return backwardNaive(dy);
    assert(colCache_.valid() &&
           "Conv2d::backward after recycleActivations()");

    const std::size_t n = inShape_[0], h = inShape_[2], w = inShape_[3];
    const std::size_t oh = dy.dim(2), ow = dy.dim(3);
    assert(dy.dim(0) == n);
    assert(oh == h - kernel_ + 1 && ow == w - kernel_ + 1);
    const std::size_t in_plane = h * w;
    const std::size_t out_plane = oh * ow;
    const std::size_t ck2 = inChannels_ * kernel_ * kernel_;

    // Fold the fused activation's derivative into the gradient.
    const float *g_all = dy.data();
    tensor::Tensor dpre;
    if (act_ != kernels::Act::None) {
        assert(preactCache_.valid());
        dpre = dy;
        const float *pre = preactCache_.data();
        for (std::size_t i = 0; i < dpre.size(); ++i)
            dpre[i] *= kernels::actBackward(act_, pre[i]);
        g_all = dpre.data();
    }

    tensor::Tensor dx({n, inChannels_, h, w});
    kernels::ScratchArena::Frame frame(kernels::scratch());
    float *dcol = kernels::scratch().alloc(ck2 * out_plane);

    for (std::size_t b = 0; b < n; ++b) {
        const float *gb = g_all + b * outChannels_ * out_plane;
        const float *col = colCache_.data() + b * ck2 * out_plane;

        for (std::size_t co = 0; co < outChannels_; ++co) {
            const float *gplane = gb + co * out_plane;
            for (std::size_t i = 0; i < out_plane; ++i)
                bias.grad[co] += gplane[i];
        }

        // dW += g_b · col_b^T.
        kernels::GemmCall dw;
        dw.n = outChannels_;
        dw.m = ck2;
        dw.k = out_plane;
        dw.a = gb;
        dw.b = col;
        dw.c = weight.grad.data();
        dw.accumulate = true;
        kernels::gemm(kernels::Trans::NT, dw);

        // dcol = W^T · g_b, then scatter back to input coordinates.
        kernels::GemmCall dc;
        dc.n = ck2;
        dc.m = out_plane;
        dc.k = outChannels_;
        dc.a = weight.value.data();
        dc.b = gb;
        dc.c = dcol;
        kernels::gemm(kernels::Trans::TN, dc);

        float *dxb = dx.data() + b * inChannels_ * in_plane;
        std::size_t q = 0;
        for (std::size_t ci = 0; ci < inChannels_; ++ci) {
            float *dxplane = dxb + ci * in_plane;
            for (std::size_t kr = 0; kr < kernel_; ++kr) {
                for (std::size_t kc = 0; kc < kernel_; ++kc, ++q) {
                    const float *crow = dcol + q * out_plane;
                    for (std::size_t r = 0; r < oh; ++r) {
                        float *dxrow = dxplane + (r + kr) * w + kc;
                        const float *src = crow + r * ow;
                        for (std::size_t c = 0; c < ow; ++c)
                            dxrow[c] += src[c];
                    }
                }
            }
        }
    }
    return dx;
}

tensor::Tensor
Conv2d::forwardNaive(const tensor::Tensor &x)
{
    const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const std::size_t oh = h - kernel_ + 1;
    const std::size_t ow = w - kernel_ + 1;
    cachedInput_ = x;
    inShape_ = x.shape();

    tensor::Tensor y({n, outChannels_, oh, ow});
    const std::size_t in_plane = h * w;
    const std::size_t out_plane = oh * ow;
    const std::size_t wplane = kernel_ * kernel_;

    for (std::size_t b = 0; b < n; ++b) {
        const float *xb = x.data() + b * inChannels_ * in_plane;
        float *yb = y.data() + b * outChannels_ * out_plane;
        for (std::size_t co = 0; co < outChannels_; ++co) {
            float *yplane = yb + co * out_plane;
            const float bval = bias.value[co];
            for (std::size_t i = 0; i < out_plane; ++i)
                yplane[i] = bval;
            for (std::size_t ci = 0; ci < inChannels_; ++ci) {
                const float *xplane = xb + ci * in_plane;
                const float *wk = weight.value.data() +
                    (co * inChannels_ + ci) * wplane;
                for (std::size_t r = 0; r < oh; ++r) {
                    for (std::size_t c = 0; c < ow; ++c) {
                        float s = 0.0f;
                        for (std::size_t kr = 0; kr < kernel_; ++kr) {
                            const float *xrow =
                                xplane + (r + kr) * w + c;
                            const float *wrow = wk + kr * kernel_;
                            for (std::size_t kc = 0; kc < kernel_; ++kc)
                                s += xrow[kc] * wrow[kc];
                        }
                        yplane[r * ow + c] += s;
                    }
                }
            }
        }
    }
    if (act_ != kernels::Act::None) {
        preactCache_.store(y.data(), y.size());
        for (std::size_t i = 0; i < y.size(); ++i)
            y[i] = kernels::actForward(act_, y[i]);
    }
    return y;
}

tensor::Tensor
Conv2d::backwardNaive(const tensor::Tensor &dy)
{
    const tensor::Tensor &x = cachedInput_;
    const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const std::size_t oh = dy.dim(2), ow = dy.dim(3);
    assert(oh == h - kernel_ + 1 && ow == w - kernel_ + 1);

    const float *g_all = dy.data();
    tensor::Tensor dpre;
    if (act_ != kernels::Act::None) {
        assert(preactCache_.valid());
        dpre = dy;
        const float *pre = preactCache_.data();
        for (std::size_t i = 0; i < dpre.size(); ++i)
            dpre[i] *= kernels::actBackward(act_, pre[i]);
        g_all = dpre.data();
    }

    tensor::Tensor dx({n, inChannels_, h, w});
    const std::size_t in_plane = h * w;
    const std::size_t out_plane = oh * ow;
    const std::size_t wplane = kernel_ * kernel_;

    for (std::size_t b = 0; b < n; ++b) {
        const float *xb = x.data() + b * inChannels_ * in_plane;
        float *dxb = dx.data() + b * inChannels_ * in_plane;
        const float *dyb = g_all + b * outChannels_ * out_plane;
        for (std::size_t co = 0; co < outChannels_; ++co) {
            const float *dyplane = dyb + co * out_plane;
            for (std::size_t i = 0; i < out_plane; ++i)
                bias.grad[co] += dyplane[i];
            for (std::size_t ci = 0; ci < inChannels_; ++ci) {
                const float *xplane = xb + ci * in_plane;
                float *dxplane = dxb + ci * in_plane;
                const float *wk = weight.value.data() +
                    (co * inChannels_ + ci) * wplane;
                float *dwk = weight.grad.data() +
                    (co * inChannels_ + ci) * wplane;
                for (std::size_t r = 0; r < oh; ++r) {
                    for (std::size_t c = 0; c < ow; ++c) {
                        const float g = dyplane[r * ow + c];
                        if (g == 0.0f)
                            continue;
                        for (std::size_t kr = 0; kr < kernel_; ++kr) {
                            const float *xrow =
                                xplane + (r + kr) * w + c;
                            float *dxrow = dxplane + (r + kr) * w + c;
                            const float *wrow = wk + kr * kernel_;
                            float *dwrow = dwk + kr * kernel_;
                            for (std::size_t kc = 0; kc < kernel_; ++kc) {
                                dwrow[kc] += g * xrow[kc];
                                dxrow[kc] += g * wrow[kc];
                            }
                        }
                    }
                }
            }
        }
    }
    return dx;
}

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride)
{
    assert(kernel > 0 && stride > 0);
}

tensor::Tensor
MaxPool2d::forward(const tensor::Tensor &x)
{
    assert(x.rank() == 4);
    const std::size_t n = x.dim(0), ch = x.dim(1), h = x.dim(2),
        w = x.dim(3);
    assert(h >= kernel_ && w >= kernel_);
    const std::size_t oh = (h - kernel_) / stride_ + 1;
    const std::size_t ow = (w - kernel_) / stride_ + 1;
    inShape_ = x.shape();

    tensor::Tensor y({n, ch, oh, ow});
    argmax_.assign(y.size(), 0);
    const std::size_t in_plane = h * w;
    const std::size_t out_plane = oh * ow;

    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t c = 0; c < ch; ++c) {
            const std::size_t in_base = (b * ch + c) * in_plane;
            const std::size_t out_base = (b * ch + c) * out_plane;
            for (std::size_t r = 0; r < oh; ++r) {
                for (std::size_t q = 0; q < ow; ++q) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::size_t best_idx = 0;
                    for (std::size_t kr = 0; kr < kernel_; ++kr) {
                        for (std::size_t kc = 0; kc < kernel_; ++kc) {
                            const std::size_t idx = in_base +
                                (r * stride_ + kr) * w +
                                (q * stride_ + kc);
                            if (x[idx] > best) {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    const std::size_t oidx = out_base + r * ow + q;
                    y[oidx] = best;
                    argmax_[oidx] = best_idx;
                }
            }
        }
    }
    return y;
}

tensor::Tensor
MaxPool2d::backward(const tensor::Tensor &dy)
{
    assert(dy.size() == argmax_.size());
    tensor::Tensor dx(inShape_);
    for (std::size_t i = 0; i < dy.size(); ++i)
        dx[argmax_[i]] += dy[i];
    return dx;
}

} // namespace decepticon::nn
