/**
 * @file
 * Trainable parameter: a value tensor paired with a gradient
 * accumulator of identical shape. Layers expose their parameters via
 * params() so optimizers and the weight-extraction tooling can iterate
 * over a model's full weight set uniformly.
 */

#ifndef DECEPTICON_NN_PARAM_HH
#define DECEPTICON_NN_PARAM_HH

#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace decepticon::nn {

/** A named, trainable tensor with its gradient accumulator. */
struct Parameter
{
    std::string name;
    tensor::Tensor value;
    tensor::Tensor grad;

    Parameter() = default;

    Parameter(std::string paramName, std::vector<std::size_t> shape)
        : name(std::move(paramName)), value(shape), grad(std::move(shape))
    {
    }

    /** Reset accumulated gradients to zero. */
    void zeroGrad() { grad.fill(0.0f); }

    /** Element count. */
    std::size_t size() const { return value.size(); }
};

/** Flat list of parameter pointers (non-owning). */
using ParamRefs = std::vector<Parameter *>;

/** Zero the gradients of every parameter in the list. */
inline void
zeroGrads(const ParamRefs &params)
{
    for (auto *p : params)
        p->zeroGrad();
}

/** Total number of scalar weights across the list. */
inline std::size_t
totalParamCount(const ParamRefs &params)
{
    std::size_t n = 0;
    for (auto *p : params)
        n += p->size();
    return n;
}

} // namespace decepticon::nn

#endif // DECEPTICON_NN_PARAM_HH
