#include "nn/activations.hh"

#include <cmath>

namespace decepticon::nn {

tensor::Tensor
Relu::forward(const tensor::Tensor &x)
{
    cachedInput_ = x;
    tensor::Tensor y = x;
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = y[i] > 0.0f ? y[i] : 0.0f;
    return y;
}

tensor::Tensor
Relu::backward(const tensor::Tensor &dy)
{
    assert(dy.size() == cachedInput_.size());
    tensor::Tensor dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i) {
        if (cachedInput_[i] <= 0.0f)
            dx[i] = 0.0f;
    }
    return dx;
}

namespace {

constexpr float kGeluC = 0.7978845608028654f; // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

} // anonymous namespace

tensor::Tensor
Gelu::forward(const tensor::Tensor &x)
{
    cachedInput_ = x;
    tensor::Tensor y = x;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const float v = y[i];
        const float t = std::tanh(kGeluC * (v + kGeluA * v * v * v));
        y[i] = 0.5f * v * (1.0f + t);
    }
    return y;
}

tensor::Tensor
Gelu::backward(const tensor::Tensor &dy)
{
    assert(dy.size() == cachedInput_.size());
    tensor::Tensor dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i) {
        const float v = cachedInput_[i];
        const float u = kGeluC * (v + kGeluA * v * v * v);
        const float t = std::tanh(u);
        const float sech2 = 1.0f - t * t;
        const float du = kGeluC * (1.0f + 3.0f * kGeluA * v * v);
        const float grad = 0.5f * (1.0f + t) + 0.5f * v * sech2 * du;
        dx[i] *= grad;
    }
    return dx;
}

} // namespace decepticon::nn
