#include "nn/activations.hh"

#include "tensor/kernels/kernels.hh"

namespace decepticon::nn {

namespace kernels = tensor::kernels;

tensor::Tensor
Relu::forward(const tensor::Tensor &x)
{
    cachedInput_ = x;
    tensor::Tensor y = x;
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = kernels::actForward(kernels::Act::Relu, y[i]);
    return y;
}

tensor::Tensor
Relu::backward(const tensor::Tensor &dy)
{
    assert(dy.size() == cachedInput_.size());
    tensor::Tensor dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i)
        dx[i] *= kernels::actBackward(kernels::Act::Relu, cachedInput_[i]);
    return dx;
}

tensor::Tensor
Gelu::forward(const tensor::Tensor &x)
{
    cachedInput_ = x;
    tensor::Tensor y = x;
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = kernels::geluForward(y[i]);
    return y;
}

tensor::Tensor
Gelu::backward(const tensor::Tensor &dy)
{
    assert(dy.size() == cachedInput_.size());
    tensor::Tensor dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i)
        dx[i] *= kernels::geluBackward(cachedInput_[i]);
    return dx;
}

} // namespace decepticon::nn
