/**
 * @file
 * Softmax cross-entropy loss over (N, C) logits.
 */

#ifndef DECEPTICON_NN_LOSS_HH
#define DECEPTICON_NN_LOSS_HH

#include <vector>

#include "tensor/tensor.hh"

namespace decepticon::nn {

/**
 * Combined softmax + cross-entropy. forward() returns the mean loss;
 * backward() returns dlogits (already averaged over the batch).
 */
class SoftmaxCrossEntropy
{
  public:
    /** @pre logits is (N, C), labels has N entries in [0, C). */
    float forward(const tensor::Tensor &logits,
                  const std::vector<int> &labels);

    /** Gradient with respect to the logits of the last forward call. */
    tensor::Tensor backward() const;

    /** Softmax probabilities of the last forward call. */
    const tensor::Tensor &probs() const { return probs_; }

  private:
    tensor::Tensor probs_;
    std::vector<int> labels_;
};

/** Index of the maximum logit per row. */
std::vector<int> argmaxRows(const tensor::Tensor &logits);

} // namespace decepticon::nn

#endif // DECEPTICON_NN_LOSS_HH
