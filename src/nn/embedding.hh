/**
 * @file
 * Token embedding table with sparse-gradient backward.
 */

#ifndef DECEPTICON_NN_EMBEDDING_HH
#define DECEPTICON_NN_EMBEDDING_HH

#include <string>
#include <vector>

#include "nn/param.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace decepticon::nn {

/** Lookup table mapping token ids to dense rows of dimension dim. */
class Embedding
{
  public:
    Embedding(std::string name, std::size_t vocab, std::size_t dim,
              util::Rng &rng);

    /** Map a token sequence to an (len, dim) activation. */
    tensor::Tensor forward(const std::vector<int> &tokens);

    /** Scatter-add dy rows into the gradient of the looked-up rows. */
    void backward(const tensor::Tensor &dy);

    ParamRefs params() { return {&table}; }

    std::size_t vocab() const { return vocab_; }
    std::size_t dim() const { return dim_; }

    Parameter table;

  private:
    std::size_t vocab_;
    std::size_t dim_;
    std::vector<int> cachedTokens_;
};

} // namespace decepticon::nn

#endif // DECEPTICON_NN_EMBEDDING_HH
