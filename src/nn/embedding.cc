#include "nn/embedding.hh"

namespace decepticon::nn {

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim,
                     util::Rng &rng)
    : table(name + ".table", {vocab, dim}), vocab_(vocab), dim_(dim)
{
    table.value.fillGaussian(rng, 0.02f);
}

tensor::Tensor
Embedding::forward(const std::vector<int> &tokens)
{
    cachedTokens_ = tokens;
    tensor::Tensor out({tokens.size(), dim_});
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const auto tok = static_cast<std::size_t>(tokens[i]);
        assert(tok < vocab_);
        const float *src = table.value.data() + tok * dim_;
        float *dst = out.data() + i * dim_;
        for (std::size_t j = 0; j < dim_; ++j)
            dst[j] = src[j];
    }
    return out;
}

void
Embedding::backward(const tensor::Tensor &dy)
{
    assert(dy.rank() == 2 && dy.dim(1) == dim_);
    assert(dy.dim(0) == cachedTokens_.size());
    for (std::size_t i = 0; i < cachedTokens_.size(); ++i) {
        const auto tok = static_cast<std::size_t>(cachedTokens_[i]);
        const float *src = dy.data() + i * dim_;
        float *dst = table.grad.data() + tok * dim_;
        for (std::size_t j = 0; j < dim_; ++j)
            dst[j] += src[j];
    }
}

} // namespace decepticon::nn
