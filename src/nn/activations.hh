/**
 * @file
 * Element-wise activations with cached-input backward passes.
 */

#ifndef DECEPTICON_NN_ACTIVATIONS_HH
#define DECEPTICON_NN_ACTIVATIONS_HH

#include "tensor/tensor.hh"

namespace decepticon::nn {

/** Rectified linear unit. */
class Relu
{
  public:
    tensor::Tensor forward(const tensor::Tensor &x);
    tensor::Tensor backward(const tensor::Tensor &dy);

  private:
    tensor::Tensor cachedInput_;
};

/**
 * Gaussian error linear unit (tanh approximation), the activation used
 * inside BERT-style feed-forward blocks.
 */
class Gelu
{
  public:
    tensor::Tensor forward(const tensor::Tensor &x);
    tensor::Tensor backward(const tensor::Tensor &dy);

  private:
    tensor::Tensor cachedInput_;
};

} // namespace decepticon::nn

#endif // DECEPTICON_NN_ACTIVATIONS_HH
