/**
 * @file
 * Fully connected layer with explicit forward/backward.
 */

#ifndef DECEPTICON_NN_LINEAR_HH
#define DECEPTICON_NN_LINEAR_HH

#include <string>

#include "nn/param.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace decepticon::nn {

/**
 * y = x W^T + b, with x of shape (N, in) and y of shape (N, out).
 * Weight is stored (out, in), matching PyTorch's nn.Linear layout so
 * weight-extraction indexing matches the paper's framing.
 */
class Linear
{
  public:
    /** Construct with Xavier-initialized weight and zero bias. */
    Linear(std::string name, std::size_t in_features,
           std::size_t out_features, util::Rng &rng);

    /** Forward pass; caches the input for backward. */
    tensor::Tensor forward(const tensor::Tensor &x);

    /**
     * Backward pass: accumulates dW, db and returns dx.
     * @pre forward was called and dy matches its output shape.
     */
    tensor::Tensor backward(const tensor::Tensor &dy);

    /** Parameter access for optimizers/extraction. */
    ParamRefs params() { return {&weight, &bias}; }

    std::size_t inFeatures() const { return inFeatures_; }
    std::size_t outFeatures() const { return outFeatures_; }

    Parameter weight;
    Parameter bias;

  private:
    std::size_t inFeatures_;
    std::size_t outFeatures_;
    tensor::Tensor cachedInput_;
};

} // namespace decepticon::nn

#endif // DECEPTICON_NN_LINEAR_HH
