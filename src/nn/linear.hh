/**
 * @file
 * Fully connected layer with explicit forward/backward.
 */

#ifndef DECEPTICON_NN_LINEAR_HH
#define DECEPTICON_NN_LINEAR_HH

#include <string>

#include "nn/param.hh"
#include "tensor/kernels/arena.hh"
#include "tensor/kernels/kernels.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace decepticon::nn {

/**
 * y = act(x W^T + b), with x of shape (N, in) and y of shape (N, out).
 * Weight is stored (out, in), matching PyTorch's nn.Linear layout so
 * weight-extraction indexing matches the paper's framing.
 *
 * The activation defaults to identity; setActivation() fuses a
 * ReLU/GELU into the GEMM epilogue (forward) and its derivative into
 * backward, letting callers drop their separate activation module on
 * hot paths.
 *
 * The input (and, under a fused activation, the pre-activation
 * matrix) is kept in an ActivationCache slot — storage reused across
 * steps, stamped with the activation epoch — rather than a freshly
 * allocated per-call Tensor copy. backward() after
 * recycleActivations() asserts.
 */
class Linear
{
  public:
    /** Construct with Xavier-initialized weight and zero bias. */
    Linear(std::string name, std::size_t in_features,
           std::size_t out_features, util::Rng &rng);

    /** Fuse an activation into forward/backward (default: none). */
    void setActivation(tensor::kernels::Act act) { act_ = act; }

    /** Forward pass; caches the input for backward. */
    tensor::Tensor forward(const tensor::Tensor &x);

    /**
     * Backward pass: accumulates dW, db and returns dx.
     * @pre forward was called, its caches are still in the current
     *      activation epoch, and dy matches the output shape.
     */
    tensor::Tensor backward(const tensor::Tensor &dy);

    /** Parameter access for optimizers/extraction. */
    ParamRefs params() { return {&weight, &bias}; }

    std::size_t inFeatures() const { return inFeatures_; }
    std::size_t outFeatures() const { return outFeatures_; }

    Parameter weight;
    Parameter bias;

  private:
    std::size_t inFeatures_;
    std::size_t outFeatures_;
    tensor::kernels::Act act_ = tensor::kernels::Act::None;
    std::size_t cachedRows_ = 0;
    tensor::kernels::ActivationCache inputCache_;
    tensor::kernels::ActivationCache preactCache_;
};

} // namespace decepticon::nn

#endif // DECEPTICON_NN_LINEAR_HH
