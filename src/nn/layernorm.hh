/**
 * @file
 * Layer normalization over the last dimension of a (N, D) activation,
 * with learnable gain/bias — the normalization used by every
 * transformer encoder block.
 */

#ifndef DECEPTICON_NN_LAYERNORM_HH
#define DECEPTICON_NN_LAYERNORM_HH

#include <string>

#include "nn/param.hh"
#include "tensor/tensor.hh"

namespace decepticon::nn {

/** y = gamma * (x - mean) / sqrt(var + eps) + beta, per row. */
class LayerNorm
{
  public:
    LayerNorm(std::string name, std::size_t dim, float eps = 1e-5f);

    /** Forward pass; caches normalized activations for backward. */
    tensor::Tensor forward(const tensor::Tensor &x);

    /** Backward pass: accumulates dgamma/dbeta and returns dx. */
    tensor::Tensor backward(const tensor::Tensor &dy);

    ParamRefs params() { return {&gamma, &beta}; }

    Parameter gamma;
    Parameter beta;

  private:
    std::size_t dim_;
    float eps_;
    tensor::Tensor cachedNorm_;   // x_hat
    tensor::Tensor cachedInvStd_; // 1/sqrt(var+eps) per row
};

} // namespace decepticon::nn

#endif // DECEPTICON_NN_LAYERNORM_HH
