/**
 * @file
 * 2-D convolution and max-pooling layers for the fingerprint CNN
 * (paper Sec. 5.4.2) and the ResNet-style generalization study
 * (paper Sec. 7.7). Batched NCHW layout, stride-1 valid convolution,
 * non-overlapping pooling.
 */

#ifndef DECEPTICON_NN_CONV_HH
#define DECEPTICON_NN_CONV_HH

#include <string>
#include <vector>

#include "nn/param.hh"
#include "tensor/kernels/arena.hh"
#include "tensor/kernels/kernels.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace decepticon::nn {

/**
 * Valid (no padding), stride-1 2-D convolution over a rank-4
 * (N, C_in, H, W) input producing (N, C_out, H-k+1, W-k+1).
 *
 * The optimized path lowers each example to an im2col patch matrix
 * (C_in·k², oh·ow) and runs the shared packed GEMM with the bias (and
 * any activation set via setActivation()) fused into the epilogue.
 * The patch panel — which backward needs for dW anyway — lives in an
 * ActivationCache slot, so forward keeps no copy of the raw input at
 * all; backward after recycleActivations() asserts. Under naive
 * kernels the legacy direct loop nest runs instead (then the raw
 * input is cached, as before).
 */
class Conv2d
{
  public:
    Conv2d(std::string name, std::size_t in_channels,
           std::size_t out_channels, std::size_t kernel, util::Rng &rng);

    /** Fuse an activation into forward/backward (default: none). */
    void setActivation(tensor::kernels::Act act) { act_ = act; }

    tensor::Tensor forward(const tensor::Tensor &x);

    /** Accumulates dW/db and returns dx. */
    tensor::Tensor backward(const tensor::Tensor &dy);

    ParamRefs params() { return {&weight, &bias}; }

    std::size_t inChannels() const { return inChannels_; }
    std::size_t outChannels() const { return outChannels_; }
    std::size_t kernel() const { return kernel_; }

    Parameter weight; // (C_out, C_in, k, k)
    Parameter bias;   // (C_out)

  private:
    tensor::Tensor forwardNaive(const tensor::Tensor &x);
    tensor::Tensor backwardNaive(const tensor::Tensor &dy);

    std::size_t inChannels_;
    std::size_t outChannels_;
    std::size_t kernel_;
    tensor::kernels::Act act_ = tensor::kernels::Act::None;
    bool naiveForward_ = false; ///< which path the last forward took
    std::vector<std::size_t> inShape_;
    tensor::kernels::ActivationCache colCache_;
    tensor::kernels::ActivationCache preactCache_;
    tensor::Tensor cachedInput_; ///< naive path only
};

/**
 * Max pooling with square kernel and equal stride over (N, C, H, W);
 * trailing rows/columns that do not fill a window are dropped,
 * matching PyTorch's default floor mode.
 */
class MaxPool2d
{
  public:
    MaxPool2d(std::size_t kernel, std::size_t stride);

    tensor::Tensor forward(const tensor::Tensor &x);

    tensor::Tensor backward(const tensor::Tensor &dy);

    std::size_t kernel() const { return kernel_; }
    std::size_t stride() const { return stride_; }

  private:
    std::size_t kernel_;
    std::size_t stride_;
    std::vector<std::size_t> argmax_; // flat input index per output cell
    std::vector<std::size_t> inShape_;
};

} // namespace decepticon::nn

#endif // DECEPTICON_NN_CONV_HH
