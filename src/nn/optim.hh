/**
 * @file
 * SGD (with momentum + weight decay) and Adam optimizers over flat
 * parameter lists. Fine-tuning in the paper uses small learning rates,
 * weight decay, and few epochs; both knobs are explicit here.
 */

#ifndef DECEPTICON_NN_OPTIM_HH
#define DECEPTICON_NN_OPTIM_HH

#include <unordered_map>
#include <vector>

#include "nn/param.hh"

namespace decepticon::nn {

/** Plain SGD with optional momentum and decoupled weight decay. */
class Sgd
{
  public:
    Sgd(ParamRefs params, float lr, float momentum = 0.0f,
        float weight_decay = 0.0f);

    /** Apply one update using the currently accumulated gradients. */
    void step();

    /** Zero all parameter gradients. */
    void zeroGrad();

    float lr() const { return lr_; }
    void setLr(float lr) { lr_ = lr; }

  private:
    ParamRefs params_;
    float lr_;
    float momentum_;
    float weightDecay_;
    std::vector<tensor::Tensor> velocity_;
};

/** Adam with decoupled weight decay (AdamW-style). */
class Adam
{
  public:
    Adam(ParamRefs params, float lr, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f,
         float weight_decay = 0.0f);

    void step();
    void zeroGrad();

    float lr() const { return lr_; }
    void setLr(float lr) { lr_ = lr; }

  private:
    ParamRefs params_;
    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    float weightDecay_;
    long t_ = 0;
    std::vector<tensor::Tensor> m_;
    std::vector<tensor::Tensor> v_;
};

} // namespace decepticon::nn

#endif // DECEPTICON_NN_OPTIM_HH
