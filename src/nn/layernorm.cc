#include "nn/layernorm.hh"

#include <cmath>

namespace decepticon::nn {

LayerNorm::LayerNorm(std::string name, std::size_t dim, float eps)
    : gamma(name + ".gamma", {dim}),
      beta(name + ".beta", {dim}),
      dim_(dim),
      eps_(eps)
{
    gamma.value.fill(1.0f);
}

tensor::Tensor
LayerNorm::forward(const tensor::Tensor &x)
{
    assert(x.rank() == 2 && x.dim(1) == dim_);
    const std::size_t n = x.dim(0);
    tensor::Tensor y({n, dim_});
    // Reuse the cached buffers across steps; reallocate only when the
    // row count changes.
    if (cachedInvStd_.size() != n) {
        cachedNorm_ = tensor::Tensor({n, dim_});
        cachedInvStd_ = tensor::Tensor({n});
    }

    for (std::size_t i = 0; i < n; ++i) {
        const float *row = x.data() + i * dim_;
        float m = 0.0f;
        for (std::size_t j = 0; j < dim_; ++j)
            m += row[j];
        m /= static_cast<float>(dim_);
        float var = 0.0f;
        for (std::size_t j = 0; j < dim_; ++j)
            var += (row[j] - m) * (row[j] - m);
        var /= static_cast<float>(dim_);
        const float inv_std = 1.0f / std::sqrt(var + eps_);
        cachedInvStd_[i] = inv_std;
        float *nrow = cachedNorm_.data() + i * dim_;
        float *yrow = y.data() + i * dim_;
        for (std::size_t j = 0; j < dim_; ++j) {
            nrow[j] = (row[j] - m) * inv_std;
            yrow[j] = gamma.value[j] * nrow[j] + beta.value[j];
        }
    }
    return y;
}

tensor::Tensor
LayerNorm::backward(const tensor::Tensor &dy)
{
    assert(dy.rank() == 2 && dy.dim(1) == dim_);
    const std::size_t n = dy.dim(0);
    assert(cachedNorm_.dim(0) == n);
    tensor::Tensor dx({n, dim_});
    const float inv_d = 1.0f / static_cast<float>(dim_);

    for (std::size_t i = 0; i < n; ++i) {
        const float *dyrow = dy.data() + i * dim_;
        const float *nrow = cachedNorm_.data() + i * dim_;
        float *dxrow = dx.data() + i * dim_;

        // Accumulate parameter grads and the two row reductions needed
        // for the normalized-input backward formula.
        float sum_dxhat = 0.0f;
        float sum_dxhat_xhat = 0.0f;
        for (std::size_t j = 0; j < dim_; ++j) {
            const float dxhat = dyrow[j] * gamma.value[j];
            gamma.grad[j] += dyrow[j] * nrow[j];
            beta.grad[j] += dyrow[j];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * nrow[j];
        }
        const float inv_std = cachedInvStd_[i];
        for (std::size_t j = 0; j < dim_; ++j) {
            const float dxhat = dyrow[j] * gamma.value[j];
            dxrow[j] = inv_std * (dxhat - inv_d * sum_dxhat -
                                  nrow[j] * inv_d * sum_dxhat_xhat);
        }
    }
    return dx;
}

} // namespace decepticon::nn
