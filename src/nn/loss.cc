#include "nn/loss.hh"

#include <cmath>

namespace decepticon::nn {

float
SoftmaxCrossEntropy::forward(const tensor::Tensor &logits,
                             const std::vector<int> &labels)
{
    assert(logits.rank() == 2);
    assert(logits.dim(0) == labels.size());
    probs_ = tensor::softmaxRows(logits);
    labels_ = labels;

    const std::size_t n = logits.dim(0), c = logits.dim(1);
    double loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto y = static_cast<std::size_t>(labels[i]);
        assert(y < c);
        const float p = probs_.data()[i * c + y];
        loss += -std::log(std::max(p, 1e-12f));
    }
    return static_cast<float>(loss / static_cast<double>(n));
}

tensor::Tensor
SoftmaxCrossEntropy::backward() const
{
    const std::size_t n = probs_.dim(0), c = probs_.dim(1);
    tensor::Tensor d = probs_;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
        float *row = d.data() + i * c;
        row[static_cast<std::size_t>(labels_[i])] -= 1.0f;
        for (std::size_t j = 0; j < c; ++j)
            row[j] *= inv_n;
    }
    return d;
}

std::vector<int>
argmaxRows(const tensor::Tensor &logits)
{
    assert(logits.rank() == 2);
    const std::size_t n = logits.dim(0), c = logits.dim(1);
    std::vector<int> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const float *row = logits.data() + i * c;
        std::size_t best = 0;
        for (std::size_t j = 1; j < c; ++j) {
            if (row[j] > row[best])
                best = j;
        }
        out[i] = static_cast<int>(best);
    }
    return out;
}

} // namespace decepticon::nn
