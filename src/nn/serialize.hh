/**
 * @file
 * Binary checkpoint serialization for parameter sets. A downstream
 * user of the library (or the attacker's tooling) needs to persist
 * pre-trained backbones, victims, and extracted clones; the format is
 * a versioned stream of (name, shape, float32 data) records with
 * strict validation on load.
 */

#ifndef DECEPTICON_NN_SERIALIZE_HH
#define DECEPTICON_NN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "nn/param.hh"

namespace decepticon::nn {

/**
 * Write every parameter (name, shape, values) to the stream.
 * @return false on stream failure.
 */
bool saveParams(std::ostream &os, const ParamRefs &params);

/**
 * Read parameters back into an existing, identically structured
 * parameter set. Names and shapes must match record for record.
 * @return false on stream failure, magic/version mismatch, or any
 *         name/shape mismatch (the target is left partially updated
 *         only on such failure).
 */
bool loadParams(std::istream &is, const ParamRefs &params);

/** Convenience file wrappers. */
bool saveParamsToFile(const std::string &path, const ParamRefs &params);
bool loadParamsFromFile(const std::string &path, const ParamRefs &params);

} // namespace decepticon::nn

#endif // DECEPTICON_NN_SERIALIZE_HH
