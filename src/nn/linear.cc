#include "nn/linear.hh"

namespace decepticon::nn {

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features, util::Rng &rng)
    : weight(name + ".weight", {out_features, in_features}),
      bias(name + ".bias", {out_features}),
      inFeatures_(in_features),
      outFeatures_(out_features)
{
    weight.value.fillXavier(rng, in_features, out_features);
}

tensor::Tensor
Linear::forward(const tensor::Tensor &x)
{
    assert(x.rank() == 2 && x.dim(1) == inFeatures_);
    cachedInput_ = x;
    tensor::Tensor y = tensor::matmulTransposeB(x, weight.value);
    tensor::addRowVector(y, bias.value);
    return y;
}

tensor::Tensor
Linear::backward(const tensor::Tensor &dy)
{
    assert(dy.rank() == 2 && dy.dim(1) == outFeatures_);
    assert(cachedInput_.dim(0) == dy.dim(0));

    // dW = dy^T x ; db = column sums of dy ; dx = dy W.
    tensor::Tensor dw = tensor::matmulTransposeA(dy, cachedInput_);
    tensor::axpy(weight.grad, dw, 1.0f);

    const std::size_t n = dy.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
        const float *row = dy.data() + i * outFeatures_;
        for (std::size_t j = 0; j < outFeatures_; ++j)
            bias.grad[j] += row[j];
    }

    return tensor::matmul(dy, weight.value);
}

} // namespace decepticon::nn
