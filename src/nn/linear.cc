#include "nn/linear.hh"

namespace decepticon::nn {

namespace kernels = tensor::kernels;

Linear::Linear(std::string name, std::size_t in_features,
               std::size_t out_features, util::Rng &rng)
    : weight(name + ".weight", {out_features, in_features}),
      bias(name + ".bias", {out_features}),
      inFeatures_(in_features),
      outFeatures_(out_features)
{
    weight.value.fillXavier(rng, in_features, out_features);
}

tensor::Tensor
Linear::forward(const tensor::Tensor &x)
{
    assert(x.rank() == 2 && x.dim(1) == inFeatures_);
    const std::size_t n = x.dim(0);
    cachedRows_ = n;
    inputCache_.store(x.data(), x.size());

    tensor::Tensor y({n, outFeatures_});
    kernels::GemmCall call;
    call.n = n;
    call.m = outFeatures_;
    call.k = inFeatures_;
    call.a = inputCache_.data();
    call.b = weight.value.data();
    call.c = y.data();
    call.colBias = bias.value.data();
    call.act = act_;
    if (act_ != kernels::Act::None)
        call.preact = preactCache_.prepare(n * outFeatures_);
    kernels::gemm(kernels::Trans::NT, call);
    return y;
}

tensor::Tensor
Linear::backward(const tensor::Tensor &dy)
{
    assert(dy.rank() == 2 && dy.dim(1) == outFeatures_);
    assert(dy.dim(0) == cachedRows_);
    assert(inputCache_.valid() &&
           "Linear::backward after recycleActivations()");
    const std::size_t n = dy.dim(0);

    // Under a fused activation, fold its derivative (at the cached
    // pre-activation values) into the incoming gradient first.
    const float *g = dy.data();
    tensor::Tensor dpre;
    if (act_ != kernels::Act::None) {
        assert(preactCache_.valid());
        dpre = dy;
        const float *pre = preactCache_.data();
        for (std::size_t i = 0; i < dpre.size(); ++i)
            dpre[i] *= kernels::actBackward(act_, pre[i]);
        g = dpre.data();
    }

    // dW += g^T x, accumulated straight into the grad tensor.
    kernels::GemmCall dw;
    dw.n = outFeatures_;
    dw.m = inFeatures_;
    dw.k = n;
    dw.a = g;
    dw.b = inputCache_.data();
    dw.c = weight.grad.data();
    dw.accumulate = true;
    kernels::gemm(kernels::Trans::TN, dw);

    // db = column sums of g.
    for (std::size_t i = 0; i < n; ++i) {
        const float *row = g + i * outFeatures_;
        for (std::size_t j = 0; j < outFeatures_; ++j)
            bias.grad[j] += row[j];
    }

    // dx = g W.
    tensor::Tensor dx({n, inFeatures_});
    kernels::GemmCall dxc;
    dxc.n = n;
    dxc.m = inFeatures_;
    dxc.k = outFeatures_;
    dxc.a = g;
    dxc.b = weight.value.data();
    dxc.c = dx.data();
    kernels::gemm(kernels::Trans::NN, dxc);
    return dx;
}

} // namespace decepticon::nn
