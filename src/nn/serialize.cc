#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

namespace decepticon::nn {

namespace {

constexpr std::uint32_t kMagic = 0xdecef11e;
constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU32(std::istream &is, std::uint32_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return static_cast<bool>(is);
}

void
writeString(std::ostream &os, const std::string &s)
{
    writeU32(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
readString(std::istream &is, std::string &s)
{
    std::uint32_t n = 0;
    if (!readU32(is, n) || n > (1u << 20))
        return false;
    s.resize(n);
    is.read(s.data(), static_cast<std::streamsize>(n));
    return static_cast<bool>(is);
}

} // anonymous namespace

bool
saveParams(std::ostream &os, const ParamRefs &params)
{
    writeU32(os, kMagic);
    writeU32(os, kVersion);
    writeU32(os, static_cast<std::uint32_t>(params.size()));
    for (const auto *p : params) {
        writeString(os, p->name);
        writeU32(os, static_cast<std::uint32_t>(p->value.rank()));
        for (std::size_t d = 0; d < p->value.rank(); ++d)
            writeU32(os, static_cast<std::uint32_t>(p->value.dim(d)));
        os.write(reinterpret_cast<const char *>(p->value.data()),
                 static_cast<std::streamsize>(p->value.size() *
                                              sizeof(float)));
    }
    return static_cast<bool>(os);
}

bool
loadParams(std::istream &is, const ParamRefs &params)
{
    std::uint32_t magic = 0, version = 0, count = 0;
    if (!readU32(is, magic) || magic != kMagic)
        return false;
    if (!readU32(is, version) || version != kVersion)
        return false;
    if (!readU32(is, count) || count != params.size())
        return false;

    for (auto *p : params) {
        std::string name;
        if (!readString(is, name) || name != p->name)
            return false;
        std::uint32_t rank = 0;
        if (!readU32(is, rank) || rank != p->value.rank())
            return false;
        for (std::size_t d = 0; d < p->value.rank(); ++d) {
            std::uint32_t dim = 0;
            if (!readU32(is, dim) || dim != p->value.dim(d))
                return false;
        }
        is.read(reinterpret_cast<char *>(p->value.data()),
                static_cast<std::streamsize>(p->value.size() *
                                             sizeof(float)));
        if (!is)
            return false;
    }
    return true;
}

bool
saveParamsToFile(const std::string &path, const ParamRefs &params)
{
    std::ofstream os(path, std::ios::binary);
    return os && saveParams(os, params);
}

bool
loadParamsFromFile(const std::string &path, const ParamRefs &params)
{
    std::ifstream is(path, std::ios::binary);
    return is && loadParams(is, params);
}

} // namespace decepticon::nn
