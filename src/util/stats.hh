/**
 * @file
 * Descriptive statistics used across the evaluation harness: moments,
 * percentiles, histograms, and Pearson correlation (the metric behind
 * the paper's head-confidence analysis, Fig. 20).
 */

#ifndef DECEPTICON_UTIL_STATS_HH
#define DECEPTICON_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace decepticon::util {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Population variance; 0 for fewer than two samples. */
double variance(const std::vector<double> &xs);

/** Population standard deviation. */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile.
 * @param xs samples (not required to be sorted)
 * @param p percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/**
 * Pearson correlation coefficient of two equal-length series.
 * Returns 0 if either series is constant or the series are empty.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Fixed-width histogram over [lo, hi]; values outside the range are
 * clamped into the first/last bin, but every clamp is also tallied in
 * the underflow/overflow ledgers so a clipped distribution is visible
 * in exports rather than silently folded into the edge bins.
 */
struct Histogram
{
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::size_t> counts;
    /** Samples below lo (clamped into bin 0). */
    std::size_t underflow = 0;
    /** Samples above hi (clamped into the last bin). */
    std::size_t overflow = 0;

    /** Build a histogram with the given bin count. @pre bins > 0, hi > lo */
    Histogram(double lo, double hi, std::size_t bins);

    /** Insert one sample. */
    void add(double x);

    /** Insert many samples. */
    void addAll(const std::vector<double> &xs);

    /** Total number of inserted samples. */
    std::size_t total() const;

    /** Center of bin i. */
    double binCenter(std::size_t i) const;

    /** Fraction of samples with |value| <= bound (exact, from raw data). */
    static double fractionWithinAbs(const std::vector<double> &xs,
                                    double bound);
};

/**
 * Simple ordinary-least-squares fit y = a + b*x.
 * Returns {intercept, slope}; slope is 0 for constant x.
 */
struct LinearFit
{
    double intercept = 0.0;
    double slope = 0.0;
};

LinearFit fitLine(const std::vector<double> &xs,
                  const std::vector<double> &ys);

} // namespace decepticon::util

#endif // DECEPTICON_UTIL_STATS_HH
