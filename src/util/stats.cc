#include "util/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace decepticon::util {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (p <= 0.0)
        return xs.front();
    if (p >= 100.0)
        return xs.back();
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs.size())
        return xs.back();
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    assert(xs.size() == ys.size());
    if (xs.empty())
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double low, double high, std::size_t bins)
    : lo(low), hi(high), counts(bins, 0)
{
    assert(bins > 0);
    assert(hi > lo);
}

void
Histogram::add(double x)
{
    if (x < lo)
        ++underflow;
    else if (x > hi)
        ++overflow;
    const double t = (x - lo) / (hi - lo);
    auto idx = static_cast<long>(t * static_cast<double>(counts.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(idx)];
}

void
Histogram::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

std::size_t
Histogram::total() const
{
    std::size_t n = 0;
    for (auto c : counts)
        n += c;
    return n;
}

double
Histogram::binCenter(std::size_t i) const
{
    const double w = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * w;
}

double
Histogram::fractionWithinAbs(const std::vector<double> &xs, double bound)
{
    if (xs.empty())
        return 0.0;
    std::size_t n = 0;
    for (double x : xs) {
        if (std::fabs(x) <= bound)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(xs.size());
}

LinearFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    assert(xs.size() == ys.size());
    LinearFit fit;
    if (xs.size() < 2)
        return fit;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    if (sxx <= 0.0)
        return fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    return fit;
}

} // namespace decepticon::util
