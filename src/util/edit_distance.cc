#include "util/edit_distance.hh"

#include <algorithm>
#include <cassert>

namespace decepticon::util {

namespace {

template <typename Seq>
std::size_t
editDistanceImpl(const Seq &a, const Seq &b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;

    std::vector<std::size_t> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

} // anonymous namespace

std::size_t
editDistance(const std::vector<int> &a, const std::vector<int> &b)
{
    return editDistanceImpl(a, b);
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    return editDistanceImpl(a, b);
}

double
layerErrorRate(const std::vector<int> &predicted,
               const std::vector<int> &truth)
{
    assert(!truth.empty());
    return static_cast<double>(editDistance(predicted, truth)) /
           static_cast<double>(truth.size());
}

} // namespace decepticon::util
