#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace decepticon::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(std::size_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::printAscii(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            os << " " << std::left << std::setw(static_cast<int>(widths[c]))
               << v << " |";
        }
        os << "\n";
    };

    print_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace decepticon::util
