/**
 * @file
 * Levenshtein edit distance over arbitrary token sequences. Used by the
 * DeepSniffer-style baseline to compute the Layer prediction Error Rate
 * (LER): edit distance between predicted and ground-truth layer
 * sequences, normalized by ground-truth length (paper Table 2).
 */

#ifndef DECEPTICON_UTIL_EDIT_DISTANCE_HH
#define DECEPTICON_UTIL_EDIT_DISTANCE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace decepticon::util {

/** Levenshtein distance between two integer token sequences. */
std::size_t editDistance(const std::vector<int> &a,
                         const std::vector<int> &b);

/** Levenshtein distance between two strings of characters. */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * Layer prediction Error Rate as defined by DeepSniffer:
 * editDistance(predicted, truth) / |truth|. Values above 1 mean the
 * prediction is not usable. @pre truth is non-empty
 */
double layerErrorRate(const std::vector<int> &predicted,
                      const std::vector<int> &truth);

} // namespace decepticon::util

#endif // DECEPTICON_UTIL_EDIT_DISTANCE_HH
