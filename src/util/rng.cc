#include "util/rng.hh"

#include <cassert>
#include <cmath>

namespace decepticon::util {

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &w : s_)
        w = sm.next();
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = nextU64();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    assert(k <= n);
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i)
        pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + uniformInt(n - i);
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

Rng
Rng::split(std::uint64_t tag) const
{
    // Pure mix of the full current state with the tag; nearby tags
    // land in unrelated SplitMix64 streams.
    SplitMix64 sm(s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3] ^
                  (tag + 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL);
    return Rng(sm.next());
}

Rng
Rng::fork(std::uint64_t tag)
{
    // Mix the tag into a fresh seed drawn from this stream.
    SplitMix64 sm(nextU64() ^ (tag * 0x9e3779b97f4a7c15ULL));
    return Rng(sm.next());
}

std::uint64_t
hashString(const char *s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (; *s; ++s) {
        h ^= static_cast<unsigned char>(*s);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace decepticon::util
