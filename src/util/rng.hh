/**
 * @file
 * Deterministic pseudo-random number generation for all Decepticon
 * components. Every stochastic element of the reproduction (weight
 * initialization, fine-tuning noise, kernel timing jitter, dataset
 * synthesis) draws from a seeded Rng so experiments are replayable
 * bit-for-bit.
 */

#ifndef DECEPTICON_UTIL_RNG_HH
#define DECEPTICON_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace decepticon::util {

/**
 * SplitMix64 stream, used to expand a single user seed into the four
 * 64-bit words of xoshiro256++ state. Also usable standalone for cheap
 * hashing of strings into seeds.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64-bit value of the stream. */
    std::uint64_t next();

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256++ generator. Fast, high-quality, and fully deterministic
 * across platforms (unlike std::mt19937 distributions, whose outputs
 * are implementation-defined for e.g. std::normal_distribution).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal draw (Box-Muller with cached spare). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample k distinct indices from [0, n) without replacement
     * (partial Fisher-Yates). @pre k <= n
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive a child generator; children of distinct tags differ.
     *  Advances this generator's state. */
    Rng fork(std::uint64_t tag);

    /**
     * Derive an independent child generator keyed by tag WITHOUT
     * advancing this generator's state: split(t) is a pure function
     * of (current state, t). This is the seed-derivation primitive of
     * the parallel execution engine (sched): a task indexed i draws
     * from split(i), so its stream is identical no matter how many
     * threads run the tasks or in which order they are scheduled.
     */
    Rng split(std::uint64_t tag) const;

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

/** Stable 64-bit FNV-1a hash of a string, for seeding from names. */
std::uint64_t hashString(const char *s);

} // namespace decepticon::util

#endif // DECEPTICON_UTIL_RNG_HH
