/**
 * @file
 * Tiny table/CSV emitter so every bench binary prints its figure/table
 * data in a uniform, machine-greppable format.
 */

#ifndef DECEPTICON_UTIL_TABLE_HH
#define DECEPTICON_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace decepticon::util {

/**
 * Accumulates rows of strings/numbers and renders either an aligned
 * ASCII table (for humans) or CSV (for plotting scripts).
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted floating-point cell. */
    Table &cell(double value, int precision = 4);

    /** Append an integer cell. */
    Table &cell(long long value);
    Table &cell(std::size_t value);
    Table &cell(int value);

    /** Number of data rows. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render as an aligned ASCII table. */
    void printAscii(std::ostream &os) const;

    /** Render as CSV (headers + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace decepticon::util

#endif // DECEPTICON_UTIL_TABLE_HH
