/**
 * @file
 * The synthetic model zoo: 70 pre-trained identities plus 170+
 * fine-tuned descendants, mirroring the population the paper downloads
 * from HuggingFace / NVIDIA / Google / Meta repositories (Sec. 7.1).
 * Each identity carries its full-scale architecture (for trace
 * synthesis), its software signature (the execution fingerprint), and
 * its vocabulary profile (the query-output fingerprint). A fine-tuned
 * identity inherits all three from its pre-trained parent.
 */

#ifndef DECEPTICON_ZOO_ZOO_HH
#define DECEPTICON_ZOO_ZOO_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/signature.hh"
#include "gpusim/trace_generator.hh"
#include "zoo/vocab.hh"

namespace decepticon::zoo {

/** One model release in the zoo. */
struct ModelIdentity
{
    std::string name;        ///< e.g. "huggingface/bert-base-uncased"
    std::string family;      ///< BERT, GPT-2, RoBERTa, ...
    std::string sizeClass;   ///< tiny, mini, ..., large, xlarge, xxlarge
    gpusim::ArchParams arch; ///< full-scale architecture
    gpusim::SoftwareSignature signature;
    VocabularyProfile vocabProfile;
    /** Name of the pre-trained lineage (self for pre-trained models). */
    std::string pretrainedName;
    bool isPretrained = true;
    /** Downstream task for fine-tuned releases ("" for pre-trained). */
    std::string task;
    /** Seed identifying this release's weights. */
    std::uint64_t weightSeed = 0;
};

/** The zoo: a flat list of identities with lookup helpers. */
class ModelZoo
{
  public:
    /**
     * Build the default population: num_pretrained base releases from
     * mixed sources, and num_finetuned descendants fine-tuned for
     * random tasks. Defaults match the paper's 70 + 170.
     */
    static ModelZoo buildDefault(std::uint64_t seed,
                                 std::size_t num_pretrained = 70,
                                 std::size_t num_finetuned = 170);

    const std::vector<ModelIdentity> &models() const { return models_; }

    /** Pointers to all pre-trained identities. */
    std::vector<const ModelIdentity *> pretrained() const;

    /** Pointers to all fine-tuned identities. */
    std::vector<const ModelIdentity *> finetuned() const;

    /** Number of pre-trained identities — O(1). */
    std::size_t pretrainedCount() const { return pretrainedIdx_.size(); }

    /**
     * The k-th pre-trained identity in insertion order — O(1), so
     * samplers can draw from a 5,000+ zoo without materializing the
     * pretrained() pointer vector. The reference is invalidated by a
     * later add(), like pretrained() pointers.
     */
    const ModelIdentity &pretrainedAt(std::size_t k) const
    {
        return models_[pretrainedIdx_[k]];
    }

    /** Lookup by exact name — O(1); nullptr if absent. */
    const ModelIdentity *byName(const std::string &name) const;

    /** All distinct pre-trained lineage names, in insertion order. */
    std::vector<std::string> lineageNames() const;

    /** Append one identity (used by tests and scenario builders). */
    void add(ModelIdentity identity);

  private:
    std::vector<ModelIdentity> models_;
    /** Indices of pre-trained identities, in insertion order. */
    std::vector<std::size_t> pretrainedIdx_;
    /** name -> index in models_; lookup only, never iterated (R3). */
    std::unordered_map<std::string, std::size_t> byName_;
};

} // namespace decepticon::zoo

#endif // DECEPTICON_ZOO_ZOO_HH
