/**
 * @file
 * Flat per-layer weight storage for the statistical (large-scale)
 * experiments. A WeightStore holds a sampled subset of each encoder
 * layer's weights plus the task head, while carrying the analytic
 * full-scale layer sizes so fractions such as "the last layer is
 * 0.009% of all weights" (Fig. 16) are computed on true counts.
 */

#ifndef DECEPTICON_ZOO_WEIGHT_STORE_HH
#define DECEPTICON_ZOO_WEIGHT_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/trace_generator.hh"

namespace decepticon::zoo {

/** One layer's (sampled) weights. */
struct LayerWeights
{
    std::string name;
    std::vector<float> w;
};

/** A model's weights: encoder layers + embeddings + task head. */
class WeightStore
{
  public:
    /**
     * Synthesize a pre-trained weight store for the given
     * architecture.
     *
     * @param arch full-scale architecture (drives analytic counts)
     * @param seed weight identity; two stores with different seeds
     *        model two unrelated pre-trained models
     * @param weights_per_layer how many weights to materialize per
     *        encoder layer (sampling keeps bit-level experiments fast)
     * @param weight_sigma bulk scale of the weight distribution
     */
    static WeightStore makePretrained(const gpusim::ArchParams &arch,
                                      std::uint64_t seed,
                                      std::size_t weights_per_layer = 20000,
                                      float weight_sigma = 0.08f);

    /** Encoder layers, index 0 = first encoder. */
    std::vector<LayerWeights> layers;

    /** Task head (empty for pre-trained stores until fine-tuned). */
    LayerWeights head;

    /** Analytic (true, unsampled) per-encoder-layer weight count. */
    std::size_t analyticLayerWeights = 0;

    /** Analytic embedding weight count. */
    std::size_t analyticEmbeddingWeights = 0;

    /** Analytic task-head weight count. */
    std::size_t analyticHeadWeights = 0;

    /** Total analytic weights across the model. */
    std::size_t analyticTotalWeights() const;

    /** Fraction of analytic weights contributed by the task head. */
    double headWeightFraction() const;

    /** Materialized weights across all layers + head. */
    std::size_t materializedCount() const;

    /**
     * Per-layer mean absolute weight difference against another store
     * of identical shape (head included last if both have heads).
     */
    std::vector<double> perLayerMeanAbsDiff(const WeightStore &other) const;

    /** All per-weight differences (this - other), encoder layers only. */
    std::vector<double> weightDeltas(const WeightStore &other) const;
};

/**
 * Analytic per-encoder weight count of a transformer layer:
 * 4 attention projections + 2 FFN matrices + norms/biases.
 */
std::size_t analyticEncoderWeightCount(const gpusim::ArchParams &arch);

} // namespace decepticon::zoo

#endif // DECEPTICON_ZOO_WEIGHT_STORE_HH
