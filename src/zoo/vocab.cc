#include "zoo/vocab.hh"

#include <cassert>

namespace decepticon::zoo {

std::string
toString(Language lang)
{
    switch (lang) {
      case Language::English:
        return "en";
      case Language::French:
        return "fr";
      case Language::Russian:
        return "ru";
      case Language::German:
        return "de";
    }
    return "??";
}

bool
respondsCorrectly(const VocabularyProfile &profile, const QueryProbe &probe)
{
    if (profile.language != probe.language)
        return false;
    if (probe.needsCasing && !profile.cased)
        return false;
    if (profile.richness < probe.minRichness)
        return false;
    return true;
}

std::vector<bool>
responseVector(const VocabularyProfile &profile,
               const std::vector<QueryProbe> &probes)
{
    std::vector<bool> out;
    out.reserve(probes.size());
    for (const auto &p : probes)
        out.push_back(respondsCorrectly(profile, p));
    return out;
}

std::vector<QueryProbe>
standardProbeSet()
{
    std::vector<QueryProbe> probes;
    // Plain-language probes: only same-language models answer.
    probes.push_back({"the cat sat on the [MASK]", Language::English,
                      false, 1});
    probes.push_back({"le chat est sur le [MASK]", Language::French,
                      false, 1});
    probes.push_back({"кошка сидит на [MASK]", Language::Russian,
                      false, 1});
    probes.push_back({"die Katze sitzt auf dem [MASK]", Language::German,
                      false, 1});
    // Rich-corpus vocabulary (the paper's BERT-vs-RoBERTa word list).
    for (const char *word :
         {"debugging", "capitalize", "cloves", "indignation", "hijab",
          "selfies", "misogynist", "acupuncture"}) {
        probes.push_back({std::string("define: ") + word,
                          Language::English, false, 2});
    }
    // Casing-sensitive words (company vs fruit).
    probes.push_back({"Apple released a new phone", Language::English,
                      true, 1});
    probes.push_back({"Bill paid the bill", Language::English, true, 1});
    probes.push_back({"Turkey borders Greece", Language::English, true, 1});
    return probes;
}

std::size_t
responseDistance(const std::vector<bool> &a, const std::vector<bool> &b)
{
    assert(a.size() == b.size());
    std::size_t d = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i])
            ++d;
    }
    return d;
}

std::vector<QueryProbe>
buildDiscriminativeProbeSet(const std::vector<VocabularyProfile> &profiles,
                            const std::vector<QueryProbe> &universe)
{
    // Per-probe response bit for every profile.
    std::vector<std::vector<bool>> responds(universe.size());
    for (std::size_t p = 0; p < universe.size(); ++p) {
        responds[p].reserve(profiles.size());
        for (const auto &profile : profiles)
            responds[p].push_back(
                respondsCorrectly(profile, universe[p]));
    }

    // Pairs that some probe can separate and no chosen probe does yet.
    std::vector<std::pair<std::size_t, std::size_t>> open;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (std::size_t j = i + 1; j < profiles.size(); ++j) {
            if (profiles[i] == profiles[j])
                continue; // inseparable twins
            for (std::size_t p = 0; p < universe.size(); ++p) {
                if (responds[p][i] != responds[p][j]) {
                    open.emplace_back(i, j);
                    break;
                }
            }
        }
    }

    std::vector<QueryProbe> chosen;
    std::vector<bool> used(universe.size(), false);
    while (!open.empty()) {
        // Greedy: the probe separating the most open pairs.
        std::size_t best = universe.size();
        std::size_t best_split = 0;
        for (std::size_t p = 0; p < universe.size(); ++p) {
            if (used[p])
                continue;
            std::size_t split = 0;
            for (const auto &[i, j] : open)
                split += responds[p][i] != responds[p][j] ? 1 : 0;
            if (split > best_split) {
                best_split = split;
                best = p;
            }
        }
        if (best == universe.size())
            break; // nothing separates the rest (shouldn't happen)
        used[best] = true;
        chosen.push_back(universe[best]);
        std::vector<std::pair<std::size_t, std::size_t>> still_open;
        for (const auto &[i, j] : open) {
            if (responds[best][i] == responds[best][j])
                still_open.emplace_back(i, j);
        }
        open = std::move(still_open);
    }
    return chosen;
}

std::vector<QueryProbe>
buildDiscriminativeProbeSet(const std::vector<VocabularyProfile> &profiles)
{
    return buildDiscriminativeProbeSet(profiles, standardProbeSet());
}

} // namespace decepticon::zoo
