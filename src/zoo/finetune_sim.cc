#include "zoo/finetune_sim.hh"

#include <cassert>
#include <cmath>

#include "util/rng.hh"

namespace decepticon::zoo {

double
FineTuneSimulator::epochSigma(std::size_t epoch,
                              const FineTuneOptions &opts)
{
    const auto e = static_cast<double>(epoch + 1);
    const auto peak = static_cast<double>(opts.peakEpoch);
    if (e <= peak) {
        // Linear ramp from startSigma up to peakSigma.
        return opts.startSigma +
               (opts.peakSigma - opts.startSigma) * (e / peak);
    }
    const auto end = static_cast<double>(opts.decayEndEpoch);
    if (e >= end)
        return opts.floorSigma;
    // Linear decay from peakSigma down to floorSigma.
    const double frac = (e - peak) / (end - peak);
    return opts.peakSigma - (opts.peakSigma - opts.floorSigma) * frac;
}

namespace {

/** Apply one epoch of the update law to every encoder weight. */
void
applyEpoch(WeightStore &ws, const WeightStore &pretrained, double sigma,
           const FineTuneOptions &opts, util::Rng &rng)
{
    for (std::size_t l = 0; l < ws.layers.size(); ++l) {
        auto &w = ws.layers[l].w;
        const auto &w0 = pretrained.layers[l].w;
        for (std::size_t i = 0; i < w.size(); ++i) {
            // U-shape: updates scale with the pre-trained magnitude.
            const double mag =
                std::fabs(static_cast<double>(w0[i])) / opts.wRef;
            double s = sigma * (1.0 + opts.uShapeAlpha * mag * mag);
            if (rng.bernoulli(opts.outlierProb))
                s *= opts.outlierScale;
            w[i] += static_cast<float>(rng.gaussian(0.0, s));
        }
    }
}

/** Converged head values: where fine-tuning drives the new layer. */
std::vector<float>
makeHeadTarget(std::size_t n, util::Rng &rng)
{
    std::vector<float> target(n);
    for (auto &v : target)
        v = static_cast<float>(rng.gaussian(0.0, 0.15));
    return target;
}

} // anonymous namespace

WeightStore
FineTuneSimulator::fineTune(const WeightStore &pretrained,
                            const FineTuneOptions &opts, std::uint64_t seed)
{
    auto traj = fineTuneTrajectory(pretrained, opts, seed);
    assert(!traj.empty());
    return std::move(traj.back());
}

std::vector<WeightStore>
FineTuneSimulator::fineTuneTrajectory(const WeightStore &pretrained,
                                      const FineTuneOptions &opts,
                                      std::uint64_t seed)
{
    assert(opts.epochs > 0);
    util::Rng rng(seed);

    WeightStore current = pretrained;
    // The task head is newly added for the downstream task: random
    // init, converging exponentially toward a task-specific target.
    const std::vector<float> head_target =
        makeHeadTarget(opts.headWeights, rng);
    current.head.name = "task_head";
    current.head.w.assign(opts.headWeights, 0.0f);
    for (auto &v : current.head.w)
        v = static_cast<float>(rng.gaussian(0.0, 0.02f));
    current.analyticHeadWeights = pretrained.analyticHeadWeights;

    std::vector<WeightStore> trajectory;
    trajectory.reserve(opts.epochs);
    const double head_tau = 4.0;
    for (std::size_t e = 0; e < opts.epochs; ++e) {
        applyEpoch(current, pretrained, epochSigma(e, opts), opts, rng);
        // Exponential head convergence (Fig. 6, second panel).
        const double blend =
            1.0 - std::exp(-1.0 / head_tau);
        for (std::size_t i = 0; i < current.head.w.size(); ++i) {
            current.head.w[i] += static_cast<float>(
                blend * (head_target[i] - current.head.w[i]) +
                rng.gaussian(0.0, 0.002));
        }
        trajectory.push_back(current);
    }
    return trajectory;
}

} // namespace decepticon::zoo
