#include "zoo/procedural.hh"

#include <cassert>

#include "util/rng.hh"

namespace decepticon::zoo {

namespace {

/** Shape grid the family table cycles through. */
struct ShapePoint
{
    std::size_t layers;
    std::size_t hidden;
};

const ShapePoint kShapeGrid[] = {
    {2, 128}, {4, 256},  {4, 512},  {6, 256},  {6, 768},  {8, 512},
    {8, 768}, {12, 384}, {12, 768}, {12, 1024}, {24, 512}, {24, 1024},
};
constexpr std::size_t kNumShapes = std::size(kShapeGrid);

const gpusim::Developer kDevelopers[] = {
    gpusim::Developer::HuggingFace, gpusim::Developer::Nvidia,
    gpusim::Developer::Google,      gpusim::Developer::Meta,
    gpusim::Developer::Amazon,      gpusim::Developer::Community,
};

} // anonymous namespace

std::vector<ProceduralFamilySpec>
proceduralFamilies(std::size_t count)
{
    std::vector<ProceduralFamilySpec> out;
    out.reserve(count);
    for (std::size_t j = 0; j < count; ++j) {
        const ShapePoint &shape = kShapeGrid[j % kNumShapes];
        ProceduralFamilySpec spec;
        spec.family = "proc-fam" + std::to_string(j);
        // Grid revisits widen the population: every full cycle through
        // the shape grid bumps the sequence length, so family j and
        // family j + kNumShapes share encoder shape but not runtime
        // profile.
        spec.layers = shape.layers;
        spec.hidden = shape.hidden;
        spec.heads = std::max<std::size_t>(2, shape.hidden / 64);
        spec.seqLen = 128 + 64 * (j / kNumShapes);
        out.push_back(std::move(spec));
    }
    return out;
}

ModelZoo
buildProceduralZoo(const ProceduralZooOptions &opts)
{
    assert(opts.identities > 0);
    assert(opts.families > 0);
    const std::vector<ProceduralFamilySpec> families =
        proceduralFamilies(opts.families);

    const util::Rng root(opts.seed);
    ModelZoo zoo;
    for (std::size_t i = 0; i < opts.identities; ++i) {
        // Each identity draws from split(i): a pure function of
        // (seed, i), so the zoo's content does not depend on build
        // order and any identity can be re-derived in isolation.
        util::Rng rng = root.split(i);
        const ProceduralFamilySpec &fam = families[i % families.size()];

        ModelIdentity m;
        m.family = fam.family;
        m.sizeClass = "L" + std::to_string(fam.layers) + "h" +
                      std::to_string(fam.hidden);
        m.arch.numLayers = fam.layers;
        m.arch.hidden = fam.hidden;
        m.arch.numHeads = fam.heads;
        m.arch.seqLen = fam.seqLen;

        const auto dev =
            kDevelopers[rng.uniformInt(std::size(kDevelopers))];
        m.signature.developer = dev;
        if (dev == gpusim::Developer::Google) {
            m.signature.framework = gpusim::Framework::TensorFlow;
        } else if (dev == gpusim::Developer::Amazon) {
            m.signature.framework = gpusim::Framework::Mxnet;
        } else {
            m.signature.framework = rng.bernoulli(0.8)
                                        ? gpusim::Framework::PyTorch
                                        : gpusim::Framework::TensorFlow;
        }
        m.signature.useTensorCores = dev == gpusim::Developer::Nvidia;
        m.signature.useXla =
            m.signature.framework == gpusim::Framework::TensorFlow &&
            rng.bernoulli(0.4);
        m.signature.fusionLevel = static_cast<int>(rng.uniformInt(3));
        // Unique dialect per release keeps execution fingerprints
        // separable at any zoo size, exactly as release builds differ
        // in library versions and compile flags.
        m.signature.kernelDialect = static_cast<int>(i);

        m.vocabProfile.language = Language::English;
        m.vocabProfile.cased = rng.bernoulli(0.4);
        m.vocabProfile.richness = static_cast<int>(rng.uniformInt(3));

        m.name = "proc/" + fam.family + "-r" + std::to_string(i);
        m.pretrainedName = m.name;
        m.isPretrained = true;
        m.weightSeed = rng.nextU64();
        zoo.add(std::move(m));
    }
    return zoo;
}

LazyWeightBank::LazyWeightBank() : LazyWeightBank(Options{}) {}

LazyWeightBank::LazyWeightBank(Options opts) : opts_(opts)
{
    assert(opts_.weightsPerLayer > 0);
    assert(opts_.deltaFraction >= 0.0 && opts_.deltaFraction <= 1.0);
}

const WeightStore &
LazyWeightBank::ancestorFor(const ModelIdentity &identity)
{
    const auto it = ancestors_.find(identity.family);
    if (it != ancestors_.end())
        return it->second;
    // The ancestor is seeded from the family name alone, so every
    // identity of the family converges on the same shared store no
    // matter which one is touched first.
    WeightStore store = WeightStore::makePretrained(
        identity.arch, util::hashString(identity.family.c_str()),
        opts_.weightsPerLayer, opts_.weightSigma);
    return ancestors_.emplace(identity.family, std::move(store))
        .first->second;
}

const WeightStore &
LazyWeightBank::weights(const ModelIdentity &identity)
{
    const auto it = identities_.find(identity.name);
    if (it != identities_.end())
        return it->second;

    // Copy-on-write: clone the shared ancestor, then perturb a sparse
    // seeded subset of each layer — the procedural analogue of
    // continued pre-training drift between sibling releases.
    WeightStore store = ancestorFor(identity);
    const util::Rng root(identity.weightSeed);
    for (std::size_t l = 0; l < store.layers.size(); ++l) {
        auto &w = store.layers[l].w;
        if (w.empty())
            continue;
        const auto k = static_cast<std::size_t>(
            opts_.deltaFraction * static_cast<double>(w.size()));
        if (k == 0)
            continue;
        util::Rng rng = root.split(l);
        for (const std::size_t idx :
             rng.sampleWithoutReplacement(w.size(), k)) {
            w[idx] += static_cast<float>(
                rng.gaussian(0.0, opts_.deltaSigma));
        }
    }
    return identities_.emplace(identity.name, std::move(store))
        .first->second;
}

} // namespace decepticon::zoo
