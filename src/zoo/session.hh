/**
 * @file
 * Procedural victim-session sampler for campaign runs: expands a
 * campaign seed into a queue of synthetic black-box "users", each
 * serving one zoo model. Lineage popularity is skewed (a few public
 * releases dominate real serving fleets), which is exactly the regime
 * where a fingerprint result cache pays off.
 */

#ifndef DECEPTICON_ZOO_SESSION_HH
#define DECEPTICON_ZOO_SESSION_HH

#include <cstdint>
#include <vector>

#include "zoo/zoo.hh"

namespace decepticon::zoo {

/**
 * One victim session in a campaign queue: which zoo release the
 * victim serves and how observable it is. The struct stays below the
 * fault layer, so trace corruption severity is a plain scalar in
 * [0, 1]; the campaign driver maps it onto a concrete fault spec.
 */
struct VictimSessionSpec
{
    /** Position in the campaign queue (also the cache clock tick). */
    std::size_t index = 0;
    /** The model this session serves (points into the source zoo). */
    const ModelIdentity *lineage = nullptr;
    /** Per-victim seed: weights head reset, trace capture, faults. */
    std::uint64_t seed = 0;
    /** Noisy captures of the victim's inference the attacker taps. */
    std::size_t captures = 3;
    /** Trace corruption severity in [0, 1]; 0 = clean channel. */
    double traceFaultSeverity = 0.0;
    /** Every channel dark: the attacker captures nothing usable. */
    bool blackout = false;
    /** Output classes of the victim's fine-tuned head. */
    std::size_t numClasses = 2;
};

/** Knobs for sampleSessions. */
struct SessionSamplerOptions
{
    /** Queue length. */
    std::size_t sessions = 64;
    /** Captures per victim (quorum size for trace repair). */
    std::size_t capturesPerVictim = 3;
    /** Fraction of sessions with a total channel blackout. */
    double blackoutFraction = 0.0;
    /** Trace corruption severity applied to non-blackout sessions. */
    double faultSeverity = 0.0;
    /**
     * Popularity skew in [0, 1]: 0 draws lineages uniformly, 1 makes
     * the head of the (seed-shuffled) lineage ranking dominate. The
     * expected cache hit rate of a campaign rises with this knob.
     */
    double skewPopularity = 0.7;
    /** Classes of each victim's fine-tuned head. */
    std::size_t numClasses = 2;
};

/**
 * Expand (zoo, seed) into a deterministic session queue. All draws
 * come from one serial Rng in queue order, so the queue is a pure
 * function of its inputs regardless of thread count. Lineages are
 * drawn from the zoo's pre-trained identities with popularity rank
 * skew; per-session seeds are independent. Cost is O(sessions) — the
 * ranking is a keyed permutation evaluated lazily per draw, so queue
 * construction never materializes or touches the full zoo.
 */
std::vector<VictimSessionSpec>
sampleSessions(const ModelZoo &zoo, const SessionSamplerOptions &opts,
               std::uint64_t seed);

} // namespace decepticon::zoo

#endif // DECEPTICON_ZOO_SESSION_HH
