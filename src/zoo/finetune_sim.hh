/**
 * @file
 * Statistical fine-tuning simulator: applies the empirically observed
 * update law of paper Sec. 4.1 to a pre-trained WeightStore. Where the
 * trainable tiny transformers (src/transformer) validate that these
 * laws *emerge* from real transfer learning, this simulator lets the
 * large-scale experiments (24-encoder stores, bit-level accounting over
 * hundreds of thousands of weights) run in milliseconds:
 *
 *  - per-epoch weight deltas are small and long-tailed (Fig. 3);
 *  - |delta| grows quadratically with the pre-trained weight's
 *    magnitude — the U-shape of Fig. 4, with ~3x larger updates for
 *    the outermost weights;
 *  - a small outlier population receives much larger updates (the
 *    long-tail source, Observation 2);
 *  - the inter-epoch delta rises until ~epoch 9 then decays (Fig. 6),
 *    while the fresh task head converges exponentially;
 *  - the task head is newly initialized (Observation 3 / Fig. 5).
 */

#ifndef DECEPTICON_ZOO_FINETUNE_SIM_HH
#define DECEPTICON_ZOO_FINETUNE_SIM_HH

#include <cstdint>
#include <vector>

#include "zoo/weight_store.hh"

namespace decepticon::zoo {

/** Update-law parameters (defaults calibrated to the paper's plots). */
struct FineTuneOptions
{
    std::size_t epochs = 3;
    /** Peak per-epoch update sigma (paper Fig. 6 peaks ~0.0015). */
    double peakSigma = 0.0015;
    /** Inter-epoch sigma at epoch 0 (ramp start). */
    double startSigma = 0.0005;
    /** Floor sigma late in training (Fig. 6 tail ~0.0002). */
    double floorSigma = 0.0002;
    /** Epoch at which the inter-epoch gap peaks. */
    std::size_t peakEpoch = 9;
    /** Epoch by which the gap has decayed to floorSigma. */
    std::size_t decayEndEpoch = 30;
    /** Quadratic magnitude boost: sigma *= 1 + alpha*(|w|/wRef)^2. */
    double uShapeAlpha = 3.0;
    double wRef = 0.25;
    /** Fraction of weights receiving outlier-scale updates. */
    double outlierProb = 0.02;
    /** Multiplier applied to outlier updates. */
    double outlierScale = 12.0;
    /** Materialized size of the newly added task head. */
    std::size_t headWeights = 64;
};

/** Fine-tuning simulation entry points. */
class FineTuneSimulator
{
  public:
    /**
     * Fine-tune a pre-trained store for opts.epochs epochs; returns
     * the resulting store (head freshly initialized and converged
     * per the epoch schedule).
     */
    static WeightStore fineTune(const WeightStore &pretrained,
                                const FineTuneOptions &opts,
                                std::uint64_t seed);

    /**
     * Epoch-by-epoch trajectory: element e is the store after e+1
     * epochs. Element 0 starts from the pre-trained weights plus a
     * fresh head.
     */
    static std::vector<WeightStore>
    fineTuneTrajectory(const WeightStore &pretrained,
                       const FineTuneOptions &opts, std::uint64_t seed);

    /** The inter-epoch update sigma schedule (Fig. 6 shape). */
    static double epochSigma(std::size_t epoch, const FineTuneOptions &opts);
};

} // namespace decepticon::zoo

#endif // DECEPTICON_ZOO_FINETUNE_SIM_HH
