/**
 * @file
 * Vocabulary/training-data profile of a model release and the query
 * probes that expose it. The paper (Secs. 4.2, 5.3) shows that models
 * with indistinguishable architecture hints — e.g. BERT vs CamemBERT
 * vs RuBERT, cased vs uncased, BERT vs RoBERTa's richer corpus — can
 * be told apart by a compiled set of queries: other-language inputs,
 * corpus-specific vocabulary, and casing-sensitive words.
 */

#ifndef DECEPTICON_ZOO_VOCAB_HH
#define DECEPTICON_ZOO_VOCAB_HH

#include <cstdint>
#include <string>
#include <vector>

namespace decepticon::zoo {

/** Training-corpus language of a release. */
enum class Language
{
    English,
    French,  // CamemBERT-style
    Russian, // RuBERT-style
    German,
};

std::string toString(Language lang);

/** What a model was trained on, as exposed through its predictions. */
struct VocabularyProfile
{
    Language language = Language::English;
    /** Cased models distinguish "Apple" from "apple". */
    bool cased = false;
    /**
     * Corpus richness tier: 1 = BERT-style corpus, 2 = RoBERTa-style
     * larger corpus covering rarer vocabulary (the paper's
     * {debugging, hijab, selfies, ...} probe words).
     */
    int richness = 1;

    bool operator==(const VocabularyProfile &) const = default;
};

/** One probe query with the capabilities needed to answer it. */
struct QueryProbe
{
    std::string text;
    Language language = Language::English;
    /** True if the answer hinges on case distinctions. */
    bool needsCasing = false;
    /** Minimum corpus richness needed to answer correctly. */
    int minRichness = 1;
};

/**
 * Deterministic response simulation: does a model with the given
 * profile answer the probe correctly?
 */
bool respondsCorrectly(const VocabularyProfile &profile,
                       const QueryProbe &probe);

/** Bit vector of responses over a probe set. */
std::vector<bool> responseVector(const VocabularyProfile &profile,
                                 const std::vector<QueryProbe> &probes);

/**
 * The standard probe set Decepticon's input-dependent variant detector
 * uses: per-language queries, rich-corpus vocabulary (RoBERTa vs BERT),
 * and casing-sensitive words (paper Sec. 5.3).
 */
std::vector<QueryProbe> standardProbeSet();

/** Hamming distance between two response vectors. */
std::size_t responseDistance(const std::vector<bool> &a,
                             const std::vector<bool> &b);

/**
 * Compile a minimal-ish probe list that distinguishes every
 * distinguishable pair of candidate profiles — the paper's attacker
 * builds his query set from the candidates' known differences
 * (vocabulary files, languages, casing). Greedy set cover over the
 * probe universe: repeatedly pick the probe separating the most
 * still-confused pairs. Pairs with identical profiles are inherently
 * inseparable and are ignored.
 *
 * @param profiles candidate vocabulary profiles
 * @param universe probe pool to select from (standardProbeSet() by
 *        default)
 * @return the selected probes, in selection order
 */
std::vector<QueryProbe> buildDiscriminativeProbeSet(
    const std::vector<VocabularyProfile> &profiles,
    const std::vector<QueryProbe> &universe);

/** Overload using the standard probe universe. */
std::vector<QueryProbe> buildDiscriminativeProbeSet(
    const std::vector<VocabularyProfile> &profiles);

} // namespace decepticon::zoo

#endif // DECEPTICON_ZOO_VOCAB_HH
