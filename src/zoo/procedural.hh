/**
 * @file
 * Procedural large-zoo generation: expand a (family table, seed) pair
 * into thousands of pre-trained identities without storing weights for
 * any of them up front. Identities within a family share a single
 * ancestor weight store; a concrete identity's weights are the
 * ancestor plus a sparse seeded delta, materialized lazily on first
 * touch (copy-on-write). This is what lets a 5,000+ identity zoo fit
 * in memory: the zoo itself is metadata, and weight storage scales
 * with the number of identities a campaign actually probes, not with
 * zoo size (DESIGN.md §15).
 */

#ifndef DECEPTICON_ZOO_PROCEDURAL_HH
#define DECEPTICON_ZOO_PROCEDURAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "zoo/weight_store.hh"
#include "zoo/zoo.hh"

namespace decepticon::zoo {

/** One procedural family: a shared architecture + ancestor lineage. */
struct ProceduralFamilySpec
{
    std::string family; ///< e.g. "proc-fam07"
    std::size_t layers = 4;
    std::size_t hidden = 256;
    std::size_t heads = 4;
    std::size_t seqLen = 128;
};

/** Knobs for buildProceduralZoo. */
struct ProceduralZooOptions
{
    /** Total pre-trained identities to generate. */
    std::size_t identities = 5000;
    /** Distinct families (shared-ancestor groups). */
    std::size_t families = 32;
    /** Root seed; the zoo is a pure function of (options, seed). */
    std::uint64_t seed = 1;
};

/**
 * The procedural family table: `count` specs cycling through a grid of
 * transformer shapes (layers x hidden), deterministic in count alone.
 */
std::vector<ProceduralFamilySpec> proceduralFamilies(std::size_t count);

/**
 * Expand options into a zoo of opts.identities pre-trained releases.
 * Identity i is a pure function of (family spec i % families,
 * Rng(seed).split(i)) — independent of build order — and carries a
 * unique kernelDialect so releases stay trace-separable. No weights
 * are materialized here; pair with LazyWeightBank for that.
 */
ModelZoo buildProceduralZoo(const ProceduralZooOptions &opts);

/**
 * Copy-on-write weight storage for procedural identities. One
 * ancestor WeightStore per family (seeded from the family name), built
 * on first touch of any identity in that family; each touched identity
 * gets the ancestor plus a sparse delta seeded from its weightSeed.
 * Results are cached, so repeated lookups are O(1) and pointer-stable.
 *
 * Not thread-safe: materialize from the serial phase of a run (the
 * campaign driver touches weights only on the queue-build path).
 */
class LazyWeightBank
{
  public:
    struct Options
    {
        /** Materialized weights per encoder layer. */
        std::size_t weightsPerLayer = 2000;
        /** Bulk scale of ancestor weight distribution. */
        float weightSigma = 0.08f;
        /** Fraction of each layer's weights perturbed per identity. */
        double deltaFraction = 0.05;
        /** Scale of the per-identity perturbation. */
        float deltaSigma = 0.02f;
    };

    LazyWeightBank();
    explicit LazyWeightBank(Options opts);

    /**
     * The identity's weight store, materializing it (and its family
     * ancestor) on first touch. The returned reference is stable for
     * the bank's lifetime.
     */
    const WeightStore &weights(const ModelIdentity &identity);

    /** Identities materialized so far (lazy-touch accounting). */
    std::size_t materializedIdentities() const
    {
        return identities_.size();
    }

    /** Family ancestors materialized so far. */
    std::size_t materializedAncestors() const
    {
        return ancestors_.size();
    }

  private:
    const WeightStore &ancestorFor(const ModelIdentity &identity);

    Options opts_;
    /** family name -> shared ancestor store. */
    std::map<std::string, WeightStore> ancestors_;
    /** identity name -> ancestor + sparse delta. */
    std::map<std::string, WeightStore> identities_;
};

} // namespace decepticon::zoo

#endif // DECEPTICON_ZOO_PROCEDURAL_HH
