#include "zoo/zoo.hh"

#include <cassert>

#include "util/rng.hh"

namespace decepticon::zoo {

namespace {

/** A transformer family/size template with full-scale dimensions. */
struct FamilySpec
{
    const char *family;
    const char *sizeClass;
    std::size_t layers;
    std::size_t hidden;
};

// Full-scale shapes of the families the paper evaluates (Sec. 7.1).
const FamilySpec kFamilies[] = {
    {"BERT", "tiny", 2, 128},
    {"BERT", "mini", 4, 256},
    {"BERT", "small", 4, 512},
    {"BERT", "medium", 8, 512},
    {"DistilBERT", "distill", 6, 768},
    {"BERT", "base", 12, 768},
    {"BERT", "large", 24, 1024},
    {"GPT-2", "base", 12, 768},
    {"GPT-2", "medium", 24, 1024},
    {"RoBERTa", "base", 12, 768},
    {"RoBERTa", "large", 24, 1024},
    {"ALBERT", "base", 12, 768},
    {"ALBERT", "xxlarge", 12, 4096},
    {"DeBERTa", "xsmall", 12, 384},
    {"MobileBERT", "base", 24, 512},
    {"XLNet", "base", 12, 768},
    {"BART", "base", 12, 768},
    {"T5", "base", 12, 768},
    {"SpanBERT", "base", 12, 768},
    {"CamemBERT", "base", 12, 768},
    {"RuBERT", "base", 12, 768},
};
constexpr std::size_t kNumFamilies = std::size(kFamilies);

const gpusim::Developer kDevelopers[] = {
    gpusim::Developer::HuggingFace, gpusim::Developer::Nvidia,
    gpusim::Developer::Google,      gpusim::Developer::Meta,
    gpusim::Developer::Amazon,      gpusim::Developer::Community,
};

const char *const kTasks[] = {
    "squad", "mnli", "sst2", "cola",  "qqp",  "stsb",
    "rte",   "wnli", "mrpc", "qnli", "ner",  "sentiment",
};

} // anonymous namespace

ModelZoo
ModelZoo::buildDefault(std::uint64_t seed, std::size_t num_pretrained,
                       std::size_t num_finetuned)
{
    util::Rng rng(seed);
    ModelZoo zoo;

    for (std::size_t i = 0; i < num_pretrained; ++i) {
        const FamilySpec &spec = kFamilies[i % kNumFamilies];
        ModelIdentity m;
        m.family = spec.family;
        m.sizeClass = spec.sizeClass;
        m.arch.numLayers = spec.layers;
        m.arch.hidden = spec.hidden;
        m.arch.numHeads = std::max<std::size_t>(2, spec.hidden / 64);
        m.arch.seqLen = 128;

        // Software signature: source repo and optimization choices.
        const auto dev = kDevelopers[rng.uniformInt(std::size(kDevelopers))];
        m.signature.developer = dev;
        if (dev == gpusim::Developer::Google) {
            m.signature.framework = gpusim::Framework::TensorFlow;
        } else if (dev == gpusim::Developer::Amazon) {
            m.signature.framework = gpusim::Framework::Mxnet;
        } else if (dev == gpusim::Developer::Nvidia) {
            m.signature.framework = rng.bernoulli(0.5)
                                        ? gpusim::Framework::PyTorch
                                        : gpusim::Framework::TensorFlow;
        } else {
            m.signature.framework = gpusim::Framework::PyTorch;
        }
        // NVIDIA releases are tensor-core optimized regardless of
        // framework (paper Sec. 4.2).
        m.signature.useTensorCores = dev == gpusim::Developer::Nvidia;
        m.signature.useXla =
            m.signature.framework == gpusim::Framework::TensorFlow &&
            rng.bernoulli(0.4);
        m.signature.fusionLevel =
            static_cast<int>(rng.uniformInt(3));
        // Unique dialect per release: library versions/build flags.
        m.signature.kernelDialect = static_cast<int>(i);

        // Vocabulary profile.
        if (std::string(spec.family) == "CamemBERT")
            m.vocabProfile.language = Language::French;
        else if (std::string(spec.family) == "RuBERT")
            m.vocabProfile.language = Language::Russian;
        else
            m.vocabProfile.language = Language::English;
        m.vocabProfile.cased = rng.bernoulli(0.4);
        m.vocabProfile.richness =
            std::string(spec.family) == "RoBERTa" ? 2 : 1;

        m.name = gpusim::toString(dev) + "/" + std::string(spec.family) +
                 "-" + spec.sizeClass +
                 (m.vocabProfile.cased ? "-cased" : "-uncased") + "-r" +
                 std::to_string(i);
        m.pretrainedName = m.name;
        m.isPretrained = true;
        m.weightSeed = rng.nextU64();
        zoo.add(std::move(m));
    }

    const std::size_t base = zoo.models_.size();
    for (std::size_t i = 0; i < num_finetuned; ++i) {
        const ModelIdentity &parent =
            zoo.models_[rng.uniformInt(base)];
        ModelIdentity m = parent;
        m.isPretrained = false;
        m.pretrainedName = parent.name;
        m.task = kTasks[rng.uniformInt(std::size(kTasks))];
        m.name = parent.name + "@" + m.task + "-ft" + std::to_string(i);
        // Fine-tuning replaces the task head; the trace-visible
        // architecture and signature are inherited unchanged.
        m.arch.numClasses = 2 + rng.uniformInt(4);
        m.weightSeed = rng.nextU64();
        zoo.add(std::move(m));
    }
    return zoo;
}

std::vector<const ModelIdentity *>
ModelZoo::pretrained() const
{
    std::vector<const ModelIdentity *> out;
    for (const auto &m : models_) {
        if (m.isPretrained)
            out.push_back(&m);
    }
    return out;
}

std::vector<const ModelIdentity *>
ModelZoo::finetuned() const
{
    std::vector<const ModelIdentity *> out;
    for (const auto &m : models_) {
        if (!m.isPretrained)
            out.push_back(&m);
    }
    return out;
}

const ModelIdentity *
ModelZoo::byName(const std::string &name) const
{
    const auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : &models_[it->second];
}

std::vector<std::string>
ModelZoo::lineageNames() const
{
    std::vector<std::string> out;
    for (const auto &m : models_) {
        if (m.isPretrained)
            out.push_back(m.name);
    }
    return out;
}

void
ModelZoo::add(ModelIdentity identity)
{
    const std::size_t idx = models_.size();
    if (identity.isPretrained)
        pretrainedIdx_.push_back(idx);
    byName_.emplace(identity.name, idx);
    models_.push_back(std::move(identity));
}

} // namespace decepticon::zoo
