#include "zoo/weight_store.hh"

#include <cassert>
#include <cmath>

#include "util/rng.hh"

namespace decepticon::zoo {

std::size_t
analyticEncoderWeightCount(const gpusim::ArchParams &arch)
{
    const std::size_t h = arch.hidden;
    const std::size_t ffn = 4 * h;
    // Wq, Wk, Wv, Wo: 4 * h*h (+ 4h biases); FFN: h*ffn * 2 (+ ffn + h);
    // two layer norms: 4h.
    return 4 * h * h + 4 * h + 2 * h * ffn + ffn + h + 4 * h;
}

WeightStore
WeightStore::makePretrained(const gpusim::ArchParams &arch,
                            std::uint64_t seed,
                            std::size_t weights_per_layer,
                            float weight_sigma)
{
    assert(weights_per_layer > 0);
    util::Rng rng(seed);
    WeightStore ws;
    ws.analyticLayerWeights = analyticEncoderWeightCount(arch);
    // Token + position embeddings (30k-ish vocab at full scale).
    ws.analyticEmbeddingWeights = 30522 * arch.hidden +
                                  512 * arch.hidden;
    ws.analyticHeadWeights = arch.hidden * arch.numClasses +
                             arch.numClasses;

    ws.layers.reserve(arch.numLayers);
    for (std::size_t l = 0; l < arch.numLayers; ++l) {
        LayerWeights lw;
        lw.name = "encoder" + std::to_string(l);
        lw.w.resize(weights_per_layer);
        for (auto &v : lw.w) {
            v = static_cast<float>(rng.gaussian(0.0, weight_sigma));
            // Rare large-magnitude weights give the wide value ranges
            // the paper reports (1.74 up to 26.3 across models).
            if (rng.bernoulli(0.01))
                v *= static_cast<float>(rng.uniform(3.0, 12.0));
        }
        ws.layers.push_back(std::move(lw));
    }
    return ws;
}

std::size_t
WeightStore::analyticTotalWeights() const
{
    return analyticEmbeddingWeights +
           analyticLayerWeights * layers.size() + analyticHeadWeights;
}

double
WeightStore::headWeightFraction() const
{
    const std::size_t total = analyticTotalWeights();
    return total == 0 ? 0.0
                      : static_cast<double>(analyticHeadWeights) /
                            static_cast<double>(total);
}

std::size_t
WeightStore::materializedCount() const
{
    std::size_t n = head.w.size();
    for (const auto &l : layers)
        n += l.w.size();
    return n;
}

std::vector<double>
WeightStore::perLayerMeanAbsDiff(const WeightStore &other) const
{
    assert(layers.size() == other.layers.size());
    std::vector<double> out;
    out.reserve(layers.size() + 1);
    for (std::size_t l = 0; l < layers.size(); ++l) {
        const auto &a = layers[l].w;
        const auto &b = other.layers[l].w;
        assert(a.size() == b.size());
        double s = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i)
            s += std::fabs(static_cast<double>(a[i]) - b[i]);
        out.push_back(a.empty() ? 0.0
                                : s / static_cast<double>(a.size()));
    }
    if (!head.w.empty() && head.w.size() == other.head.w.size()) {
        double s = 0.0;
        for (std::size_t i = 0; i < head.w.size(); ++i)
            s += std::fabs(static_cast<double>(head.w[i]) -
                           other.head.w[i]);
        out.push_back(s / static_cast<double>(head.w.size()));
    }
    return out;
}

std::vector<double>
WeightStore::weightDeltas(const WeightStore &other) const
{
    assert(layers.size() == other.layers.size());
    std::vector<double> out;
    for (std::size_t l = 0; l < layers.size(); ++l) {
        const auto &a = layers[l].w;
        const auto &b = other.layers[l].w;
        assert(a.size() == b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            out.push_back(static_cast<double>(a[i]) - b[i]);
    }
    return out;
}

} // namespace decepticon::zoo
