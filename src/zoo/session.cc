#include "zoo/session.hh"

#include <cassert>
#include <cmath>

#include "util/rng.hh"

namespace decepticon::zoo {

namespace {

/**
 * Seed-keyed pseudorandom permutation over [0, n): a 4-round Feistel
 * network on the smallest even-bit domain covering n, cycle-walked
 * back into range. Replaces shuffling a materialized identity vector
 * so the popularity ranking costs O(1) per draw instead of O(zoo) up
 * front — at 5,000+ identities the queue build must not touch
 * unsampled identities at all.
 */
class RankPermutation
{
  public:
    RankPermutation(std::uint64_t seed, std::size_t n) : n_(n)
    {
        assert(n > 0);
        while ((std::uint64_t{1} << (2 * half_)) < n)
            ++half_;
        mask_ = (std::uint64_t{1} << half_) - 1;
        util::SplitMix64 sm(seed);
        for (auto &k : keys_)
            k = sm.next();
    }

    std::size_t
    operator()(std::size_t rank) const
    {
        // Cycle-walk: the domain is < 4n, so the expected number of
        // encryptions per draw is below 4.
        std::uint64_t x = rank;
        do {
            x = encrypt(x);
        } while (x >= n_);
        return static_cast<std::size_t>(x);
    }

  private:
    std::uint64_t
    encrypt(std::uint64_t x) const
    {
        std::uint64_t l = x >> half_;
        std::uint64_t r = x & mask_;
        for (const std::uint64_t k : keys_) {
            const std::uint64_t f =
                util::SplitMix64(r ^ k).next() & mask_;
            const std::uint64_t next_l = r;
            r = l ^ f;
            l = next_l;
        }
        return (l << half_) | r;
    }

    std::uint64_t n_;
    std::uint64_t half_ = 1;
    std::uint64_t mask_ = 0;
    std::uint64_t keys_[4] = {};
};

} // anonymous namespace

std::vector<VictimSessionSpec>
sampleSessions(const ModelZoo &zoo, const SessionSamplerOptions &opts,
               std::uint64_t seed)
{
    const std::size_t pool = zoo.pretrainedCount();
    assert(pool > 0 && "zoo has no pre-trained identities");

    util::Rng rng(seed);
    // The popularity ranking is itself random per campaign: a keyed
    // permutation of the lineage indices plays the role of a shuffle,
    // but only the ranks actually drawn are ever evaluated. skew=0
    // degenerates to a uniform draw; skew->1 concentrates essentially
    // all mass on the first few ranks.
    const RankPermutation perm(rng.nextU64(), pool);

    std::vector<VictimSessionSpec> queue;
    queue.reserve(opts.sessions);
    for (std::size_t i = 0; i < opts.sessions; ++i) {
        VictimSessionSpec spec;
        spec.index = i;
        // Rank-skewed draw: u^(1/(1-skew)) pushes the uniform variate
        // toward 0, i.e. toward the popular head of the ranking.
        const double u = rng.uniform();
        const double skew = std::min(opts.skewPopularity, 0.999);
        const double biased =
            skew <= 0.0 ? u : std::pow(u, 1.0 / (1.0 - skew));
        std::size_t rank = static_cast<std::size_t>(
            biased * static_cast<double>(pool));
        if (rank >= pool)
            rank = pool - 1;
        spec.lineage = &zoo.pretrainedAt(perm(rank));
        spec.seed = rng.nextU64();
        spec.captures = opts.capturesPerVictim;
        spec.blackout = rng.bernoulli(opts.blackoutFraction);
        spec.traceFaultSeverity = spec.blackout ? 1.0 : opts.faultSeverity;
        spec.numClasses = opts.numClasses;
        queue.push_back(spec);
    }
    return queue;
}

} // namespace decepticon::zoo
