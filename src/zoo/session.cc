#include "zoo/session.hh"

#include <cassert>
#include <cmath>

#include "util/rng.hh"

namespace decepticon::zoo {

std::vector<VictimSessionSpec>
sampleSessions(const ModelZoo &zoo, const SessionSamplerOptions &opts,
               std::uint64_t seed)
{
    std::vector<const ModelIdentity *> pool = zoo.pretrained();
    assert(!pool.empty() && "zoo has no pre-trained identities");

    util::Rng rng(seed);
    // The popularity ranking is itself random per campaign: shuffle
    // the lineages once, then bias draws toward the front of the
    // shuffled order. skew=0 degenerates to a uniform draw; skew->1
    // concentrates essentially all mass on the first few ranks.
    rng.shuffle(pool);

    std::vector<VictimSessionSpec> queue;
    queue.reserve(opts.sessions);
    for (std::size_t i = 0; i < opts.sessions; ++i) {
        VictimSessionSpec spec;
        spec.index = i;
        // Rank-skewed draw: u^(1/(1-skew)) pushes the uniform variate
        // toward 0, i.e. toward the popular head of the ranking.
        const double u = rng.uniform();
        const double skew = std::min(opts.skewPopularity, 0.999);
        const double biased =
            skew <= 0.0 ? u : std::pow(u, 1.0 / (1.0 - skew));
        std::size_t rank = static_cast<std::size_t>(
            biased * static_cast<double>(pool.size()));
        if (rank >= pool.size())
            rank = pool.size() - 1;
        spec.lineage = pool[rank];
        spec.seed = rng.nextU64();
        spec.captures = opts.capturesPerVictim;
        spec.blackout = rng.bernoulli(opts.blackoutFraction);
        spec.traceFaultSeverity = spec.blackout ? 1.0 : opts.faultSeverity;
        spec.numClasses = opts.numClasses;
        queue.push_back(spec);
    }
    return queue;
}

} // namespace decepticon::zoo
