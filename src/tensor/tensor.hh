/**
 * @file
 * Minimal dense float tensor used by the neural-network substrate.
 * Row-major storage, dynamic rank, and the handful of BLAS-like kernels
 * needed by the transformer and CNN implementations.
 */

#ifndef DECEPTICON_TENSOR_TENSOR_HH
#define DECEPTICON_TENSOR_TENSOR_HH

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace decepticon::tensor {

/**
 * Dense row-major float tensor of dynamic rank.
 *
 * Only the operations used by the nn/transformer substrates are
 * provided; the goal is a dependency-free, easily auditable kernel
 * set rather than a general array library.
 */
class Tensor
{
  public:
    /** Empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor with the given shape. */
    explicit Tensor(std::vector<std::size_t> shape);

    /** Tensor with the given shape and fill value. */
    Tensor(std::vector<std::size_t> shape, float fill);

    /** Shape accessor. */
    const std::vector<std::size_t> &shape() const { return shape_; }

    /** Number of dimensions. */
    std::size_t rank() const { return shape_.size(); }

    /** Size of dimension d. */
    std::size_t dim(std::size_t d) const { return shape_[d]; }

    /** Total element count. */
    std::size_t size() const { return data_.size(); }

    /** Raw storage access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::vector<float> &vec() { return data_; }
    const std::vector<float> &vec() const { return data_; }

    /** Flat element access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 2-D element access. @pre rank() == 2 */
    float &
    at(std::size_t r, std::size_t c)
    {
        assert(rank() == 2);
        return data_[r * shape_[1] + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        assert(rank() == 2);
        return data_[r * shape_[1] + c];
    }

    /** 3-D element access. @pre rank() == 3 */
    float &
    at(std::size_t i, std::size_t j, std::size_t k)
    {
        assert(rank() == 3);
        return data_[(i * shape_[1] + j) * shape_[2] + k];
    }

    float
    at(std::size_t i, std::size_t j, std::size_t k) const
    {
        assert(rank() == 3);
        return data_[(i * shape_[1] + j) * shape_[2] + k];
    }

    /** Set every element to v. */
    void fill(float v);

    /** Reinterpret with a new shape of identical element count. */
    Tensor reshaped(std::vector<std::size_t> new_shape) const;

    /** Fill i.i.d. uniform in [-bound, bound]. */
    void fillUniform(util::Rng &rng, float bound);

    /** Fill i.i.d. normal(0, stddev). */
    void fillGaussian(util::Rng &rng, float stddev);

    /** Xavier/Glorot uniform init for a (fan_out, fan_in) matrix. */
    void fillXavier(util::Rng &rng, std::size_t fan_in, std::size_t fan_out);

    /** Sum of all elements. */
    double sum() const;

    /** Mean absolute value of all elements; 0 when empty. */
    double meanAbs() const;

    /** Human-readable shape, e.g. "[2, 3]". */
    std::string shapeString() const;

  private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

/**
 * C = A * B for 2-D tensors. @pre a is (n, k), b is (k, m)
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * C = A * B^T. @pre a is (n, k), b is (m, k)
 */
Tensor matmulTransposeB(const Tensor &a, const Tensor &b);

/**
 * C = A^T * B. @pre a is (k, n), b is (k, m)
 */
Tensor matmulTransposeA(const Tensor &a, const Tensor &b);

/** Transpose of a 2-D tensor. */
Tensor transpose(const Tensor &a);

/** Element-wise sum; shapes must match. */
Tensor add(const Tensor &a, const Tensor &b);

/** Element-wise difference; shapes must match. */
Tensor sub(const Tensor &a, const Tensor &b);

/** a += scale * b, in place; shapes must match. */
void axpy(Tensor &a, const Tensor &b, float scale);

/** Scale every element in place. */
void scaleInPlace(Tensor &a, float s);

/** Row-wise softmax of a 2-D tensor. */
Tensor softmaxRows(const Tensor &a);

/** Add a row vector to every row of a 2-D tensor, in place. */
void addRowVector(Tensor &a, const Tensor &row);

} // namespace decepticon::tensor

#endif // DECEPTICON_TENSOR_TENSOR_HH
