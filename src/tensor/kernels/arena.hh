/**
 * @file
 * Scratch memory for the optimized kernel layer (DESIGN.md §10).
 *
 * Two lifetimes are provided:
 *
 *  - ScratchArena: a per-thread bump allocator for buffers that live
 *    only for the duration of one kernel call (GEMM packing panels,
 *    col2im staging). A Frame restores the watermark on scope exit,
 *    so repeated kernel calls reuse the same hot pages instead of
 *    hitting malloc. Storage is slab-based: growing the arena never
 *    moves previously returned buffers, so a packed B panel stays
 *    valid while later chunks allocate their A panels. Arena contents
 *    never feed back into results, so thread-locality cannot break
 *    the §9 determinism contract.
 *
 *  - ActivationCache: a layer-owned slot for activations that must
 *    survive from forward() to the matching backward() (the cached
 *    input of Linear, the im2col panel of Conv2d, pre-activation
 *    values under a fused epilogue). Storage is reused across calls —
 *    no per-forward allocation once warm — and every store stamps the
 *    global activation epoch. recycleActivations() (called by
 *    trainers after each optimizer step) advances the epoch, after
 *    which a backward() against the stale cache trips an assert
 *    instead of silently using recycled data.
 */

#ifndef DECEPTICON_TENSOR_KERNELS_ARENA_HH
#define DECEPTICON_TENSOR_KERNELS_ARENA_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace decepticon::tensor::kernels {

/** Per-thread bump allocator for kernel-call-scoped float buffers. */
class ScratchArena
{
  public:
    /**
     * RAII watermark: buffers obtained while a Frame is alive are
     * reclaimed (not freed) when it goes out of scope.
     */
    class Frame
    {
      public:
        explicit Frame(ScratchArena &arena)
            : arena_(arena), slab_(arena.slab_), used_(arena.used_)
        {
        }
        ~Frame()
        {
            arena_.slab_ = slab_;
            arena_.used_ = used_;
        }
        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

      private:
        ScratchArena &arena_;
        std::size_t slab_;
        std::size_t used_;
    };

    /**
     * n floats of zeroed scratch, valid until the enclosing Frame (or
     * the arena) is destroyed. Pointer-stable: later alloc() calls
     * never move earlier buffers.
     */
    float *
    alloc(std::size_t n)
    {
        if (n == 0)
            n = 1;
        while (slab_ < slabs_.size() &&
               used_ + n > slabs_[slab_].size) {
            ++slab_;
            used_ = 0;
        }
        if (slab_ == slabs_.size()) {
            const std::size_t size = n > kSlabFloats ? n : kSlabFloats;
            slabs_.push_back(
                {std::make_unique<float[]>(size), size});
            used_ = 0;
        }
        float *p = slabs_[slab_].data.get() + used_;
        used_ += n;
        std::memset(p, 0, n * sizeof(float));
        return p;
    }

    /** Total floats held across slabs (telemetry/tests). */
    std::size_t
    capacity() const
    {
        std::size_t total = 0;
        for (const auto &s : slabs_)
            total += s.size;
        return total;
    }

  private:
    static constexpr std::size_t kSlabFloats = 1u << 20; // 4 MiB

    struct Slab
    {
        std::unique_ptr<float[]> data;
        std::size_t size;
    };

    std::vector<Slab> slabs_;
    std::size_t slab_ = 0; ///< slab the bump pointer is in
    std::size_t used_ = 0; ///< floats used within slabs_[slab_]
};

/** The calling thread's scratch arena. */
ScratchArena &scratch();

/**
 * Current activation epoch. Starts at 1 so a default-constructed
 * ActivationCache (epoch 0) is never considered valid.
 */
std::uint64_t activationEpoch();

/**
 * Advance the activation epoch, invalidating every ActivationCache
 * stamped before the call. Trainers call this after each optimizer
 * step; a backward() issued against a recycled cache asserts.
 */
void recycleActivations();

/**
 * Layer-owned forward→backward activation slot with storage reuse and
 * epoch validation (see file header).
 */
class ActivationCache
{
  public:
    /**
     * Reserve n floats of reusable storage and stamp the current
     * epoch. Contents are uninitialized; the caller writes them
     * (e.g. a GEMM epilogue or im2col writes straight into the slot).
     */
    float *
    prepare(std::size_t n)
    {
        if (buf_.size() < n)
            buf_.resize(n);
        n_ = n;
        epoch_ = activationEpoch();
        return buf_.data();
    }

    /** prepare() + copy from src. */
    void
    store(const float *src, std::size_t n)
    {
        std::memcpy(prepare(n), src, n * sizeof(float));
    }

    /** Drop the stamp (storage is kept for reuse). */
    void invalidate() { epoch_ = 0; }

    /** True while no recycleActivations() happened since the stamp. */
    bool valid() const { return epoch_ != 0 && epoch_ == activationEpoch(); }

    const float *data() const { return buf_.data(); }
    float *data() { return buf_.data(); }
    std::size_t size() const { return n_; }

  private:
    std::vector<float> buf_;
    std::size_t n_ = 0;
    std::uint64_t epoch_ = 0;
};

} // namespace decepticon::tensor::kernels

#endif // DECEPTICON_TENSOR_KERNELS_ARENA_HH
