#include "tensor/kernels/arena.hh"

#include <atomic>

namespace decepticon::tensor::kernels {

ScratchArena &
scratch()
{
    thread_local ScratchArena arena;
    return arena;
}

namespace {

// Relaxed is enough: the epoch only gates asserts, never results, and
// forward/backward pairs that must agree run on one thread.
std::atomic<std::uint64_t> g_activation_epoch{1};

} // anonymous namespace

std::uint64_t
activationEpoch()
{
    return g_activation_epoch.load(std::memory_order_relaxed);
}

void
recycleActivations()
{
    g_activation_epoch.fetch_add(1, std::memory_order_relaxed);
}

} // namespace decepticon::tensor::kernels
