/**
 * @file
 * Vectorization-friendly element-wise kernels. The attention hot path
 * spends a large share of its time in row softmax, so the optimized
 * variant replaces libm expf with the fast polynomial exp from
 * vecmath.hh, evaluated eight lanes at a time. Results are a pure
 * function of the input values and the row length — the max and sum
 * reductions run lane-wise over full 8-wide groups in ascending
 * order, then reduce the lanes and the scalar tail in a fixed order —
 * so there is no thread-count or scheduling dependence.
 */

#include "tensor/kernels/kernels.hh"

#include <algorithm>
#include <cstring>

#include "tensor/kernels/vecmath.hh"

#if defined(__GNUC__) || defined(__clang__)
#define DECEPTICON_RESTRICT __restrict__
#else
#define DECEPTICON_RESTRICT
#endif

namespace decepticon::tensor::kernels {

namespace {

#ifdef DECEPTICON_KERNEL_VECEXT

inline void
softmaxRow(const float *DECEPTICON_RESTRICT row,
           float *DECEPTICON_RESTRICT orow, std::size_t cols)
{
    const std::size_t body = cols - cols % kV8Lanes;
    // Row max: lane-wise over full groups, then lanes 0..7, then the
    // tail. Max is order-insensitive, but keep the order fixed anyway.
    float mx = row[0];
    if (body) {
        V8 vmx;
        std::memcpy(&vmx, row, sizeof vmx);
        for (std::size_t j = kV8Lanes; j < body; j += kV8Lanes) {
            V8 v;
            std::memcpy(&v, row + j, sizeof v);
            vmx = v > vmx ? v : vmx;
        }
        mx = vmx[0];
        for (std::size_t l = 1; l < kV8Lanes; ++l)
            mx = std::max(mx, vmx[l]);
    }
    for (std::size_t j = body; j < cols; ++j)
        mx = std::max(mx, row[j]);
    // Exponentials and sum: 8 fixed lane-partials in ascending group
    // order, reduced lanes 0..7, then the scalar tail in order.
    const V8 vmxb = vbroadcast(mx);
    V8 vsum = V8{};
    for (std::size_t j = 0; j < body; j += kV8Lanes) {
        V8 v;
        std::memcpy(&v, row + j, sizeof v);
        const V8 e = fastExpV(v - vmxb);
        std::memcpy(orow + j, &e, sizeof e);
        vsum += e;
    }
    float s = 0.0f;
    for (std::size_t l = 0; l < kV8Lanes; ++l)
        s += vsum[l];
    for (std::size_t j = body; j < cols; ++j) {
        orow[j] = fastExp(row[j] - mx);
        s += orow[j];
    }
    const float inv = 1.0f / s;
    const V8 vinv = vbroadcast(inv);
    for (std::size_t j = 0; j < body; j += kV8Lanes) {
        V8 v;
        std::memcpy(&v, orow + j, sizeof v);
        v *= vinv;
        std::memcpy(orow + j, &v, sizeof v);
    }
    for (std::size_t j = body; j < cols; ++j)
        orow[j] *= inv;
}

#else // !DECEPTICON_KERNEL_VECEXT

inline void
softmaxRow(const float *DECEPTICON_RESTRICT row,
           float *DECEPTICON_RESTRICT orow, std::size_t cols)
{
    float mx = row[0];
    for (std::size_t j = 1; j < cols; ++j)
        mx = std::max(mx, row[j]);
    float s = 0.0f;
    for (std::size_t j = 0; j < cols; ++j) {
        orow[j] = fastExp(row[j] - mx);
        s += orow[j];
    }
    const float inv = 1.0f / s;
    for (std::size_t j = 0; j < cols; ++j)
        orow[j] *= inv;
}

#endif // DECEPTICON_KERNEL_VECEXT

} // anonymous namespace

void
softmaxRowsFast(const float *DECEPTICON_RESTRICT x,
                float *DECEPTICON_RESTRICT y, std::size_t rows,
                std::size_t cols)
{
    for (std::size_t i = 0; i < rows; ++i)
        softmaxRow(x + i * cols, y + i * cols, cols);
}

} // namespace decepticon::tensor::kernels
