/**
 * @file
 * Branch-light float math shared by the optimized kernels
 * (DESIGN.md §10): a Cody–Waite range-reduced degree-6 polynomial
 * expf (~3e-7 relative error) and a tanh/GELU built on it, in scalar
 * form and — under GCC/Clang — as 8-lane vector-extension variants.
 * Inputs below the expf underflow cutoff flush to exactly zero, which
 * the causal-attention mask contract depends on. All results are pure
 * functions of the input values; nothing here depends on thread count
 * or scheduling order.
 *
 * The naive reference kernels do NOT use these: they keep libm
 * (std::exp / std::tanh), so the differential kernel tests also bound
 * the polynomial approximation error.
 */

#ifndef DECEPTICON_TENSOR_KERNELS_VECMATH_HH
#define DECEPTICON_TENSOR_KERNELS_VECMATH_HH

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace decepticon::tensor::kernels {

inline constexpr float kExpLog2e = 1.4426950408889634f;
inline constexpr float kExpLn2Hi = 0.693145751953125f;
inline constexpr float kExpLn2Lo = 1.428606765330187e-06f;
inline constexpr float kExpMagic = 12582912.0f; // 1.5*2^23: rne trick
inline constexpr float kExpLo = -87.0f;
inline constexpr float kExpHi = 88.0f;

/**
 * Scalar fast expf: exact power-of-two scaling of a degree-6 Taylor
 * polynomial on the reduced argument r in [-ln2/2, ln2/2].
 */
inline float
fastExp(float x)
{
    if (x < kExpLo)
        return 0.0f;
    x = std::min(kExpHi, x);
    const float nf = (x * kExpLog2e + kExpMagic) - kExpMagic;
    const float r = (x - nf * kExpLn2Hi) - nf * kExpLn2Lo;
    float p = 1.0f / 720.0f;
    p = p * r + 1.0f / 120.0f;
    p = p * r + 1.0f / 24.0f;
    p = p * r + 1.0f / 6.0f;
    p = p * r + 0.5f;
    p = p * r + 1.0f;
    p = p * r + 1.0f;
    const std::int32_t bits =
        (static_cast<std::int32_t>(nf) + 127) << 23;
    float scale;
    std::memcpy(&scale, &bits, sizeof scale);
    return p * scale;
}

/** Scalar fast tanh via tanh(u) = (e^{2u} - 1) / (e^{2u} + 1). */
inline float
fastTanh(float u)
{
    const float e = fastExp(2.0f * u);
    return (e - 1.0f) / (e + 1.0f);
}

/** GELU (tanh approximation) with the fast tanh above. */
inline float
fastGelu(float v)
{
    constexpr float c = 0.7978845608028654f; // sqrt(2/pi)
    constexpr float a = 0.044715f;
    const float t = fastTanh(c * (v + a * v * v * v));
    return 0.5f * v * (1.0f + t);
}

#if defined(__GNUC__) || defined(__clang__)
#define DECEPTICON_KERNEL_VECEXT 1

using V8 = float __attribute__((vector_size(32)));
using I8 = std::int32_t __attribute__((vector_size(32)));

inline constexpr std::size_t kV8Lanes = sizeof(V8) / sizeof(float);

inline V8
vbroadcast(float v)
{
    return V8{} + v;
}

/** Eight fastExp lanes at once; same formula as the scalar version. */
inline V8
fastExpV(V8 x)
{
    const V8 lo = vbroadcast(kExpLo), hi = vbroadcast(kExpHi);
    const V8 orig = x;
    x = x < lo ? lo : x;
    x = x > hi ? hi : x;
    const V8 magic = vbroadcast(kExpMagic);
    const V8 t = x * vbroadcast(kExpLog2e) + magic;
    const V8 nf = t - magic;
    const V8 r =
        (x - nf * vbroadcast(kExpLn2Hi)) - nf * vbroadcast(kExpLn2Lo);
    V8 p = vbroadcast(1.0f / 720.0f);
    p = p * r + vbroadcast(1.0f / 120.0f);
    p = p * r + vbroadcast(1.0f / 24.0f);
    p = p * r + vbroadcast(1.0f / 6.0f);
    p = p * r + vbroadcast(0.5f);
    p = p * r + vbroadcast(1.0f);
    p = p * r + vbroadcast(1.0f);
    const I8 bits = (__builtin_convertvector(nf, I8) + 127) << 23;
    V8 scale;
    std::memcpy(&scale, &bits, sizeof scale);
    const V8 e = p * scale;
    return orig < lo ? V8{} : e; // underflow flush, see fastExp
}

inline V8
fastTanhV(V8 u)
{
    const V8 one = vbroadcast(1.0f);
    const V8 e = fastExpV(u + u);
    return (e - one) / (e + one);
}

inline V8
fastGeluV(V8 v)
{
    const V8 c = vbroadcast(0.7978845608028654f);
    const V8 a = vbroadcast(0.044715f);
    const V8 t = fastTanhV(c * (v + a * v * v * v));
    return vbroadcast(0.5f) * v * (vbroadcast(1.0f) + t);
}

#endif // GCC/Clang vector extensions

} // namespace decepticon::tensor::kernels

#endif // DECEPTICON_TENSOR_KERNELS_VECMATH_HH
