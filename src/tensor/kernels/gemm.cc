/**
 * @file
 * Cache-blocked, register-tiled, panel-packed GEMM (DESIGN.md §10).
 *
 * Loop structure (BLIS-style, NC/KC/MC blocking):
 *
 *   for jc over m step NC:                 column panel
 *     for pc over k step KC:               ascending — fixes sum order
 *       pack op(B)[pc:pc+kc, jc:jc+nc]     NR-strip layout, zero-padded
 *       for ic over n step MC:             sched::parallelForRange
 *         pack op(A)[ic:ic+mc, pc:pc+kc]   MR-strip layout, zero-padded
 *         for jr, ir strips: micro-kernel  MR×NR register tile
 *     epilogue over C[:, jc:jc+nc]         fused bias/activation
 *
 * Determinism: k is consumed in ascending KC blocks and ascending
 * order inside the micro-kernel, and each C element belongs to
 * exactly one (ic) task, so the summation order is a pure function of
 * (n, m, k) — never of the lane count. Parallel row-panel chunking
 * uses grain 1 over MC blocks, whose boundaries depend only on n.
 */

#include "tensor/kernels/kernels.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "sched/sched.hh"
#include "tensor/kernels/arena.hh"
#include "tensor/kernels/vecmath.hh"

#if defined(__GNUC__) || defined(__clang__)
#define DECEPTICON_RESTRICT __restrict__
#else
#define DECEPTICON_RESTRICT
#endif

namespace decepticon::tensor::kernels {

namespace {

// Register tile and cache-block parameters. MR×NR accumulators fit the
// vector register file (6×16 floats = 12 AVX2 / 6 AVX-512 registers);
// an MC×KC A panel (~72 KiB) sits in L2 while KC×NC of B (~512 KiB)
// streams through; NR-wide B rows are the unit-stride vector axis.
constexpr std::size_t MR = 6;
constexpr std::size_t NR = 16;
constexpr std::size_t MC = 72;
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 512;

// Work below this (n*m*k) runs single-task: the row-panel fan-out
// costs more than it saves. Pure function of shape, so thread-count
// invariance is unaffected.
constexpr std::size_t kParallelFlopFloor = 1u << 20;

std::atomic<int> g_naive_state{-1};

bool
envNaiveDefault()
{
    const char *e = std::getenv("DECEPTICON_NAIVE_KERNELS");
    if (e == nullptr || e[0] == '\0') {
#ifdef DECEPTICON_NAIVE_KERNELS_DEFAULT
        return true;
#else
        return false;
#endif
    }
    return !(e[0] == '0' || e[0] == 'n' || e[0] == 'N' ||
             e[0] == 'f' || e[0] == 'F');
}

/** Row stride of the stored operand when the caller passed 0. */
std::size_t
resolveLda(Trans t, const GemmCall &g)
{
    if (g.lda != 0)
        return g.lda;
    return t == Trans::TN ? g.n : g.k;
}

std::size_t
resolveLdb(Trans t, const GemmCall &g)
{
    if (g.ldb != 0)
        return g.ldb;
    return t == Trans::NT ? g.k : g.m;
}

bool
hasEpilogue(const GemmCall &g)
{
    return g.colBias != nullptr || g.rowBias != nullptr ||
           g.act != Act::None || g.preact != nullptr;
}

/**
 * Pack an mc×kc block of op(A) starting at (ic, pc) into MR-row
 * strips: ap[strip][p*MR + r]. Rows beyond mc stay zero (the arena
 * zeroed the panel), so the micro-kernel never branches on mr.
 */
void
packA(Trans t, const float *DECEPTICON_RESTRICT a, std::size_t lda,
      std::size_t ic, std::size_t pc, std::size_t mc, std::size_t kc,
      float *DECEPTICON_RESTRICT ap)
{
    for (std::size_t s = 0; s < mc; s += MR) {
        const std::size_t rows = std::min(MR, mc - s);
        float *panel = ap + s * kc;
        if (t == Trans::TN) {
            // op(A)[i][p] = a[p*lda + i]: contiguous in r.
            for (std::size_t p = 0; p < kc; ++p) {
                const float *src = a + (pc + p) * lda + ic + s;
                float *dst = panel + p * MR;
                for (std::size_t r = 0; r < rows; ++r)
                    dst[r] = src[r];
            }
        } else {
            // op(A)[i][p] = a[i*lda + p]: contiguous in p.
            for (std::size_t r = 0; r < rows; ++r) {
                const float *src = a + (ic + s + r) * lda + pc;
                for (std::size_t p = 0; p < kc; ++p)
                    panel[p * MR + r] = src[p];
            }
        }
    }
}

/**
 * Pack a kc×nc block of op(B) starting at (pc, jc) into NR-column
 * strips: bp[strip][p*NR + j], zero-padded past nc.
 */
void
packB(Trans t, const float *DECEPTICON_RESTRICT b, std::size_t ldb,
      std::size_t pc, std::size_t jc, std::size_t kc, std::size_t nc,
      float *DECEPTICON_RESTRICT bp)
{
    for (std::size_t s = 0; s < nc; s += NR) {
        const std::size_t cols = std::min(NR, nc - s);
        float *panel = bp + s * kc;
        if (t == Trans::NT) {
            // op(B)[p][j] = b[j*ldb + p]: contiguous in p.
            for (std::size_t j = 0; j < cols; ++j) {
                const float *src = b + (jc + s + j) * ldb + pc;
                for (std::size_t p = 0; p < kc; ++p)
                    panel[p * NR + j] = src[p];
            }
        } else {
            // op(B)[p][j] = b[p*ldb + j]: contiguous in j.
            for (std::size_t p = 0; p < kc; ++p) {
                const float *src = b + (pc + p) * ldb + jc + s;
                float *dst = panel + p * NR;
                for (std::size_t j = 0; j < cols; ++j)
                    dst[j] = src[j];
            }
        }
    }
}

/**
 * MR×NR register-tiled micro-kernel over packed panels: kc ascending,
 * B rows the unit-stride vector axis, one broadcast-FMA per (r, lane
 * group). Per-element summation order equals the scalar j-loop (lanes
 * are independent), so vectorization does not reassociate. Stores
 * (first k block) or adds (later blocks / accumulate mode) the valid
 * mr×nr corner into C.
 *
 * GCC/Clang vector extensions are used instead of relying on
 * auto-vectorization: the plain loop nest was verified to come out of
 * GCC 12 -O3 -march=native at ~2 GFLOP/s (SLP shuffles), while this
 * formulation reaches ~80 GFLOP/s. A scalar fallback covers other
 * compilers.
 */
#if defined(__GNUC__) || defined(__clang__)

using Vec = float __attribute__((vector_size(32)));
constexpr std::size_t VL = sizeof(Vec) / sizeof(float);
constexpr std::size_t NV = NR / VL;

void
microKernel(std::size_t kc, const float *DECEPTICON_RESTRICT ap,
            const float *DECEPTICON_RESTRICT bp,
            float *DECEPTICON_RESTRICT c, std::size_t ldc,
            std::size_t mr, std::size_t nr, bool overwrite)
{
    Vec acc[MR][NV] = {};
    for (std::size_t p = 0; p < kc; ++p) {
        Vec b[NV];
        std::memcpy(b, bp + p * NR, sizeof b);
        const float *DECEPTICON_RESTRICT acol = ap + p * MR;
        for (std::size_t r = 0; r < MR; ++r) {
            const Vec av = acol[r] - Vec{}; // broadcast
            for (std::size_t v = 0; v < NV; ++v)
                acc[r][v] += av * b[v];
        }
    }
    float out[MR][NR];
    std::memcpy(out, acc, sizeof out);
    if (overwrite) {
        for (std::size_t r = 0; r < mr; ++r) {
            float *crow = c + r * ldc;
            for (std::size_t j = 0; j < nr; ++j)
                crow[j] = out[r][j];
        }
    } else {
        for (std::size_t r = 0; r < mr; ++r) {
            float *crow = c + r * ldc;
            for (std::size_t j = 0; j < nr; ++j)
                crow[j] += out[r][j];
        }
    }
}

#else // scalar fallback, same summation order

void
microKernel(std::size_t kc, const float *DECEPTICON_RESTRICT ap,
            const float *DECEPTICON_RESTRICT bp,
            float *DECEPTICON_RESTRICT c, std::size_t ldc,
            std::size_t mr, std::size_t nr, bool overwrite)
{
    float acc[MR][NR] = {};
    for (std::size_t p = 0; p < kc; ++p) {
        const float *DECEPTICON_RESTRICT brow = bp + p * NR;
        const float *DECEPTICON_RESTRICT acol = ap + p * MR;
        for (std::size_t r = 0; r < MR; ++r) {
            const float av = acol[r];
            for (std::size_t j = 0; j < NR; ++j)
                acc[r][j] += av * brow[j];
        }
    }
    if (overwrite) {
        for (std::size_t r = 0; r < mr; ++r) {
            float *crow = c + r * ldc;
            for (std::size_t j = 0; j < nr; ++j)
                crow[j] = acc[r][j];
        }
    } else {
        for (std::size_t r = 0; r < mr; ++r) {
            float *crow = c + r * ldc;
            for (std::size_t j = 0; j < nr; ++j)
                crow[j] += acc[r][j];
        }
    }
}

#endif

/**
 * Fused epilogue over C[:, jc:jc+nc]: bias add, optional pre-
 * activation capture, activation. Element-wise, each slot written by
 * its own row task.
 */
void
applyEpilogue(const GemmCall &g, std::size_t ldc, std::size_t jc,
              std::size_t nc)
{
    for (std::size_t i = 0; i < g.n; ++i) {
        float *DECEPTICON_RESTRICT crow = g.c + i * ldc + jc;
        float *DECEPTICON_RESTRICT prow =
            g.preact != nullptr ? g.preact + i * g.m + jc : nullptr;
        const float rb = g.rowBias != nullptr ? g.rowBias[i] : 0.0f;
        const float *DECEPTICON_RESTRICT cb =
            g.colBias != nullptr ? g.colBias + jc : nullptr;
        // Bias pass (auto-vectorizes), then the activation pass.
        for (std::size_t j = 0; j < nc; ++j) {
            const float v = crow[j] + rb + (cb != nullptr ? cb[j] : 0.0f);
            if (prow != nullptr)
                prow[j] = v;
            crow[j] = v;
        }
        switch (g.act) {
        case Act::None:
            break;
        case Act::Relu:
            for (std::size_t j = 0; j < nc; ++j)
                crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
            break;
        case Act::Gelu: {
            // libm tanh per element would dominate small-model
            // forwards; use the polynomial GELU from vecmath.hh
            // (vector body, matching scalar tail).
            std::size_t j = 0;
#ifdef DECEPTICON_KERNEL_VECEXT
            for (; j + kV8Lanes <= nc; j += kV8Lanes) {
                V8 v;
                std::memcpy(&v, crow + j, sizeof v);
                v = fastGeluV(v);
                std::memcpy(crow + j, &v, sizeof v);
            }
#endif
            for (; j < nc; ++j)
                crow[j] = fastGelu(crow[j]);
            break;
        }
        }
    }
}

void
gemmOptimized(Trans t, const GemmCall &g)
{
    const std::size_t lda = resolveLda(t, g);
    const std::size_t ldb = resolveLdb(t, g);
    const std::size_t ldc = g.ldc != 0 ? g.ldc : g.m;

    if (g.n == 0 || g.m == 0)
        return;

    if (g.k == 0) {
        // No product: C (or the bias-only epilogue) defines the output.
        if (!g.accumulate) {
            for (std::size_t i = 0; i < g.n; ++i)
                std::fill(g.c + i * ldc, g.c + i * ldc + g.m, 0.0f);
            applyEpilogue(g, ldc, 0, g.m);
        }
        return;
    }

    const bool parallel =
        g.n > MC && g.n * g.m * g.k >= kParallelFlopFloor;
    const std::size_t num_ic = (g.n + MC - 1) / MC;

    for (std::size_t jc = 0; jc < g.m; jc += NC) {
        const std::size_t nc = std::min(NC, g.m - jc);
        const std::size_t nc_pad = (nc + NR - 1) / NR * NR;
        for (std::size_t pc = 0; pc < g.k; pc += KC) {
            const std::size_t kc = std::min(KC, g.k - pc);
            ScratchArena::Frame bframe(scratch());
            float *bp = scratch().alloc(kc * nc_pad);
            packB(t, g.b, ldb, pc, jc, kc, nc, bp);
            const bool overwrite = pc == 0 && !g.accumulate;

            const auto row_block = [&](std::size_t blk) {
                const std::size_t ic = blk * MC;
                const std::size_t mc = std::min(MC, g.n - ic);
                const std::size_t mc_pad = (mc + MR - 1) / MR * MR;
                ScratchArena::Frame aframe(scratch());
                float *ap = scratch().alloc(kc * mc_pad);
                packA(t, g.a, lda, ic, pc, mc, kc, ap);
                for (std::size_t jr = 0; jr < nc; jr += NR) {
                    const float *bpanel = bp + jr * kc;
                    const std::size_t nr = std::min(NR, nc - jr);
                    for (std::size_t ir = 0; ir < mc; ir += MR) {
                        microKernel(kc, ap + ir * kc, bpanel,
                                    g.c + (ic + ir) * ldc + jc + jr,
                                    ldc, std::min(MR, mc - ir), nr,
                                    overwrite);
                    }
                }
            };

            if (parallel) {
                sched::parallelFor(num_ic, 1, row_block);
            } else {
                for (std::size_t blk = 0; blk < num_ic; ++blk)
                    row_block(blk);
            }
        }
        if (hasEpilogue(g))
            applyEpilogue(g, ldc, jc, nc);
    }
}

} // anonymous namespace

void
gemmNaive(Trans t, const GemmCall &g)
{
    const std::size_t lda = resolveLda(t, g);
    const std::size_t ldb = resolveLdb(t, g);
    const std::size_t ldc = g.ldc != 0 ? g.ldc : g.m;

    if (g.n == 0 || g.m == 0)
        return;
    if (g.k == 0 && g.accumulate)
        return;

    for (std::size_t i = 0; i < g.n; ++i) {
        float *crow = g.c + i * ldc;
        const float rb = g.rowBias != nullptr ? g.rowBias[i] : 0.0f;
        for (std::size_t j = 0; j < g.m; ++j) {
            float s = 0.0f;
            for (std::size_t p = 0; p < g.k; ++p) {
                const float av = t == Trans::TN ? g.a[p * lda + i]
                                                : g.a[i * lda + p];
                const float bv = t == Trans::NT ? g.b[j * ldb + p]
                                                : g.b[p * ldb + j];
                s += av * bv;
            }
            const float v =
                s + rb + (g.colBias != nullptr ? g.colBias[j] : 0.0f);
            if (g.preact != nullptr)
                g.preact[i * g.m + j] = v;
            const float r = actForward(g.act, v);
            crow[j] = g.accumulate ? crow[j] + r : r;
        }
    }
}

void
gemm(Trans t, const GemmCall &g)
{
    // Accumulation composes with the epilogue only in the naive
    // definition above; the blocked path stages partial sums in C, so
    // forbid the combination (no caller needs it).
    assert(!(g.accumulate && hasEpilogue(g)));
    if (naiveEnabled())
        gemmNaive(t, g);
    else
        gemmOptimized(t, g);
}

bool
naiveEnabled()
{
    int s = g_naive_state.load(std::memory_order_relaxed);
    if (s < 0) {
        s = envNaiveDefault() ? 1 : 0;
        g_naive_state.store(s, std::memory_order_relaxed);
    }
    return s == 1;
}

void
setNaive(bool naive)
{
    g_naive_state.store(naive ? 1 : 0, std::memory_order_relaxed);
}

} // namespace decepticon::tensor::kernels
