/**
 * @file
 * Optimized compute kernels behind the tensor/nn substrates
 * (DESIGN.md §10): a cache-blocked, register-tiled, panel-packed GEMM
 * serving all three transpose variants through one micro-kernel, with
 * fused bias/activation epilogues and BLAS-style leading dimensions
 * so attention heads and conv patch matrices can be multiplied in
 * place without slice copies.
 *
 * Determinism contract: for a given shape (n, m, k) the floating-
 * point summation order is a pure function of the shape — k is walked
 * in ascending KC-sized blocks and ascending within a block, and each
 * output element is produced in full by exactly one task — never of
 * DECEPTICON_THREADS or scheduling order. Optimized results therefore
 * match themselves bit-for-bit at any lane count (§9), while they may
 * differ from the naive reference loops by rounding (the differential
 * kernel tests allow 1e-5 relative).
 *
 * DECEPTICON_NAIVE_KERNELS=1 (env, or the CMake option of the same
 * name as a build-time default) routes every call through the legacy
 * reference loops for differential testing.
 */

#ifndef DECEPTICON_TENSOR_KERNELS_KERNELS_HH
#define DECEPTICON_TENSOR_KERNELS_KERNELS_HH

#include <cmath>
#include <cstddef>

namespace decepticon::tensor::kernels {

/** Which operand of C = op(A)·op(B) is transposed. */
enum class Trans : unsigned char {
    NN, ///< C(n,m) = A(n,k) · B(k,m)
    NT, ///< C(n,m) = A(n,k) · B(m,k)^T
    TN, ///< C(n,m) = A(k,n)^T · B(k,m)
};

/** Activation fused into the GEMM epilogue. */
enum class Act : unsigned char { None, Relu, Gelu };

/**
 * One GEMM invocation. Leading dimensions are the row strides of the
 * *stored* operands (before any transpose), so a head slice of a
 * (T, D) matrix is simply {ptr + h*dh, ld = D}.
 *
 * Epilogue semantics, applied once per element after the full-k
 * product is accumulated:
 *
 *     v = sum + colBias[j] + rowBias[i]      (absent terms are 0)
 *     preact[i*m + j] = v                    (when preact != nullptr)
 *     C[i*ldc + j] (=|+=) act(v)             (+= when accumulate)
 *
 * accumulate adds the epilogue result onto the existing C contents
 * (C must be initialized by the caller); bias/act compose with it
 * only in the trivial ways the nn layers need, so the common
 * accumulate use (dW += dy^T x) passes no bias and Act::None.
 */
struct GemmCall
{
    std::size_t n = 0, m = 0, k = 0;
    const float *a = nullptr;
    std::size_t lda = 0; ///< 0 = tight (k for NN/NT, n for TN)
    const float *b = nullptr;
    std::size_t ldb = 0; ///< 0 = tight (m for NN/TN, k for NT)
    float *c = nullptr;
    std::size_t ldc = 0; ///< 0 = tight (m)
    const float *colBias = nullptr; ///< length m, added per column
    const float *rowBias = nullptr; ///< length n, added per row
    Act act = Act::None;
    bool accumulate = false;
    float *preact = nullptr; ///< optional (n, m) pre-activation copy
};

/**
 * C = act(op(A)·op(B) + bias), blocked/packed/parallel unless naive
 * mode is enabled (then the reference loops run; same semantics).
 */
void gemm(Trans t, const GemmCall &call);

/** The reference implementation (always the legacy loop nest). */
void gemmNaive(Trans t, const GemmCall &call);

/**
 * Whether naive (reference) kernels are in force: the
 * DECEPTICON_NAIVE_KERNELS environment variable when set (read once),
 * otherwise the build-time default, overridable via setNaive().
 */
bool naiveEnabled();

/** Test hook: force naive (true) or optimized (false) kernels. */
void setNaive(bool naive);

/**
 * Row softmax of an (rows, cols) matrix using a vectorizable
 * range-reduced polynomial exp (~4e-8 relative). The optimized
 * backend of tensor::softmaxRows; the naive path keeps libm expf.
 */
void softmaxRowsFast(const float *x, float *y, std::size_t rows,
                     std::size_t cols);

/** GELU (tanh approximation), shared by nn::Gelu and the epilogue. */
inline float
geluForward(float v)
{
    constexpr float c = 0.7978845608028654f; // sqrt(2/pi)
    constexpr float a = 0.044715f;
    const float t = std::tanh(c * (v + a * v * v * v));
    return 0.5f * v * (1.0f + t);
}

/** d gelu(v) / dv at pre-activation v. */
inline float
geluBackward(float v)
{
    constexpr float c = 0.7978845608028654f;
    constexpr float a = 0.044715f;
    const float u = c * (v + a * v * v * v);
    const float t = std::tanh(u);
    const float sech2 = 1.0f - t * t;
    const float du = c * (1.0f + 3.0f * a * v * v);
    return 0.5f * (1.0f + t) + 0.5f * v * sech2 * du;
}

/** Activation forward at pre-activation v. */
inline float
actForward(Act act, float v)
{
    switch (act) {
    case Act::Relu:
        return v > 0.0f ? v : 0.0f;
    case Act::Gelu:
        return geluForward(v);
    case Act::None:
        break;
    }
    return v;
}

/** Activation derivative at pre-activation v. */
inline float
actBackward(Act act, float v)
{
    switch (act) {
    case Act::Relu:
        return v > 0.0f ? 1.0f : 0.0f;
    case Act::Gelu:
        return geluBackward(v);
    case Act::None:
        break;
    }
    return 1.0f;
}

} // namespace decepticon::tensor::kernels

#endif // DECEPTICON_TENSOR_KERNELS_KERNELS_HH
