#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "tensor/kernels/kernels.hh"

namespace decepticon::tensor {

namespace {

std::size_t
elementCount(const std::vector<std::size_t> &shape)
{
    std::size_t n = 1;
    for (auto d : shape)
        n *= d;
    return shape.empty() ? 0 : n;
}

} // anonymous namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(elementCount(shape_), 0.0f)
{
}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(elementCount(shape_), fill)
{
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

Tensor
Tensor::reshaped(std::vector<std::size_t> new_shape) const
{
    assert(elementCount(new_shape) == size());
    Tensor t;
    t.shape_ = std::move(new_shape);
    t.data_ = data_;
    return t;
}

void
Tensor::fillUniform(util::Rng &rng, float bound)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(-bound, bound));
}

void
Tensor::fillGaussian(util::Rng &rng, float stddev)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.gaussian(0.0, stddev));
}

void
Tensor::fillXavier(util::Rng &rng, std::size_t fan_in, std::size_t fan_out)
{
    const float bound = std::sqrt(6.0f /
        static_cast<float>(fan_in + fan_out));
    fillUniform(rng, bound);
}

double
Tensor::sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double
Tensor::meanAbs() const
{
    if (data_.empty())
        return 0.0;
    double s = 0.0;
    for (float v : data_)
        s += std::fabs(v);
    return s / static_cast<double>(data_.size());
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i)
            oss << ", ";
        oss << shape_[i];
    }
    oss << "]";
    return oss.str();
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    assert(a.rank() == 2 && b.rank() == 2);
    assert(a.dim(1) == b.dim(0));
    const std::size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
    Tensor c({n, m});
    kernels::GemmCall call;
    call.n = n;
    call.m = m;
    call.k = k;
    call.a = a.data();
    call.b = b.data();
    call.c = c.data();
    kernels::gemm(kernels::Trans::NN, call);
    return c;
}

Tensor
matmulTransposeB(const Tensor &a, const Tensor &b)
{
    assert(a.rank() == 2 && b.rank() == 2);
    assert(a.dim(1) == b.dim(1));
    const std::size_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
    Tensor c({n, m});
    kernels::GemmCall call;
    call.n = n;
    call.m = m;
    call.k = k;
    call.a = a.data();
    call.b = b.data();
    call.c = c.data();
    kernels::gemm(kernels::Trans::NT, call);
    return c;
}

Tensor
matmulTransposeA(const Tensor &a, const Tensor &b)
{
    assert(a.rank() == 2 && b.rank() == 2);
    assert(a.dim(0) == b.dim(0));
    const std::size_t k = a.dim(0), n = a.dim(1), m = b.dim(1);
    Tensor c({n, m});
    kernels::GemmCall call;
    call.n = n;
    call.m = m;
    call.k = k;
    call.a = a.data();
    call.b = b.data();
    call.c = c.data();
    kernels::gemm(kernels::Trans::TN, call);
    return c;
}

Tensor
transpose(const Tensor &a)
{
    assert(a.rank() == 2);
    const std::size_t n = a.dim(0), m = a.dim(1);
    Tensor t({m, n});
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    assert(a.size() == b.size());
    Tensor c = a;
    for (std::size_t i = 0; i < c.size(); ++i)
        c[i] += b[i];
    return c;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    assert(a.size() == b.size());
    Tensor c = a;
    for (std::size_t i = 0; i < c.size(); ++i)
        c[i] -= b[i];
    return c;
}

void
axpy(Tensor &a, const Tensor &b, float scale)
{
    assert(a.size() == b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] += scale * b[i];
}

void
scaleInPlace(Tensor &a, float s)
{
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] *= s;
}

Tensor
softmaxRows(const Tensor &a)
{
    assert(a.rank() == 2);
    const std::size_t n = a.dim(0), m = a.dim(1);
    Tensor out({n, m});
    if (n == 0 || m == 0)
        return out;
    if (!kernels::naiveEnabled()) {
        kernels::softmaxRowsFast(a.data(), out.data(), n, m);
        return out;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const float *row = a.data() + i * m;
        float *orow = out.data() + i * m;
        float mx = row[0];
        for (std::size_t j = 1; j < m; ++j)
            mx = std::max(mx, row[j]);
        float s = 0.0f;
        for (std::size_t j = 0; j < m; ++j) {
            orow[j] = std::exp(row[j] - mx);
            s += orow[j];
        }
        const float inv = 1.0f / s;
        for (std::size_t j = 0; j < m; ++j)
            orow[j] *= inv;
    }
    return out;
}

void
addRowVector(Tensor &a, const Tensor &row)
{
    assert(a.rank() == 2);
    assert(row.size() == a.dim(1));
    const std::size_t n = a.dim(0), m = a.dim(1);
    for (std::size_t i = 0; i < n; ++i) {
        float *arow = a.data() + i * m;
        for (std::size_t j = 0; j < m; ++j)
            arow[j] += row[j];
    }
}

} // namespace decepticon::tensor
