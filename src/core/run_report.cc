#include "core/run_report.hh"

#include <sstream>

#include "obs/metrics.hh"

namespace decepticon::core {

void
AttackRunReport::recordIdentification(const IdentificationResult &ident)
{
    identifiedParent = ident.pretrainedName;
    identifyConfidence = ident.topProbability;
    usedQueryProbes = ident.usedQueryProbes;
    usedKnnFallback = ident.usedKnnFallback;
    usedSeqFallback = ident.usedSeqFallback;
    capturesUsed = ident.capturesUsed;
    quorumAgreement = ident.quorumAgreement;
    usedChannelFusion = ident.usedChannelFusion;
    insufficientEvidence = ident.insufficientEvidence;
    fusedConfidence = ident.fusedConfidence;
    channelsAvailable = ident.channelsAvailable;
    channelsUsed = ident.channelsUsed;
}

void
AttackRunReport::recordExtraction(const extraction::ProbeStats &probe,
                                  const extraction::ExtractionStats &stats,
                                  std::size_t layers_extracted,
                                  std::size_t victim_queries)
{
    layersExtracted = layers_extracted;
    bitsRead = probe.bitsRead;
    hammerRounds = probe.hammerRounds;
    totalWeights = stats.totalWeights;
    weightsSkipped = stats.weightsSkipped;
    probeRetries = stats.probeRetries;
    voteReads = stats.voteReads;
    probeFailures = stats.probeFailures;
    fallbackBits = stats.fallbackBits;
    exhaustedBits = stats.exhaustedBits;
    victimQueries = victim_queries;
}

void
AttackRunReport::recordPhase(std::string name, std::uint64_t micros)
{
    phases.push_back(PhaseTiming{std::move(name), micros});
}

std::uint64_t
AttackRunReport::totalMicros() const
{
    std::uint64_t total = 0;
    for (const auto &p : phases)
        total += p.micros;
    return total;
}

std::string
AttackRunReport::toJson() const
{
    std::ostringstream oss;
    oss << "{\"level1\":{"
        << "\"parent\":" << obs::jsonQuote(identifiedParent)
        << ",\"confidence\":" << obs::jsonNumber(identifyConfidence)
        << ",\"used_query_probes\":"
        << (usedQueryProbes ? "true" : "false")
        << ",\"used_knn_fallback\":"
        << (usedKnnFallback ? "true" : "false")
        << ",\"used_seq_fallback\":"
        << (usedSeqFallback ? "true" : "false")
        << ",\"captures_used\":" << capturesUsed
        << ",\"quorum_agreement\":" << obs::jsonNumber(quorumAgreement)
        << ",\"used_channel_fusion\":"
        << (usedChannelFusion ? "true" : "false")
        << ",\"insufficient_evidence\":"
        << (insufficientEvidence ? "true" : "false")
        << ",\"fused_confidence\":" << obs::jsonNumber(fusedConfidence)
        << ",\"channels_available\":" << channelsAvailable
        << ",\"channels_used\":[";
    for (std::size_t i = 0; i < channelsUsed.size(); ++i) {
        if (i > 0)
            oss << ",";
        oss << obs::jsonQuote(channelsUsed[i]);
    }
    oss << "]},\"level2\":{"
        << "\"layers_extracted\":" << layersExtracted
        << ",\"bits_read\":" << bitsRead
        << ",\"hammer_rounds\":" << hammerRounds
        << ",\"total_weights\":" << totalWeights
        << ",\"weights_skipped\":" << weightsSkipped
        << ",\"probe_retries\":" << probeRetries
        << ",\"vote_reads\":" << voteReads
        << ",\"probe_failures\":" << probeFailures
        << ",\"fallback_bits\":" << fallbackBits
        << ",\"exhausted_bits\":" << exhaustedBits
        << ",\"victim_queries\":" << victimQueries
        << "},\"quality\":{"
        << "\"victim_accuracy\":" << obs::jsonNumber(victimAccuracy)
        << ",\"clone_accuracy\":" << obs::jsonNumber(cloneAccuracy)
        << ",\"agreement\":" << obs::jsonNumber(cloneVictimAgreement)
        << ",\"adversarial_success\":"
        << obs::jsonNumber(adversarialSuccess)
        << ",\"complete\":" << (complete ? "true" : "false")
        << "},\"phases\":[";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        if (i > 0)
            oss << ",";
        oss << "{\"name\":" << obs::jsonQuote(phases[i].name)
            << ",\"micros\":" << phases[i].micros << "}";
    }
    oss << "],\"total_micros\":" << totalMicros() << ",\"watchdog\":";
    watchdog.toJson(oss);
    oss << "}";
    return oss.str();
}

void
AttackRunReport::toMetrics(obs::MetricsRegistry &registry) const
{
    const auto gauge = [&](const char *name, double value) {
        registry.setGauge(std::string("run.") + name, value);
    };
    gauge("identify_confidence", identifyConfidence);
    gauge("quorum_agreement", quorumAgreement);
    gauge("captures_used", static_cast<double>(capturesUsed));
    gauge("used_query_probes", usedQueryProbes ? 1.0 : 0.0);
    gauge("used_knn_fallback", usedKnnFallback ? 1.0 : 0.0);
    gauge("used_seq_fallback", usedSeqFallback ? 1.0 : 0.0);
    gauge("used_channel_fusion", usedChannelFusion ? 1.0 : 0.0);
    gauge("insufficient_evidence", insufficientEvidence ? 1.0 : 0.0);
    gauge("fused_confidence", fusedConfidence);
    gauge("channels_available", static_cast<double>(channelsAvailable));
    gauge("layers_extracted", static_cast<double>(layersExtracted));
    gauge("bits_read", static_cast<double>(bitsRead));
    gauge("hammer_rounds", static_cast<double>(hammerRounds));
    gauge("total_weights", static_cast<double>(totalWeights));
    gauge("weights_skipped", static_cast<double>(weightsSkipped));
    gauge("probe_retries", static_cast<double>(probeRetries));
    gauge("vote_reads", static_cast<double>(voteReads));
    gauge("probe_failures", static_cast<double>(probeFailures));
    gauge("fallback_bits", static_cast<double>(fallbackBits));
    gauge("exhausted_bits", static_cast<double>(exhaustedBits));
    gauge("victim_queries", static_cast<double>(victimQueries));
    gauge("victim_accuracy", victimAccuracy);
    gauge("clone_accuracy", cloneAccuracy);
    gauge("agreement", cloneVictimAgreement);
    gauge("adversarial_success", adversarialSuccess);
    gauge("complete", complete ? 1.0 : 0.0);
    gauge("total_micros", static_cast<double>(totalMicros()));
    gauge("watchdog_ticks", static_cast<double>(watchdog.ticks));
    gauge("watchdog_findings",
          static_cast<double>(watchdog.findings.size()));
    for (const auto &p : phases)
        registry.setGauge("phase." + p.name + ".micros",
                          static_cast<double>(p.micros));
}

std::string
AttackRunReport::summaryParagraph() const
{
    std::ostringstream oss;
    if (insufficientEvidence) {
        oss << "Attack run: identification abstained — insufficient"
               " evidence across "
            << channelsAvailable << " usable channel(s) from "
            << capturesUsed << " capture(s)";
    } else {
        oss << "Attack run: identified parent \""
            << (identifiedParent.empty() ? "<none>" : identifiedParent)
            << "\" with confidence " << identifyConfidence;
    }
    if (capturesUsed > 1 && !insufficientEvidence)
        oss << " from " << capturesUsed
            << " noisy captures (quorum agreement " << quorumAgreement
            << ")";
    if (usedChannelFusion && !insufficientEvidence) {
        oss << ", fusing ";
        for (std::size_t i = 0; i < channelsUsed.size(); ++i) {
            if (i > 0)
                oss << "+";
            oss << channelsUsed[i];
        }
        oss << " (fused confidence " << fusedConfidence << ")";
    }
    if (usedQueryProbes)
        oss << ", disambiguated via query probes";
    if (usedSeqFallback)
        oss << ", via sequence-predictor fallback";
    else if (usedKnnFallback)
        oss << ", via kNN fallback";
    oss << ". Extracted " << layersExtracted << " layer(s) reading "
        << bitsRead << " bits in " << hammerRounds
        << " hammer rounds, skipping " << weightsSkipped << " of "
        << totalWeights << " weights";
    if (probeRetries + voteReads + fallbackBits > 0)
        oss << " (" << probeRetries << " retries, " << voteReads
            << " vote reads, " << fallbackBits << " baseline-fallback"
            << " bits, " << exhaustedBits << " exhausted)";
    oss << ", using " << victimQueries << " victim queries. "
        << "Clone accuracy " << cloneAccuracy << " vs victim "
        << victimAccuracy << " (agreement " << cloneVictimAgreement
        << "); adversarial success " << adversarialSuccess << ". ";
    if (!phases.empty()) {
        oss << "Wall time " << totalMicros() / 1000 << " ms (";
        for (std::size_t i = 0; i < phases.size(); ++i) {
            if (i > 0)
                oss << ", ";
            oss << phases[i].name << " " << phases[i].micros / 1000
                << " ms";
        }
        oss << "). ";
    }
    if (watchdog.ticks > 0) {
        if (watchdog.healthy())
            oss << "Watchdog healthy over " << watchdog.ticks
                << " tick(s). ";
        else
            oss << "Watchdog flagged " << watchdog.findings.size()
                << " SLO violation(s) over " << watchdog.ticks
                << " tick(s). ";
    }
    oss << "Run " << (complete ? "complete" : "incomplete") << ".";
    return oss.str();
}

} // namespace decepticon::core
