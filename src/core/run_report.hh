/**
 * @file
 * Machine-readable summary of one end-to-end attack run. Where
 * AttackReport carries the attack's artifacts (the clone itself, raw
 * stat structs), AttackRunReport is the telemetry view: every phase's
 * wall time, the level-1 identification outcome and fallbacks, the
 * level-2 cost ledger (bits, rounds, retries, votes, fallbacks), and
 * the clone-quality numbers — serializable as JSON, foldable into a
 * MetricsRegistry, and printable as a one-paragraph summary. It can
 * be assembled piecewise, so examples that drive the pipeline stages
 * by hand (quickstart) produce the same report as TwoLevelAttack.
 */

#ifndef DECEPTICON_CORE_RUN_REPORT_HH
#define DECEPTICON_CORE_RUN_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/decepticon.hh"
#include "extraction/bitprobe.hh"
#include "extraction/selective.hh"
#include "obs/watchdog.hh"

namespace decepticon::core {

/** Wall time of one pipeline phase. */
struct PhaseTiming
{
    std::string name;
    std::uint64_t micros = 0;
};

/** Aggregated, serializable telemetry of one full attack run. */
struct AttackRunReport
{
    // ---- level 1 ----
    std::string identifiedParent;
    double identifyConfidence = 0.0;
    bool usedQueryProbes = false;
    bool usedKnnFallback = false;
    bool usedSeqFallback = false;
    std::size_t capturesUsed = 0;
    double quorumAgreement = 0.0;
    bool usedChannelFusion = false;
    /** Every identification stage abstained; no parent was named. */
    bool insufficientEvidence = false;
    double fusedConfidence = 0.0;
    std::size_t channelsAvailable = 0;
    /** Channels that delivered usable evidence ("timestamp", ...). */
    std::vector<std::string> channelsUsed;

    // ---- level 2 ----
    std::size_t layersExtracted = 0;
    std::size_t bitsRead = 0;
    std::size_t hammerRounds = 0;
    std::size_t totalWeights = 0;
    std::size_t weightsSkipped = 0;
    std::size_t probeRetries = 0;
    std::size_t voteReads = 0;
    std::size_t probeFailures = 0;
    std::size_t fallbackBits = 0;
    std::size_t exhaustedBits = 0;
    std::size_t victimQueries = 0;

    // ---- outcome quality ----
    double victimAccuracy = 0.0;
    double cloneAccuracy = 0.0;
    double cloneVictimAgreement = 0.0;
    double adversarialSuccess = 0.0;
    bool complete = false;

    /** Per-phase wall clock, pipeline order. */
    std::vector<PhaseTiming> phases;

    /** SLO verdict accumulated over the run (empty = never ticked). */
    obs::WatchdogReport watchdog;

    /** Fold the level-1 outcome in. */
    void recordIdentification(const IdentificationResult &ident);

    /** Fold the level-2 cost ledger in. */
    void recordExtraction(const extraction::ProbeStats &probe,
                          const extraction::ExtractionStats &stats,
                          std::size_t layers_extracted,
                          std::size_t victim_queries);

    /** Append one phase's wall time. */
    void recordPhase(std::string name, std::uint64_t micros);

    /** Total wall time across recorded phases. */
    std::uint64_t totalMicros() const;

    /** Single JSON object (schema documented in DESIGN.md §8). */
    std::string toJson() const;

    /**
     * Publish as "run.*" gauges plus "phase.<name>.micros" per phase
     * — the registry view a JSONL dump or BENCH snapshot exports.
     */
    void toMetrics(obs::MetricsRegistry &registry) const;

    /** One-paragraph human summary (quickstart's closing print). */
    std::string summaryParagraph() const;
};

} // namespace decepticon::core

#endif // DECEPTICON_CORE_RUN_REPORT_HH
