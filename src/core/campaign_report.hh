/**
 * @file
 * Machine-readable rollup of one multi-victim campaign. Where
 * AttackRunReport is the telemetry view of a single end-to-end attack,
 * CampaignReport aggregates a whole victim queue: identification and
 * cloning outcomes per victim, cache economics, time-to-clone
 * percentiles via obs::LogHistogram, and the campaign watchdog
 * verdict. Serializable as JSON (byte-identical across lane counts),
 * foldable into a MetricsRegistry as campaign.* gauges, and printable
 * as a one-paragraph summary.
 */

#ifndef DECEPTICON_CORE_CAMPAIGN_REPORT_HH
#define DECEPTICON_CORE_CAMPAIGN_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/quantile.hh"
#include "obs/watchdog.hh"

namespace decepticon::obs {
class MetricsRegistry;
}

namespace decepticon::core {

/** Outcome of one victim session inside a campaign. */
struct VictimOutcome
{
    /** Queue position (matches VictimSessionSpec::index). */
    std::size_t index = 0;
    /** Ground-truth pre-trained lineage the victim serves. */
    std::string lineage;
    /** Lineage the attacker settled on ("" on abstention). */
    std::string identifiedParent;
    /** identifiedParent matches lineage. */
    bool identityCorrect = false;
    /** Identity served from the fingerprint cache (level-1 skipped). */
    bool cacheHit = false;
    /** Level-2 skipped: a fresh cached clone was reused. */
    bool cloneReused = false;
    /** The session's channels were completely dark. */
    bool blackout = false;
    /** Every identification stage abstained (no silent guess). */
    bool abstained = false;
    /** A clone was extracted (freshly, this session). */
    bool cloned = false;
    /** Clone-victim agreement (0 when no clone was evaluated). */
    double agreement = 0.0;
    /** Wall time from session dequeue to usable clone (or verdict). */
    std::uint64_t timeToCloneMicros = 0;
};

/** Aggregated, serializable rollup of one campaign run. */
struct CampaignReport
{
    // ---- queue ----
    std::size_t sessions = 0;
    std::size_t identified = 0; ///< sessions that named a parent
    std::size_t correct = 0;    ///< ... and named the right one
    std::size_t abstained = 0;
    std::size_t blackouts = 0;

    // ---- cache economics (filled from campaign::CacheStats) ----
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    std::size_t cacheStale = 0;
    std::size_t cacheEvictions = 0;
    std::size_t cacheInvalidations = 0;

    // ---- level 2 ----
    std::size_t clonesBuilt = 0;
    std::size_t cloneReuses = 0;

    /** Campaign wall time (sum of per-batch wall times). */
    std::uint64_t totalMicros = 0;

    /** Per-victim time-to-clone distribution (microseconds). */
    obs::LogHistogram timeToClone;

    /** Per-victim outcomes, queue order. */
    std::vector<VictimOutcome> victims;

    /** SLO verdict accumulated over the campaign (empty = no ticks). */
    obs::WatchdogReport watchdog;

    /** Fold one victim's outcome into the counters + histogram. */
    void recordVictim(VictimOutcome outcome);

    /** Fraction of non-abstaining sessions that named the right
     *  lineage (0 when every session abstained). */
    double identificationAccuracy() const;

    /** cacheHits / (hits + misses + stale); 0 with no lookups. */
    double cacheHitRate() const;

    /** Throughput over the whole queue; 0 when totalMicros is 0. */
    double victimsPerSec() const;

    /** Single JSON object (schema documented in DESIGN.md §14).
     *  Deterministic: identical queues yield identical bytes. */
    std::string toJson() const;

    /** Publish as "campaign.*" gauges (victims_per_sec, cache.hit_rate,
     *  time_to_clone.p50/p99_micros, ...). */
    void toMetrics(obs::MetricsRegistry &registry) const;

    /** One-paragraph human summary. */
    std::string summaryParagraph() const;
};

} // namespace decepticon::core

#endif // DECEPTICON_CORE_CAMPAIGN_REPORT_HH
