#include "core/decepticon.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "fingerprint/index/embedding.hh"
#include "gpusim/trace_generator.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"
#include "sidechan/features.hh"
#include "trace/repair.hh"
#include "util/rng.hh"

namespace decepticon::core {

Decepticon::Decepticon(const DecepticonOptions &opts)
    : opts_(opts), probes_(zoo::standardProbeSet())
{
}

double
Decepticon::trainExtractor(const zoo::ModelZoo &candidate_pool)
{
    if (opts_.indexZooThreshold > 0 &&
        candidate_pool.pretrainedCount() >= opts_.indexZooThreshold)
        return trainIndexed(candidate_pool);
    index_.reset();

    auto sp = obs::span("level1.train_extractor", "level1");
    fingerprint::DatasetOptions ds_opts = opts_.datasetOptions;
    ds_opts.seed = opts_.seed;
    const fingerprint::FingerprintDataset dataset =
        fingerprint::buildDataset(candidate_pool, ds_opts);
    assert(!dataset.samples.empty());

    classNames_ = dataset.classNames;
    classProfiles_.clear();
    classProfiles_.reserve(classNames_.size());
    for (const auto &name : classNames_) {
        const zoo::ModelIdentity *m = candidate_pool.byName(name);
        assert(m != nullptr);
        classProfiles_.push_back(m->vocabProfile);
    }

    auto [train, test] = dataset.split(0.8, opts_.seed ^ 0x5eedULL);
    cnn_ = std::make_unique<fingerprint::FingerprintCnn>(
        dataset.resolution, dataset.numClasses(), opts_.seed ^ 0xc44ULL);
    cnn_->train(train, opts_.cnnOptions);

    // Degradation tier 2: the kNN template matcher shares the CNN's
    // training images, so falling back never needs extra profiling.
    knn_.train(train);

    // Degradation tier 3: one kernel-sequence predictor per lineage,
    // trained on profiled traces of that lineage's zoo models. A
    // victim trace is then attributed to the lineage whose predictor
    // decodes it with the lowest layer error rate.
    seqPredictors_.assign(classNames_.size(),
                          fingerprint::KernelSequencePredictor{});
    // Draw the per-trace seeds serially in the exact order the legacy
    // nested loop did, then capture all traces in parallel: each job
    // fills its own slot, so the training sets are scheduling-
    // independent bit-for-bit.
    struct TraceJob
    {
        const zoo::ModelIdentity *model;
        std::uint64_t runSeed;
    };
    std::vector<TraceJob> jobs;
    std::vector<std::pair<std::size_t, std::size_t>> class_ranges;
    util::Rng trace_rng(opts_.seed ^ 0x5e9ULL);
    for (std::size_t c = 0; c < classNames_.size(); ++c) {
        const std::size_t begin = jobs.size();
        for (const auto &model : candidate_pool.models()) {
            if (model.pretrainedName != classNames_[c])
                continue;
            jobs.push_back({&model, trace_rng.nextU64()});
            jobs.push_back({&model, trace_rng.nextU64()});
        }
        class_ranges.emplace_back(begin, jobs.size());
    }
    std::vector<gpusim::KernelTrace> all_traces(jobs.size());
    sched::parallelFor(jobs.size(), 1, [&](std::size_t i) {
        const gpusim::TraceGenerator gen(jobs[i].model->signature);
        all_traces[i] = gen.generate(jobs[i].model->arch, jobs[i].runSeed);
    });
    for (std::size_t c = 0; c < classNames_.size(); ++c) {
        const auto [begin, end] = class_ranges[c];
        std::vector<gpusim::KernelTrace> traces(
            all_traces.begin() + static_cast<long>(begin),
            all_traces.begin() + static_cast<long>(end));
        seqPredictors_[c].train(traces);
    }

    const double cnn_accuracy = cnn_->evaluate(test);

    // Side channels: each profiled trace also yields a power trace, a
    // thermal envelope and a profiler counter vector — the attacker
    // records them during the same profiling runs, so no extra trace
    // generation is needed. One lightweight classifier per channel;
    // its held-out accuracy becomes the channel's reliability prior
    // in the fusion engine.
    fusion_.reset();
    for (auto &clf : channelClassifiers_)
        clf.reset();
    if (opts_.trainChannelClassifiers) {
        auto ch_span = obs::span("level1.train_channels", "level1");

        std::vector<int> job_labels(jobs.size(), 0);
        for (std::size_t c = 0; c < class_ranges.size(); ++c) {
            for (std::size_t i = class_ranges[c].first;
                 i < class_ranges[c].second; ++i)
                job_labels[i] = static_cast<int>(c);
        }

        constexpr fault::Channel kSeriesChannels[] = {
            fault::Channel::Power,
            fault::Channel::Thermal,
            fault::Channel::Profiler,
        };
        // Emission and feature extraction are pure per trace (the
        // emitters split their noise streams from the run seed), so
        // the jobs fill independent slots in parallel.
        std::array<std::vector<std::vector<float>>, 3> feats;
        for (auto &f : feats)
            f.resize(jobs.size());
        sched::parallelFor(jobs.size(), 1, [&](std::size_t i) {
            const gpusim::KernelTrace &t = all_traces[i];
            feats[0][i] = sidechan::channelFeatures(
                fault::Channel::Power,
                gpusim::emitPowerTrace(t, opts_.emissionOptions,
                                       jobs[i].runSeed));
            feats[1][i] = sidechan::channelFeatures(
                fault::Channel::Thermal,
                gpusim::emitThermalTrace(t, opts_.emissionOptions,
                                         jobs[i].runSeed));
            feats[2][i] = sidechan::channelFeatures(
                fault::Channel::Profiler,
                gpusim::emitProfilerCounters(t, opts_.emissionOptions,
                                             jobs[i].runSeed));
        });

        fusion_ =
            std::make_unique<sidechan::FusionEngine>(classNames_.size());
        fusion_->setReliabilityPrior(fault::Channel::Timestamp,
                                     cnn_accuracy);
        for (std::size_t s = 0; s < 3; ++s) {
            const fault::Channel channel = kSeriesChannels[s];
            // Every model contributed two consecutive profiling runs:
            // the first trains the channel classifier, the second is
            // held out and becomes the channel's reliability prior.
            std::vector<std::vector<float>> train_f, held_f;
            std::vector<int> train_y, held_y;
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                auto &dst_f = (i % 2 == 0) ? train_f : held_f;
                auto &dst_y = (i % 2 == 0) ? train_y : held_y;
                dst_f.push_back(feats[s][i]);
                dst_y.push_back(job_labels[i]);
            }
            auto &clf =
                channelClassifiers_[static_cast<std::size_t>(channel)];
            clf = std::make_unique<sidechan::ChannelClassifier>(
                channel, sidechan::featureDim(channel),
                classNames_.size(),
                opts_.seed ^ (0xabcdULL + 0x101ULL * s),
                opts_.channelOptions.hidden);
            clf->train(train_f, train_y, opts_.channelOptions);
            fusion_->setReliabilityPrior(channel,
                                         clf->evaluate(held_f, held_y));
        }
    }
    return cnn_accuracy;
}

double
Decepticon::trainIndexed(const zoo::ModelZoo &candidate_pool)
{
    auto sp = obs::span("level1.train_index", "level1");

    // Indexed mode replaces the CNN stack wholesale; stale exhaustive
    // state must not leak across retrains.
    cnn_.reset();
    fusion_.reset();
    for (auto &clf : channelClassifiers_)
        clf.reset();
    seqPredictors_.clear();

    classNames_ = candidate_pool.lineageNames();
    assert(!classNames_.empty());
    classProfiles_.clear();
    classProfiles_.reserve(classNames_.size());
    for (const auto &name : classNames_) {
        const zoo::ModelIdentity *m = candidate_pool.byName(name);
        assert(m != nullptr);
        classProfiles_.push_back(m->vocabProfile);
    }
    const std::size_t num_classes = classNames_.size();
    const std::size_t per_class = opts_.indexOptions.profilesPerLineage;
    sp.arg("classes", static_cast<std::uint64_t>(num_classes));

    // Per-run seeds are drawn serially in (class, profile) order (the
    // §9 serial-schedule rule); trace generation and embedding are
    // pure per job and fill private slots in parallel. The last run
    // per class is held out for the accuracy estimate.
    struct ProfileJob
    {
        const zoo::ModelIdentity *model;
        std::uint64_t runSeed;
    };
    std::vector<ProfileJob> ref_jobs;
    std::vector<ProfileJob> held_jobs;
    ref_jobs.reserve(num_classes * per_class);
    held_jobs.reserve(num_classes);
    util::Rng trace_rng(opts_.seed ^ 0x1d9e55ULL);
    for (std::size_t c = 0; c < num_classes; ++c) {
        const zoo::ModelIdentity *m =
            candidate_pool.byName(classNames_[c]);
        for (std::size_t p = 0; p < per_class; ++p)
            ref_jobs.push_back({m, trace_rng.nextU64()});
        held_jobs.push_back({m, trace_rng.nextU64()});
    }

    std::vector<std::vector<float>> ref_embs(ref_jobs.size());
    sched::parallelFor(ref_jobs.size(), 1, [&](std::size_t i) {
        const gpusim::TraceGenerator gen(ref_jobs[i].model->signature);
        ref_embs[i] = fingerprint::traceEmbedding(
            gen.generate(ref_jobs[i].model->arch, ref_jobs[i].runSeed));
    });
    std::vector<std::size_t> ref_class(ref_jobs.size());
    for (std::size_t i = 0; i < ref_jobs.size(); ++i)
        ref_class[i] = i / per_class;

    index_ = std::make_unique<fingerprint::FingerprintIndex>(
        opts_.indexOptions);
    index_->build(std::move(ref_embs), std::move(ref_class),
                  num_classes);
    obs::gaugeSet("zooindex.classes",
                  static_cast<double>(num_classes));
    obs::gaugeSet("zooindex.hash_bits",
                  static_cast<double>(index_->hashBits()));
    obs::gaugeSet("zooindex.tables",
                  static_cast<double>(index_->tableCount()));

    // Held-out accuracy: one unseen profiling run per lineage.
    std::vector<std::size_t> preds(held_jobs.size());
    sched::parallelFor(held_jobs.size(), 1, [&](std::size_t i) {
        const gpusim::TraceGenerator gen(held_jobs[i].model->signature);
        preds[i] = index_->classify(fingerprint::traceEmbedding(
            gen.generate(held_jobs[i].model->arch,
                         held_jobs[i].runSeed)));
    });
    std::size_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == i)
            ++correct;
    }
    const double accuracy = static_cast<double>(correct) /
                            static_cast<double>(preds.size());
    sp.arg("accuracy", accuracy);
    obs::gaugeSet("zooindex.heldout_accuracy", accuracy);
    return accuracy;
}

void
Decepticon::recordIndexStats(const fingerprint::IndexLookupStats &stats)
{
    obs::count("zooindex.lookups");
    obs::observe("zooindex.shortlist_hist",
                 static_cast<double>(stats.shortlistClasses));
    obs::gaugeSet("zooindex.shortlist_classes",
                  static_cast<double>(stats.shortlistClasses));
    obs::gaugeSet("zooindex.bucket_probes",
                  static_cast<double>(stats.bucketProbes));
    if (stats.exhaustiveFallback)
        obs::count("zooindex.exhaustive_fallbacks");
}

IdentificationResult
Decepticon::identify(const gpusim::KernelTrace &victim_trace,
                     const std::function<std::vector<bool>()> &query_victim)
{
    assert((cnn_ || index_) && "trainExtractor must run first");

    auto sp = obs::span("level1.identify", "level1");
    obs::count("level1.identifies");
    obs::StageTimer stage_timer("classify");

    std::vector<double> probs;
    if (index_) {
        auto lookup_span = obs::span("level1.index_lookup", "level1");
        const std::vector<float> emb =
            fingerprint::traceEmbedding(victim_trace);
        fingerprint::IndexLookupStats stats;
        const std::vector<std::size_t> candidates =
            index_->shortlist(emb, &stats);
        probs = index_->scores(emb, candidates);
        recordIndexStats(stats);
        lookup_span.end();
    } else {
        auto raster_span = obs::span("level1.rasterize", "level1");
        const tensor::Tensor image = fingerprint::fingerprintImage(
            victim_trace, cnn_->resolution(),
            opts_.datasetOptions.cropIrregular);
        raster_span.end();

        auto cnn_span = obs::span("level1.cnn_classify", "level1");
        probs = cnn_->classProbabilities(image);
        cnn_span.end();
    }

    IdentificationResult result =
        resolveFromProbabilities(probs, query_victim);
    sp.arg("parent", result.pretrainedName);
    sp.arg("confidence", result.topProbability);
    return result;
}

IdentificationResult
Decepticon::resolveFromProbabilities(
    const std::vector<double> &probs,
    const std::function<std::vector<bool>()> &query_victim)
{
    IdentificationResult result;

    // Top-k by probability, descending, index-stable on ties — the
    // same ordering FingerprintCnn::topK produces, derived from the
    // already-computed probability vector so batch callers pay one
    // forward pass per victim. partial_sort under the total order
    // (prob desc, index asc) selects exactly the prefix a stable full
    // sort would, at O(N log k) — the decision tail must not become
    // the linear term the index just removed (a 4096-class sort per
    // lookup would).
    std::vector<int> top(probs.size());
    std::iota(top.begin(), top.end(), 0);
    const std::size_t k = std::min(opts_.topK, top.size());
    std::partial_sort(top.begin(),
                      top.begin() + static_cast<std::ptrdiff_t>(k),
                      top.end(), [&](int a, int b) {
                          const double pa =
                              probs[static_cast<std::size_t>(a)];
                          const double pb =
                              probs[static_cast<std::size_t>(b)];
                          if (pa != pb)
                              return pa > pb;
                          return a < b;
                      });
    top.resize(k);
    assert(!top.empty());

    for (int c : top)
        result.candidates.push_back(classNames_[static_cast<size_t>(c)]);
    result.topProbability = probs[static_cast<std::size_t>(top[0])];

    // Ambiguity: candidates whose probability is close to the top one
    // cannot be separated by architectural hints alone (e.g. BERT vs
    // CamemBERT from the same source). Fall back to query outputs.
    std::vector<int> ambiguous;
    for (int c : top) {
        if (probs[static_cast<std::size_t>(c)] >=
            opts_.ambiguityRatio * result.topProbability) {
            ambiguous.push_back(c);
        }
    }

    if (ambiguous.size() > 1 && query_victim) {
        result.usedQueryProbes = true;
        obs::count("level1.query_probe_rounds");
        obs::StageTimer probe_timer("probe");
        auto probe_span = obs::span("level1.query_probes", "level1");
        const std::vector<bool> victim_resp = query_victim();
        int best = ambiguous[0];
        std::size_t best_dist = probes_.size() + 1;
        for (int c : ambiguous) {
            const auto expected = zoo::responseVector(
                classProfiles_[static_cast<std::size_t>(c)], probes_);
            const std::size_t dist =
                zoo::responseDistance(expected, victim_resp);
            if (dist < best_dist) {
                best_dist = dist;
                best = c;
            }
        }
        result.pretrainedName = classNames_[static_cast<std::size_t>(best)];
    } else {
        result.pretrainedName = classNames_[static_cast<std::size_t>(top[0])];
    }
    obs::gaugeSet("level1.confidence", result.topProbability);
    obs::observe("level1.confidence_hist", result.topProbability);
    return result;
}

std::vector<IdentificationResult>
Decepticon::identifyBatch(
    const std::vector<const gpusim::KernelTrace *> &traces,
    const std::vector<std::function<std::vector<bool>()>> &query_hooks)
{
    assert((cnn_ || index_) && "trainExtractor must run first");
    assert(query_hooks.empty() || query_hooks.size() == traces.size());

    auto sp = obs::span("level1.identify_batch", "level1");
    sp.arg("victims", static_cast<std::uint64_t>(traces.size()));
    obs::StageTimer stage_timer("classify");

    if (index_) {
        // Indexed path: embedding, shortlist, and re-rank are const
        // lookups, pure per victim, so they fill private slots in
        // parallel. The shared decision tail and the obs accounting
        // stay serial in queue order — results are bit-identical to a
        // serial identify() loop at any lane count (DESIGN §9).
        std::vector<std::vector<double>> iprobs(traces.size());
        std::vector<fingerprint::IndexLookupStats> stats(traces.size());
        sched::parallelFor(traces.size(), 1, [&](std::size_t i) {
            const std::vector<float> emb =
                fingerprint::traceEmbedding(*traces[i]);
            const std::vector<std::size_t> candidates =
                index_->shortlist(emb, &stats[i]);
            iprobs[i] = index_->scores(emb, candidates);
        });
        std::vector<IdentificationResult> results;
        results.reserve(traces.size());
        for (std::size_t i = 0; i < traces.size(); ++i) {
            obs::count("level1.identifies");
            recordIndexStats(stats[i]);
            results.push_back(resolveFromProbabilities(
                iprobs[i], query_hooks.empty()
                               ? std::function<std::vector<bool>()>{}
                               : query_hooks[i]));
        }
        return results;
    }

    // Rasterization and the CNN forward pass are pure per victim, so
    // both fan out on the sched pool (probabilitiesBatch copies the
    // CNN per chunk). The decision tail — ambiguity handling, query
    // probing, confidence gauges — mutates shared probe state and
    // metrics, so it stays serial in queue order; results are
    // therefore bit-identical to a serial identify() loop at any lane
    // count (DESIGN §9).
    std::vector<tensor::Tensor> images(traces.size());
    sched::parallelFor(traces.size(), 1, [&](std::size_t i) {
        images[i] = fingerprint::fingerprintImage(
            *traces[i], cnn_->resolution(),
            opts_.datasetOptions.cropIrregular);
    });
    std::vector<const tensor::Tensor *> image_ptrs;
    image_ptrs.reserve(images.size());
    for (const auto &img : images)
        image_ptrs.push_back(&img);
    const std::vector<std::vector<double>> probs =
        fingerprint::probabilitiesBatch(*cnn_, image_ptrs);

    std::vector<IdentificationResult> results;
    results.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        obs::count("level1.identifies");
        results.push_back(resolveFromProbabilities(
            probs[i], query_hooks.empty()
                          ? std::function<std::vector<bool>()>{}
                          : query_hooks[i]));
    }
    return results;
}

IdentificationResult
Decepticon::identifyResilient(
    const std::vector<gpusim::KernelTrace> &captures,
    const ResilientIdentifyOptions &ropts,
    const std::function<std::vector<bool>()> &query_victim)
{
    // Timestamp-only view of the multi-channel path: same decision
    // graph, with the three side channels dark.
    MultiChannelCapture capture;
    capture.timestampCaptures = captures;
    return identifyFused(capture, ropts, query_victim);
}

namespace {

/**
 * Soft sample-coverage quality for a series capture: approaches 1 for
 * long captures, shrinks toward 0 as truncation/dropout starve the
 * series. Profiler vectors are fixed-length and exempt.
 */
double
seriesQuality(std::size_t samples)
{
    return static_cast<double>(samples) /
           (static_cast<double>(samples) + 16.0);
}

} // namespace

IdentificationResult
Decepticon::identifyFused(
    const MultiChannelCapture &capture,
    const ResilientIdentifyOptions &ropts,
    const std::function<std::vector<bool>()> &query_victim)
{
    if (index_)
        return identifyFusedIndexed(capture, ropts, query_victim);
    assert(cnn_ && "trainExtractor must run first");

    auto sp = obs::span("level1.identify_fused", "level1");
    obs::count("level1.identifies");
    obs::StageTimer stage_timer("classify");

    IdentificationResult result;
    result.capturesUsed = capture.timestampCaptures.size() +
                          capture.powerCaptures.size() +
                          capture.thermalCaptures.size() +
                          capture.profilerCaptures.size();
    result.quorumAgreement = 0.0;
    result.channelsAvailable = 0;
    sp.arg("captures", static_cast<std::uint64_t>(result.capturesUsed));

    // ---- channel availability ------------------------------------
    // A channel is usable when at least one capture carries enough
    // signal to vote — and, for the side channels, when a trained
    // classifier exists for it.
    std::vector<const gpusim::KernelTrace *> ts_caps;
    for (const auto &t : capture.timestampCaptures) {
        if (!t.records.empty())
            ts_caps.push_back(&t);
    }
    const bool ts_usable = !ts_caps.empty();

    auto usable_series =
        [&](fault::Channel channel,
            const std::vector<std::vector<double>> &caps,
            std::size_t min_samples) {
            if (!fusion_ ||
                !channelClassifiers_[static_cast<std::size_t>(channel)])
                return false;
            for (const auto &s : caps) {
                if (s.size() >= min_samples)
                    return true;
            }
            return false;
        };
    const bool power_usable =
        usable_series(fault::Channel::Power, capture.powerCaptures,
                      ropts.minSeriesSamples);
    const bool thermal_usable =
        usable_series(fault::Channel::Thermal, capture.thermalCaptures,
                      ropts.minSeriesSamples);
    const bool profiler_usable = usable_series(
        fault::Channel::Profiler, capture.profilerCaptures, 1);

    const bool usable[fault::kNumChannels] = {ts_usable, power_usable,
                                              thermal_usable,
                                              profiler_usable};
    for (std::size_t c = 0; c < fault::kNumChannels; ++c) {
        const char *name =
            fault::channelName(static_cast<fault::Channel>(c));
        obs::count((std::string("level1.channel.") + name +
                    (usable[c] ? ".available" : ".dark"))
                       .c_str());
        if (usable[c]) {
            ++result.channelsAvailable;
            result.channelsUsed.emplace_back(name);
        }
    }
    obs::gaugeSet("level1.channels_available",
                  static_cast<double>(result.channelsAvailable));
    sp.arg("channels",
           static_cast<std::uint64_t>(result.channelsAvailable));

    if (result.channelsAvailable == 0) {
        // Total blackout: say so instead of guessing.
        result.insufficientEvidence = true;
        obs::count("level1.insufficient_evidence");
        obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                          "insufficient_blackout");
        obs::flightNoteError();
        sp.arg("verdict", "insufficient");
        return result;
    }

    auto plurality = [&](const std::vector<std::size_t> &votes,
                         double &share) {
        const auto it = std::max_element(votes.begin(), votes.end());
        std::size_t total = 0;
        for (std::size_t v : votes)
            total += v;
        share = static_cast<double>(*it) / static_cast<double>(total);
        return static_cast<std::size_t>(it - votes.begin());
    };

    // ---- stage 1: the timestamp channel (legacy CNN quorum) -------
    gpusim::KernelTrace repaired;
    std::vector<tensor::Tensor> voter_images;
    std::vector<double> ts_probs;
    double cnn_share = 0.0;
    if (ts_usable) {
        std::vector<gpusim::KernelTrace> clean;
        clean.reserve(ts_caps.size());
        for (const auto *t : ts_caps)
            clean.push_back(*t);
        trace::RepairReport report;
        repaired = trace::repairTraces(clean, &report);

        // The consensus trace goes through the full single-trace path
        // (top-k, ambiguity handling, query probing).
        const IdentificationResult base = identify(repaired, query_victim);
        result.pretrainedName = base.pretrainedName;
        result.topProbability = base.topProbability;
        result.candidates = base.candidates;
        result.usedQueryProbes = base.usedQueryProbes;

        // CNN quorum: the consensus trace and every raw capture each
        // cast one vote, so a single badly-mangled capture cannot
        // swing the answer the way it could swing a single
        // classification. Both the rasterization and the per-image
        // classifications are pure per voter, so the voters run in
        // parallel; the vote tally is a commutative sum and therefore
        // scheduling-independent.
        std::vector<const gpusim::KernelTrace *> voters;
        voters.push_back(&repaired);
        for (const auto &cap : clean)
            voters.push_back(&cap);
        voter_images.resize(voters.size());
        sched::parallelFor(voters.size(), 1, [&](std::size_t i) {
            voter_images[i] = fingerprint::fingerprintImage(
                *voters[i], cnn_->resolution(),
                opts_.datasetOptions.cropIrregular);
        });
        std::vector<const tensor::Tensor *> voter_image_ptrs;
        voter_image_ptrs.reserve(voter_images.size());
        for (const auto &img : voter_images)
            voter_image_ptrs.push_back(&img);

        std::vector<std::size_t> cnn_votes(classNames_.size(), 0);
        for (int p : fingerprint::predictBatch(*cnn_, voter_image_ptrs))
            ++cnn_votes[static_cast<std::size_t>(p)];
        const std::size_t cnn_winner = plurality(cnn_votes, cnn_share);
        result.quorumAgreement = cnn_share;
        ts_probs = cnn_->classProbabilities(voter_images[0]);

        if (result.topProbability >= ropts.cnnConfidenceThreshold &&
            cnn_share >= ropts.quorumThreshold) {
            // Confident CNN: adopt the quorum winner unless query
            // probes already disambiguated (stronger, input-dependent
            // evidence).
            if (!result.usedQueryProbes)
                result.pretrainedName = classNames_[cnn_winner];
            obs::gaugeSet("level1.quorum_agreement",
                          result.quorumAgreement);
            obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                              "timestamp", result.quorumAgreement);
            sp.arg("verdict", "timestamp");
            return result;
        }
    }

    // ---- stage 2: confidence-weighted channel fusion --------------
    struct SeriesSet
    {
        fault::Channel channel;
        const std::vector<std::vector<double>> *caps;
        bool usable;
        std::size_t minSamples;
    };
    const SeriesSet series_sets[3] = {
        {fault::Channel::Power, &capture.powerCaptures, power_usable,
         ropts.minSeriesSamples},
        {fault::Channel::Thermal, &capture.thermalCaptures,
         thermal_usable, ropts.minSeriesSamples},
        {fault::Channel::Profiler, &capture.profilerCaptures,
         profiler_usable, 1},
    };
    const std::size_t side_channels =
        (power_usable ? 1u : 0u) + (thermal_usable ? 1u : 0u) +
        (profiler_usable ? 1u : 0u);

    sidechan::FusionDecision decision;
    bool fusion_ran = false;

    auto adopt_fused = [&]() {
        const auto label = static_cast<std::size_t>(decision.label);
        result.pretrainedName = classNames_[label];
        if (!ts_usable) {
            // No CNN posterior: the fused posterior is the evidence
            // trail, so the candidate list and top probability come
            // from it.
            result.topProbability = decision.fusedProbs[label];
            std::vector<std::size_t> order(classNames_.size());
            for (std::size_t k = 0; k < order.size(); ++k)
                order[k] = k;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (decision.fusedProbs[a] !=
                              decision.fusedProbs[b])
                              return decision.fusedProbs[a] >
                                     decision.fusedProbs[b];
                          return a < b;
                      });
            result.candidates.clear();
            const std::size_t k_out =
                std::min(opts_.topK, order.size());
            for (std::size_t k = 0; k < k_out; ++k)
                result.candidates.push_back(classNames_[order[k]]);
        }
    };

    if (side_channels > 0) {
        // Feature extraction is pure per capture; the captures fill
        // independent slots in parallel. Classifier inference then
        // runs serially in channel order (the classifiers hold shared
        // forward caches).
        struct FeatJob
        {
            std::size_t set;
            const std::vector<double> *series;
        };
        std::vector<FeatJob> fjobs;
        for (std::size_t s = 0; s < 3; ++s) {
            if (!series_sets[s].usable)
                continue;
            for (const auto &ser : *series_sets[s].caps) {
                if (ser.size() >= series_sets[s].minSamples)
                    fjobs.push_back({s, &ser});
            }
        }
        std::vector<std::vector<float>> feats(fjobs.size());
        sched::parallelFor(fjobs.size(), 1, [&](std::size_t i) {
            feats[i] = sidechan::channelFeatures(
                series_sets[fjobs[i].set].channel, *fjobs[i].series);
        });

        std::vector<sidechan::ChannelEvidence> evidence;
        if (ts_usable) {
            sidechan::ChannelEvidence ev;
            ev.channel = fault::Channel::Timestamp;
            ev.available = true;
            ev.probs = ts_probs;
            ev.quality = cnn_share;
            evidence.push_back(std::move(ev));
        }
        for (std::size_t s = 0; s < 3; ++s) {
            if (!series_sets[s].usable)
                continue;
            sidechan::ChannelEvidence ev;
            ev.channel = series_sets[s].channel;
            ev.available = true;
            ev.probs.assign(classNames_.size(), 0.0);
            double quality_sum = 0.0;
            std::size_t n = 0;
            auto &clf = channelClassifiers_[static_cast<std::size_t>(
                series_sets[s].channel)];
            for (std::size_t i = 0; i < fjobs.size(); ++i) {
                if (fjobs[i].set != s)
                    continue;
                const std::vector<double> probs =
                    clf->classProbabilities(feats[i]);
                for (std::size_t k = 0; k < probs.size(); ++k)
                    ev.probs[k] += probs[k];
                quality_sum +=
                    series_sets[s].channel == fault::Channel::Profiler
                        ? 1.0
                        : seriesQuality(fjobs[i].series->size());
                ++n;
            }
            for (auto &p : ev.probs)
                p /= static_cast<double>(n);
            ev.quality = quality_sum / static_cast<double>(n);
            evidence.push_back(std::move(ev));
        }

        decision = fusion_->fuse(evidence);
        fusion_ran = true;
        result.usedChannelFusion = true;
        result.fusedConfidence = decision.confidence;
        obs::gaugeSet("level1.fused_confidence", decision.confidence);

        if (decision.verdict == sidechan::FusionVerdict::Identified &&
            decision.confidence >= ropts.fusionMinConfidence) {
            adopt_fused();
            obs::count("level1.fusion_adoptions");
            obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                              "fused", decision.confidence);
            sp.arg("verdict", "fused");
            sp.arg("confidence", decision.confidence);
            return result;
        }
    }

    // ---- stage 3: timestamp-only fallback chain -------------------
    if (ts_usable) {
        // Tier 2: kNN template quorum over the same images.
        result.usedKnnFallback = true;
        obs::count("level1.knn_fallbacks");
        std::vector<std::size_t> knn_votes(classNames_.size(), 0);
        std::vector<int> knn_preds(voter_images.size());
        sched::parallelFor(voter_images.size(), 1, [&](std::size_t i) {
            knn_preds[i] = knn_.predict(voter_images[i]);
        });
        for (int p : knn_preds)
            ++knn_votes[static_cast<std::size_t>(p)];
        double knn_share = 0.0;
        const std::size_t knn_winner = plurality(knn_votes, knn_share);
        if (knn_share >= ropts.quorumThreshold) {
            result.pretrainedName = classNames_[knn_winner];
            result.quorumAgreement = knn_share;
            obs::gaugeSet("level1.quorum_agreement",
                          result.quorumAgreement);
            obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                              "knn", knn_share);
            sp.arg("verdict", "knn");
            return result;
        }

        // Tier 3: attribute the consensus trace to the lineage whose
        // sequence predictor decodes it with the lowest layer error
        // rate — but abstain when even the best decode is noise-level
        // (a garbage trace always has *some* argmin).
        result.usedSeqFallback = true;
        obs::count("level1.seq_fallbacks");
        std::size_t best = 0;
        double best_ler = seqPredictors_[0].layerErrorRate(repaired);
        for (std::size_t c = 1; c < seqPredictors_.size(); ++c) {
            const double ler = seqPredictors_[c].layerErrorRate(repaired);
            if (ler < best_ler) {
                best_ler = ler;
                best = c;
            }
        }
        if (best_ler < ropts.seqLerRejectThreshold) {
            result.pretrainedName = classNames_[best];
            obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                              "seq", best_ler);
            sp.arg("verdict", "seq");
            return result;
        }
        obs::count("level1.seq_rejections");
    }

    // ---- stage 4: best-effort fusion, then honest failure ---------
    if (fusion_ran &&
        decision.verdict == sidechan::FusionVerdict::Identified) {
        // Below the confidence bar and with the timestamp chain
        // exhausted, the fused label is still the best available
        // evidence — adopt it at its honest low confidence.
        adopt_fused();
        obs::count("level1.fusion_best_effort");
        obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                          "fused_best_effort", decision.confidence);
        sp.arg("verdict", "fused_best_effort");
        sp.arg("confidence", decision.confidence);
        return result;
    }

    result.insufficientEvidence = true;
    result.pretrainedName.clear();
    result.topProbability = 0.0;
    obs::count("level1.insufficient_evidence");
    obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                      "insufficient");
    obs::flightNoteError();
    sp.arg("verdict", "insufficient");
    return result;
}

IdentificationResult
Decepticon::identifyFusedIndexed(
    const MultiChannelCapture &capture,
    const ResilientIdentifyOptions &ropts,
    const std::function<std::vector<bool>()> &query_victim)
{
    auto sp = obs::span("level1.identify_fused", "level1");
    obs::count("level1.identifies");
    obs::StageTimer stage_timer("classify");

    IdentificationResult result;
    result.capturesUsed = capture.timestampCaptures.size() +
                          capture.powerCaptures.size() +
                          capture.thermalCaptures.size() +
                          capture.profilerCaptures.size();
    result.quorumAgreement = 0.0;
    result.channelsAvailable = 0;
    sp.arg("captures", static_cast<std::uint64_t>(result.capturesUsed));

    // Only the timestamp channel can vote in indexed mode: a
    // 5,000-lineage pool would need 5,000-way side-channel MLPs for
    // marginal evidence, so the index trains none. The channel
    // accounting keeps the same shape as the exhaustive path.
    std::vector<const gpusim::KernelTrace *> ts_caps;
    for (const auto &t : capture.timestampCaptures) {
        if (!t.records.empty())
            ts_caps.push_back(&t);
    }
    const bool usable[fault::kNumChannels] = {!ts_caps.empty(), false,
                                              false, false};
    for (std::size_t c = 0; c < fault::kNumChannels; ++c) {
        const char *name =
            fault::channelName(static_cast<fault::Channel>(c));
        obs::count((std::string("level1.channel.") + name +
                    (usable[c] ? ".available" : ".dark"))
                       .c_str());
        if (usable[c]) {
            ++result.channelsAvailable;
            result.channelsUsed.emplace_back(name);
        }
    }
    obs::gaugeSet("level1.channels_available",
                  static_cast<double>(result.channelsAvailable));
    sp.arg("channels",
           static_cast<std::uint64_t>(result.channelsAvailable));

    if (result.channelsAvailable == 0) {
        // Total blackout: say so instead of guessing.
        result.insufficientEvidence = true;
        obs::count("level1.insufficient_evidence");
        obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                          "insufficient_blackout");
        obs::flightNoteError();
        sp.arg("verdict", "insufficient");
        return result;
    }

    std::vector<gpusim::KernelTrace> clean;
    clean.reserve(ts_caps.size());
    for (const auto *t : ts_caps)
        clean.push_back(*t);
    trace::RepairReport report;
    const gpusim::KernelTrace repaired =
        trace::repairTraces(clean, &report);

    // The consensus trace goes through the full indexed single-trace
    // path (shortlist, re-rank, ambiguity handling, query probing).
    const IdentificationResult base = identify(repaired, query_victim);
    result.pretrainedName = base.pretrainedName;
    result.topProbability = base.topProbability;
    result.candidates = base.candidates;
    result.usedQueryProbes = base.usedQueryProbes;

    // Index quorum: the consensus trace and every raw capture each
    // cast one shortlist-classification vote. Lookups are const and
    // pure per voter, so they fan out; the tally is a commutative
    // integer sum and therefore scheduling-independent.
    std::vector<const gpusim::KernelTrace *> voters;
    voters.push_back(&repaired);
    for (const auto &cap : clean)
        voters.push_back(&cap);
    std::vector<std::size_t> voter_class(voters.size());
    sched::parallelFor(voters.size(), 1, [&](std::size_t i) {
        voter_class[i] =
            index_->classify(fingerprint::traceEmbedding(*voters[i]));
    });
    std::vector<std::size_t> votes(classNames_.size(), 0);
    for (std::size_t v : voter_class)
        ++votes[v];
    const auto win = std::max_element(votes.begin(), votes.end());
    const double share = static_cast<double>(*win) /
                         static_cast<double>(voters.size());
    const auto winner =
        static_cast<std::size_t>(win - votes.begin());
    result.quorumAgreement = share;

    if (result.topProbability >= ropts.cnnConfidenceThreshold &&
        share >= ropts.quorumThreshold) {
        // Confident lookup: adopt the quorum winner unless query
        // probes already disambiguated (stronger, input-dependent
        // evidence).
        if (!result.usedQueryProbes)
            result.pretrainedName = classNames_[winner];
        obs::gaugeSet("level1.quorum_agreement",
                      result.quorumAgreement);
        obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                          "timestamp", result.quorumAgreement);
        sp.arg("verdict", "timestamp");
        return result;
    }

    // No kNN / sequence-predictor tiers behind the index — when the
    // lookup is unconfident or the quorum splits, abstain honestly.
    result.insufficientEvidence = true;
    result.pretrainedName.clear();
    result.topProbability = 0.0;
    obs::count("level1.insufficient_evidence");
    obs::flightRecord(obs::FlightEventKind::Verdict, "classify",
                      "insufficient");
    obs::flightNoteError();
    sp.arg("verdict", "insufficient");
    return result;
}

std::function<std::vector<bool>()>
makeVictimQueryHook(const zoo::VocabularyProfile &victim_profile)
{
    return [victim_profile]() {
        return zoo::responseVector(victim_profile,
                                   zoo::standardProbeSet());
    };
}

} // namespace decepticon::core
