#include "core/decepticon.hh"

#include <algorithm>
#include <cassert>

namespace decepticon::core {

Decepticon::Decepticon(const DecepticonOptions &opts)
    : opts_(opts), probes_(zoo::standardProbeSet())
{
}

double
Decepticon::trainExtractor(const zoo::ModelZoo &candidate_pool)
{
    fingerprint::DatasetOptions ds_opts = opts_.datasetOptions;
    ds_opts.seed = opts_.seed;
    const fingerprint::FingerprintDataset dataset =
        fingerprint::buildDataset(candidate_pool, ds_opts);
    assert(!dataset.samples.empty());

    classNames_ = dataset.classNames;
    classProfiles_.clear();
    classProfiles_.reserve(classNames_.size());
    for (const auto &name : classNames_) {
        const zoo::ModelIdentity *m = candidate_pool.byName(name);
        assert(m != nullptr);
        classProfiles_.push_back(m->vocabProfile);
    }

    auto [train, test] = dataset.split(0.8, opts_.seed ^ 0x5eedULL);
    cnn_ = std::make_unique<fingerprint::FingerprintCnn>(
        dataset.resolution, dataset.numClasses(), opts_.seed ^ 0xc44ULL);
    cnn_->train(train, opts_.cnnOptions);
    return cnn_->evaluate(test);
}

IdentificationResult
Decepticon::identify(const gpusim::KernelTrace &victim_trace,
                     const std::function<std::vector<bool>()> &query_victim)
{
    assert(cnn_ && "trainExtractor must run first");
    IdentificationResult result;

    const tensor::Tensor image = fingerprint::fingerprintImage(
        victim_trace, cnn_->resolution(),
        opts_.datasetOptions.cropIrregular);
    const std::vector<double> probs = cnn_->classProbabilities(image);
    const std::vector<int> top = cnn_->topK(image, opts_.topK);
    assert(!top.empty());

    for (int c : top)
        result.candidates.push_back(classNames_[static_cast<size_t>(c)]);
    result.topProbability = probs[static_cast<std::size_t>(top[0])];

    // Ambiguity: candidates whose probability is close to the top one
    // cannot be separated by architectural hints alone (e.g. BERT vs
    // CamemBERT from the same source). Fall back to query outputs.
    std::vector<int> ambiguous;
    for (int c : top) {
        if (probs[static_cast<std::size_t>(c)] >=
            opts_.ambiguityRatio * result.topProbability) {
            ambiguous.push_back(c);
        }
    }

    if (ambiguous.size() > 1 && query_victim) {
        result.usedQueryProbes = true;
        const std::vector<bool> victim_resp = query_victim();
        int best = ambiguous[0];
        std::size_t best_dist = probes_.size() + 1;
        for (int c : ambiguous) {
            const auto expected = zoo::responseVector(
                classProfiles_[static_cast<std::size_t>(c)], probes_);
            const std::size_t dist =
                zoo::responseDistance(expected, victim_resp);
            if (dist < best_dist) {
                best_dist = dist;
                best = c;
            }
        }
        result.pretrainedName = classNames_[static_cast<std::size_t>(best)];
    } else {
        result.pretrainedName = classNames_[static_cast<std::size_t>(top[0])];
    }
    return result;
}

std::function<std::vector<bool>()>
makeVictimQueryHook(const zoo::VocabularyProfile &victim_profile)
{
    return [victim_profile]() {
        return zoo::responseVector(victim_profile,
                                   zoo::standardProbeSet());
    };
}

} // namespace decepticon::core
