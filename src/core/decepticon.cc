#include "core/decepticon.hh"

#include <algorithm>
#include <cassert>

#include "gpusim/trace_generator.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"
#include "trace/repair.hh"
#include "util/rng.hh"

namespace decepticon::core {

Decepticon::Decepticon(const DecepticonOptions &opts)
    : opts_(opts), probes_(zoo::standardProbeSet())
{
}

double
Decepticon::trainExtractor(const zoo::ModelZoo &candidate_pool)
{
    auto sp = obs::span("level1.train_extractor", "level1");
    fingerprint::DatasetOptions ds_opts = opts_.datasetOptions;
    ds_opts.seed = opts_.seed;
    const fingerprint::FingerprintDataset dataset =
        fingerprint::buildDataset(candidate_pool, ds_opts);
    assert(!dataset.samples.empty());

    classNames_ = dataset.classNames;
    classProfiles_.clear();
    classProfiles_.reserve(classNames_.size());
    for (const auto &name : classNames_) {
        const zoo::ModelIdentity *m = candidate_pool.byName(name);
        assert(m != nullptr);
        classProfiles_.push_back(m->vocabProfile);
    }

    auto [train, test] = dataset.split(0.8, opts_.seed ^ 0x5eedULL);
    cnn_ = std::make_unique<fingerprint::FingerprintCnn>(
        dataset.resolution, dataset.numClasses(), opts_.seed ^ 0xc44ULL);
    cnn_->train(train, opts_.cnnOptions);

    // Degradation tier 2: the kNN template matcher shares the CNN's
    // training images, so falling back never needs extra profiling.
    knn_.train(train);

    // Degradation tier 3: one kernel-sequence predictor per lineage,
    // trained on profiled traces of that lineage's zoo models. A
    // victim trace is then attributed to the lineage whose predictor
    // decodes it with the lowest layer error rate.
    seqPredictors_.assign(classNames_.size(),
                          fingerprint::KernelSequencePredictor{});
    // Draw the per-trace seeds serially in the exact order the legacy
    // nested loop did, then capture all traces in parallel: each job
    // fills its own slot, so the training sets are scheduling-
    // independent bit-for-bit.
    struct TraceJob
    {
        const zoo::ModelIdentity *model;
        std::uint64_t runSeed;
    };
    std::vector<TraceJob> jobs;
    std::vector<std::pair<std::size_t, std::size_t>> class_ranges;
    util::Rng trace_rng(opts_.seed ^ 0x5e9ULL);
    for (std::size_t c = 0; c < classNames_.size(); ++c) {
        const std::size_t begin = jobs.size();
        for (const auto &model : candidate_pool.models()) {
            if (model.pretrainedName != classNames_[c])
                continue;
            jobs.push_back({&model, trace_rng.nextU64()});
            jobs.push_back({&model, trace_rng.nextU64()});
        }
        class_ranges.emplace_back(begin, jobs.size());
    }
    std::vector<gpusim::KernelTrace> all_traces(jobs.size());
    sched::parallelFor(jobs.size(), 1, [&](std::size_t i) {
        const gpusim::TraceGenerator gen(jobs[i].model->signature);
        all_traces[i] = gen.generate(jobs[i].model->arch, jobs[i].runSeed);
    });
    for (std::size_t c = 0; c < classNames_.size(); ++c) {
        const auto [begin, end] = class_ranges[c];
        std::vector<gpusim::KernelTrace> traces(
            all_traces.begin() + static_cast<long>(begin),
            all_traces.begin() + static_cast<long>(end));
        seqPredictors_[c].train(traces);
    }
    return cnn_->evaluate(test);
}

IdentificationResult
Decepticon::identify(const gpusim::KernelTrace &victim_trace,
                     const std::function<std::vector<bool>()> &query_victim)
{
    assert(cnn_ && "trainExtractor must run first");
    IdentificationResult result;

    auto sp = obs::span("level1.identify", "level1");
    obs::count("level1.identifies");

    auto raster_span = obs::span("level1.rasterize", "level1");
    const tensor::Tensor image = fingerprint::fingerprintImage(
        victim_trace, cnn_->resolution(),
        opts_.datasetOptions.cropIrregular);
    raster_span.end();

    auto cnn_span = obs::span("level1.cnn_classify", "level1");
    const std::vector<double> probs = cnn_->classProbabilities(image);
    const std::vector<int> top = cnn_->topK(image, opts_.topK);
    cnn_span.end();
    assert(!top.empty());

    for (int c : top)
        result.candidates.push_back(classNames_[static_cast<size_t>(c)]);
    result.topProbability = probs[static_cast<std::size_t>(top[0])];

    // Ambiguity: candidates whose probability is close to the top one
    // cannot be separated by architectural hints alone (e.g. BERT vs
    // CamemBERT from the same source). Fall back to query outputs.
    std::vector<int> ambiguous;
    for (int c : top) {
        if (probs[static_cast<std::size_t>(c)] >=
            opts_.ambiguityRatio * result.topProbability) {
            ambiguous.push_back(c);
        }
    }

    if (ambiguous.size() > 1 && query_victim) {
        result.usedQueryProbes = true;
        obs::count("level1.query_probe_rounds");
        auto probe_span = obs::span("level1.query_probes", "level1");
        const std::vector<bool> victim_resp = query_victim();
        int best = ambiguous[0];
        std::size_t best_dist = probes_.size() + 1;
        for (int c : ambiguous) {
            const auto expected = zoo::responseVector(
                classProfiles_[static_cast<std::size_t>(c)], probes_);
            const std::size_t dist =
                zoo::responseDistance(expected, victim_resp);
            if (dist < best_dist) {
                best_dist = dist;
                best = c;
            }
        }
        result.pretrainedName = classNames_[static_cast<std::size_t>(best)];
    } else {
        result.pretrainedName = classNames_[static_cast<std::size_t>(top[0])];
    }
    obs::gaugeSet("level1.confidence", result.topProbability);
    obs::observe("level1.confidence_hist", result.topProbability);
    sp.arg("parent", result.pretrainedName);
    sp.arg("confidence", result.topProbability);
    return result;
}

IdentificationResult
Decepticon::identifyResilient(
    const std::vector<gpusim::KernelTrace> &captures,
    const ResilientIdentifyOptions &ropts,
    const std::function<std::vector<bool>()> &query_victim)
{
    assert(cnn_ && "trainExtractor must run first");
    assert(!captures.empty());

    auto sp = obs::span("level1.identify_resilient", "level1");
    sp.arg("captures", static_cast<std::uint64_t>(captures.size()));

    trace::RepairReport report;
    const gpusim::KernelTrace repaired =
        trace::repairTraces(captures, &report);

    // The consensus trace goes through the full single-trace path
    // (top-k, ambiguity handling, query probing).
    IdentificationResult result = identify(repaired, query_victim);
    result.capturesUsed = captures.size();

    auto image_of = [&](const gpusim::KernelTrace &t) {
        return fingerprint::fingerprintImage(
            t, cnn_->resolution(), opts_.datasetOptions.cropIrregular);
    };
    auto plurality = [&](const std::vector<std::size_t> &votes,
                         double &share) {
        const auto it = std::max_element(votes.begin(), votes.end());
        std::size_t total = 0;
        for (std::size_t v : votes)
            total += v;
        share = static_cast<double>(*it) / static_cast<double>(total);
        return static_cast<std::size_t>(it - votes.begin());
    };

    // CNN quorum: the consensus trace and every raw capture each cast
    // one vote, so a single badly-mangled capture cannot swing the
    // answer the way it could swing a single classification. Both the
    // rasterization and the per-image classifications are pure per
    // voter, so the voters run in parallel; the vote tally is a
    // commutative sum and therefore scheduling-independent.
    std::vector<const gpusim::KernelTrace *> voters;
    voters.push_back(&repaired);
    for (const auto &cap : captures)
        voters.push_back(&cap);
    std::vector<tensor::Tensor> voter_images(voters.size());
    sched::parallelFor(voters.size(), 1, [&](std::size_t i) {
        voter_images[i] = image_of(*voters[i]);
    });
    std::vector<const tensor::Tensor *> voter_image_ptrs;
    voter_image_ptrs.reserve(voter_images.size());
    for (const auto &img : voter_images)
        voter_image_ptrs.push_back(&img);

    std::vector<std::size_t> cnn_votes(classNames_.size(), 0);
    for (int p : fingerprint::predictBatch(*cnn_, voter_image_ptrs))
        ++cnn_votes[static_cast<std::size_t>(p)];
    double cnn_share = 0.0;
    const std::size_t cnn_winner = plurality(cnn_votes, cnn_share);
    result.quorumAgreement = cnn_share;

    if (result.topProbability >= ropts.cnnConfidenceThreshold &&
        cnn_share >= ropts.quorumThreshold) {
        // Confident CNN: adopt the quorum winner unless query probes
        // already disambiguated (stronger, input-dependent evidence).
        if (!result.usedQueryProbes)
            result.pretrainedName = classNames_[cnn_winner];
        obs::gaugeSet("level1.quorum_agreement", result.quorumAgreement);
        return result;
    }

    // Tier 2: kNN template quorum over the same images.
    result.usedKnnFallback = true;
    obs::count("level1.knn_fallbacks");
    std::vector<std::size_t> knn_votes(classNames_.size(), 0);
    std::vector<int> knn_preds(voter_images.size());
    sched::parallelFor(voter_images.size(), 1, [&](std::size_t i) {
        knn_preds[i] = knn_.predict(voter_images[i]);
    });
    for (int p : knn_preds)
        ++knn_votes[static_cast<std::size_t>(p)];
    double knn_share = 0.0;
    const std::size_t knn_winner = plurality(knn_votes, knn_share);
    if (knn_share >= ropts.quorumThreshold) {
        result.pretrainedName = classNames_[knn_winner];
        result.quorumAgreement = knn_share;
        obs::gaugeSet("level1.quorum_agreement", result.quorumAgreement);
        return result;
    }

    // Tier 3: attribute the consensus trace to the lineage whose
    // sequence predictor decodes it with the lowest layer error rate.
    result.usedSeqFallback = true;
    obs::count("level1.seq_fallbacks");
    std::size_t best = 0;
    double best_ler = seqPredictors_[0].layerErrorRate(repaired);
    for (std::size_t c = 1; c < seqPredictors_.size(); ++c) {
        const double ler = seqPredictors_[c].layerErrorRate(repaired);
        if (ler < best_ler) {
            best_ler = ler;
            best = c;
        }
    }
    result.pretrainedName = classNames_[best];
    return result;
}

std::function<std::vector<bool>()>
makeVictimQueryHook(const zoo::VocabularyProfile &victim_profile)
{
    return [victim_profile]() {
        return zoo::responseVector(victim_profile,
                                   zoo::standardProbeSet());
    };
}

} // namespace decepticon::core
