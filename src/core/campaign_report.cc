#include "core/campaign_report.hh"

#include <sstream>

#include "obs/metrics.hh"

namespace decepticon::core {

void
CampaignReport::recordVictim(VictimOutcome outcome)
{
    ++sessions;
    if (outcome.blackout)
        ++blackouts;
    if (outcome.abstained) {
        ++abstained;
    } else {
        ++identified;
        if (outcome.identityCorrect)
            ++correct;
    }
    if (outcome.cloned)
        ++clonesBuilt;
    if (outcome.cloneReused)
        ++cloneReuses;
    timeToClone.add(static_cast<double>(outcome.timeToCloneMicros));
    victims.push_back(std::move(outcome));
}

double
CampaignReport::identificationAccuracy() const
{
    if (identified == 0)
        return 0.0;
    return static_cast<double>(correct) / static_cast<double>(identified);
}

double
CampaignReport::cacheHitRate() const
{
    const std::size_t lookups = cacheHits + cacheMisses + cacheStale;
    if (lookups == 0)
        return 0.0;
    return static_cast<double>(cacheHits) / static_cast<double>(lookups);
}

double
CampaignReport::victimsPerSec() const
{
    if (totalMicros == 0)
        return 0.0;
    return static_cast<double>(sessions) /
           (static_cast<double>(totalMicros) / 1e6);
}

std::string
CampaignReport::toJson() const
{
    std::ostringstream oss;
    oss << "{\"queue\":{"
        << "\"sessions\":" << sessions
        << ",\"identified\":" << identified
        << ",\"correct\":" << correct
        << ",\"abstained\":" << abstained
        << ",\"blackouts\":" << blackouts
        << ",\"accuracy\":" << obs::jsonNumber(identificationAccuracy())
        << "},\"cache\":{"
        << "\"hits\":" << cacheHits
        << ",\"misses\":" << cacheMisses
        << ",\"stale\":" << cacheStale
        << ",\"evictions\":" << cacheEvictions
        << ",\"invalidations\":" << cacheInvalidations
        << ",\"hit_rate\":" << obs::jsonNumber(cacheHitRate())
        << "},\"level2\":{"
        << "\"clones_built\":" << clonesBuilt
        << ",\"clone_reuses\":" << cloneReuses
        << "},\"throughput\":{"
        << "\"total_micros\":" << totalMicros
        << ",\"victims_per_sec\":" << obs::jsonNumber(victimsPerSec())
        << ",\"time_to_clone_p50_micros\":"
        << obs::jsonNumber(timeToClone.quantile(0.5))
        << ",\"time_to_clone_p99_micros\":"
        << obs::jsonNumber(timeToClone.quantile(0.99))
        << ",\"time_to_clone_samples\":" << timeToClone.total()
        << "},\"victims\":[";
    for (std::size_t i = 0; i < victims.size(); ++i) {
        const VictimOutcome &v = victims[i];
        if (i > 0)
            oss << ",";
        oss << "{\"index\":" << v.index
            << ",\"lineage\":" << obs::jsonQuote(v.lineage)
            << ",\"parent\":" << obs::jsonQuote(v.identifiedParent)
            << ",\"correct\":" << (v.identityCorrect ? "true" : "false")
            << ",\"cache_hit\":" << (v.cacheHit ? "true" : "false")
            << ",\"clone_reused\":" << (v.cloneReused ? "true" : "false")
            << ",\"blackout\":" << (v.blackout ? "true" : "false")
            << ",\"abstained\":" << (v.abstained ? "true" : "false")
            << ",\"cloned\":" << (v.cloned ? "true" : "false")
            << ",\"agreement\":" << obs::jsonNumber(v.agreement)
            << ",\"time_to_clone_micros\":" << v.timeToCloneMicros
            << "}";
    }
    oss << "],\"watchdog\":";
    watchdog.toJson(oss);
    oss << "}";
    return oss.str();
}

void
CampaignReport::toMetrics(obs::MetricsRegistry &registry) const
{
    const auto gauge = [&](const char *name, double value) {
        registry.setGauge(std::string("campaign.") + name, value);
    };
    gauge("sessions", static_cast<double>(sessions));
    gauge("identified", static_cast<double>(identified));
    gauge("correct", static_cast<double>(correct));
    gauge("abstained", static_cast<double>(abstained));
    gauge("blackouts", static_cast<double>(blackouts));
    gauge("identification_accuracy", identificationAccuracy());
    gauge("cache.hits", static_cast<double>(cacheHits));
    gauge("cache.misses", static_cast<double>(cacheMisses));
    gauge("cache.stale", static_cast<double>(cacheStale));
    gauge("cache.evictions", static_cast<double>(cacheEvictions));
    gauge("cache.invalidations",
          static_cast<double>(cacheInvalidations));
    gauge("cache.hit_rate", cacheHitRate());
    gauge("clones_built", static_cast<double>(clonesBuilt));
    gauge("clone_reuses", static_cast<double>(cloneReuses));
    gauge("total_micros", static_cast<double>(totalMicros));
    gauge("victims_per_sec", victimsPerSec());
    gauge("time_to_clone.p50_micros", timeToClone.quantile(0.5));
    gauge("time_to_clone.p99_micros", timeToClone.quantile(0.99));
    gauge("watchdog_ticks", static_cast<double>(watchdog.ticks));
    gauge("watchdog_findings",
          static_cast<double>(watchdog.findings.size()));
}

std::string
CampaignReport::summaryParagraph() const
{
    std::ostringstream oss;
    oss << "Campaign: " << sessions << " victim session(s), "
        << identified << " identified (" << correct << " correct, "
        << abstained << " abstained, " << blackouts << " blackout(s)). "
        << "Cache: " << cacheHits << " hit(s) / " << cacheMisses
        << " miss(es) / " << cacheStale << " stale (hit rate "
        << cacheHitRate() << ", " << cacheEvictions << " eviction(s), "
        << cacheInvalidations << " invalidation(s)). "
        << "Level 2: " << clonesBuilt << " clone(s) built, "
        << cloneReuses << " reused from cache. ";
    if (totalMicros > 0) {
        oss << "Throughput " << victimsPerSec() << " victims/sec over "
            << totalMicros / 1000 << " ms (time-to-clone p50 "
            << timeToClone.quantile(0.5) << " us, p99 "
            << timeToClone.quantile(0.99) << " us). ";
    }
    if (watchdog.ticks > 0) {
        if (watchdog.healthy())
            oss << "Watchdog healthy over " << watchdog.ticks
                << " tick(s).";
        else
            oss << "Watchdog flagged " << watchdog.findings.size()
                << " SLO violation(s) over " << watchdog.ticks
                << " tick(s).";
    }
    return oss.str();
}

} // namespace decepticon::core
