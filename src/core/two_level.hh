/**
 * @file
 * The complete two-level attack as a single API (paper Fig. 1, end to
 * end): register the candidate pre-trained pool, prepare the level-1
 * extractor, then execute against a black-box victim — identification
 * from the captured trace (+ query probes), level-2 selective weight
 * extraction from the identified parent, clone evaluation, and the
 * adversarial follow-up attack. Produces a structured AttackReport.
 */

#ifndef DECEPTICON_CORE_TWO_LEVEL_HH
#define DECEPTICON_CORE_TWO_LEVEL_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "attack/adversarial.hh"
#include "core/decepticon.hh"
#include "core/run_report.hh"
#include "extraction/cloner.hh"
#include "transformer/classifier.hh"
#include "transformer/task.hh"

namespace decepticon::core {

/** Structured outcome of one full attack run. */
struct AttackReport
{
    /** Level 1. */
    IdentificationResult identification;

    /** Level 2 (empty clone if identification had no weights). */
    std::unique_ptr<transformer::TransformerClassifier> clone;
    extraction::ProbeStats probeStats;
    extraction::ExtractionStats extractionStats;
    std::size_t layersExtracted = 0;

    /** Clone quality on the evaluation set. */
    double victimAccuracy = 0.0;
    double cloneAccuracy = 0.0;
    double cloneVictimAgreement = 0.0;

    /** Adversarial follow-up. */
    attack::TransferResult adversarial;

    /** True when every stage produced a usable artifact. */
    bool complete = false;

    /**
     * Machine-readable telemetry rollup of the same run: per-phase
     * wall time plus every counter above in serializable form
     * (run.toJson() / run.toMetrics() / run.summaryParagraph()).
     */
    AttackRunReport run;
};

/** Options for the full pipeline. */
struct TwoLevelOptions
{
    DecepticonOptions level1;
    extraction::ClonerOptions cloner;
    attack::AdversarialOptions adversarial;
};

/**
 * Orchestrates the whole attack. Candidates are registered with their
 * downloadable weights (the attacker can fetch any pre-trained model
 * in his pool); the victim is reached only through its trace, its
 * query API, and the bit-probe channel — never by value.
 */
class TwoLevelAttack
{
  public:
    explicit TwoLevelAttack(const TwoLevelOptions &opts);
    ~TwoLevelAttack();

    /**
     * Register one candidate pre-trained release: its public identity
     * (architecture + software signature + vocabulary) and its
     * weights.
     */
    void addCandidate(
        const zoo::ModelIdentity &identity,
        std::shared_ptr<transformer::TransformerClassifier> weights);

    /**
     * Train the level-1 extractor over the registered candidates.
     * @return held-out fingerprint classification accuracy.
     */
    double prepare();

    /**
     * Run the attack.
     *
     * @param victim the black-box model (query + probe-channel access)
     * @param victim_trace captured kernel execution time series
     * @param query_victim query-output hook for variant detection
     * @param eval_set labeled data for victim/clone quality metrics
     * @param query_set unlabeled inputs for the extraction stopping
     *        rule (agreement with the victim)
     * @param adversarial_seeds inputs to perturb for the follow-up
     */
    AttackReport execute(
        transformer::TransformerClassifier &victim,
        const gpusim::KernelTrace &victim_trace,
        const std::function<std::vector<bool>()> &query_victim,
        const transformer::Dataset &eval_set,
        const std::vector<transformer::Example> &query_set,
        const std::vector<transformer::Example> &adversarial_seeds);

    /** The underlying level-1 pipeline (valid after prepare()). */
    Decepticon &level1() { return *pipeline_; }

    /**
     * Downloadable weights of a registered candidate, or nullptr for
     * an unknown name. Campaign drivers use this to seed level-2
     * extraction for an identity resolved outside execute() (e.g. a
     * cached identification).
     */
    const transformer::TransformerClassifier *
    candidateWeights(const std::string &name) const
    {
        const auto it = weightsByName_.find(name);
        return it == weightsByName_.end() ? nullptr : it->second.get();
    }

    /** The registered candidate pool (identities only). */
    const zoo::ModelZoo &candidates() const { return candidates_; }

  private:
    TwoLevelOptions opts_;
    zoo::ModelZoo candidates_;
    std::unordered_map<std::string,
                       std::shared_ptr<transformer::TransformerClassifier>>
        weightsByName_;
    std::unique_ptr<Decepticon> pipeline_;
    bool prepared_ = false;
};

/** Render a human-readable summary of a report. */
std::string formatReport(const AttackReport &report);

} // namespace decepticon::core

#endif // DECEPTICON_CORE_TWO_LEVEL_HH
