/**
 * @file
 * The Decepticon pipeline (paper Fig. 1): level-1 pre-trained model
 * identification from a victim's kernel execution trace, backed by
 * the CNN fingerprint extractor and, when architectural hints are
 * ambiguous, the input-dependent model variant detector driven by
 * query outputs. The identified pre-trained model unlocks the level-2
 * gray/white-box attacks (selective weight extraction, cloning,
 * adversarial inputs) implemented in the extraction and attack
 * libraries.
 */

#ifndef DECEPTICON_CORE_DECEPTICON_HH
#define DECEPTICON_CORE_DECEPTICON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "fingerprint/knn.hh"
#include "fingerprint/seq_predictor.hh"
#include "gpusim/kernel.hh"
#include "zoo/vocab.hh"
#include "zoo/zoo.hh"

namespace decepticon::core {

/** Pipeline configuration. */
struct DecepticonOptions
{
    fingerprint::DatasetOptions datasetOptions;
    fingerprint::CnnTrainOptions cnnOptions;
    /** CNN candidates forwarded to the variant detector. */
    std::size_t topK = 3;
    /**
     * Candidates whose probability is within this factor of the top
     * candidate count as ambiguous and trigger query probing.
     */
    double ambiguityRatio = 0.5;
    std::uint64_t seed = 1;
};

/**
 * Knobs for the unreliable-channel identification path: how confident
 * the CNN must be on the repaired consensus trace, and how unanimous
 * the per-capture quorum must be, before the degradation chain
 * (kNN templates, then sequence-predictor LER matching) takes over.
 */
struct ResilientIdentifyOptions
{
    /** Minimum CNN top-1 probability on the repaired trace. */
    double cnnConfidenceThreshold = 0.45;
    /** Minimum fraction of quorum votes behind the winning lineage. */
    double quorumThreshold = 0.5;
};

/** Level-1 output. */
struct IdentificationResult
{
    std::string pretrainedName;
    double topProbability = 0.0;
    std::vector<std::string> candidates; ///< CNN top-k, descending
    bool usedQueryProbes = false;
    // --- identifyResilient() accounting (defaults for identify()) ---
    /** Noisy captures consumed (1 for the single-trace path). */
    std::size_t capturesUsed = 1;
    /** Fraction of CNN quorum votes behind the chosen lineage. */
    double quorumAgreement = 1.0;
    bool usedKnnFallback = false; ///< CNN confidence/quorum failed
    bool usedSeqFallback = false; ///< kNN quorum failed too
};

/**
 * Level-1 attacker state: a CNN trained over the candidate pool's
 * fingerprints plus the probe-based variant detector.
 */
class Decepticon
{
  public:
    explicit Decepticon(const DecepticonOptions &opts);

    /**
     * Train the pre-trained model extractor over the candidate pool
     * (the attacker profiles every candidate on his own GPU).
     * Returns held-out (80/20) classification accuracy.
     */
    double trainExtractor(const zoo::ModelZoo &candidate_pool);

    /**
     * Identify the victim's pre-trained model from an observed trace.
     *
     * @param victim_trace the captured kernel execution time series
     * @param query_victim optional black-box query access: returns
     *        the victim's correctness vector over standardProbeSet().
     *        Used only when the CNN's top candidates are ambiguous.
     */
    IdentificationResult identify(
        const gpusim::KernelTrace &victim_trace,
        const std::function<std::vector<bool>()> &query_victim = {}) ;

    /**
     * Identify from R noisy captures of the same inference (dropped /
     * duplicated / truncated records). The captures are repaired into
     * one consensus trace; the CNN classifies the consensus and every
     * capture (a quorum vote). When the CNN is unconfident or the
     * quorum splits, identification degrades gracefully: first to the
     * kNN template classifier, then to per-lineage kernel-sequence
     * predictors (argmin layer error rate) — each strictly weaker but
     * harder to starve than the last.
     */
    IdentificationResult identifyResilient(
        const std::vector<gpusim::KernelTrace> &captures,
        const ResilientIdentifyOptions &ropts = {},
        const std::function<std::vector<bool>()> &query_victim = {});

    /** The trained CNN (valid after trainExtractor). */
    fingerprint::FingerprintCnn &cnn() { return *cnn_; }

    /** Lineage names in label order. */
    const std::vector<std::string> &classNames() const
    {
        return classNames_;
    }

  private:
    DecepticonOptions opts_;
    std::unique_ptr<fingerprint::FingerprintCnn> cnn_;
    std::vector<std::string> classNames_;
    std::vector<zoo::VocabularyProfile> classProfiles_;
    std::vector<zoo::QueryProbe> probes_;
    /** Degradation tier 2: template matcher over the same images. */
    fingerprint::NearestNeighborClassifier knn_{3};
    /** Degradation tier 3: one sequence predictor per lineage. */
    std::vector<fingerprint::KernelSequencePredictor> seqPredictors_;
};

/**
 * Convenience black-box query hook for a victim whose vocabulary
 * profile is known to the simulation (not to the attacker).
 */
std::function<std::vector<bool>()>
makeVictimQueryHook(const zoo::VocabularyProfile &victim_profile);

} // namespace decepticon::core

#endif // DECEPTICON_CORE_DECEPTICON_HH
