/**
 * @file
 * The Decepticon pipeline (paper Fig. 1): level-1 pre-trained model
 * identification from a victim's kernel execution trace, backed by
 * the CNN fingerprint extractor and, when architectural hints are
 * ambiguous, the input-dependent model variant detector driven by
 * query outputs. The identified pre-trained model unlocks the level-2
 * gray/white-box attacks (selective weight extraction, cloning,
 * adversarial inputs) implemented in the extraction and attack
 * libraries.
 */

#ifndef DECEPTICON_CORE_DECEPTICON_HH
#define DECEPTICON_CORE_DECEPTICON_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/channel.hh"
#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "fingerprint/index/lsh.hh"
#include "fingerprint/knn.hh"
#include "fingerprint/seq_predictor.hh"
#include "gpusim/emission.hh"
#include "gpusim/kernel.hh"
#include "sidechan/classifier.hh"
#include "sidechan/fusion.hh"
#include "zoo/vocab.hh"
#include "zoo/zoo.hh"

namespace decepticon::core {

/** Pipeline configuration. */
struct DecepticonOptions
{
    fingerprint::DatasetOptions datasetOptions;
    fingerprint::CnnTrainOptions cnnOptions;
    /** CNN candidates forwarded to the variant detector. */
    std::size_t topK = 3;
    /**
     * Candidates whose probability is within this factor of the top
     * candidate count as ambiguous and trigger query probing.
     */
    double ambiguityRatio = 0.5;
    std::uint64_t seed = 1;
    /** Synthesis knobs for the side-channel emitters the attacker
     *  profiles alongside the kernel stream. */
    gpusim::EmissionOptions emissionOptions;
    /** Training knobs for the per-channel lineage classifiers. */
    sidechan::ChannelClassifierOptions channelOptions;
    /**
     * Train the power/thermal/profiler classifiers and fusion priors
     * during trainExtractor. Off leaves identifyFused with the
     * timestamp channel only (legacy behaviour, lower training cost).
     */
    bool trainChannelClassifiers = true;
    /**
     * Zoo size at which level-1 switches from the exhaustive CNN
     * classifier to the sublinear fingerprint index (DESIGN.md §15):
     * pools with at least this many pre-trained lineages train the
     * embedding/LSH index instead of the CNN stack. 0 disables the
     * indexed path entirely (always exhaustive).
     */
    std::size_t indexZooThreshold = 256;
    /** Geometry/seeding of the fingerprint index (indexed path). */
    fingerprint::IndexOptions indexOptions;
};

/**
 * Knobs for the unreliable-channel identification path: how confident
 * the CNN must be on the repaired consensus trace, and how unanimous
 * the per-capture quorum must be, before the degradation chain
 * (kNN templates, then sequence-predictor LER matching) takes over.
 */
struct ResilientIdentifyOptions
{
    /** Minimum CNN top-1 probability on the repaired trace. */
    double cnnConfidenceThreshold = 0.45;
    /** Minimum fraction of quorum votes behind the winning lineage. */
    double quorumThreshold = 0.5;
    /** Minimum calibrated fusion confidence to adopt the fused label
     *  ahead of the timestamp-only fallback chain. */
    double fusionMinConfidence = 0.35;
    /**
     * Sequence-predictor fallback rejection: when even the best
     * lineage predictor decodes the consensus trace with a layer
     * error rate at or above this, the trace carries no usable
     * sequence structure and the fallback abstains instead of
     * emitting its argmin as a silent guess.
     */
    double seqLerRejectThreshold = 0.9;
    /** Series captures shorter than this carry too little signal to
     *  vote (power/thermal samples; profiler vectors are exempt). */
    std::size_t minSeriesSamples = 8;
};

/**
 * One victim observation across every side channel the attacker
 * managed to tap. Any subset of the four channels may be empty —
 * identifyFused degrades to whatever is present.
 */
struct MultiChannelCapture
{
    /** Kernel-timestamp captures (the classic Decepticon channel). */
    std::vector<gpusim::KernelTrace> timestampCaptures;
    /** Power-rail sample series, one per capture attempt. */
    std::vector<std::vector<double>> powerCaptures;
    /** Die-temperature sample series, one per capture attempt. */
    std::vector<std::vector<double>> thermalCaptures;
    /** Aggregate profiler counter vectors, one per capture attempt. */
    std::vector<std::vector<double>> profilerCaptures;
};

/** Level-1 output. */
struct IdentificationResult
{
    std::string pretrainedName;
    double topProbability = 0.0;
    std::vector<std::string> candidates; ///< CNN top-k, descending
    bool usedQueryProbes = false;
    // --- identifyResilient() accounting (defaults for identify()) ---
    /** Noisy captures consumed (1 for the single-trace path). */
    std::size_t capturesUsed = 1;
    /** Fraction of CNN quorum votes behind the chosen lineage. */
    double quorumAgreement = 1.0;
    bool usedKnnFallback = false; ///< CNN confidence/quorum failed
    bool usedSeqFallback = false; ///< kNN quorum failed too
    // --- identifyFused() accounting ---
    /** The label came from (or was checked against) channel fusion. */
    bool usedChannelFusion = false;
    /**
     * Every channel was dark or every stage abstained: pretrainedName
     * is empty and no guess was made. Never set alongside a name.
     */
    bool insufficientEvidence = false;
    /** Calibrated fusion confidence (0 when fusion never ran). */
    double fusedConfidence = 0.0;
    /** Channels that delivered usable evidence this identification. */
    std::size_t channelsAvailable = 1;
    /** Names of those channels ("timestamp", "power", ...). */
    std::vector<std::string> channelsUsed;
};

/**
 * Level-1 attacker state: a CNN trained over the candidate pool's
 * fingerprints plus the probe-based variant detector.
 */
class Decepticon
{
  public:
    explicit Decepticon(const DecepticonOptions &opts);

    /**
     * Train the pre-trained model extractor over the candidate pool
     * (the attacker profiles every candidate on his own GPU).
     * Returns held-out (80/20) classification accuracy.
     *
     * Pools with indexZooThreshold or more pre-trained lineages train
     * the sublinear fingerprint index instead of the CNN stack; every
     * identify entry point then routes through the indexed path. The
     * decision tail (top-k, ambiguity handling, query probing) is
     * shared between the two paths bit for bit.
     */
    double trainExtractor(const zoo::ModelZoo &candidate_pool);

    /**
     * Identify the victim's pre-trained model from an observed trace.
     *
     * @param victim_trace the captured kernel execution time series
     * @param query_victim optional black-box query access: returns
     *        the victim's correctness vector over standardProbeSet().
     *        Used only when the CNN's top candidates are ambiguous.
     */
    IdentificationResult identify(
        const gpusim::KernelTrace &victim_trace,
        const std::function<std::vector<bool>()> &query_victim = {}) ;

    /**
     * Identify many victims in one batch: rasterization and the CNN
     * forward passes fan out across the sched pool, the per-victim
     * decision tail (ambiguity handling, query probing) runs serially
     * in queue order. results[i] is bit-identical to a serial
     * identify(*traces[i], query_hooks[i]) call at any lane count.
     * query_hooks is either empty (no query access for any victim) or
     * one hook per trace; individual hooks may be null.
     */
    std::vector<IdentificationResult> identifyBatch(
        const std::vector<const gpusim::KernelTrace *> &traces,
        const std::vector<std::function<std::vector<bool>()>>
            &query_hooks = {});

    /**
     * Identify from R noisy captures of the same inference (dropped /
     * duplicated / truncated records). The captures are repaired into
     * one consensus trace; the CNN classifies the consensus and every
     * capture (a quorum vote). When the CNN is unconfident or the
     * quorum splits, identification degrades gracefully: first to the
     * kNN template classifier, then to per-lineage kernel-sequence
     * predictors (argmin layer error rate) — each strictly weaker but
     * harder to starve than the last.
     */
    IdentificationResult identifyResilient(
        const std::vector<gpusim::KernelTrace> &captures,
        const ResilientIdentifyOptions &ropts = {},
        const std::function<std::vector<bool>()> &query_victim = {});

    /**
     * Identify from whatever channel subset survived the victim's
     * defenses. The decision graph is availability-aware:
     *
     *  1. zero usable channels -> explicit insufficient-evidence
     *     verdict (never a silent guess);
     *  2. healthy timestamp channel (confident CNN + quorum) -> the
     *     legacy path, bit-identical to identifyResilient;
     *  3. otherwise fuse every usable channel's posterior through the
     *     confidence-weighted fusion engine and adopt the fused label
     *     when its calibrated confidence clears the bar;
     *  4. otherwise the timestamp fallback chain (kNN quorum, then
     *     sequence predictors with an LER abstention threshold);
     *  5. otherwise adopt the best-effort fused label at its honest
     *     low confidence — or report insufficient evidence when even
     *     fusion had nothing.
     */
    IdentificationResult identifyFused(
        const MultiChannelCapture &capture,
        const ResilientIdentifyOptions &ropts = {},
        const std::function<std::vector<bool>()> &query_victim = {});

    /** The trained CNN (valid after trainExtractor on the exhaustive
     *  path; never trained on the indexed path). */
    fingerprint::FingerprintCnn &cnn() { return *cnn_; }

    /** The fingerprint index, or nullptr on the exhaustive path. */
    const fingerprint::FingerprintIndex *index() const
    {
        return index_.get();
    }

    /** The fusion engine, or nullptr when channel classifiers were
     *  not trained. Exposes the learned reliability priors. */
    const sidechan::FusionEngine *fusionEngine() const
    {
        return fusion_.get();
    }

    /** Lineage names in label order. */
    const std::vector<std::string> &classNames() const
    {
        return classNames_;
    }

  private:
    /**
     * The decision tail shared by identify() and identifyBatch():
     * top-k + ambiguity handling over an already-computed probability
     * vector, query-probe disambiguation, confidence gauges.
     */
    IdentificationResult resolveFromProbabilities(
        const std::vector<double> &probs,
        const std::function<std::vector<bool>()> &query_victim);

    /** trainExtractor body for pools at/above indexZooThreshold. */
    double trainIndexed(const zoo::ModelZoo &candidate_pool);

    /** identifyFused when the index owns level-1 (timestamp channel
     *  only — indexed mode trains no side-channel classifiers). */
    IdentificationResult identifyFusedIndexed(
        const MultiChannelCapture &capture,
        const ResilientIdentifyOptions &ropts,
        const std::function<std::vector<bool>()> &query_victim);

    /** Surface one lookup's shortlist/probe accounting via obs. */
    static void recordIndexStats(
        const fingerprint::IndexLookupStats &stats);

    DecepticonOptions opts_;
    std::unique_ptr<fingerprint::FingerprintCnn> cnn_;
    /** Sublinear level-1 (valid after trainExtractor on large pools). */
    std::unique_ptr<fingerprint::FingerprintIndex> index_;
    std::vector<std::string> classNames_;
    std::vector<zoo::VocabularyProfile> classProfiles_;
    std::vector<zoo::QueryProbe> probes_;
    /** Degradation tier 2: template matcher over the same images. */
    fingerprint::NearestNeighborClassifier knn_{3};
    /** Degradation tier 3: one sequence predictor per lineage. */
    std::vector<fingerprint::KernelSequencePredictor> seqPredictors_;
    /** Per-channel lineage classifiers, indexed by fault::Channel
     *  (Timestamp slot unused — the CNN owns that channel). */
    std::array<std::unique_ptr<sidechan::ChannelClassifier>,
               fault::kNumChannels>
        channelClassifiers_;
    /** Confidence-weighted late fusion (valid after trainExtractor
     *  when trainChannelClassifiers is on). */
    std::unique_ptr<sidechan::FusionEngine> fusion_;
};

/**
 * Convenience black-box query hook for a victim whose vocabulary
 * profile is known to the simulation (not to the attacker).
 */
std::function<std::vector<bool>()>
makeVictimQueryHook(const zoo::VocabularyProfile &victim_profile);

} // namespace decepticon::core

#endif // DECEPTICON_CORE_DECEPTICON_HH
