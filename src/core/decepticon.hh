/**
 * @file
 * The Decepticon pipeline (paper Fig. 1): level-1 pre-trained model
 * identification from a victim's kernel execution trace, backed by
 * the CNN fingerprint extractor and, when architectural hints are
 * ambiguous, the input-dependent model variant detector driven by
 * query outputs. The identified pre-trained model unlocks the level-2
 * gray/white-box attacks (selective weight extraction, cloning,
 * adversarial inputs) implemented in the extraction and attack
 * libraries.
 */

#ifndef DECEPTICON_CORE_DECEPTICON_HH
#define DECEPTICON_CORE_DECEPTICON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/kernel.hh"
#include "zoo/vocab.hh"
#include "zoo/zoo.hh"

namespace decepticon::core {

/** Pipeline configuration. */
struct DecepticonOptions
{
    fingerprint::DatasetOptions datasetOptions;
    fingerprint::CnnTrainOptions cnnOptions;
    /** CNN candidates forwarded to the variant detector. */
    std::size_t topK = 3;
    /**
     * Candidates whose probability is within this factor of the top
     * candidate count as ambiguous and trigger query probing.
     */
    double ambiguityRatio = 0.5;
    std::uint64_t seed = 1;
};

/** Level-1 output. */
struct IdentificationResult
{
    std::string pretrainedName;
    double topProbability = 0.0;
    std::vector<std::string> candidates; ///< CNN top-k, descending
    bool usedQueryProbes = false;
};

/**
 * Level-1 attacker state: a CNN trained over the candidate pool's
 * fingerprints plus the probe-based variant detector.
 */
class Decepticon
{
  public:
    explicit Decepticon(const DecepticonOptions &opts);

    /**
     * Train the pre-trained model extractor over the candidate pool
     * (the attacker profiles every candidate on his own GPU).
     * Returns held-out (80/20) classification accuracy.
     */
    double trainExtractor(const zoo::ModelZoo &candidate_pool);

    /**
     * Identify the victim's pre-trained model from an observed trace.
     *
     * @param victim_trace the captured kernel execution time series
     * @param query_victim optional black-box query access: returns
     *        the victim's correctness vector over standardProbeSet().
     *        Used only when the CNN's top candidates are ambiguous.
     */
    IdentificationResult identify(
        const gpusim::KernelTrace &victim_trace,
        const std::function<std::vector<bool>()> &query_victim = {}) ;

    /** The trained CNN (valid after trainExtractor). */
    fingerprint::FingerprintCnn &cnn() { return *cnn_; }

    /** Lineage names in label order. */
    const std::vector<std::string> &classNames() const
    {
        return classNames_;
    }

  private:
    DecepticonOptions opts_;
    std::unique_ptr<fingerprint::FingerprintCnn> cnn_;
    std::vector<std::string> classNames_;
    std::vector<zoo::VocabularyProfile> classProfiles_;
    std::vector<zoo::QueryProbe> probes_;
};

/**
 * Convenience black-box query hook for a victim whose vocabulary
 * profile is known to the simulation (not to the attacker).
 */
std::function<std::vector<bool>()>
makeVictimQueryHook(const zoo::VocabularyProfile &victim_profile);

} // namespace decepticon::core

#endif // DECEPTICON_CORE_DECEPTICON_HH
