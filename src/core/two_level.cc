#include "core/two_level.hh"

#include <cassert>
#include <sstream>

#include "obs/obs.hh"
#include "transformer/trainer.hh"

namespace decepticon::core {

TwoLevelAttack::TwoLevelAttack(const TwoLevelOptions &opts) : opts_(opts)
{
}

TwoLevelAttack::~TwoLevelAttack() = default;

void
TwoLevelAttack::addCandidate(
    const zoo::ModelIdentity &identity,
    std::shared_ptr<transformer::TransformerClassifier> weights)
{
    assert(identity.isPretrained &&
           "candidates are pre-trained releases");
    assert(weights != nullptr);
    candidates_.add(identity);
    weightsByName_[identity.name] = std::move(weights);
    prepared_ = false;
}

double
TwoLevelAttack::prepare()
{
    assert(!candidates_.models().empty());
    pipeline_ = std::make_unique<Decepticon>(opts_.level1);
    const double accuracy = pipeline_->trainExtractor(candidates_);
    prepared_ = true;
    return accuracy;
}

AttackReport
TwoLevelAttack::execute(
    transformer::TransformerClassifier &victim,
    const gpusim::KernelTrace &victim_trace,
    const std::function<std::vector<bool>()> &query_victim,
    const transformer::Dataset &eval_set,
    const std::vector<transformer::Example> &query_set,
    const std::vector<transformer::Example> &adversarial_seeds)
{
    assert(prepared_ && "prepare() must run before execute()");
    AttackReport report;

    auto attack_span = obs::span("attack.execute", "attack");
    auto phase_start = obs::clock().nowMicros();
    // One watchdog tick per phase boundary: the baseline tick here,
    // then one after each end_phase, so every phase's counter deltas
    // are judged against the SLO bands exactly once.
    obs::Watchdog watchdog;
    if (obs::metricsEnabled())
        watchdog.tick(obs::metrics());
    const auto end_phase = [&](const char *name) {
        const std::uint64_t now = obs::clock().nowMicros();
        report.run.recordPhase(name, now - phase_start);
        phase_start = now;
        if (obs::metricsEnabled()) {
            obs::metrics().observeLatency(
                std::string("phase.") + name + ".micros",
                static_cast<double>(
                    report.run.phases.back().micros));
            watchdog.tick(obs::metrics());
        }
    };

    // ------------------------------------------------------------------
    // Level 1: name the pre-trained parent.
    // ------------------------------------------------------------------
    {
        auto sp = obs::span("attack.phase.identify", "attack");
        report.identification =
            pipeline_->identify(victim_trace, query_victim);
    }
    end_phase("identify");
    report.run.recordIdentification(report.identification);
    const auto it = weightsByName_.find(
        report.identification.pretrainedName);
    if (it == weightsByName_.end()) {
        report.run.watchdog = watchdog.report();
        if (obs::metricsEnabled())
            report.run.toMetrics(obs::metrics());
        return report; // identified something outside the pool
    }

    // The attacker now "downloads" the identified pre-trained model.
    const transformer::TransformerClassifier &pretrained = *it->second;

    // ------------------------------------------------------------------
    // Level 2: clone via selective weight extraction.
    // ------------------------------------------------------------------
    auto clone_result = extraction::ModelCloner::extract(
        victim, pretrained, query_set, opts_.cloner);
    report.probeStats = clone_result.probeStats;
    report.extractionStats = clone_result.extractionStats;
    report.layersExtracted = clone_result.layersExtracted;
    report.clone = std::move(clone_result.clone);
    end_phase("extract");
    report.run.recordExtraction(report.probeStats,
                                report.extractionStats,
                                report.layersExtracted,
                                clone_result.victimQueries);

    // ------------------------------------------------------------------
    // Clone quality.
    // ------------------------------------------------------------------
    const auto victim_eval =
        transformer::Trainer::evaluate(victim, eval_set);
    const auto clone_eval =
        transformer::Trainer::evaluate(*report.clone, eval_set);
    std::vector<int> victim_preds;
    victim_preds.reserve(eval_set.size());
    for (const auto &ex : eval_set.examples)
        victim_preds.push_back(victim.predict(ex.tokens));
    report.victimAccuracy = victim_eval.accuracy;
    report.cloneAccuracy = clone_eval.accuracy;
    report.cloneVictimAgreement = transformer::Trainer::agreement(
        clone_eval.predictions, victim_preds);
    end_phase("evaluate");

    // ------------------------------------------------------------------
    // Adversarial follow-up with the clone.
    // ------------------------------------------------------------------
    {
        auto sp = obs::span("attack.phase.adversarial", "attack");
        report.adversarial = attack::evaluateTransfer(
            victim, *report.clone, adversarial_seeds, opts_.adversarial);
    }
    end_phase("adversarial");

    report.complete = true;
    report.run.victimAccuracy = report.victimAccuracy;
    report.run.cloneAccuracy = report.cloneAccuracy;
    report.run.cloneVictimAgreement = report.cloneVictimAgreement;
    report.run.adversarialSuccess = report.adversarial.successRate();
    report.run.complete = true;
    report.run.watchdog = watchdog.report();
    attack_span.arg("parent", report.identification.pretrainedName);
    attack_span.arg("agreement", report.cloneVictimAgreement);
    if (obs::metricsEnabled())
        report.run.toMetrics(obs::metrics());
    return report;
}

std::string
formatReport(const AttackReport &report)
{
    std::ostringstream oss;
    oss << "identified parent: " << report.identification.pretrainedName
        << (report.identification.usedQueryProbes
                ? " (query probes used)"
                : "")
        << "\n";
    if (!report.complete) {
        oss << "attack incomplete: identified model not in the "
               "candidate pool\n";
        return oss.str();
    }
    oss << "layers extracted: " << report.layersExtracted
        << "; bits read: " << report.probeStats.bitsRead
        << " (hammer rounds: " << report.probeStats.hammerRounds
        << ")\n"
        << "weights skipped: "
        << report.extractionStats.weightsSkippedFraction()
        << "; bits excluded: "
        << report.extractionStats.bitsExcludedFraction() << "\n"
        << "victim accuracy " << report.victimAccuracy
        << " | clone accuracy " << report.cloneAccuracy
        << " | agreement " << report.cloneVictimAgreement << "\n"
        << "adversarial success: " << report.adversarial.successRate()
        << " (" << report.adversarial.fooled << "/"
        << report.adversarial.eligible << ")\n";
    return oss.str();
}

} // namespace decepticon::core
