#include "gpusim/emission.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/obs.hh"
#include "util/rng.hh"

namespace decepticon::gpusim {

namespace {

// Stream tags separating the three emitters' randomness: emitting a
// power trace must never perturb the thermal or profiler streams of
// the same run seed.
constexpr std::uint64_t kPowerStreamTag = 0x70776572ULL;   // "pwer"
constexpr std::uint64_t kThermalStreamTag = 0x7468726dULL; // "thrm"
constexpr std::uint64_t kCounterStreamTag = 0x636e7472ULL; // "cntr"

/**
 * Stable per-kernel-implementation draw modulation in [0.85, 1.15].
 * Keyed by kernel id only, so it is a property of the victim's
 * software release (like the timing personality), not of the run.
 */
double
kernelPowerPersonality(int kernel_id)
{
    util::SplitMix64 sm(0x9a7e5eedULL +
                        static_cast<std::uint64_t>(kernel_id));
    const double u = static_cast<double>(sm.next() >> 11) *
                     (1.0 / 9007199254740992.0);
    return 0.85 + 0.3 * u;
}

/** Effective sample period after capping the series length. */
double
effectivePeriod(const KernelTrace &trace, const EmissionOptions &opts)
{
    const double total = trace.totalTime();
    double period = std::max(opts.samplePeriodUs, 1e-3);
    if (total > period * static_cast<double>(opts.maxSamples))
        period = total / static_cast<double>(opts.maxSamples);
    return period;
}

/**
 * Noiseless board draw at time t. Records are time-ordered by start;
 * `cursor` persists across increasing sample times so the scan stays
 * linear in records + samples.
 */
double
rawPowerAt(const KernelTrace &trace, double t, std::size_t &cursor)
{
    const auto &recs = trace.records;
    while (cursor < recs.size() && recs[cursor].tEnd <= t)
        ++cursor;
    double draw = 0.0;
    for (std::size_t j = cursor; j < recs.size(); ++j) {
        if (recs[j].tStart > t)
            break;
        if (recs[j].tEnd > t)
            draw += kernelClassPowerWatts(recs[j].klass) *
                    kernelPowerPersonality(recs[j].kernelId);
    }
    return draw;
}

} // anonymous namespace

double
kernelClassPowerWatts(KernelClass klass)
{
    switch (klass) {
    case KernelClass::Gemm:
        return 220.0;
    case KernelClass::AttnGemm:
        return 180.0;
    case KernelClass::Softmax:
        return 90.0;
    case KernelClass::LayerNorm:
        return 70.0;
    case KernelClass::Elementwise:
        return 60.0;
    case KernelClass::Reduction:
        return 55.0;
    case KernelClass::Memory:
        return 40.0;
    case KernelClass::Fusion:
        return 160.0;
    }
    return 50.0;
}

std::vector<double>
emitPowerTrace(const KernelTrace &trace, const EmissionOptions &opts,
               std::uint64_t run_seed)
{
    auto sp = obs::span("gpusim.emit_power", "gpusim");
    std::vector<double> out;
    if (trace.records.empty())
        return out;
    const double period = effectivePeriod(trace, opts);
    const std::size_t n = std::min(
        opts.maxSamples,
        static_cast<std::size_t>(trace.totalTime() / period) + 1);
    out.reserve(n);
    const util::Rng noise_root(run_seed ^ kPowerStreamTag);
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) * period;
        double watts =
            opts.idlePowerWatts + rawPowerAt(trace, t, cursor);
        if (opts.sensorNoiseWatts > 0.0) {
            util::Rng r = noise_root.split(i);
            watts += r.gaussian(0.0, opts.sensorNoiseWatts);
        }
        out.push_back(std::max(0.0, watts));
    }
    obs::count("gpusim.power_samples", out.size());
    return out;
}

std::vector<double>
emitThermalTrace(const KernelTrace &trace, const EmissionOptions &opts,
                 std::uint64_t run_seed)
{
    auto sp = obs::span("gpusim.emit_thermal", "gpusim");
    std::vector<double> out;
    if (trace.records.empty())
        return out;
    const double period = effectivePeriod(trace, opts);
    const std::size_t n = std::min(
        opts.maxSamples,
        static_cast<std::size_t>(trace.totalTime() / period) + 1);
    out.reserve(n);
    // First-order step response: alpha is the per-sample pole of the
    // RC system at this period.
    const double alpha =
        1.0 - std::exp(-period / std::max(opts.thermalTauUs, 1e-6));
    const util::Rng noise_root(run_seed ^ kThermalStreamTag);
    double die = opts.thermalAmbientC;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) * period;
        const double watts =
            opts.idlePowerWatts + rawPowerAt(trace, t, cursor);
        const double target =
            opts.thermalAmbientC + opts.thermalRiseCPerWatt * watts;
        die += alpha * (target - die);
        double sample = die;
        if (opts.thermalSensorNoiseC > 0.0) {
            util::Rng r = noise_root.split(i);
            sample += r.gaussian(0.0, opts.thermalSensorNoiseC);
        }
        out.push_back(sample);
    }
    obs::count("gpusim.thermal_samples", out.size());
    return out;
}

std::string
profilerCounterName(std::size_t index)
{
    static const char *const kClassNames[kProfilerClassCount] = {
        "gemm",       "attn_gemm", "softmax", "layernorm",
        "elementwise", "reduction", "memory",  "fusion"};
    if (index < kCtrClassDurationBase)
        return std::string("count.") + kClassNames[index];
    if (index < kCtrTotalRecords)
        return std::string("duration_us.") +
               kClassNames[index - kCtrClassDurationBase];
    switch (index) {
    case kCtrTotalRecords:
        return "total_records";
    case kCtrUniqueKernels:
        return "unique_kernels";
    case kCtrTotalTimeUs:
        return "total_time_us";
    case kCtrPeakDurationUs:
        return "peak_duration_us";
    case kCtrMeanDurationUs:
        return "mean_duration_us";
    case kCtrEncoderRecords:
        return "encoder_records";
    case kCtrEncoderTimeFraction:
        return "encoder_time_fraction";
    default:
        return "unknown";
    }
}

std::vector<double>
emitProfilerCounters(const KernelTrace &trace,
                     const EmissionOptions &opts, std::uint64_t run_seed)
{
    auto sp = obs::span("gpusim.emit_counters", "gpusim");
    std::vector<double> ctr(kProfilerCounterCount, 0.0);
    if (trace.records.empty())
        return ctr;

    double encoder_time = 0.0;
    double total_dur = 0.0;
    for (const auto &r : trace.records) {
        const auto k = static_cast<std::size_t>(r.klass);
        assert(k < kProfilerClassCount);
        ctr[kCtrClassCountBase + k] += 1.0;
        ctr[kCtrClassDurationBase + k] += r.duration();
        total_dur += r.duration();
        if (r.phase == Phase::Encoder) {
            ctr[kCtrEncoderRecords] += 1.0;
            encoder_time += r.duration();
        }
    }
    ctr[kCtrTotalRecords] = static_cast<double>(trace.records.size());
    ctr[kCtrUniqueKernels] =
        static_cast<double>(trace.uniqueKernelCount());
    ctr[kCtrTotalTimeUs] = trace.totalTime();
    ctr[kCtrPeakDurationUs] = trace.peakDuration();
    ctr[kCtrMeanDurationUs] =
        total_dur / static_cast<double>(trace.records.size());
    ctr[kCtrEncoderTimeFraction] =
        total_dur > 0.0 ? encoder_time / total_dur : 0.0;

    // Duration-valued counters carry the profiler's measurement
    // jitter and coarse quantization; counts are exact (a launch is a
    // launch). Per-counter streams are split so the vector is stable
    // under any evaluation order.
    const util::Rng jitter_root(run_seed ^ kCounterStreamTag);
    const auto jittered = [&](std::size_t index) {
        double v = ctr[index];
        if (opts.counterRelativeJitter > 0.0) {
            util::Rng r = jitter_root.split(index);
            v *= 1.0 + r.gaussian(0.0, opts.counterRelativeJitter);
        }
        if (opts.counterQuantumUs > 0.0)
            v = std::round(v / opts.counterQuantumUs) *
                opts.counterQuantumUs;
        return std::max(0.0, v);
    };
    for (std::size_t k = 0; k < kProfilerClassCount; ++k)
        ctr[kCtrClassDurationBase + k] =
            jittered(kCtrClassDurationBase + k);
    ctr[kCtrTotalTimeUs] = jittered(kCtrTotalTimeUs);
    ctr[kCtrPeakDurationUs] = jittered(kCtrPeakDurationUs);
    ctr[kCtrMeanDurationUs] = jittered(kCtrMeanDurationUs);
    obs::count("gpusim.profiler_sessions");
    return ctr;
}

} // namespace decepticon::gpusim
