/**
 * @file
 * Secondary side-channel emitters: every inference that produces a
 * kernel trace also leaks through physical and software channels the
 * attacker can sample independently of kernel timestamps. Energon
 * shows power/thermal traces alone recover transformer structure;
 * InferNet shows coarse aggregate profiler counters do the same.
 * Each emitter here derives its signal purely from the kernel stream
 * plus a run seed, so emissions are replayable bit-for-bit and
 * consistent with the timestamp channel they shadow:
 *
 *  - power: the instantaneous board draw sampled at a fixed period —
 *    each kernel class pulls a characteristic wattage, modulated by a
 *    stable per-kernel-implementation factor, plus sensor noise;
 *  - thermal: a leaky-integrator (RC) envelope of the noiseless power
 *    signal — slower, lossier, but much harder for a victim to mask;
 *  - profiler counters: the aggregate per-class launch counts and
 *    duration totals a coarse CUPTI-style session reports even when
 *    per-kernel records are withheld.
 */

#ifndef DECEPTICON_GPUSIM_EMISSION_HH
#define DECEPTICON_GPUSIM_EMISSION_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/kernel.hh"

namespace decepticon::gpusim {

/** Physical constants of the simulated board and its sensors. */
struct EmissionOptions
{
    /** Power/thermal sensor sampling period (microseconds). */
    double samplePeriodUs = 25.0;
    /** Cap on emitted series length; the period stretches to fit. */
    std::size_t maxSamples = 2048;
    /** Board draw with no kernel resident (watts). */
    double idlePowerWatts = 45.0;
    /** Gaussian sensor noise on each power sample (watts, sigma). */
    double sensorNoiseWatts = 1.0;
    /** Ambient (and initial die) temperature (Celsius). */
    double thermalAmbientC = 35.0;
    /** Steady-state die rise per watt of sustained draw (C/W). */
    double thermalRiseCPerWatt = 0.25;
    /** RC time constant of the die/heatsink system (microseconds). */
    double thermalTauUs = 2000.0;
    /** Gaussian sensor noise on each thermal sample (C, sigma). */
    double thermalSensorNoiseC = 0.15;
    /** Relative jitter on duration-valued profiler counters. */
    double counterRelativeJitter = 0.01;
    /** Profiler duration quantum (microseconds): totals are rounded. */
    double counterQuantumUs = 5.0;
};

/** Characteristic draw of one kernel class above idle (watts). */
double kernelClassPowerWatts(KernelClass klass);

/**
 * Sample the board power during one inference. Sample i is the draw
 * at time i * period where period = max(samplePeriodUs,
 * totalTime / maxSamples). Pure function of (trace, opts, run_seed);
 * per-sample sensor noise comes from an Rng::split stream keyed by
 * the sample index, so the series is order-independent.
 */
std::vector<double> emitPowerTrace(const KernelTrace &trace,
                                   const EmissionOptions &opts,
                                   std::uint64_t run_seed);

/**
 * Sample the die temperature during the same inference: a first-order
 * RC response to the noiseless power signal, starting from ambient,
 * with independent per-sample sensor noise. Same length/period rules
 * as emitPowerTrace.
 */
std::vector<double> emitThermalTrace(const KernelTrace &trace,
                                     const EmissionOptions &opts,
                                     std::uint64_t run_seed);

// Layout of the profiler counter vector (InferNet-style aggregates).
// Per-class launch counts, then per-class duration totals, then the
// scalar session aggregates.
inline constexpr std::size_t kProfilerClassCount = 8;
inline constexpr std::size_t kCtrClassCountBase = 0;
inline constexpr std::size_t kCtrClassDurationBase = kProfilerClassCount;
inline constexpr std::size_t kCtrTotalRecords = 2 * kProfilerClassCount;
inline constexpr std::size_t kCtrUniqueKernels = kCtrTotalRecords + 1;
inline constexpr std::size_t kCtrTotalTimeUs = kCtrTotalRecords + 2;
inline constexpr std::size_t kCtrPeakDurationUs = kCtrTotalRecords + 3;
inline constexpr std::size_t kCtrMeanDurationUs = kCtrTotalRecords + 4;
inline constexpr std::size_t kCtrEncoderRecords = kCtrTotalRecords + 5;
inline constexpr std::size_t kCtrEncoderTimeFraction =
    kCtrTotalRecords + 6;
inline constexpr std::size_t kProfilerCounterCount =
    kCtrTotalRecords + 7;

/** Human-readable name of one profiler counter slot. */
std::string profilerCounterName(std::size_t index);

/**
 * One aggregate profiler session over the inference: a fixed-length
 * vector of kProfilerCounterCount counters. Launch counts are exact;
 * duration-valued counters carry relative jitter (seeded per counter
 * via Rng::split) and are quantized to counterQuantumUs — the
 * coarseness that makes this channel cheap for the attacker and hard
 * for the victim to starve.
 */
std::vector<double> emitProfilerCounters(const KernelTrace &trace,
                                         const EmissionOptions &opts,
                                         std::uint64_t run_seed);

} // namespace decepticon::gpusim

#endif // DECEPTICON_GPUSIM_EMISSION_HH
