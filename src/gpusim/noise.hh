/**
 * @file
 * Measurement-noise injection for kernel traces, matching the paper's
 * robustness evaluation (Fig. 14): perturb the execution times of a
 * chosen number of kernels by a chosen magnitude.
 */

#ifndef DECEPTICON_GPUSIM_NOISE_HH
#define DECEPTICON_GPUSIM_NOISE_HH

#include <cstdint>

#include "gpusim/kernel.hh"

namespace decepticon::gpusim {

/**
 * Return a copy of the trace where num_kernels randomly selected
 * records have their duration shifted by +/- magnitude_us (random
 * sign, floor at 0.5 us). Subsequent kernel timestamps shift
 * accordingly so the trace stays physically consistent.
 */
KernelTrace applyTimingNoise(const KernelTrace &trace,
                             std::size_t num_kernels, double magnitude_us,
                             std::uint64_t seed);

} // namespace decepticon::gpusim

#endif // DECEPTICON_GPUSIM_NOISE_HH
