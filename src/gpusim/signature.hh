/**
 * @file
 * Software signature of a model release: the framework, developer, and
 * optimization choices that the paper identifies as the source of a
 * model's unique execution fingerprint (Sec. 4.2, Fig. 9). Two models
 * with identical architecture but different signatures launch very
 * different kernel schedules; a fine-tuned model inherits its
 * pre-trained model's signature.
 */

#ifndef DECEPTICON_GPUSIM_SIGNATURE_HH
#define DECEPTICON_GPUSIM_SIGNATURE_HH

#include <cstdint>
#include <string>

namespace decepticon::gpusim {

/** ML framework of a model release. */
enum class Framework
{
    PyTorch,
    TensorFlow,
    Mxnet,
};

/** Publishing organization (kernel-preference profile). */
enum class Developer
{
    HuggingFace,
    Nvidia,
    Google,
    Meta,
    Amazon,
    Community,
};

/** Printable names. */
std::string toString(Framework f);
std::string toString(Developer d);

/**
 * The full software identity of a model release. `kernelDialect`
 * captures residual per-release variation (library versions, build
 * flags) so that two releases from the same org can still differ.
 */
struct SoftwareSignature
{
    Framework framework = Framework::PyTorch;
    Developer developer = Developer::HuggingFace;
    /** NVIDIA-style half-precision tensor-core kernels. */
    bool useTensorCores = false;
    /** TensorFlow XLA: fusion bursts and irregular layout (Fig. 12). */
    bool useXla = false;
    /** 0 = none, 1 = mild, 2 = aggressive kernel fusion. */
    int fusionLevel = 0;
    /** Per-release residual variation (library/build differences). */
    int kernelDialect = 0;

    /** Stable seed derived from every field; drives kernel selection. */
    std::uint64_t seed() const;

    /** Human-readable id, e.g. "pytorch/huggingface/d3". */
    std::string toString() const;

    bool operator==(const SoftwareSignature &) const = default;
};

} // namespace decepticon::gpusim

#endif // DECEPTICON_GPUSIM_SIGNATURE_HH
