#include "gpusim/catalog.hh"

#include "util/rng.hh"

namespace decepticon::gpusim {

namespace {

/** GEMM tile shapes seen in real cuBLAS kernel names. */
const char *const kTileShapes[] = {
    "128x128", "128x64", "64x128", "32x128", "128x32", "64x64", "256x64",
};

const char *const kTransposes[] = {"nn", "tn", "nt", "tt"};

std::string
pick(util::Rng &rng, const char *const *options, std::size_t n)
{
    return options[rng.uniformInt(n)];
}

/** Framework-specific GEMM name prefix: each stack ships its own
 *  BLAS backend, so kernel names never coincide across frameworks. */
const char *
gemmPrefix(Framework f)
{
    switch (f) {
      case Framework::PyTorch:
        return "volta_sgemm_";
      case Framework::TensorFlow:
        return "tf_gemm_backend_";
      case Framework::Mxnet:
        return "mxnet_sgemm_";
    }
    return "sgemm_";
}

/** BLAS GEMM name, e.g. "volta_sgemm_128x64_tn". */
std::string
sgemmName(util::Rng &rng, Framework f)
{
    return std::string(gemmPrefix(f)) + pick(rng, kTileShapes, 7) + "_" +
           pick(rng, kTransposes, 4);
}

/** Tensor-core half-precision GEMM, e.g. Ampere s16816 kernels. */
std::string
tensorCoreGemmName(util::Rng &rng)
{
    return "ampere_fp16_s16816gemm_fp16_" + pick(rng, kTileShapes, 7) +
           "_ldg8_" + pick(rng, kTransposes, 4);
}

} // anonymous namespace

KernelCatalog::KernelCatalog(const SoftwareSignature &sig)
{
    util::Rng rng(sig.seed());

    auto add = [&](std::string name, KernelClass klass) {
        entries_.push_back({std::move(name), klass});
    };

    // --- GEMM population -------------------------------------------------
    // PyTorch releases call a handful of cuBLAS kernels; TensorFlow
    // releases expose many specialized backend variants (Fig. 9).
    const bool tf = sig.framework == Framework::TensorFlow;
    const std::size_t gemm_variants =
        tf ? 12 + rng.uniformInt(8) : 2 + rng.uniformInt(3);
    for (std::size_t i = 0; i < gemm_variants; ++i) {
        if (sig.useTensorCores)
            add(tensorCoreGemmName(rng), KernelClass::Gemm);
        else
            add(sgemmName(rng, sig.framework), KernelClass::Gemm);
    }
    switch (sig.framework) {
      case Framework::PyTorch:
        add("splitKreduce_kernel", KernelClass::Gemm);
        break;
      case Framework::TensorFlow:
        add("tf_split_k_reduce", KernelClass::Gemm);
        break;
      case Framework::Mxnet:
        add("mxnet_split_k", KernelClass::Gemm);
        break;
    }

    // --- Attention-specific kernels --------------------------------------
    if (sig.useTensorCores) {
        add("ampere_fp16_sgemm_fp16_64x64_sliced1x2_nn",
            KernelClass::AttnGemm);
    } else {
        add(std::string(gemmPrefix(sig.framework)) + "32x32_sliced1x4_tn",
            KernelClass::AttnGemm);
    }
    switch (sig.framework) {
      case Framework::PyTorch:
        add("softmax_warp_forward", KernelClass::Softmax);
        break;
      case Framework::TensorFlow:
        add("softmax_fused_warp_kernel", KernelClass::Softmax);
        break;
      case Framework::Mxnet:
        add("mxnet_softmax_fused", KernelClass::Softmax);
        break;
    }

    // --- Normalization / element-wise -----------------------------------
    switch (sig.framework) {
      case Framework::PyTorch:
        add(sig.developer == Developer::Nvidia
                ? "cuApplyLayerNorm"
                : "LayerNormForwardCUDAKernel",
            KernelClass::LayerNorm);
        add("vectorized_elementwise_kernel", KernelClass::Elementwise);
        add("unrolled_elementwise_kernel", KernelClass::Elementwise);
        add("elementwise_kernel_with_index", KernelClass::Elementwise);
        break;
      case Framework::TensorFlow:
        add("AddV2_GPU_DT_FLOAT_DT_FLOAT_kernel", KernelClass::Elementwise);
        add("Mul_GPU_DT_FLOAT_DT_FLOAT_kernel", KernelClass::Elementwise);
        add("Sub_GPU_DT_FLOAT_DT_FLOAT_kernel", KernelClass::Elementwise);
        add("FusedBatchNormV3_GPU", KernelClass::LayerNorm);
        break;
      case Framework::Mxnet:
        add("mxnet_op_broadcast_kernel", KernelClass::Elementwise);
        add("mxnet_layer_norm_fused", KernelClass::LayerNorm);
        break;
    }

    // --- Memory / staging -------------------------------------------------
    switch (sig.framework) {
      case Framework::PyTorch:
        add("indexSelectLargeIndex", KernelClass::Memory);
        add("CatArrayBatchedCopy", KernelClass::Memory);
        break;
      case Framework::TensorFlow:
        add("convert_" + std::to_string(400 + rng.uniformInt(40)),
            KernelClass::Memory);
        add("tf_gather_v2_gpu", KernelClass::Memory);
        break;
      case Framework::Mxnet:
        add("mxnet_take_kernel", KernelClass::Memory);
        add("mxnet_concat_copy", KernelClass::Memory);
        break;
    }

    // --- Reductions: Meta-style releases run many short reduce ops -------
    const std::size_t reduce_variants =
        sig.developer == Developer::Meta ? 5 : 1;
    for (std::size_t i = 0; i < reduce_variants; ++i) {
        add("reduce_1Block_kernel_v" + std::to_string(i),
            KernelClass::Reduction);
    }
    if (sig.developer == Developer::Meta) {
        add("dot_kernel", KernelClass::Reduction);
        add("gemv2T_kernel_val", KernelClass::Reduction);
        add("DeviceScanKernel", KernelClass::Reduction);
    }

    // --- TensorFlow backend sprawl ---------------------------------------
    // The paper measures ~40x more unique kernels for TF releases; add a
    // large population of backend/fusion kernels.
    if (tf) {
        const std::size_t sprawl = 160 + rng.uniformInt(80);
        for (std::size_t i = 0; i < sprawl; ++i) {
            const double roll = rng.uniform();
            if (roll < 0.35) {
                add("fusion_" + std::to_string(i), KernelClass::Fusion);
            } else if (roll < 0.6) {
                add("convert_" + std::to_string(i), KernelClass::Memory);
            } else if (roll < 0.85) {
                add("tf_op_gpu_kernel_" + std::to_string(i),
                    KernelClass::Elementwise);
            } else {
                add("wrapped_reduce_" + std::to_string(i),
                    KernelClass::Reduction);
            }
        }
    } else if (sig.framework == Framework::Mxnet) {
        // MXNet sits between PyTorch and TF: dozens of per-operator
        // kernels (paper Table 2: 2652 executions of 59 kernels).
        const std::size_t sprawl = 25 + rng.uniformInt(15);
        for (std::size_t i = 0; i < sprawl; ++i) {
            add("mxnet_op_kernel_" + std::to_string(i),
                rng.bernoulli(0.7) ? KernelClass::Elementwise
                                   : KernelClass::Reduction);
        }
    }
    if (!tf && (sig.useXla || sig.fusionLevel > 0)) {
        for (std::size_t i = 0; i < 12; ++i)
            add("fusion_" + std::to_string(i), KernelClass::Fusion);
    }

    // --- Dialect salt ------------------------------------------------------
    // Library-version differences surface as a few extra private kernels.
    const std::size_t dialect_extras = 1 + rng.uniformInt(3);
    for (std::size_t i = 0; i < dialect_extras; ++i) {
        add("private_kernel_d" + std::to_string(sig.kernelDialect) + "_" +
                std::to_string(i),
            KernelClass::Elementwise);
    }
}

std::vector<int>
KernelCatalog::entriesOfClass(KernelClass klass) const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].klass == klass)
            out.push_back(static_cast<int>(i));
    }
    return out;
}

} // namespace decepticon::gpusim
