#include "gpusim/trace_generator.hh"

#include <cassert>
#include <cmath>

#include "obs/obs.hh"
#include "sched/sched.hh"
#include "util/rng.hh"

namespace decepticon::gpusim {

namespace {

// Duration-model coefficients, calibrated so a BERT-base-shaped
// inference (hidden 768, seq 128) has ~150 us QKV GEMMs and a ~600 us
// peak FFN GEMM (the paper's Fig. 10 scale), with short kernels in
// the tens of microseconds — the "typical kernel duration" the
// paper's 20 us noise unit refers to.
constexpr double kGemmCoeff = 2.0e-6;        // us per (seq * hidden^2)
constexpr double kAttnCoeff = 2.0e-6;        // us per (seq^2 * hidden)
constexpr double kSoftmaxCoeff = 5.0e-5;     // us per (seq^2 * heads)
constexpr double kElementwiseCoeff = 1.0e-4; // us per (seq * hidden)
constexpr double kMemoryCoeff = 5.0e-5;      // us per (seq * hidden)
constexpr double kTensorCoreSpeedup = 0.45;
constexpr double kLaunchGapUs = 2.0;
// Fixed per-launch overhead baked into a kernel's duration.
constexpr double kGemmBaseUs = 3.0;
constexpr double kShortBaseUs = 2.0;
constexpr double kReduceBaseUs = 1.5;

} // anonymous namespace

TraceGenerator::TraceGenerator(const SoftwareSignature &sig)
    : sig_(sig), catalog_(sig)
{
    util::Rng rng(sig.seed() ^ 0x7ace9e4e7a7e5eedULL);

    const auto gemms = catalog_.entriesOfClass(KernelClass::Gemm);
    const auto attns = catalog_.entriesOfClass(KernelClass::AttnGemm);
    const auto softmaxes = catalog_.entriesOfClass(KernelClass::Softmax);
    const auto norms = catalog_.entriesOfClass(KernelClass::LayerNorm);
    const auto elems = catalog_.entriesOfClass(KernelClass::Elementwise);
    const auto reduces = catalog_.entriesOfClass(KernelClass::Reduction);
    const auto mems = catalog_.entriesOfClass(KernelClass::Memory);
    const auto fusions = catalog_.entriesOfClass(KernelClass::Fusion);
    assert(!gemms.empty() && !attns.empty() && !softmaxes.empty());
    assert(!norms.empty() && !elems.empty() && !mems.empty());

    auto pick = [&](const std::vector<int> &pool) {
        return pool[rng.uniformInt(pool.size())];
    };

    auto add = [&](std::vector<Slot> &dst, int id, double factor) {
        Slot slot;
        slot.kernelId = id;
        slot.klass = catalog_.klass(id);
        slot.sizeFactor = factor;
        slot.personality = std::exp(rng.gaussian(0.0, 0.25));
        dst.push_back(slot);
    };

    const bool tf = sig.framework == Framework::TensorFlow;

    // Developer/framework-dependent decoration applied around core ops.
    auto decorate = [&](std::vector<Slot> &dst) {
        if (tf) {
            // TF wraps ops with converts and small backend kernels.
            const std::size_t extras = 3 + rng.uniformInt(4);
            for (std::size_t i = 0; i < extras; ++i) {
                const double roll = rng.uniform();
                if (roll < 0.4 && !fusions.empty())
                    add(dst, pick(fusions), 0.2);
                else if (roll < 0.7)
                    add(dst, pick(mems), 0.3);
                else
                    add(dst, pick(elems), 0.3);
            }
        }
        if (sig.developer == Developer::Meta && !reduces.empty()) {
            const std::size_t extras = 1 + rng.uniformInt(3);
            for (std::size_t i = 0; i < extras; ++i)
                add(dst, pick(reduces), 1.0);
        }
        if (sig.framework == Framework::Mxnet) {
            // MXNet dispatches several small per-operator kernels
            // around each core op.
            const std::size_t extras = 4 + rng.uniformInt(3);
            for (std::size_t i = 0; i < extras; ++i) {
                add(dst,
                    rng.bernoulli(0.6) ? pick(elems) : pick(reduces),
                    0.3);
            }
        }
    };

    // --- Per-encoder kernel group -----------------------------------------
    // Q/K/V projections (possibly fused into one larger GEMM).
    const bool fused_qkv = sig.fusionLevel >= 1;
    if (fused_qkv) {
        add(groupTemplate_, pick(gemms), 3.0);
    } else {
        for (int i = 0; i < 3; ++i)
            add(groupTemplate_, pick(gemms), 1.0);
    }
    decorate(groupTemplate_);

    // Attention scores, softmax, context.
    add(groupTemplate_, pick(attns), 1.0);
    add(groupTemplate_, pick(softmaxes), 1.0);
    add(groupTemplate_, pick(attns), 1.0);
    decorate(groupTemplate_);

    // Output projection + residual + norm.
    add(groupTemplate_, pick(gemms), 1.0);
    if (sig.fusionLevel < 2)
        add(groupTemplate_, pick(elems), 1.0);
    add(groupTemplate_, pick(norms), 1.0);
    decorate(groupTemplate_);

    // Feed-forward block (4x hidden expansion).
    add(groupTemplate_, pick(gemms), 4.0);
    if (sig.fusionLevel < 2)
        add(groupTemplate_, pick(elems), 4.0); // activation
    add(groupTemplate_, pick(gemms), 4.0);
    if (sig.fusionLevel < 2)
        add(groupTemplate_, pick(elems), 1.0);
    add(groupTemplate_, pick(norms), 1.0);
    decorate(groupTemplate_);

    // TensorFlow sprawl: many more executions per group (Fig. 9 shows
    // up to ~8x more kernel executions than PyTorch).
    if (tf) {
        const std::size_t sprawl = 30 + rng.uniformInt(20);
        for (std::size_t i = 0; i < sprawl; ++i) {
            const double roll = rng.uniform();
            if (roll < 0.5 && !fusions.empty())
                add(groupTemplate_, pick(fusions), 0.15);
            else if (roll < 0.8)
                add(groupTemplate_, pick(elems), 0.2);
            else
                add(groupTemplate_, pick(mems), 0.2);
        }
    }

    // --- Prologue (embedding staging) ------------------------------------
    add(prologueTemplate_, pick(mems), 1.0);
    add(prologueTemplate_, pick(mems), 0.5);
    add(prologueTemplate_, pick(elems), 0.5);
    if (tf)
        decorate(prologueTemplate_);

    // --- Epilogue (task head) ---------------------------------------------
    add(epilogueTemplate_, pick(gemms), 0.05);
    add(epilogueTemplate_, pick(elems), 0.1);
}

double
TraceGenerator::slotDuration(const Slot &slot, const ArchParams &arch) const
{
    const double seq = static_cast<double>(arch.seqLen);
    const double hid = static_cast<double>(arch.hidden);
    const double head_ratio = arch.activeHeadRatio();

    double d = 1.0;
    switch (slot.klass) {
      case KernelClass::Gemm:
        d = kGemmBaseUs + kGemmCoeff * seq * hid * hid * slot.sizeFactor;
        if (sig_.useTensorCores)
            d *= kTensorCoreSpeedup;
        break;
      case KernelClass::AttnGemm:
        // Attention compute scales with the number of live heads; the
        // whole kernel (grid included) shrinks when heads are pruned.
        d = (kShortBaseUs +
             kAttnCoeff * seq * seq * hid * slot.sizeFactor) *
            head_ratio;
        break;
      case KernelClass::Softmax:
        d = (kShortBaseUs + kSoftmaxCoeff * seq * seq *
                                static_cast<double>(arch.numHeads)) *
            head_ratio;
        break;
      case KernelClass::LayerNorm:
        d = kShortBaseUs + kElementwiseCoeff * seq * hid * 0.6;
        break;
      case KernelClass::Elementwise:
        d = kShortBaseUs + kElementwiseCoeff * seq * hid * slot.sizeFactor;
        break;
      case KernelClass::Reduction:
        // Short per-head reduce kernels shrink under head pruning.
        d = (kReduceBaseUs + 0.01 * seq) * head_ratio;
        break;
      case KernelClass::Memory:
        d = kShortBaseUs + kMemoryCoeff * seq * hid * slot.sizeFactor;
        break;
      case KernelClass::Fusion:
        d = kShortBaseUs +
            kElementwiseCoeff * seq * hid * slot.sizeFactor * 0.8;
        break;
    }
    return std::max(d * slot.personality, 1.0);
}

KernelTrace
TraceGenerator::generate(const ArchParams &arch,
                         std::uint64_t run_seed) const
{
    return generateDefended(arch, run_seed, 0.0);
}

std::vector<KernelTrace>
TraceGenerator::generateMany(
    const ArchParams &arch,
    const std::vector<std::uint64_t> &run_seeds) const
{
    std::vector<KernelTrace> out(run_seeds.size());
    sched::parallelFor(run_seeds.size(), 1, [&](std::size_t i) {
        out[i] = generate(arch, run_seeds[i]);
    });
    return out;
}

KernelTrace
TraceGenerator::generateDefended(const ArchParams &arch,
                                 std::uint64_t run_seed,
                                 double strength) const
{
    assert(strength >= 0.0 && strength <= 1.0);
    assert(arch.numLayers > 0 && arch.hidden > 0 && arch.numHeads > 0);
    assert(arch.prunedHeads < arch.numHeads);

    auto sp = obs::span("gpusim.generate", "gpusim");
    obs::StageTimer stage_timer("trace_capture");
    sp.arg("layers", static_cast<std::uint64_t>(arch.numLayers));
    sp.arg("hidden", static_cast<std::uint64_t>(arch.hidden));

    util::Rng rng(run_seed ^ sig_.seed());
    KernelTrace trace;
    trace.kernelNames.reserve(catalog_.size());
    for (const auto &e : catalog_.entries())
        trace.kernelNames.push_back(e.name);

    double t = 0.0;
    auto emit = [&](const Slot &slot, Phase phase, int layer) {
        Slot launched = slot;
        if (strength > 0.0 && rng.uniform() < strength) {
            // Defense: re-route this launch to a random same-class
            // implementation with run-specific timing behaviour, and
            // pay the cost of not picking the tuned kernel.
            const auto pool = catalog_.entriesOfClass(slot.klass);
            launched.kernelId =
                pool[rng.uniformInt(pool.size())];
            launched.personality =
                std::exp(rng.gaussian(0.0, 0.25)) *
                (1.0 + strength * std::fabs(rng.gaussian(0.0, 0.3)));
        }
        const double jitter = std::exp(rng.gaussian(0.0, 0.03));
        const double dur = slotDuration(launched, arch) * jitter;
        KernelRecord rec;
        rec.kernelId = launched.kernelId;
        rec.tStart = t;
        rec.tEnd = t + dur;
        rec.phase = phase;
        rec.klass = launched.klass;
        rec.layerIndex = layer;
        trace.records.push_back(rec);
        t = rec.tEnd + kLaunchGapUs * std::exp(rng.gaussian(0.0, 0.1));
    };

    for (const auto &slot : prologueTemplate_)
        emit(slot, Phase::Prologue, -1);

    // XLA releases run an irregular compiler/fusion burst between two
    // encoder regions (Fig. 12): encoders at the beginning and end.
    std::size_t xla_after = arch.numLayers; // no burst by default
    if (sig_.useXla)
        xla_after = arch.numLayers * 2 / 5;

    const auto fusions = catalog_.entriesOfClass(KernelClass::Fusion);
    for (std::size_t layer = 0; layer < arch.numLayers; ++layer) {
        if (sig_.useXla && layer == xla_after && !fusions.empty()) {
            const std::size_t burst = 25 + rng.uniformInt(20);
            for (std::size_t i = 0; i < burst; ++i) {
                Slot s;
                s.kernelId = fusions[rng.uniformInt(fusions.size())];
                s.klass = KernelClass::Fusion;
                // Irregular: heavy-tailed size factors.
                s.sizeFactor = std::exp(rng.gaussian(0.0, 1.2));
                emit(s, Phase::XlaRegion, -1);
            }
        }
        for (const auto &slot : groupTemplate_)
            emit(slot, Phase::Encoder, static_cast<int>(layer));
    }

    for (const auto &slot : epilogueTemplate_)
        emit(slot, Phase::OutputLayer, -1);

    obs::count("gpusim.traces_generated");
    obs::count("gpusim.kernels_emitted", trace.records.size());
    if (strength > 0.0)
        obs::count("gpusim.defended_traces");
    sp.arg("kernels", static_cast<std::uint64_t>(trace.records.size()));
    return trace;
}

} // namespace decepticon::gpusim
