/**
 * @file
 * Synthesizes GPU kernel execution traces for transformer inference
 * under a given software signature. The generator reproduces the
 * structural properties the paper measures on real GPUs:
 *
 *  - each encoder executes an identically shaped kernel group, so a
 *    model with L encoders shows L repetitions (Fig. 10);
 *  - the group's composition (which kernels, how many) is a pure
 *    function of the software signature, so releases from different
 *    sources look completely different (Figs. 7, 9) while a fine-tuned
 *    model inherits its pre-trained model's pattern (Fig. 8);
 *  - peak kernel duration scales with hidden size (Fig. 10);
 *  - XLA-optimized releases interleave an irregular fusion region
 *    (Fig. 12); head pruning shortens the short attention kernels
 *    (Fig. 21).
 */

#ifndef DECEPTICON_GPUSIM_TRACE_GENERATOR_HH
#define DECEPTICON_GPUSIM_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "gpusim/catalog.hh"
#include "gpusim/kernel.hh"
#include "gpusim/signature.hh"

namespace decepticon::gpusim {

/** Architecture of the model whose inference is being traced. */
struct ArchParams
{
    std::size_t numLayers = 12;
    std::size_t hidden = 768;
    std::size_t numHeads = 12;
    std::size_t seqLen = 128;
    /** Heads removed by head pruning (0 = dense model). */
    std::size_t prunedHeads = 0;
    /** Output (task) layer width; drives the tiny epilogue kernels. */
    std::size_t numClasses = 2;

    double
    activeHeadRatio() const
    {
        return numHeads == 0
                   ? 1.0
                   : static_cast<double>(numHeads - prunedHeads) /
                         static_cast<double>(numHeads);
    }
};

/**
 * Deterministic trace synthesizer for one software signature. The
 * per-encoder kernel-group template is fixed at construction (it is
 * the model's fingerprint); generate() instantiates it with per-run
 * timing jitter.
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const SoftwareSignature &sig);

    /** Synthesize one inference trace. run_seed varies jitter only. */
    KernelTrace generate(const ArchParams &arch,
                         std::uint64_t run_seed) const;

    /**
     * Capture one trace per run seed, in parallel on the sched pool.
     * generate() is a pure function of (template, arch, seed), so the
     * batch equals the serial loop bit-for-bit at any thread count;
     * out[i] corresponds to run_seeds[i].
     */
    std::vector<KernelTrace>
    generateMany(const ArchParams &arch,
                 const std::vector<std::uint64_t> &run_seeds) const;

    /**
     * Synthesize a trace under the paper's proposed countermeasure
     * (Sec. 8): the runtime randomizes kernel/library selection per
     * invocation so the schedule stops being a stable fingerprint.
     *
     * @param strength in [0, 1]: probability that each kernel launch
     *        is re-routed to a randomly chosen same-class
     *        implementation with run-specific timing. 0 reduces to
     *        generate().
     *
     * Randomly chosen implementations are generally not the fastest
     * available, so defended kernels pay a timing penalty that grows
     * with strength — the overhead side of the trade-off.
     */
    KernelTrace generateDefended(const ArchParams &arch,
                                 std::uint64_t run_seed,
                                 double strength) const;

    const SoftwareSignature &signature() const { return sig_; }
    const KernelCatalog &catalog() const { return catalog_; }

    /** Number of kernels in the per-encoder group template. */
    std::size_t groupSize() const { return groupTemplate_.size(); }

  private:
    /** One slot of the per-encoder kernel-group template. */
    struct Slot
    {
        int kernelId;
        KernelClass klass;
        /** Relative compute volume multiplier (e.g. 4x FFN GEMMs). */
        double sizeFactor;
        /**
         * Per-release timing personality: kernel implementations from
         * different library builds run at different speeds, which is
         * part of what makes fingerprints release-specific. Fixed per
         * slot at construction; inherited by fine-tuned descendants.
         */
        double personality = 1.0;
    };

    double slotDuration(const Slot &slot, const ArchParams &arch) const;

    SoftwareSignature sig_;
    KernelCatalog catalog_;
    std::vector<Slot> groupTemplate_;
    std::vector<Slot> prologueTemplate_;
    std::vector<Slot> epilogueTemplate_;
};

} // namespace decepticon::gpusim

#endif // DECEPTICON_GPUSIM_TRACE_GENERATOR_HH
