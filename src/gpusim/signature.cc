#include "gpusim/signature.hh"

#include <sstream>

#include "util/rng.hh"

namespace decepticon::gpusim {

std::string
toString(Framework f)
{
    switch (f) {
      case Framework::PyTorch:
        return "pytorch";
      case Framework::TensorFlow:
        return "tensorflow";
      case Framework::Mxnet:
        return "mxnet";
    }
    return "unknown";
}

std::string
toString(Developer d)
{
    switch (d) {
      case Developer::HuggingFace:
        return "huggingface";
      case Developer::Nvidia:
        return "nvidia";
      case Developer::Google:
        return "google";
      case Developer::Meta:
        return "meta";
      case Developer::Amazon:
        return "amazon";
      case Developer::Community:
        return "community";
    }
    return "unknown";
}

std::uint64_t
SoftwareSignature::seed() const
{
    std::uint64_t h = util::hashString(toString().c_str());
    return h ^ 0xdece7e1c0ffee123ULL;
}

std::string
SoftwareSignature::toString() const
{
    std::ostringstream oss;
    oss << gpusim::toString(framework) << "/" << gpusim::toString(developer)
        << "/tc" << (useTensorCores ? 1 : 0) << "/xla" << (useXla ? 1 : 0)
        << "/f" << fusionLevel << "/d" << kernelDialect;
    return oss.str();
}

} // namespace decepticon::gpusim
