/**
 * @file
 * Kernel name catalogs per framework/developer, mirroring the census
 * the paper reports in Fig. 9: PyTorch releases launch a handful of
 * cuBLAS/ATen kernels, TensorFlow releases launch hundreds of backend
 * and fusion kernels, NVIDIA releases prefer tensor-core half-precision
 * GEMMs, and Meta releases issue many short reduction kernels.
 */

#ifndef DECEPTICON_GPUSIM_CATALOG_HH
#define DECEPTICON_GPUSIM_CATALOG_HH

#include <string>
#include <vector>

#include "gpusim/kernel.hh"
#include "gpusim/signature.hh"

namespace decepticon::gpusim {

/** A kernel the catalog can launch: name plus functional class. */
struct CatalogEntry
{
    std::string name;
    KernelClass klass = KernelClass::Elementwise;
};

/**
 * The set of kernels available to one software signature. Built
 * deterministically from the signature so the same release always
 * exposes the same kernel population.
 */
class KernelCatalog
{
  public:
    /** Build the catalog implied by a software signature. */
    explicit KernelCatalog(const SoftwareSignature &sig);

    const std::vector<CatalogEntry> &entries() const { return entries_; }

    /** Indices of entries of the given class. */
    std::vector<int> entriesOfClass(KernelClass klass) const;

    /** Number of distinct kernels the release can launch. */
    std::size_t size() const { return entries_.size(); }

    const std::string &name(int id) const { return entries_[id].name; }
    KernelClass klass(int id) const { return entries_[id].klass; }

  private:
    std::vector<CatalogEntry> entries_;
};

} // namespace decepticon::gpusim

#endif // DECEPTICON_GPUSIM_CATALOG_HH
