/**
 * @file
 * GPU kernel execution records and traces — the architectural-hint
 * side channel of the paper (Sec. 5.2). A trace is the time series of
 * (T_invocation, T_termination) pairs for every kernel launched during
 * one model inference, exactly what the paper's attacker collects via
 * EM/bus side channels.
 */

#ifndef DECEPTICON_GPUSIM_KERNEL_HH
#define DECEPTICON_GPUSIM_KERNEL_HH

#include <cstddef>
#include <string>
#include <vector>

namespace decepticon::gpusim {

/** Execution phase a kernel belongs to (ground truth for evaluation). */
enum class Phase
{
    Prologue,    ///< embedding lookup / input staging
    Encoder,     ///< repeated per-encoder kernel group
    XlaRegion,   ///< XLA compilation/fusion burst (corner case, Fig. 12)
    OutputLayer, ///< task-specific last layer
};

/** Functional class of a kernel, driving its duration model. */
enum class KernelClass
{
    Gemm,        ///< large matrix multiply
    AttnGemm,    ///< seq-len-squared attention score/context multiply
    Softmax,     ///< attention softmax
    LayerNorm,
    Elementwise, ///< bias/activation/residual
    Reduction,   ///< short reduce kernels (Meta-style traces)
    Memory,      ///< copies / index selects
    Fusion,      ///< XLA fused region kernel
};

/** One kernel invocation. Timestamps are microseconds from t=0. */
struct KernelRecord
{
    int kernelId = 0;        ///< index into KernelTrace::kernelNames
    double tStart = 0.0;     ///< T_invocation
    double tEnd = 0.0;       ///< T_termination
    Phase phase = Phase::Encoder;
    KernelClass klass = KernelClass::Elementwise;
    /** Encoder index this kernel implements, or -1 outside encoders. */
    int layerIndex = -1;

    double duration() const { return tEnd - tStart; }
};

/** A full inference trace: kernel name table + time-ordered records. */
struct KernelTrace
{
    std::vector<std::string> kernelNames;
    std::vector<KernelRecord> records;

    /** Total wall time (end of last kernel). */
    double totalTime() const;

    /** Durations of all records, in invocation order. */
    std::vector<double> durations() const;

    /** Number of distinct kernel ids actually invoked. */
    std::size_t uniqueKernelCount() const;

    /** Maximum single-kernel duration. */
    double peakDuration() const;

    /** Records whose phase is Encoder. */
    std::vector<KernelRecord> encoderRecords() const;

    /** Kernel-id sequence in invocation order (for LER baselines). */
    std::vector<int> kernelIdSequence() const;
};

} // namespace decepticon::gpusim

#endif // DECEPTICON_GPUSIM_KERNEL_HH
