#include "gpusim/noise.hh"

#include <algorithm>

#include "util/rng.hh"

namespace decepticon::gpusim {

KernelTrace
applyTimingNoise(const KernelTrace &trace, std::size_t num_kernels,
                 double magnitude_us, std::uint64_t seed)
{
    KernelTrace out = trace;
    if (out.records.empty() || num_kernels == 0 || magnitude_us <= 0.0)
        return out;

    util::Rng rng(seed);
    const std::size_t n =
        std::min(num_kernels, out.records.size());
    auto picked = rng.sampleWithoutReplacement(out.records.size(), n);
    std::sort(picked.begin(), picked.end());

    double shift = 0.0;
    std::size_t next_pick = 0;
    for (std::size_t i = 0; i < out.records.size(); ++i) {
        KernelRecord &rec = out.records[i];
        rec.tStart += shift;
        rec.tEnd += shift;
        if (next_pick < picked.size() && picked[next_pick] == i) {
            ++next_pick;
            const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
            const double old_dur = rec.duration();
            const double new_dur =
                std::max(0.5, old_dur + sign * magnitude_us);
            rec.tEnd = rec.tStart + new_dur;
            shift += new_dur - old_dur;
        }
    }
    return out;
}

} // namespace decepticon::gpusim
