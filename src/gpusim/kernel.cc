#include "gpusim/kernel.hh"

#include <algorithm>
#include <set>

namespace decepticon::gpusim {

double
KernelTrace::totalTime() const
{
    double end = 0.0;
    for (const auto &r : records)
        end = std::max(end, r.tEnd);
    return end;
}

std::vector<double>
KernelTrace::durations() const
{
    std::vector<double> out;
    out.reserve(records.size());
    for (const auto &r : records)
        out.push_back(r.duration());
    return out;
}

std::size_t
KernelTrace::uniqueKernelCount() const
{
    std::set<int> ids;
    for (const auto &r : records)
        ids.insert(r.kernelId);
    return ids.size();
}

double
KernelTrace::peakDuration() const
{
    double mx = 0.0;
    for (const auto &r : records)
        mx = std::max(mx, r.duration());
    return mx;
}

std::vector<KernelRecord>
KernelTrace::encoderRecords() const
{
    std::vector<KernelRecord> out;
    for (const auto &r : records) {
        if (r.phase == Phase::Encoder)
            out.push_back(r);
    }
    return out;
}

std::vector<int>
KernelTrace::kernelIdSequence() const
{
    std::vector<int> out;
    out.reserve(records.size());
    for (const auto &r : records)
        out.push_back(r.kernelId);
    return out;
}

} // namespace decepticon::gpusim
