#include "sidechan/fusion.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "obs/obs.hh"

namespace decepticon::sidechan {

FusionEngine::FusionEngine(std::size_t num_classes,
                           const FusionOptions &opts)
    : numClasses_(num_classes), opts_(opts)
{
    assert(num_classes > 0);
}

void
FusionEngine::setReliabilityPrior(fault::Channel channel,
                                  double heldout_accuracy)
{
    const auto c = static_cast<std::size_t>(channel);
    priors_[c] = std::clamp(heldout_accuracy, 0.0, 1.0);
    registered_[c] = true;
    obs::gaugeSet((std::string("sidechan.prior.") +
                   fault::channelName(channel))
                      .c_str(),
                  priors_[c]);
}

double
FusionEngine::reliabilityPrior(fault::Channel channel) const
{
    return priors_[static_cast<std::size_t>(channel)];
}

double
FusionEngine::channelWeight(fault::Channel channel) const
{
    const auto c = static_cast<std::size_t>(channel);
    if (!registered_[c])
        return 0.0;
    // Skill = excess accuracy over chance, renormalized to [0, 1].
    // An at-chance channel carries no information; the floor keeps a
    // barely-better-than-chance channel's tie-breaking value alive.
    const double chance = 1.0 / static_cast<double>(numClasses_);
    const double skill =
        std::max(0.0, (priors_[c] - chance) / (1.0 - chance));
    return std::max(opts_.priorFloor, skill);
}

FusionDecision
FusionEngine::fuse(const std::vector<ChannelEvidence> &evidence) const
{
    auto sp = obs::span("sidechan.fuse", "sidechan");
    obs::StageTimer stage_timer("fuse");
    FusionDecision decision;

    // Maximum possible evidence mass: every registered channel at
    // quality 1. The denominator of the calibration term.
    double max_mass = 0.0;
    for (std::size_t c = 0; c < fault::kNumChannels; ++c) {
        if (registered_[c])
            max_mass += channelWeight(static_cast<fault::Channel>(c));
    }

    std::vector<double> logp(numClasses_, 0.0);
    double mass = 0.0;
    for (const auto &ev : evidence) {
        if (!ev.available || ev.probs.empty())
            continue;
        assert(ev.probs.size() == numClasses_);
        const double w = channelWeight(ev.channel) *
                         std::clamp(ev.quality, 0.0, 1.0);
        if (w <= 0.0)
            continue;
        ++decision.channelsAvailable;
        mass += w;
        for (std::size_t k = 0; k < numClasses_; ++k)
            logp[k] += w * std::log(std::max(ev.probs[k], 1e-9));
    }
    sp.arg("channels", static_cast<std::uint64_t>(
                           decision.channelsAvailable));

    if (decision.channelsAvailable == 0 || mass <= 0.0) {
        decision.verdict = FusionVerdict::InsufficientEvidence;
        obs::count("sidechan.fusion_insufficient");
        obs::flightRecord(obs::FlightEventKind::Verdict, "fuse",
                          "insufficient_evidence");
        return decision;
    }

    // Weighted geometric mean of the posteriors: normalize the
    // exponent by the mass so the sharpness of the fused posterior
    // reflects channel agreement, not channel count.
    double peak = -1e300;
    for (std::size_t k = 0; k < numClasses_; ++k) {
        logp[k] /= mass;
        peak = std::max(peak, logp[k]);
    }
    decision.fusedProbs.resize(numClasses_);
    double z = 0.0;
    for (std::size_t k = 0; k < numClasses_; ++k) {
        decision.fusedProbs[k] = std::exp(logp[k] - peak);
        z += decision.fusedProbs[k];
    }
    for (auto &p : decision.fusedProbs)
        p /= z;

    const auto top = std::max_element(decision.fusedProbs.begin(),
                                      decision.fusedProbs.end());
    decision.label =
        static_cast<int>(top - decision.fusedProbs.begin());
    decision.coverage =
        max_mass > 0.0 ? std::min(1.0, mass / max_mass) : 0.0;
    // Calibration: identical posteriors earn less confidence when
    // most of the expected evidence never arrived.
    decision.confidence = *top * std::sqrt(decision.coverage);
    decision.verdict = FusionVerdict::Identified;
    obs::count("sidechan.fusion_decisions");
    obs::flightRecord(obs::FlightEventKind::Verdict, "fuse", "identified",
                      decision.confidence);
    obs::gaugeSet("sidechan.fusion_confidence", decision.confidence);
    obs::gaugeSet("sidechan.fusion_coverage", decision.coverage);
    return decision;
}

} // namespace decepticon::sidechan
