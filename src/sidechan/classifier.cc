#include "sidechan/classifier.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "nn/optim.hh"
#include "obs/obs.hh"
#include "tensor/kernels/arena.hh"

namespace decepticon::sidechan {

ChannelClassifier::ChannelClassifier(fault::Channel channel,
                                     std::size_t feature_dim,
                                     std::size_t num_classes,
                                     std::uint64_t seed,
                                     std::size_t hidden)
    : channel_(channel),
      featureDim_(feature_dim),
      numClasses_(num_classes),
      rng_(seed),
      fc1_(std::string("sidechan.") + fault::channelName(channel) +
               ".fc1",
           feature_dim, hidden, rng_),
      fc2_(std::string("sidechan.") + fault::channelName(channel) +
               ".fc2",
           hidden, num_classes, rng_),
      mean_(feature_dim, 0.0f),
      invScale_(feature_dim, 1.0f)
{
    assert(feature_dim > 0 && num_classes > 0);
    fc1_.setActivation(tensor::kernels::Act::Relu);
}

tensor::Tensor
ChannelClassifier::toBatch(
    const std::vector<const std::vector<float> *> &rows) const
{
    tensor::Tensor batch({rows.size(), featureDim_});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        assert(rows[i]->size() == featureDim_);
        for (std::size_t d = 0; d < featureDim_; ++d)
            batch[i * featureDim_ + d] =
                ((*rows[i])[d] - mean_[d]) * invScale_[d];
    }
    return batch;
}

float
ChannelClassifier::train(
    const std::vector<std::vector<float>> &features,
    const std::vector<int> &labels, const ChannelClassifierOptions &opts)
{
    assert(!features.empty() && features.size() == labels.size());
    auto sp = obs::span("sidechan.train", "sidechan");
    sp.arg("channel", fault::channelName(channel_));
    sp.arg("samples", static_cast<std::uint64_t>(features.size()));

    // Fit standardization on the training set.
    const auto n = static_cast<float>(features.size());
    std::fill(mean_.begin(), mean_.end(), 0.0f);
    for (const auto &f : features)
        for (std::size_t d = 0; d < featureDim_; ++d)
            mean_[d] += f[d];
    for (auto &m : mean_)
        m /= n;
    std::vector<float> var(featureDim_, 0.0f);
    for (const auto &f : features)
        for (std::size_t d = 0; d < featureDim_; ++d) {
            const float c = f[d] - mean_[d];
            var[d] += c * c;
        }
    for (std::size_t d = 0; d < featureDim_; ++d)
        invScale_[d] =
            1.0f / (std::sqrt(var[d] / n) + 1e-4f);

    nn::Adam optim({fc1_.params()[0], fc1_.params()[1],
                    fc2_.params()[0], fc2_.params()[1]},
                   opts.lr);
    util::Rng shuffle_rng(opts.shuffleSeed);
    std::vector<std::size_t> order(features.size());
    std::iota(order.begin(), order.end(), 0);

    float last_epoch_loss = 0.0f;
    for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
        shuffle_rng.shuffle(order);
        double loss_sum = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start < order.size();
             start += opts.batchSize) {
            const std::size_t end =
                std::min(start + opts.batchSize, order.size());
            std::vector<const std::vector<float> *> rows;
            std::vector<int> batch_labels;
            for (std::size_t i = start; i < end; ++i) {
                rows.push_back(&features[order[i]]);
                batch_labels.push_back(labels[order[i]]);
            }
            optim.zeroGrad();
            tensor::Tensor h = fc1_.forward(toBatch(rows));
            tensor::Tensor logits = fc2_.forward(h);
            loss_sum += loss_.forward(logits, batch_labels);
            fc1_.backward(fc2_.backward(loss_.backward()));
            optim.step();
            tensor::kernels::recycleActivations();
            ++batches;
        }
        last_epoch_loss = static_cast<float>(
            loss_sum / std::max<std::size_t>(1, batches));
    }
    return last_epoch_loss;
}

std::vector<double>
ChannelClassifier::classProbabilities(const std::vector<float> &features)
{
    tensor::Tensor h = fc1_.forward(toBatch({&features}));
    tensor::Tensor logits = fc2_.forward(h);
    tensor::Tensor probs = tensor::softmaxRows(logits);
    std::vector<double> out(numClasses_);
    for (std::size_t i = 0; i < numClasses_; ++i)
        out[i] = probs[i];
    return out;
}

int
ChannelClassifier::predict(const std::vector<float> &features)
{
    const auto probs = classProbabilities(features);
    return static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double
ChannelClassifier::evaluate(
    const std::vector<std::vector<float>> &features,
    const std::vector<int> &labels)
{
    if (features.empty())
        return 0.0;
    assert(features.size() == labels.size());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < features.size(); ++i)
        correct += predict(features[i]) == labels[i] ? 1 : 0;
    return static_cast<double>(correct) /
           static_cast<double>(features.size());
}

} // namespace decepticon::sidechan
