/**
 * @file
 * Confidence-weighted late fusion over per-channel evidence. Each
 * channel contributes a posterior over lineages plus a runtime signal
 * quality; the engine weights each by a per-channel reliability prior
 * learned from held-out accuracy during training (the fault layer's
 * accounting view of how trustworthy a channel is), fuses in
 * log-space, and reports a confidence calibrated by how much of the
 * total possible evidence mass was actually present — so the same
 * posterior shape earns less confidence when most channels were dark.
 *
 * Graceful degradation is structural: any nonempty subset of channels
 * yields a decision with a (possibly low) calibrated confidence, and
 * the empty subset yields an explicit insufficient-evidence verdict —
 * never a silent guess.
 */

#ifndef DECEPTICON_SIDECHAN_FUSION_HH
#define DECEPTICON_SIDECHAN_FUSION_HH

#include <array>
#include <cstddef>
#include <vector>

#include "fault/channel.hh"

namespace decepticon::sidechan {

/** One channel's contribution to a fusion decision. */
struct ChannelEvidence
{
    fault::Channel channel = fault::Channel::Timestamp;
    /** False when the channel delivered nothing usable. */
    bool available = false;
    /** Posterior over lineages (empty when unavailable). */
    std::vector<double> probs;
    /**
     * Runtime signal quality in [0, 1]: how intact this capture set
     * was (sample coverage, quorum agreement). Scales the channel's
     * prior weight for this decision only.
     */
    double quality = 1.0;
};

/** Fusion knobs. */
struct FusionOptions
{
    /** Weight floor for an available channel whose prior is barely
     *  above chance — starving a weak channel entirely would forfeit
     *  its tie-breaking value. */
    double priorFloor = 0.05;
};

enum class FusionVerdict
{
    Identified,
    InsufficientEvidence,
};

/** Outcome of one fusion decision. */
struct FusionDecision
{
    FusionVerdict verdict = FusionVerdict::InsufficientEvidence;
    int label = -1;
    /** Calibrated confidence: fused top-1 posterior scaled by the
     *  fraction of total evidence mass present. 0 on insufficient. */
    double confidence = 0.0;
    std::vector<double> fusedProbs;
    std::size_t channelsAvailable = 0;
    /** Fraction of the maximum possible evidence weight present. */
    double coverage = 0.0;
};

/**
 * The late-fusion engine. Stateless per decision; holds the learned
 * per-channel reliability priors (held-out accuracies).
 */
class FusionEngine
{
  public:
    explicit FusionEngine(std::size_t num_classes,
                          const FusionOptions &opts = {});

    std::size_t numClasses() const { return numClasses_; }

    /** Record a channel's held-out accuracy as its reliability prior.
     *  Channels never registered carry zero weight and do not count
     *  toward coverage. */
    void setReliabilityPrior(fault::Channel channel,
                             double heldout_accuracy);

    double reliabilityPrior(fault::Channel channel) const;

    /**
     * Effective fusion weight of a channel at quality 1: its prior's
     * excess accuracy over chance, floored for registered channels.
     */
    double channelWeight(fault::Channel channel) const;

    /** Fuse the available evidence into one decision. */
    FusionDecision
    fuse(const std::vector<ChannelEvidence> &evidence) const;

  private:
    std::size_t numClasses_;
    FusionOptions opts_;
    std::array<double, fault::kNumChannels> priors_{};
    std::array<bool, fault::kNumChannels> registered_{};
};

} // namespace decepticon::sidechan

#endif // DECEPTICON_SIDECHAN_FUSION_HH
