/**
 * @file
 * Lightweight per-channel lineage classifiers. Each emission channel
 * gets its own two-layer MLP over the channel's feature vector,
 * trained on the attacker's own profiling of the candidate pool —
 * the same protocol as the fingerprint CNN, at a fraction of the
 * cost. Input standardization is fitted at train time and baked into
 * the classifier, so victim features are scaled exactly like
 * training features.
 */

#ifndef DECEPTICON_SIDECHAN_CLASSIFIER_HH
#define DECEPTICON_SIDECHAN_CLASSIFIER_HH

#include <cstdint>
#include <vector>

#include "fault/channel.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "util/rng.hh"

namespace decepticon::sidechan {

/** Training knobs for one channel classifier. */
struct ChannelClassifierOptions
{
    std::size_t hidden = 32;
    std::size_t epochs = 80;
    float lr = 4e-3f;
    std::size_t batchSize = 8;
    std::uint64_t shuffleSeed = 11;
};

/**
 * feature -> fc(hidden, ReLU) -> fc(classes) with standardized
 * inputs. Deliberately tiny: channel evidence is fused downstream,
 * so each classifier only needs to beat chance by a usable margin.
 */
class ChannelClassifier
{
  public:
    ChannelClassifier(fault::Channel channel, std::size_t feature_dim,
                      std::size_t num_classes, std::uint64_t seed,
                      std::size_t hidden = 32);

    fault::Channel channel() const { return channel_; }
    std::size_t featureDim() const { return featureDim_; }
    std::size_t numClasses() const { return numClasses_; }

    /**
     * Fit standardization and train the MLP. features[i] labels[i]
     * pair up; every feature vector must have featureDim() entries.
     * Returns the final-epoch mean loss.
     */
    float train(const std::vector<std::vector<float>> &features,
                const std::vector<int> &labels,
                const ChannelClassifierOptions &opts);

    /** Softmax class probabilities for one feature vector. */
    std::vector<double>
    classProbabilities(const std::vector<float> &features);

    /** Argmax class for one feature vector. */
    int predict(const std::vector<float> &features);

    /** Classification accuracy over a labeled set. */
    double evaluate(const std::vector<std::vector<float>> &features,
                    const std::vector<int> &labels);

  private:
    tensor::Tensor
    toBatch(const std::vector<const std::vector<float> *> &rows) const;

    fault::Channel channel_;
    std::size_t featureDim_;
    std::size_t numClasses_;
    util::Rng rng_; // must precede the layers it initializes
    nn::Linear fc1_;
    nn::Linear fc2_;
    nn::SoftmaxCrossEntropy loss_;
    /** Per-dimension standardization (mean, inverse scale). */
    std::vector<float> mean_;
    std::vector<float> invScale_;
};

} // namespace decepticon::sidechan

#endif // DECEPTICON_SIDECHAN_CLASSIFIER_HH
