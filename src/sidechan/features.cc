#include "sidechan/features.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "gpusim/emission.hh"

namespace decepticon::sidechan {

namespace {

// Normalization constants: generous full-scale values so features
// land in [0, ~1] without data-dependent scaling (which would leak
// between train and victim distributions).
constexpr double kPowerFullScaleWatts = 400.0;
constexpr double kThermalFullScaleC = 150.0;

double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos =
        q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/** Mean and standard deviation of a series. */
std::pair<double, double>
meanStd(const std::vector<double> &v)
{
    if (v.empty())
        return {0.0, 0.0};
    double mean = 0.0;
    for (double x : v)
        mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (double x : v)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(v.size());
    return {mean, std::sqrt(var)};
}

/** Normalized autocorrelation of the mean-removed series at `lag`. */
double
autocorrAt(const std::vector<double> &v, double mean, double var,
           std::size_t lag)
{
    if (var <= 1e-12 || lag >= v.size())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i + lag < v.size(); ++i)
        sum += (v[i] - mean) * (v[i + lag] - mean);
    return sum / (var * static_cast<double>(v.size() - lag));
}

/** 8-bin histogram of values over [lo, hi], mass-normalized. */
void
pushHistogram(std::vector<float> &out, const std::vector<double> &v,
              double lo, double hi)
{
    constexpr std::size_t kBins = 8;
    std::array<double, kBins> bins{};
    for (double x : v) {
        const double u =
            std::clamp((x - lo) / (hi - lo), 0.0, 1.0 - 1e-9);
        bins[static_cast<std::size_t>(u * kBins)] += 1.0;
    }
    const double n = std::max<double>(1.0, static_cast<double>(v.size()));
    for (double b : bins)
        out.push_back(static_cast<float>(b / n));
}

} // anonymous namespace

std::size_t
featureDim(fault::Channel channel)
{
    switch (channel) {
    case fault::Channel::Timestamp:
        return 0;
    case fault::Channel::Power:
        return kPowerFeatureDim;
    case fault::Channel::Thermal:
        return kThermalFeatureDim;
    case fault::Channel::Profiler:
        return kProfilerFeatureDim;
    }
    return 0;
}

std::vector<float>
powerFeatures(const std::vector<double> &series)
{
    std::vector<float> out;
    out.reserve(kPowerFeatureDim);
    if (series.empty())
        return std::vector<float>(kPowerFeatureDim, 0.0f);

    const auto [mean, stddev] = meanStd(series);
    std::vector<double> sorted = series;
    std::sort(sorted.begin(), sorted.end());
    const double norm = kPowerFullScaleWatts;
    out.push_back(static_cast<float>(mean / norm));
    out.push_back(static_cast<float>(stddev / norm));
    out.push_back(static_cast<float>(sorted.front() / norm));
    out.push_back(static_cast<float>(sorted.back() / norm));
    out.push_back(static_cast<float>(quantile(sorted, 0.25) / norm));
    out.push_back(static_cast<float>(quantile(sorted, 0.5) / norm));
    out.push_back(static_cast<float>(quantile(sorted, 0.75) / norm));
    out.push_back(
        static_cast<float>((sorted.back() - sorted.front()) / norm));

    pushHistogram(out, series, 0.0, kPowerFullScaleWatts);

    // Periodicity: the per-encoder kernel group repeats, so the power
    // signal has a dominant period proportional to trace length over
    // layer count — a structure probe the victim cannot cheaply hide.
    const double var = stddev * stddev;
    double best_corr = 0.0, second_corr = 0.0;
    std::size_t best_lag = 0;
    const std::size_t max_lag = series.size() / 2;
    for (std::size_t lag = 4; lag < max_lag; ++lag) {
        const double c = autocorrAt(series, mean, var, lag);
        if (c > best_corr) {
            second_corr = best_corr;
            best_corr = c;
            best_lag = lag;
        } else if (c > second_corr) {
            second_corr = c;
        }
    }
    out.push_back(static_cast<float>(
        static_cast<double>(best_lag) /
        static_cast<double>(series.size())));
    out.push_back(static_cast<float>(best_corr));
    out.push_back(static_cast<float>(second_corr));

    // Burst shape: how often the draw crosses its mean upward, and
    // the duty cycle above the mean.
    std::size_t crossings = 0, above = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        above += series[i] > mean ? 1 : 0;
        if (i > 0 && series[i - 1] <= mean && series[i] > mean)
            ++crossings;
    }
    out.push_back(static_cast<float>(
        static_cast<double>(crossings) /
        static_cast<double>(series.size())));
    out.push_back(static_cast<float>(
        static_cast<double>(above) /
        static_cast<double>(series.size())));

    // Coarse temporal shape + (log) length.
    const std::size_t quarter = std::max<std::size_t>(1, series.size() / 4);
    double head = 0.0, tail = 0.0;
    for (std::size_t i = 0; i < quarter; ++i) {
        head += series[i];
        tail += series[series.size() - 1 - i];
    }
    out.push_back(static_cast<float>(
        head / static_cast<double>(quarter) / norm));
    out.push_back(static_cast<float>(
        tail / static_cast<double>(quarter) / norm));
    out.push_back(static_cast<float>(
        std::log1p(static_cast<double>(series.size())) / 10.0));

    assert(out.size() == kPowerFeatureDim);
    return out;
}

std::vector<float>
thermalFeatures(const std::vector<double> &series)
{
    std::vector<float> out;
    out.reserve(kThermalFeatureDim);
    if (series.empty())
        return std::vector<float>(kThermalFeatureDim, 0.0f);

    const auto [mean, stddev] = meanStd(series);
    const double norm = kThermalFullScaleC;
    const double mn = *std::min_element(series.begin(), series.end());
    const double mx = *std::max_element(series.begin(), series.end());
    out.push_back(static_cast<float>(mean / norm));
    out.push_back(static_cast<float>(stddev / norm));
    out.push_back(static_cast<float>(mn / norm));
    out.push_back(static_cast<float>(mx / norm));
    out.push_back(static_cast<float>(series.back() / norm));

    // Rise dynamics: initial slope and the fraction of the envelope
    // climbed in the first quarter — together a proxy for sustained
    // draw versus bursty draw.
    const std::size_t quarter = std::max<std::size_t>(1, series.size() / 4);
    const double early_rise = series[quarter - 1] - series.front();
    const double full_rise = std::max(1e-9, mx - series.front());
    out.push_back(static_cast<float>(early_rise / norm));
    out.push_back(static_cast<float>(
        std::clamp(early_rise / full_rise, -1.0, 1.0)));
    out.push_back(static_cast<float>(
        std::log1p(static_cast<double>(series.size())) / 10.0));

    pushHistogram(out, series, 0.0, kThermalFullScaleC);

    assert(out.size() == kThermalFeatureDim);
    return out;
}

std::vector<float>
profilerFeatures(const std::vector<double> &counters)
{
    namespace gs = decepticon::gpusim;
    std::vector<float> out(kProfilerFeatureDim, 0.0f);
    if (counters.empty())
        return out;
    const auto at = [&](std::size_t i) {
        return i < counters.size() ? counters[i] : 0.0;
    };
    const double records = std::max(1.0, at(gs::kCtrTotalRecords));
    const double total_us = std::max(1.0, at(gs::kCtrTotalTimeUs));
    std::size_t w = 0;
    // Class mix: launch counts per record, duration share per class —
    // the InferNet feature set.
    for (std::size_t k = 0; k < gs::kProfilerClassCount; ++k)
        out[w++] = static_cast<float>(
            at(gs::kCtrClassCountBase + k) / records);
    for (std::size_t k = 0; k < gs::kProfilerClassCount; ++k)
        out[w++] = static_cast<float>(
            at(gs::kCtrClassDurationBase + k) / total_us);
    out[w++] = static_cast<float>(std::log1p(records) / 10.0);
    out[w++] = static_cast<float>(std::log1p(total_us) / 15.0);
    out[w++] = static_cast<float>(
        at(gs::kCtrUniqueKernels) / records);
    out[w++] = static_cast<float>(
        at(gs::kCtrPeakDurationUs) / total_us);
    out[w++] = static_cast<float>(
        at(gs::kCtrMeanDurationUs) * records / total_us);
    out[w++] = static_cast<float>(
        at(gs::kCtrEncoderRecords) / records);
    out[w++] = static_cast<float>(at(gs::kCtrEncoderTimeFraction));
    out[w++] = static_cast<float>(
        std::log1p(at(gs::kCtrUniqueKernels)) / 6.0);
    assert(w == kProfilerFeatureDim);
    return out;
}

std::vector<float>
channelFeatures(fault::Channel channel,
                const std::vector<double> &series)
{
    switch (channel) {
    case fault::Channel::Power:
        return powerFeatures(series);
    case fault::Channel::Thermal:
        return thermalFeatures(series);
    case fault::Channel::Profiler:
        return profilerFeatures(series);
    case fault::Channel::Timestamp:
        break;
    }
    assert(false && "timestamp channel is classified by the CNN");
    return {};
}

} // namespace decepticon::sidechan
