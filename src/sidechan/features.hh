/**
 * @file
 * Per-channel feature extraction: each emission channel's raw sample
 * series is condensed into a fixed-length, scale-normalized feature
 * vector the lightweight channel classifiers train on. Features are
 * pure functions of the series, so the extractors can run in parallel
 * per capture on the sched pool without ordering effects.
 *
 * The feature families mirror what Energon and InferNet exploit:
 * power level statistics and histogram (which kernel classes run, in
 * what mix), autocorrelation periodicity (how many encoder layers),
 * thermal envelope shape (sustained compute intensity), and the
 * normalized profiler counter mix.
 */

#ifndef DECEPTICON_SIDECHAN_FEATURES_HH
#define DECEPTICON_SIDECHAN_FEATURES_HH

#include <cstddef>
#include <vector>

#include "fault/channel.hh"

namespace decepticon::sidechan {

inline constexpr std::size_t kPowerFeatureDim = 24;
inline constexpr std::size_t kThermalFeatureDim = 16;
/** Profiler features add one derived slot (log total records). */
inline constexpr std::size_t kProfilerFeatureDim = 24;

/** Feature dimensionality of one channel (0 for Timestamp, which is
 *  classified by the fingerprint CNN, not a feature MLP). */
std::size_t featureDim(fault::Channel channel);

/** Power-draw series -> kPowerFeatureDim features. Empty series map
 *  to all-zero vectors (the classifier never sees them; availability
 *  gating happens upstream). */
std::vector<float> powerFeatures(const std::vector<double> &series);

/** Thermal envelope -> kThermalFeatureDim features. */
std::vector<float> thermalFeatures(const std::vector<double> &series);

/** Profiler counter vector -> kProfilerFeatureDim features. Accepts
 *  vectors shorter than the full counter layout (truncated/dropped
 *  captures); missing counters read zero. */
std::vector<float> profilerFeatures(const std::vector<double> &counters);

/** Dispatch on channel. @pre channel != Timestamp */
std::vector<float> channelFeatures(fault::Channel channel,
                                   const std::vector<double> &series);

} // namespace decepticon::sidechan

#endif // DECEPTICON_SIDECHAN_FEATURES_HH
