#include "trace/repair.hh"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/obs.hh"

namespace decepticon::trace {

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

double
median(std::vector<double> &values)
{
    assert(!values.empty());
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + static_cast<long>(mid),
                     values.end());
    double m = values[mid];
    if (values.size() % 2 == 0) {
        const auto lower = std::max_element(
            values.begin(), values.begin() + static_cast<long>(mid));
        m = 0.5 * (m + *lower);
    }
    return m;
}

} // namespace

gpusim::KernelTrace
dedupeRecords(const gpusim::KernelTrace &trace, std::size_t *removed)
{
    gpusim::KernelTrace out;
    out.kernelNames = trace.kernelNames;
    out.records.reserve(trace.records.size());
    std::size_t dropped = 0;
    for (const auto &rec : trace.records) {
        if (!out.records.empty()) {
            const auto &prev = out.records.back();
            if (prev.kernelId == rec.kernelId &&
                prev.tStart == rec.tStart && prev.tEnd == rec.tEnd) {
                ++dropped;
                continue;
            }
        }
        out.records.push_back(rec);
    }
    if (removed != nullptr)
        *removed = dropped;
    return out;
}

std::vector<std::size_t>
alignToReference(const std::vector<int> &reference,
                 const std::vector<int> &capture, std::size_t lookahead)
{
    std::vector<std::size_t> matched(reference.size(), kNpos);
    std::size_t i = 0;
    std::size_t j = 0;
    auto find_ahead = [lookahead](const std::vector<int> &seq,
                                  std::size_t from, int id) {
        const std::size_t end =
            std::min(seq.size(), from + lookahead + 1);
        for (std::size_t k = from; k < end; ++k) {
            if (seq[k] == id)
                return k;
        }
        return kNpos;
    };
    while (i < reference.size() && j < capture.size()) {
        if (reference[i] == capture[j]) {
            matched[i] = j;
            ++i;
            ++j;
            continue;
        }
        // Either the capture kept records the reference dropped
        // (skip capture entries) or the capture dropped this
        // reference record (skip the reference entry). Prefer the
        // shorter skip; tie goes to skipping capture extras.
        const std::size_t in_cap = find_ahead(capture, j + 1, reference[i]);
        const std::size_t in_ref = find_ahead(reference, i + 1, capture[j]);
        if (in_cap != kNpos &&
            (in_ref == kNpos || in_cap - j <= in_ref - i)) {
            j = in_cap;
            matched[i] = j;
            ++i;
            ++j;
        } else if (in_ref != kNpos) {
            i = in_ref;
            matched[i] = j;
            ++i;
            ++j;
        } else {
            // Nothing recognizable nearby: treat the reference record
            // as dropped in this capture and move on.
            ++i;
        }
    }
    return matched;
}

gpusim::KernelTrace
repairTraces(const std::vector<gpusim::KernelTrace> &captures,
             RepairReport *report)
{
    assert(!captures.empty());

    auto sp = obs::span("trace.repair", "trace");
    sp.arg("captures", static_cast<std::uint64_t>(captures.size()));

    std::size_t duplicates_removed = 0;
    std::vector<gpusim::KernelTrace> clean;
    clean.reserve(captures.size());
    for (const auto &cap : captures) {
        std::size_t removed = 0;
        clean.push_back(dedupeRecords(cap, &removed));
        duplicates_removed += removed;
    }

    // The longest capture is the consensus skeleton: with independent
    // per-record drops it is the closest observable approximation of
    // the true schedule.
    std::size_t ref_idx = 0;
    for (std::size_t c = 1; c < clean.size(); ++c) {
        if (clean[c].records.size() > clean[ref_idx].records.size())
            ref_idx = c;
    }
    const gpusim::KernelTrace &ref = clean[ref_idx];
    assert(!ref.records.empty());

    const std::vector<int> ref_ids = ref.kernelIdSequence();
    std::vector<std::vector<std::size_t>> matches;
    matches.reserve(clean.size());
    double aligned_sum = 0.0;
    for (const auto &cap : clean) {
        matches.push_back(
            alignToReference(ref_ids, cap.kernelIdSequence()));
        std::size_t hit = 0;
        for (std::size_t m : matches.back())
            hit += m != kNpos ? 1 : 0;
        aligned_sum += static_cast<double>(hit) /
                       static_cast<double>(ref_ids.size());
    }

    // Rebuild the timeline with median-filtered durations and gaps.
    gpusim::KernelTrace out;
    out.kernelNames = ref.kernelNames;
    out.records.reserve(ref.records.size());
    double clock = 0.0;
    for (std::size_t p = 0; p < ref.records.size(); ++p) {
        std::vector<double> durations;
        std::vector<double> gaps;
        for (std::size_t c = 0; c < clean.size(); ++c) {
            const std::size_t m = matches[c][p];
            if (m == kNpos)
                continue;
            const auto &recs = clean[c].records;
            durations.push_back(recs[m].duration());
            // A leading gap is only trustworthy when the previous
            // consensus record is this record's direct predecessor in
            // the same capture (no dropped records in between).
            if (p == 0) {
                if (m == 0)
                    gaps.push_back(recs[0].tStart);
            } else if (matches[c][p - 1] != kNpos &&
                       matches[c][p - 1] + 1 == m) {
                gaps.push_back(recs[m].tStart -
                               recs[m - 1].tEnd);
            }
        }
        gpusim::KernelRecord rec = ref.records[p];
        const double dur =
            durations.empty() ? rec.duration() : median(durations);
        double gap;
        if (!gaps.empty()) {
            gap = median(gaps);
        } else if (p == 0) {
            gap = rec.tStart;
        } else {
            gap = rec.tStart - ref.records[p - 1].tEnd;
        }
        rec.tStart = clock + std::max(0.0, gap);
        rec.tEnd = rec.tStart + std::max(0.0, dur);
        clock = rec.tEnd;
        out.records.push_back(rec);
    }

    const double aligned_fraction =
        aligned_sum / static_cast<double>(clean.size());
    if (report != nullptr) {
        report->captures = captures.size();
        report->referenceRecords = out.records.size();
        report->duplicatesRemoved = duplicates_removed;
        report->meanAlignedFraction = aligned_fraction;
    }
    obs::count("trace.repairs");
    obs::count("trace.repair.duplicates_removed", duplicates_removed);
    obs::count("trace.repair.consensus_records", out.records.size());
    obs::gaugeSet("trace.repair.mean_aligned_fraction",
                  aligned_fraction);
    sp.arg("consensus_records",
           static_cast<std::uint64_t>(out.records.size()));
    return out;
}

} // namespace decepticon::trace
