#include "trace/image.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/obs.hh"
#include "util/stats.hh"

namespace decepticon::trace {

tensor::Tensor
rasterize(const gpusim::KernelTrace &trace, std::size_t resolution)
{
    assert(resolution >= 8);
    obs::count("trace.rasterize_calls");
    tensor::Tensor img({resolution, resolution});
    if (trace.records.empty())
        return img;

    const double total = trace.totalTime();
    // Normalize the duration axis by a high percentile rather than the
    // raw maximum so a single noise-inflated kernel cannot rescale the
    // whole image (the CNN's noise tolerance in Fig. 14 presumes the
    // picture stays stable under small perturbations).
    const double peak =
        util::percentile(trace.durations(), 98.0);
    if (total <= 0.0 || peak <= 0.0)
        return img;

    const auto res = static_cast<double>(resolution - 1);
    for (const auto &rec : trace.records) {
        const double x = std::clamp(rec.tStart / total, 0.0, 1.0);
        const double y = std::clamp(rec.duration() / peak, 0.0, 1.0);
        const auto col = static_cast<std::size_t>(x * res);
        // Long-duration kernels at the top (row 0), like the plots.
        const auto row = static_cast<std::size_t>((1.0 - y) * res);
        float &px = img.at(row, col);
        px = std::min(1.0f, px + 0.34f);
    }
    return img;
}

gpusim::KernelTrace
cropRecords(const gpusim::KernelTrace &trace, std::size_t begin,
            std::size_t end)
{
    assert(begin <= end && end <= trace.records.size());
    gpusim::KernelTrace out;
    out.kernelNames = trace.kernelNames;
    if (begin == end)
        return out;
    const double t0 = trace.records[begin].tStart;
    out.records.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
        gpusim::KernelRecord rec = trace.records[i];
        rec.tStart -= t0;
        rec.tEnd -= t0;
        out.records.push_back(rec);
    }
    return out;
}

tensor::Tensor
boxBlur3(const tensor::Tensor &img)
{
    assert(img.rank() == 2);
    const std::size_t h = img.dim(0), w = img.dim(1);
    tensor::Tensor out({h, w});
    for (std::size_t r = 0; r < h; ++r) {
        for (std::size_t c = 0; c < w; ++c) {
            float sum = 0.0f;
            int n = 0;
            for (int dr = -1; dr <= 1; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    const long rr = static_cast<long>(r) + dr;
                    const long cc = static_cast<long>(c) + dc;
                    if (rr < 0 || cc < 0 ||
                        rr >= static_cast<long>(h) ||
                        cc >= static_cast<long>(w))
                        continue;
                    sum += img.at(static_cast<std::size_t>(rr),
                                  static_cast<std::size_t>(cc));
                    ++n;
                }
            }
            out.at(r, c) = sum / static_cast<float>(n);
        }
    }
    return out;
}

std::string
renderAscii(const tensor::Tensor &img, std::size_t max_cols)
{
    assert(img.rank() == 2);
    assert(max_cols >= 8);
    const std::size_t h = img.dim(0), w = img.dim(1);
    const std::size_t step = (w + max_cols - 1) / max_cols;
    static const char kRamp[] = {' ', '.', ':', '*', '#', '@'};

    std::string out;
    out.reserve((w / step + 2) * (h / step + 1));
    for (std::size_t r = 0; r < h; r += step) {
        for (std::size_t c = 0; c < w; c += step) {
            // Max-pool the block so sparse ink stays visible.
            float v = 0.0f;
            for (std::size_t dr = 0; dr < step && r + dr < h; ++dr)
                for (std::size_t dc = 0; dc < step && c + dc < w; ++dc)
                    v = std::max(v, img.at(r + dr, c + dc));
            const auto idx = static_cast<std::size_t>(
                std::min(1.0f, v) * 5.0f);
            out.push_back(kRamp[idx]);
        }
        out.push_back('\n');
    }
    return out;
}

double
imageDistance(const tensor::Tensor &a, const tensor::Tensor &b)
{
    assert(a.size() == b.size());
    if (a.size() == 0)
        return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += std::fabs(static_cast<double>(a[i]) - b[i]);
    return s / static_cast<double>(a.size());
}

} // namespace decepticon::trace
