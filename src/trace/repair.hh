/**
 * @file
 * Multi-capture trace repair for the lossy profiling channel. A real
 * kernel-trace capture (CUPTI-style) drops records when its buffer
 * overflows, delivers some records twice, and can truncate the tail
 * when the profiler detaches early. The attacker's remedy is cheap:
 * capture the victim's inference R times, align the noisy captures,
 * and rebuild one consensus trace — duplicates collapsed, per-record
 * durations median-filtered, timeline re-accumulated — before the
 * fingerprint pipeline images it.
 */

#ifndef DECEPTICON_TRACE_REPAIR_HH
#define DECEPTICON_TRACE_REPAIR_HH

#include <cstddef>
#include <vector>

#include "gpusim/kernel.hh"

namespace decepticon::trace {

/** Accounting of one repair pass. */
struct RepairReport
{
    std::size_t captures = 0;          ///< input captures consumed
    std::size_t referenceRecords = 0;  ///< records in the consensus
    std::size_t duplicatesRemoved = 0; ///< exact duplicates collapsed
    /** Mean fraction of consensus records each capture matched. */
    double meanAlignedFraction = 0.0;
};

/**
 * Collapse CUPTI-style duplicated records: a record identical to its
 * predecessor (same kernel id and timestamps) is a capture artifact,
 * not a second invocation.
 */
gpusim::KernelTrace dedupeRecords(const gpusim::KernelTrace &trace,
                                  std::size_t *removed = nullptr);

/**
 * Greedy alignment of a capture against a reference kernel-id
 * sequence with a bounded lookahead window. Returns, for each
 * reference position, the matched capture index or npos. Assumes both
 * sequences are (noisy) subsequences of one underlying schedule.
 */
std::vector<std::size_t>
alignToReference(const std::vector<int> &reference,
                 const std::vector<int> &capture,
                 std::size_t lookahead = 8);

/**
 * Build one consensus trace from R noisy captures of the same
 * inference: dedupe each capture, take the longest as the reference
 * skeleton, align the rest to it, and replace every record's duration
 * and leading gap with the median across the captures that observed
 * it. Timestamps are re-accumulated so the result is physically
 * consistent (monotone, non-overlapping).
 *
 * @pre !captures.empty(); at least one capture has a record
 */
gpusim::KernelTrace
repairTraces(const std::vector<gpusim::KernelTrace> &captures,
             RepairReport *report = nullptr);

} // namespace decepticon::trace

#endif // DECEPTICON_TRACE_REPAIR_HH
