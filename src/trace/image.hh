/**
 * @file
 * Conversion of kernel execution traces into square grayscale images,
 * the "architecture hint data conversion" of paper Sec. 5.4.2: the
 * (invocation time, duration) scatter is plotted with equal axis
 * scales, stripped of all decoration, grayscaled, and resized to a
 * fixed resolution so a CNN can classify the execution pattern.
 */

#ifndef DECEPTICON_TRACE_IMAGE_HH
#define DECEPTICON_TRACE_IMAGE_HH

#include <cstddef>
#include <string>

#include "gpusim/kernel.hh"
#include "tensor/tensor.hh"

namespace decepticon::trace {

/**
 * Rasterize a trace into a (resolution x resolution) grayscale image
 * in [0, 1]. X is invocation time normalized to the trace duration;
 * Y is kernel duration normalized to the trace's peak duration (long
 * kernels near the top row, as in the paper's plots). Each record
 * splats additively so dense kernel bands appear brighter.
 *
 * The paper renders 1024x1024 images; the resolution here is a
 * parameter (64 by default across the repo) so CNN training stays
 * tractable on one CPU core — see DESIGN.md, substitution table.
 */
tensor::Tensor rasterize(const gpusim::KernelTrace &trace,
                         std::size_t resolution);

/**
 * Keep only records with index in [begin, end) and rebase timestamps
 * to start at zero. Used by the corner-case pre-processing that crops
 * XLA-optimized traces to their encoder regions (paper Sec. 5.4.3).
 */
gpusim::KernelTrace cropRecords(const gpusim::KernelTrace &trace,
                                std::size_t begin, std::size_t end);

/** Mean absolute pixel difference between two equal-size images. */
double imageDistance(const tensor::Tensor &a, const tensor::Tensor &b);

/**
 * 3x3 box blur (edge-clamped). Raw rasterized traces are sparse and
 * sub-pixel timing jitter moves single pixels; blurring before a
 * scalar distance comparison makes the comparison shift-tolerant the
 * same way the CNN's convolutions are.
 */
tensor::Tensor boxBlur3(const tensor::Tensor &img);

/**
 * Render a grayscale image as ASCII art using an intensity ramp
 * (space, '.', ':', '*', '#', '@'), down-sampled to at most max_cols
 * columns — terminal visualization of the paper's fingerprint plots.
 */
std::string renderAscii(const tensor::Tensor &img,
                        std::size_t max_cols = 64);

} // namespace decepticon::trace

#endif // DECEPTICON_TRACE_IMAGE_HH
