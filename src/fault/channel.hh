/**
 * @file
 * Per-channel fault models for the multi-modal side-channel layer.
 * Where fault.hh models the two original channels (bit probes and
 * kernel-record captures) with bespoke processes, this file gives
 * every emission channel its own generic sample-series fault model:
 * dropout, tail truncation, additive noise, quantization, clipping,
 * and outright jamming — the countermeasures a victim can aim at any
 * one channel independently.
 *
 * Determinism contract: each ChannelFaultModel owns an independent
 * stream derived via util::Rng::split, keyed by the channel, and each
 * capture corrupts under a further split on the capture seed. Jamming
 * one channel, or reordering captures across channels, never perturbs
 * another channel's fault stream — which is what lets the dropout
 * matrix tests hold bit-for-bit as availability subsets change.
 */

#ifndef DECEPTICON_FAULT_CHANNEL_HH
#define DECEPTICON_FAULT_CHANNEL_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace decepticon::fault {

/** The four level-1 evidence channels. */
enum class Channel
{
    Timestamp = 0, ///< kernel execution trace (the original channel)
    Power = 1,     ///< sampled board draw (Energon)
    Thermal = 2,   ///< die temperature envelope
    Profiler = 3,  ///< aggregate counters (InferNet)
};

inline constexpr std::size_t kNumChannels = 4;

/** Lower-case channel name for metric/report labels. */
const char *channelName(Channel channel);

/** Fault process of one channel. All rates are in [0, 1]. */
struct ChannelFaultSpec
{
    /** Probability each sample is lost. Fixed-length channels
     *  (profiler counters) zero the slot; series channels drop it. */
    double dropoutRate = 0.0;
    /** Probability a capture loses its tail (sensor stopped early). */
    double truncateProbability = 0.0;
    /** Maximum fraction of samples a tail truncation removes. */
    double truncateMaxFraction = 0.3;
    /** Additive Gaussian noise sigma, relative to the series' mean
     *  absolute value (0 = off). */
    double noiseSigma = 0.0;
    /** Quantization step, relative to the series' mean absolute
     *  value (0 = off). */
    double quantStep = 0.0;
    /** Clip ceiling as a fraction of the observed range above the
     *  minimum (1 = off): saturating sensors lose the peaks first. */
    double clipFraction = 1.0;
    /** Channel fully suppressed: every capture arrives empty. */
    bool jammed = false;
};

/** Ground-truth bookkeeping of injected channel faults. */
struct ChannelFaultCounters
{
    std::size_t captures = 0;
    std::size_t jammedCaptures = 0;
    std::size_t samplesDropped = 0;
    std::size_t samplesTruncated = 0;
    std::size_t samplesNoised = 0;
    std::size_t samplesQuantized = 0;
    std::size_t samplesClipped = 0;
};

/**
 * Applies one ChannelFaultSpec to sample series. Pure function of
 * (channel, spec, base stream, capture seed, input); corrupting the
 * same capture twice replays identically.
 */
class ChannelFaultModel
{
  public:
    /** Standalone construction: stream = Rng(seed).split(channel). */
    ChannelFaultModel(Channel channel, const ChannelFaultSpec &spec,
                      std::uint64_t seed);

    /** Construction from a pre-split base stream (multi-channel). */
    ChannelFaultModel(Channel channel, const ChannelFaultSpec &spec,
                      const util::Rng &base);

    Channel channel() const { return channel_; }
    const ChannelFaultSpec &spec() const { return spec_; }

    /** Whether this channel delivers anything at all. */
    bool jammed() const { return spec_.jammed; }

    /**
     * One noisy capture of a sample series. Returns empty when the
     * channel is jammed. Fault order: truncation, dropout, noise,
     * quantization, clipping — the physical order (what the sensor
     * never saw cannot be noised).
     */
    std::vector<double> corruptSeries(const std::vector<double> &series,
                                      std::uint64_t capture_seed);

    const ChannelFaultCounters &counters() const { return counters_; }

    /** Publish "fault.channel.<name>.*" gauges to the global
     *  registry (no-op when metrics are off). */
    void publishCounters() const;

    /**
     * Zero the ledger and re-publish the zeroed gauges, so a reset is
     * visible downstream instead of freezing the last session's
     * totals (the bitprobe resetStats pattern).
     */
    void resetCounters();

  private:
    Channel channel_;
    ChannelFaultSpec spec_;
    /** Per-channel stream; capture streams split off this. */
    util::Rng base_;
    ChannelFaultCounters counters_;
};

/** One fault spec per channel under a single root seed. */
struct MultiChannelFaultSpec
{
    std::array<ChannelFaultSpec, kNumChannels> channels{};
    std::uint64_t seed = 0;

    ChannelFaultSpec &at(Channel c)
    {
        return channels[static_cast<std::size_t>(c)];
    }
    const ChannelFaultSpec &at(Channel c) const
    {
        return channels[static_cast<std::size_t>(c)];
    }
};

/**
 * The full per-victim fault surface: one ChannelFaultModel per
 * channel, each with an independent stream split off the root seed.
 */
class MultiChannelFaultModel
{
  public:
    explicit MultiChannelFaultModel(const MultiChannelFaultSpec &spec);

    ChannelFaultModel &model(Channel c)
    {
        return models_[static_cast<std::size_t>(c)];
    }
    const ChannelFaultModel &model(Channel c) const
    {
        return models_[static_cast<std::size_t>(c)];
    }

    /** Corrupt one capture on the given channel. */
    std::vector<double> corrupt(Channel c,
                                const std::vector<double> &series,
                                std::uint64_t capture_seed)
    {
        return model(c).corruptSeries(series, capture_seed);
    }

    /** Reset (and re-publish) every channel's counters. */
    void resetCounters();

  private:
    std::vector<ChannelFaultModel> models_;
};

} // namespace decepticon::fault

#endif // DECEPTICON_FAULT_CHANNEL_HH
