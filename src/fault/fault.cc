#include "fault/fault.hh"

#include <algorithm>
#include <cassert>

#include "obs/obs.hh"
#include "util/rng.hh"

namespace decepticon::fault {

namespace {

/** Stream tags separating the independent fault processes. */
constexpr std::uint64_t kStuckTag = 0x57ac6b17ULL;
constexpr std::uint64_t kStuckValueTag = 0x57ac6b18ULL;
constexpr std::uint64_t kBurstTag = 0xb0257f00ULL;
constexpr std::uint64_t kFlipTag = 0xf11bULL;
constexpr std::uint64_t kFailTag = 0xfa11ULL;
constexpr std::uint64_t kGarbageTag = 0x6a3ba6eULL;
constexpr std::uint64_t kAttemptKeyTag = 0xa77e3b7ULL;
constexpr std::uint64_t kTraceTag = 0x73ace0ULL;

/** Uniform double in [0, 1) from a 64-bit hash. */
double
uniformFromHash(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
validRate(double r)
{
    return r >= 0.0 && r < 1.0;
}

} // namespace

bool
FaultSpec::probeFaultsEnabled() const
{
    return probeFlipRate > 0.0 || stuckBitRate > 0.0 ||
           transientFailureRate > 0.0 || burstRowFraction > 0.0;
}

bool
FaultSpec::traceFaultsEnabled() const
{
    return recordDropRate > 0.0 || recordDuplicateRate > 0.0 ||
           truncateProbability > 0.0;
}

FaultInjector::FaultInjector(const FaultSpec &spec) : spec_(spec)
{
    assert(validRate(spec.probeFlipRate));
    assert(validRate(spec.stuckBitRate));
    assert(validRate(spec.transientFailureRate));
    assert(validRate(spec.burstRowFraction));
    assert(validRate(spec.burstFlipRate));
    assert(validRate(spec.recordDropRate));
    assert(validRate(spec.recordDuplicateRate));
    assert(spec.truncateProbability >= 0.0 &&
           spec.truncateProbability <= 1.0);
    assert(spec.truncateMaxFraction >= 0.0 &&
           spec.truncateMaxFraction < 1.0);
    assert(spec.weightsPerRow >= 1);
}

std::uint64_t
FaultInjector::addressHash(std::uint64_t tag, std::size_t layer,
                           std::size_t index, int word_bit) const
{
    util::SplitMix64 mix(spec_.seed ^ tag);
    std::uint64_t h = mix.next();
    h ^= util::SplitMix64(h ^ (static_cast<std::uint64_t>(layer) + 1)).next();
    h ^= util::SplitMix64(h ^ (static_cast<std::uint64_t>(index) + 1)).next();
    h ^= util::SplitMix64(h ^ static_cast<std::uint64_t>(word_bit + 2))
             .next();
    return h;
}

bool
FaultInjector::cellStuck(std::size_t layer, std::size_t index,
                         int word_bit) const
{
    if (spec_.stuckBitRate <= 0.0)
        return false;
    return uniformFromHash(addressHash(kStuckTag, layer, index,
                                       word_bit)) < spec_.stuckBitRate;
}

bool
FaultInjector::rowBursty(std::size_t layer, std::size_t index) const
{
    if (spec_.burstRowFraction <= 0.0)
        return false;
    const std::size_t row = index / spec_.weightsPerRow;
    return uniformFromHash(addressHash(kBurstTag, layer, row, 0)) <
           spec_.burstRowFraction;
}

ProbeFaultOutcome
FaultInjector::perturbProbe(std::size_t layer, std::size_t index,
                            int word_bit, bool true_bit)
{
    ProbeFaultOutcome out;
    out.bit = true_bit;

    const std::uint64_t addr_key =
        addressHash(kAttemptKeyTag, layer, index, word_bit);
    const std::uint32_t attempt = attempts_[addr_key]++;

    // Transient probe failure: rounds were spent, nothing was learned.
    // The delivered bit is address/attempt hash garbage so a caller
    // that ignores the failure flag degrades honestly.
    if (spec_.transientFailureRate > 0.0 &&
        uniformFromHash(addressHash(kFailTag ^ attempt, layer, index,
                                    word_bit)) <
            spec_.transientFailureRate) {
        ++counters_.probeFailures;
        out.ok = false;
        out.bit = (addressHash(kGarbageTag ^ attempt, layer, index,
                               word_bit) &
                   1u) != 0;
        return out;
    }

    // Stuck cells answer with their stuck value on every attempt;
    // retrying and voting cannot recover the true bit.
    if (cellStuck(layer, index, word_bit)) {
        ++counters_.stuckReads;
        out.bit = (addressHash(kStuckValueTag, layer, index, word_bit) &
                   1u) != 0;
        if (out.bit != true_bit)
            ++counters_.bitFlips;
        return out;
    }

    // Transient flips, elevated inside burst-faulty rows.
    double flip_rate = spec_.probeFlipRate;
    const bool bursty = rowBursty(layer, index);
    if (bursty)
        flip_rate = std::max(flip_rate, spec_.burstFlipRate);
    if (flip_rate > 0.0 &&
        uniformFromHash(addressHash(kFlipTag ^ attempt, layer, index,
                                    word_bit)) < flip_rate) {
        out.bit = !out.bit;
        ++counters_.bitFlips;
        if (bursty)
            ++counters_.burstFlips;
    }
    return out;
}

gpusim::KernelTrace
FaultInjector::corruptTrace(const gpusim::KernelTrace &trace,
                            std::uint64_t capture_seed)
{
    gpusim::KernelTrace out;
    out.kernelNames = trace.kernelNames;
    // Attempts are counted before the healthy early-out so the
    // watchdog's corrupted/attempts band sees honest denominators.
    obs::count("fault.capture_attempts");
    if (trace.records.empty() || !spec_.traceFaultsEnabled()) {
        out.records = trace.records;
        return out;
    }

    util::SplitMix64 mix(spec_.seed ^ kTraceTag);
    util::Rng rng(mix.next() ^ capture_seed);

    const std::size_t dropped_before = counters_.recordsDropped;
    const std::size_t duplicated_before = counters_.recordsDuplicated;
    const std::size_t truncated_before = counters_.recordsTruncated;

    out.records.reserve(trace.records.size());
    for (const auto &rec : trace.records) {
        if (spec_.recordDropRate > 0.0 &&
            rng.bernoulli(spec_.recordDropRate)) {
            ++counters_.recordsDropped;
            continue;
        }
        out.records.push_back(rec);
        // CUPTI-style duplication delivers the identical record twice.
        if (spec_.recordDuplicateRate > 0.0 &&
            rng.bernoulli(spec_.recordDuplicateRate)) {
            out.records.push_back(rec);
            ++counters_.recordsDuplicated;
        }
    }

    if (spec_.truncateProbability > 0.0 &&
        rng.bernoulli(spec_.truncateProbability) &&
        out.records.size() > 1) {
        const double frac = rng.uniform(0.0, spec_.truncateMaxFraction);
        const auto cut = static_cast<std::size_t>(
            frac * static_cast<double>(out.records.size()));
        const std::size_t keep =
            std::max<std::size_t>(1, out.records.size() - cut);
        if (keep < out.records.size()) {
            counters_.recordsTruncated += out.records.size() - keep;
            ++counters_.tailsTruncated;
            out.records.resize(keep);
        }
    }

    // A capture that lost everything still delivers one record; a
    // fully empty profiler buffer would abort the session, not the
    // experiment.
    if (out.records.empty())
        out.records.push_back(trace.records.front());

    obs::count("fault.captures_corrupted");
    obs::flightRecord(
        obs::FlightEventKind::Fault, "trace_capture", "trace_corrupted",
        static_cast<double>(counters_.recordsDropped - dropped_before));
    obs::count("fault.records_dropped",
               counters_.recordsDropped - dropped_before);
    obs::count("fault.records_duplicated",
               counters_.recordsDuplicated - duplicated_before);
    obs::count("fault.records_truncated",
               counters_.recordsTruncated - truncated_before);
    return out;
}

} // namespace decepticon::fault
