#include "fault/channel.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hh"
#include "obs/obs.hh"

namespace decepticon::fault {

namespace {

/** Mean absolute value — the scale noise/quantization are relative
 *  to, so one spec behaves comparably on watts, degrees, counters. */
double
seriesScale(const std::vector<double> &series)
{
    if (series.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : series)
        sum += std::fabs(v);
    return sum / static_cast<double>(series.size());
}

} // anonymous namespace

const char *
channelName(Channel channel)
{
    switch (channel) {
    case Channel::Timestamp:
        return "timestamp";
    case Channel::Power:
        return "power";
    case Channel::Thermal:
        return "thermal";
    case Channel::Profiler:
        return "profiler";
    }
    return "unknown";
}

ChannelFaultModel::ChannelFaultModel(Channel channel,
                                     const ChannelFaultSpec &spec,
                                     std::uint64_t seed)
    : channel_(channel),
      spec_(spec),
      base_(util::Rng(seed).split(static_cast<std::uint64_t>(channel)))
{
}

ChannelFaultModel::ChannelFaultModel(Channel channel,
                                     const ChannelFaultSpec &spec,
                                     const util::Rng &base)
    : channel_(channel), spec_(spec), base_(base)
{
}

std::vector<double>
ChannelFaultModel::corruptSeries(const std::vector<double> &series,
                                 std::uint64_t capture_seed)
{
    ++counters_.captures;
    obs::count("fault.channel.capture_attempts");
    if (spec_.jammed) {
        ++counters_.jammedCaptures;
        obs::count("fault.channel.jammed_captures");
        obs::flightRecord(obs::FlightEventKind::Fault, "trace_capture",
                          channelName(channel_), 1.0);
        return {};
    }
    std::vector<double> out = series;
    if (out.empty())
        return out;
    util::Rng rng = base_.split(capture_seed);

    // Tail truncation: the sensor stopped early, the tail never
    // existed for any later process to touch.
    if (spec_.truncateProbability > 0.0 &&
        rng.bernoulli(spec_.truncateProbability)) {
        const double frac =
            rng.uniform(0.0, spec_.truncateMaxFraction);
        const auto cut = static_cast<std::size_t>(
            static_cast<double>(out.size()) * frac);
        const std::size_t keep = std::max<std::size_t>(
            1, out.size() - cut);
        counters_.samplesTruncated += out.size() - keep;
        out.resize(keep);
    }

    // Dropout. Profiler counters are a fixed-layout vector, so a
    // dropped counter reads zero; series channels lose the sample.
    if (spec_.dropoutRate > 0.0) {
        if (channel_ == Channel::Profiler) {
            for (double &v : out) {
                if (rng.bernoulli(spec_.dropoutRate)) {
                    v = 0.0;
                    ++counters_.samplesDropped;
                }
            }
        } else {
            std::vector<double> kept;
            kept.reserve(out.size());
            for (double v : out) {
                if (rng.bernoulli(spec_.dropoutRate))
                    ++counters_.samplesDropped;
                else
                    kept.push_back(v);
            }
            out = std::move(kept);
        }
    }
    if (out.empty())
        return out;

    const double scale = seriesScale(out);

    if (spec_.noiseSigma > 0.0 && scale > 0.0) {
        const double sigma = spec_.noiseSigma * scale;
        for (double &v : out)
            v += rng.gaussian(0.0, sigma);
        counters_.samplesNoised += out.size();
    }

    if (spec_.quantStep > 0.0 && scale > 0.0) {
        const double step = spec_.quantStep * scale;
        for (double &v : out)
            v = std::round(v / step) * step;
        counters_.samplesQuantized += out.size();
    }

    if (spec_.clipFraction < 1.0) {
        const auto [mn_it, mx_it] =
            std::minmax_element(out.begin(), out.end());
        const double lo = *mn_it;
        const double ceiling =
            lo + std::max(0.0, spec_.clipFraction) * (*mx_it - lo);
        for (double &v : out) {
            if (v > ceiling) {
                v = ceiling;
                ++counters_.samplesClipped;
            }
        }
    }
    return out;
}

void
ChannelFaultModel::publishCounters() const
{
    if (!obs::metricsEnabled())
        return;
    auto &registry = obs::metrics();
    const std::string prefix =
        std::string("fault.channel.") + channelName(channel_) + ".";
    const auto gauge = [&](const char *field, std::size_t value) {
        registry.setGauge(prefix + field, static_cast<double>(value));
    };
    gauge("captures", counters_.captures);
    gauge("jammed_captures", counters_.jammedCaptures);
    gauge("samples_dropped", counters_.samplesDropped);
    gauge("samples_truncated", counters_.samplesTruncated);
    gauge("samples_noised", counters_.samplesNoised);
    gauge("samples_quantized", counters_.samplesQuantized);
    gauge("samples_clipped", counters_.samplesClipped);
}

void
ChannelFaultModel::resetCounters()
{
    counters_ = ChannelFaultCounters{};
    // Keep the registry honest across a reset, exactly like
    // BitProbeChannel::resetStats.
    publishCounters();
}

MultiChannelFaultModel::MultiChannelFaultModel(
    const MultiChannelFaultSpec &spec)
{
    // One split per channel off the root: streams are independent and
    // insensitive to the order the channels are exercised in.
    const util::Rng root(spec.seed);
    models_.reserve(kNumChannels);
    for (std::size_t c = 0; c < kNumChannels; ++c)
        models_.emplace_back(static_cast<Channel>(c), spec.channels[c],
                             root.split(c));
}

void
MultiChannelFaultModel::resetCounters()
{
    for (auto &m : models_)
        m.resetCounters();
}

} // namespace decepticon::fault
