/**
 * @file
 * Unreliable-channel model: deterministic, seed-driven fault processes
 * for the two side channels the attack depends on. The reproduction's
 * channels are otherwise perfect; the real ones are not. DeepSteal's
 * rowhammer reads are noisy and partially failing (bits flip, some
 * cells are stuck, whole bursts inside a DRAM row misbehave, and a
 * hammering attempt can simply not land while still costing rounds),
 * and GPU profiling channels lose kernel records (CUPTI-style buffer
 * overflows drop or duplicate records and truncate trace tails).
 *
 * Every fault decision draws from util::rng streams derived from one
 * FaultSpec seed, so a faulty experiment replays bit-for-bit:
 *  - *address-stable* faults (stuck-at cells, burst rows) are pure
 *    hashes of (seed, address) — re-reading a stuck bit returns the
 *    same wrong value, which is what defeats naive majority voting and
 *    forces the baseline fallback;
 *  - *per-attempt* faults (transient flips, probe failures) draw from
 *    a per-address attempt counter, so retries see fresh randomness in
 *    a call-order-independent way.
 */

#ifndef DECEPTICON_FAULT_FAULT_HH
#define DECEPTICON_FAULT_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "gpusim/kernel.hh"

namespace decepticon::fault {

/** Per-channel fault process parameters. All rates are in [0, 1). */
struct FaultSpec
{
    // ---- bit-probe (rowhammer) channel ----
    /** Probability a probed bit arrives flipped (transient read noise). */
    double probeFlipRate = 0.0;
    /** Fraction of bit cells stuck at a fixed (wrong-or-right) value. */
    double stuckBitRate = 0.0;
    /**
     * Probability a probe attempt fails outright: the attacker learns
     * nothing, but the hammer rounds are spent anyway.
     */
    double transientFailureRate = 0.0;
    /** Fraction of DRAM rows whose reads flip at burstFlipRate. */
    double burstRowFraction = 0.0;
    /** Flip probability inside a burst-faulty row. */
    double burstFlipRate = 0.25;
    /** Weights per modelled DRAM row (8 KB row / 4-byte float). */
    std::size_t weightsPerRow = 2048;

    // ---- trace-capture channel ----
    /** Probability each kernel record is dropped from a capture. */
    double recordDropRate = 0.0;
    /** Probability each kernel record is duplicated in a capture. */
    double recordDuplicateRate = 0.0;
    /** Probability a capture loses its tail (profiler stopped early). */
    double truncateProbability = 0.0;
    /** Maximum fraction of records lost by a tail truncation. */
    double truncateMaxFraction = 0.2;

    /** Root seed of every fault stream. */
    std::uint64_t seed = 0;

    /** Whether any bit-probe fault process is active. */
    bool probeFaultsEnabled() const;

    /** Whether any trace-capture fault process is active. */
    bool traceFaultsEnabled() const;
};

/** Counts of injected faults (ground-truth bookkeeping, not visible
 *  to the attacker). */
struct FaultCounters
{
    std::size_t bitFlips = 0;
    std::size_t stuckReads = 0; ///< reads answered by a stuck cell
    std::size_t burstFlips = 0; ///< flips attributable to burst rows
    std::size_t probeFailures = 0;
    std::size_t recordsDropped = 0;
    std::size_t recordsDuplicated = 0;
    std::size_t tailsTruncated = 0;
    std::size_t recordsTruncated = 0;
};

/** Outcome of one faulty probe attempt. */
struct ProbeFaultOutcome
{
    /** False when the attempt failed (bit carries no information). */
    bool ok = true;
    /** The delivered bit (garbage when !ok). */
    bool bit = false;
};

/**
 * Applies a FaultSpec to channel interactions. One injector instance
 * models one physical victim; its behaviour is a pure function of the
 * spec (plus per-address attempt counters), so identical call
 * sequences replay identically and reads of distinct addresses are
 * order-independent.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultSpec &spec);

    const FaultSpec &spec() const { return spec_; }

    /**
     * Pass one probed bit through the probe fault process. Advances
     * the per-address attempt counter, so retrying the same bit can
     * recover from transient faults but never from stuck cells.
     */
    ProbeFaultOutcome perturbProbe(std::size_t layer, std::size_t index,
                                   int word_bit, bool true_bit);

    /** Whether the cell at this address is stuck (address-stable). */
    bool cellStuck(std::size_t layer, std::size_t index,
                   int word_bit) const;

    /** Whether the row holding this weight is burst-faulty. */
    bool rowBursty(std::size_t layer, std::size_t index) const;

    /**
     * One noisy capture of a kernel trace: records dropped and
     * duplicated independently, plus an optional tail truncation —
     * the CUPTI-buffer-overflow failure mode. Deterministic per
     * (spec seed, capture_seed); at least one record always survives
     * a non-empty input.
     */
    gpusim::KernelTrace corruptTrace(const gpusim::KernelTrace &trace,
                                     std::uint64_t capture_seed);

    const FaultCounters &counters() const { return counters_; }

    void resetCounters() { counters_ = FaultCounters{}; }

  private:
    /** Stable 64-bit hash of an address under a stream tag. */
    std::uint64_t addressHash(std::uint64_t tag, std::size_t layer,
                              std::size_t index, int word_bit) const;

    FaultSpec spec_;
    FaultCounters counters_;
    /** Per-address attempt counters driving per-attempt randomness. */
    std::unordered_map<std::uint64_t, std::uint32_t> attempts_;
};

} // namespace decepticon::fault

#endif // DECEPTICON_FAULT_FAULT_HH
