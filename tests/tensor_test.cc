/**
 * @file
 * Unit tests for the dense tensor substrate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace dt = decepticon::tensor;
namespace du = decepticon::util;

TEST(Tensor, DefaultIsEmpty)
{
    dt::Tensor t;
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ShapeAndZeroInit)
{
    dt::Tensor t({2, 3});
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.dim(0), 2u);
    EXPECT_EQ(t.dim(1), 3u);
    EXPECT_EQ(t.size(), 6u);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillValueConstructor)
{
    dt::Tensor t({4}, 2.5f);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, At2dRowMajor)
{
    dt::Tensor t({2, 3});
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t[5], 7.0f);
    t.at(0, 1) = 3.0f;
    EXPECT_EQ(t[1], 3.0f);
}

TEST(Tensor, At3dIndexing)
{
    dt::Tensor t({2, 3, 4});
    t.at(1, 2, 3) = 9.0f;
    EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 9.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    dt::Tensor t({2, 3});
    for (std::size_t i = 0; i < 6; ++i)
        t[i] = static_cast<float>(i);
    dt::Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.dim(0), 3u);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, FillUniformWithinBounds)
{
    du::Rng rng(1);
    dt::Tensor t({1000});
    t.fillUniform(rng, 0.25f);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], -0.25f);
        EXPECT_LE(t[i], 0.25f);
    }
}

TEST(Tensor, FillGaussianStats)
{
    du::Rng rng(2);
    dt::Tensor t({20000});
    t.fillGaussian(rng, 0.1f);
    double mean = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i)
        mean += t[i];
    mean /= static_cast<double>(t.size());
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(t.meanAbs(), 0.1 * std::sqrt(2.0 / M_PI), 0.01);
}

TEST(Tensor, XavierBound)
{
    du::Rng rng(3);
    dt::Tensor t({64, 64});
    t.fillXavier(rng, 64, 64);
    const float bound = std::sqrt(6.0f / 128.0f);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_LE(std::fabs(t[i]), bound + 1e-6f);
}

TEST(Tensor, SumAndMeanAbs)
{
    dt::Tensor t({3});
    t[0] = 1.0f;
    t[1] = -2.0f;
    t[2] = 3.0f;
    EXPECT_DOUBLE_EQ(t.sum(), 2.0);
    EXPECT_DOUBLE_EQ(t.meanAbs(), 2.0);
}

TEST(Tensor, ShapeString)
{
    dt::Tensor t({2, 3});
    EXPECT_EQ(t.shapeString(), "[2, 3]");
}

TEST(TensorOps, MatmulKnownValues)
{
    dt::Tensor a({2, 3});
    dt::Tensor b({3, 2});
    for (std::size_t i = 0; i < 6; ++i) {
        a[i] = static_cast<float>(i + 1); // [[1,2,3],[4,5,6]]
        b[i] = static_cast<float>(i + 1); // [[1,2],[3,4],[5,6]]
    }
    dt::Tensor c = dt::matmul(a, b);
    EXPECT_EQ(c.dim(0), 2u);
    EXPECT_EQ(c.dim(1), 2u);
    EXPECT_FLOAT_EQ(c.at(0, 0), 22.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 28.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 49.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 64.0f);
}

TEST(TensorOps, MatmulTransposeBMatchesExplicit)
{
    du::Rng rng(4);
    dt::Tensor a({3, 5});
    dt::Tensor b({4, 5});
    a.fillGaussian(rng, 1.0f);
    b.fillGaussian(rng, 1.0f);
    dt::Tensor direct = dt::matmulTransposeB(a, b);
    dt::Tensor expected = dt::matmul(a, dt::transpose(b));
    ASSERT_EQ(direct.size(), expected.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_NEAR(direct[i], expected[i], 1e-5f);
}

TEST(TensorOps, MatmulTransposeAMatchesExplicit)
{
    du::Rng rng(5);
    dt::Tensor a({5, 3});
    dt::Tensor b({5, 4});
    a.fillGaussian(rng, 1.0f);
    b.fillGaussian(rng, 1.0f);
    dt::Tensor direct = dt::matmulTransposeA(a, b);
    dt::Tensor expected = dt::matmul(dt::transpose(a), b);
    ASSERT_EQ(direct.size(), expected.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_NEAR(direct[i], expected[i], 1e-5f);
}

TEST(TensorOps, TransposeInvolution)
{
    du::Rng rng(6);
    dt::Tensor a({3, 7});
    a.fillGaussian(rng, 1.0f);
    dt::Tensor tt = dt::transpose(dt::transpose(a));
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(tt[i], a[i]);
}

TEST(TensorOps, AddSubAxpy)
{
    dt::Tensor a({3}, 1.0f);
    dt::Tensor b({3}, 2.0f);
    dt::Tensor s = dt::add(a, b);
    EXPECT_FLOAT_EQ(s[0], 3.0f);
    dt::Tensor d = dt::sub(a, b);
    EXPECT_FLOAT_EQ(d[0], -1.0f);
    dt::axpy(a, b, 0.5f);
    EXPECT_FLOAT_EQ(a[0], 2.0f);
}

TEST(TensorOps, ScaleInPlace)
{
    dt::Tensor a({2}, 3.0f);
    dt::scaleInPlace(a, -2.0f);
    EXPECT_FLOAT_EQ(a[0], -6.0f);
}

TEST(TensorOps, SoftmaxRowsSumToOne)
{
    du::Rng rng(7);
    dt::Tensor a({4, 6});
    a.fillGaussian(rng, 3.0f);
    dt::Tensor p = dt::softmaxRows(a);
    for (std::size_t i = 0; i < 4; ++i) {
        float s = 0.0f;
        for (std::size_t j = 0; j < 6; ++j) {
            EXPECT_GT(p.at(i, j), 0.0f);
            s += p.at(i, j);
        }
        EXPECT_NEAR(s, 1.0f, 1e-5f);
    }
}

TEST(TensorOps, SoftmaxIsShiftInvariant)
{
    dt::Tensor a({1, 3});
    a[0] = 1.0f;
    a[1] = 2.0f;
    a[2] = 3.0f;
    dt::Tensor b = a;
    for (std::size_t i = 0; i < 3; ++i)
        b[i] += 100.0f;
    dt::Tensor pa = dt::softmaxRows(a);
    dt::Tensor pb = dt::softmaxRows(b);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(pa[i], pb[i], 1e-6f);
}

TEST(TensorOps, SoftmaxHandlesLargeMagnitudes)
{
    dt::Tensor a({1, 2});
    a[0] = 1000.0f;
    a[1] = -1000.0f;
    dt::Tensor p = dt::softmaxRows(a);
    EXPECT_NEAR(p[0], 1.0f, 1e-6f);
    EXPECT_NEAR(p[1], 0.0f, 1e-6f);
    EXPECT_FALSE(std::isnan(p[0]));
}

TEST(TensorOps, AddRowVector)
{
    dt::Tensor a({2, 3}, 1.0f);
    dt::Tensor row({3});
    row[0] = 1.0f;
    row[1] = 2.0f;
    row[2] = 3.0f;
    dt::addRowVector(a, row);
    EXPECT_FLOAT_EQ(a.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(a.at(1, 2), 4.0f);
}

/** Matmul associativity/identity properties over random shapes. */
class MatmulProperties
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatmulProperties, IdentityAndDistribution)
{
    const auto [n, k, m] = GetParam();
    du::Rng rng(static_cast<std::uint64_t>(n * 100 + k * 10 + m));
    dt::Tensor a({static_cast<std::size_t>(n), static_cast<std::size_t>(k)});
    dt::Tensor b({static_cast<std::size_t>(k), static_cast<std::size_t>(m)});
    dt::Tensor c({static_cast<std::size_t>(k), static_cast<std::size_t>(m)});
    a.fillGaussian(rng, 1.0f);
    b.fillGaussian(rng, 1.0f);
    c.fillGaussian(rng, 1.0f);

    // A(B + C) == AB + AC
    dt::Tensor lhs = dt::matmul(a, dt::add(b, c));
    dt::Tensor rhs = dt::add(dt::matmul(a, b), dt::matmul(a, c));
    for (std::size_t i = 0; i < lhs.size(); ++i)
        EXPECT_NEAR(lhs[i], rhs[i], 1e-4f);

    // A * I == A
    dt::Tensor eye({static_cast<std::size_t>(k),
                    static_cast<std::size_t>(k)});
    for (int i = 0; i < k; ++i)
        eye.at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) =
            1.0f;
    dt::Tensor ai = dt::matmul(a, eye);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(ai[i], a[i], 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulProperties,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 2, 7), std::make_tuple(8, 8, 8),
                      std::make_tuple(1, 16, 3)));
