/**
 * @file
 * Unit tests for the multi-modal side-channel layer: the gpusim
 * emitters (power / thermal / profiler counters), the per-channel
 * fault models, the feature extractors, the channel classifiers, and
 * the confidence-weighted fusion engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "fault/channel.hh"
#include "gpusim/emission.hh"
#include "gpusim/trace_generator.hh"
#include "obs/obs.hh"
#include "sidechan/classifier.hh"
#include "sidechan/features.hh"
#include "sidechan/fusion.hh"
#include "util/rng.hh"

namespace dg = decepticon::gpusim;
namespace dfl = decepticon::fault;
namespace dsc = decepticon::sidechan;
namespace dob = decepticon::obs;

namespace {

dg::ArchParams
smallArch(std::size_t layers = 4)
{
    dg::ArchParams arch;
    arch.numLayers = layers;
    arch.hidden = 256;
    arch.numHeads = 4;
    arch.seqLen = 64;
    return arch;
}

dg::KernelTrace
sampleTrace(std::uint64_t seed = 1, std::size_t layers = 4)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    return gen.generate(smallArch(layers), seed);
}

} // namespace

// ---------------------------------------------------------------
// Emitters
// ---------------------------------------------------------------

TEST(Emission, PowerTraceDeterministicAndBounded)
{
    const auto trace = sampleTrace(7);
    const dg::EmissionOptions opts;
    const auto a = dg::emitPowerTrace(trace, opts, 42);
    const auto b = dg::emitPowerTrace(trace, opts, 42);
    ASSERT_FALSE(a.empty());
    ASSERT_LE(a.size(), opts.maxSamples);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]);
        EXPECT_GE(a[i], 0.0);
    }
    // A different run seed only perturbs the sensor noise.
    const auto c = dg::emitPowerTrace(trace, opts, 43);
    ASSERT_EQ(c.size(), a.size());
    std::size_t differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        differing += a[i] != c[i];
    EXPECT_GT(differing, a.size() / 2);
}

TEST(Emission, PowerRisesAboveIdleDuringCompute)
{
    const auto trace = sampleTrace(8);
    const dg::EmissionOptions opts;
    const auto series = dg::emitPowerTrace(trace, opts, 1);
    double mean = 0.0;
    for (double v : series)
        mean += v;
    mean /= static_cast<double>(series.size());
    EXPECT_GT(mean, opts.idlePowerWatts);
}

TEST(Emission, ThermalStartsAtAmbientAndRises)
{
    const auto trace = sampleTrace(9, 6);
    const dg::EmissionOptions opts;
    const auto series = dg::emitThermalTrace(trace, opts, 5);
    ASSERT_GT(series.size(), 4u);
    EXPECT_NEAR(series.front(), opts.thermalAmbientC, 2.0);
    double peak = series.front();
    for (double v : series)
        peak = std::max(peak, v);
    EXPECT_GT(peak, opts.thermalAmbientC + 1.0);
    // Determinism.
    const auto replay = dg::emitThermalTrace(trace, opts, 5);
    ASSERT_EQ(replay.size(), series.size());
    for (std::size_t i = 0; i < series.size(); ++i)
        EXPECT_DOUBLE_EQ(series[i], replay[i]);
}

TEST(Emission, ProfilerCountsAreExactAndDeterministic)
{
    const auto trace = sampleTrace(10);
    const dg::EmissionOptions opts;
    const auto ctr = dg::emitProfilerCounters(trace, opts, 11);
    ASSERT_EQ(ctr.size(), dg::kProfilerCounterCount);
    // Launch counts are exact (no jitter): per-class counts sum to
    // the record total, which is itself exact.
    double class_sum = 0.0;
    for (std::size_t k = 0; k < dg::kProfilerClassCount; ++k)
        class_sum += ctr[dg::kCtrClassCountBase + k];
    EXPECT_DOUBLE_EQ(class_sum, ctr[dg::kCtrTotalRecords]);
    EXPECT_DOUBLE_EQ(ctr[dg::kCtrTotalRecords],
                     static_cast<double>(trace.records.size()));
    EXPECT_DOUBLE_EQ(ctr[dg::kCtrUniqueKernels],
                     static_cast<double>(trace.uniqueKernelCount()));
    const auto replay = dg::emitProfilerCounters(trace, opts, 11);
    for (std::size_t i = 0; i < ctr.size(); ++i)
        EXPECT_DOUBLE_EQ(ctr[i], replay[i]);
    // Every slot has a printable name.
    for (std::size_t i = 0; i < dg::kProfilerCounterCount; ++i)
        EXPECT_FALSE(dg::profilerCounterName(i).empty());
}

// ---------------------------------------------------------------
// Channel fault models
// ---------------------------------------------------------------

namespace {

std::vector<double>
rampSeries(std::size_t n)
{
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
        s[i] = 50.0 + static_cast<double>(i % 37);
    return s;
}

} // namespace

TEST(ChannelFault, JammedChannelDeliversNothing)
{
    dfl::ChannelFaultSpec spec;
    spec.jammed = true;
    dfl::ChannelFaultModel model(dfl::Channel::Power, spec, 3);
    const auto out = model.corruptSeries(rampSeries(64), 0);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(model.counters().jammedCaptures, 1u);
    EXPECT_EQ(model.counters().captures, 1u);
}

TEST(ChannelFault, DropoutShrinksSeriesDeterministically)
{
    dfl::ChannelFaultSpec spec;
    spec.dropoutRate = 0.5;
    dfl::ChannelFaultModel model(dfl::Channel::Power, spec, 4);
    const auto in = rampSeries(400);
    const auto a = model.corruptSeries(in, 9);
    EXPECT_LT(a.size(), in.size());
    EXPECT_GT(a.size(), in.size() / 8);
    // Same capture seed replays identically (fresh model: the stream
    // is derived, not consumed).
    dfl::ChannelFaultModel replay(dfl::Channel::Power, spec, 4);
    EXPECT_EQ(replay.corruptSeries(in, 9), a);
    // A different capture seed draws a different pattern.
    dfl::ChannelFaultModel other(dfl::Channel::Power, spec, 4);
    EXPECT_NE(other.corruptSeries(in, 10), a);
}

TEST(ChannelFault, ProfilerDropoutZeroesSlotsKeepsLength)
{
    dfl::ChannelFaultSpec spec;
    spec.dropoutRate = 0.5;
    dfl::ChannelFaultModel model(dfl::Channel::Profiler, spec, 5);
    const auto in = rampSeries(32);
    const auto out = model.corruptSeries(in, 1);
    ASSERT_EQ(out.size(), in.size());
    std::size_t zeroed = 0, kept = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] == 0.0)
            ++zeroed;
        else if (out[i] == in[i])
            ++kept;
    }
    EXPECT_EQ(zeroed + kept, out.size());
    EXPECT_GT(zeroed, 0u);
    EXPECT_GT(kept, 0u);
}

TEST(ChannelFault, TruncationRespectsMaxFraction)
{
    dfl::ChannelFaultSpec spec;
    spec.truncateProbability = 1.0;
    spec.truncateMaxFraction = 0.3;
    dfl::ChannelFaultModel model(dfl::Channel::Thermal, spec, 6);
    const auto in = rampSeries(200);
    for (std::uint64_t cap = 0; cap < 16; ++cap) {
        const auto out = model.corruptSeries(in, cap);
        EXPECT_GE(out.size(), 140u); // >= (1 - 0.3) * 200
        EXPECT_LE(out.size(), in.size());
        // Truncation is a pure prefix.
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_DOUBLE_EQ(out[i], in[i]);
    }
}

TEST(ChannelFault, QuantizationSnapsToGrid)
{
    dfl::ChannelFaultSpec spec;
    spec.quantStep = 0.1;
    dfl::ChannelFaultModel model(dfl::Channel::Power, spec, 7);
    const auto in = rampSeries(64);
    double scale = 0.0;
    for (double v : in)
        scale += std::abs(v);
    scale /= static_cast<double>(in.size());
    const double step = spec.quantStep * scale;
    const auto out = model.corruptSeries(in, 0);
    ASSERT_EQ(out.size(), in.size());
    for (double v : out) {
        const double q = v / step;
        EXPECT_NEAR(q, std::round(q), 1e-6);
    }
}

TEST(ChannelFault, ClippingSaturatesPeaks)
{
    dfl::ChannelFaultSpec spec;
    spec.clipFraction = 0.5;
    dfl::ChannelFaultModel model(dfl::Channel::Power, spec, 8);
    const auto in = rampSeries(128);
    double lo = in[0], hi = in[0];
    for (double v : in) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double ceiling = lo + spec.clipFraction * (hi - lo);
    const auto out = model.corruptSeries(in, 0);
    double out_hi = out[0];
    for (double v : out)
        out_hi = std::max(out_hi, v);
    EXPECT_LE(out_hi, ceiling + 1e-9);
}

TEST(ChannelFault, ChannelsAreIndependentStreams)
{
    // Corrupting one channel never perturbs another channel's fault
    // stream: thermal output is identical whether or not power was
    // corrupted first.
    dfl::MultiChannelFaultSpec spec;
    spec.seed = 77;
    for (std::size_t c = 0; c < dfl::kNumChannels; ++c) {
        spec.channels[c].dropoutRate = 0.3;
        spec.channels[c].noiseSigma = 0.05;
    }
    const auto in = rampSeries(256);

    dfl::MultiChannelFaultModel a(spec);
    (void)a.corrupt(dfl::Channel::Power, in, 0);
    (void)a.corrupt(dfl::Channel::Power, in, 1);
    const auto thermal_after = a.corrupt(dfl::Channel::Thermal, in, 0);

    dfl::MultiChannelFaultModel b(spec);
    const auto thermal_fresh = b.corrupt(dfl::Channel::Thermal, in, 0);
    EXPECT_EQ(thermal_after, thermal_fresh);
}

TEST(ChannelFault, ResetRepublishesZeroedGauges)
{
    dob::ObsConfig config;
    config.metricsEnabled = true;
    dob::configure(config);

    dfl::ChannelFaultSpec spec;
    spec.dropoutRate = 0.5;
    dfl::ChannelFaultModel model(dfl::Channel::Power, spec, 9);
    (void)model.corruptSeries(rampSeries(100), 0);
    model.publishCounters();
    auto &reg = dob::metrics();
    ASSERT_TRUE(reg.hasGauge("fault.channel.power.captures"));
    EXPECT_GT(reg.gauge("fault.channel.power.captures"), 0.0);
    EXPECT_GT(reg.gauge("fault.channel.power.samples_dropped"), 0.0);

    // Reset must re-publish zeroed gauges, not freeze stale totals.
    model.resetCounters();
    EXPECT_DOUBLE_EQ(reg.gauge("fault.channel.power.captures"), 0.0);
    EXPECT_DOUBLE_EQ(reg.gauge("fault.channel.power.samples_dropped"),
                     0.0);
    EXPECT_EQ(model.counters().captures, 0u);
    dob::shutdown();
}

// ---------------------------------------------------------------
// Features
// ---------------------------------------------------------------

TEST(ChannelFeatures, DimsMatchAndEmptyMapsToZero)
{
    EXPECT_EQ(dsc::featureDim(dfl::Channel::Power),
              dsc::kPowerFeatureDim);
    EXPECT_EQ(dsc::featureDim(dfl::Channel::Thermal),
              dsc::kThermalFeatureDim);
    EXPECT_EQ(dsc::featureDim(dfl::Channel::Profiler),
              dsc::kProfilerFeatureDim);
    EXPECT_EQ(dsc::featureDim(dfl::Channel::Timestamp), 0u);

    for (auto channel : {dfl::Channel::Power, dfl::Channel::Thermal,
                         dfl::Channel::Profiler}) {
        const auto zero = dsc::channelFeatures(channel, {});
        ASSERT_EQ(zero.size(), dsc::featureDim(channel));
        for (float v : zero)
            EXPECT_EQ(v, 0.0f);
    }
}

TEST(ChannelFeatures, PureFunctionOfSeries)
{
    const auto trace = sampleTrace(12);
    const dg::EmissionOptions opts;
    const auto series = dg::emitPowerTrace(trace, opts, 3);
    const auto a = dsc::powerFeatures(series);
    const auto b = dsc::powerFeatures(series);
    ASSERT_EQ(a.size(), dsc::kPowerFeatureDim);
    EXPECT_EQ(a, b);
    for (float v : a)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(ChannelFeatures, DistinctArchitecturesSeparate)
{
    // Power features of a 2-layer and an 8-layer model must differ —
    // otherwise the channel carries no architectural signal.
    const dg::EmissionOptions opts;
    const auto small_f = dsc::powerFeatures(
        dg::emitPowerTrace(sampleTrace(1, 2), opts, 1));
    const auto large_f = dsc::powerFeatures(
        dg::emitPowerTrace(sampleTrace(1, 8), opts, 1));
    EXPECT_NE(small_f, large_f);
}

// ---------------------------------------------------------------
// Channel classifier
// ---------------------------------------------------------------

TEST(ChannelClassifier, LearnsSeparableClusters)
{
    constexpr std::size_t kDim = 6;
    constexpr std::size_t kClasses = 3;
    decepticon::util::Rng rng(21);
    std::vector<std::vector<float>> features;
    std::vector<int> labels;
    for (int c = 0; c < static_cast<int>(kClasses); ++c) {
        for (int i = 0; i < 24; ++i) {
            std::vector<float> f(kDim);
            for (std::size_t d = 0; d < kDim; ++d) {
                const float center =
                    d == static_cast<std::size_t>(c) ? 4.0f : 0.0f;
                f[d] = center +
                       static_cast<float>(rng.gaussian()) * 0.4f;
            }
            features.push_back(std::move(f));
            labels.push_back(c);
        }
    }
    dsc::ChannelClassifier clf(dfl::Channel::Power, kDim, kClasses, 5);
    dsc::ChannelClassifierOptions opts;
    opts.epochs = 60;
    clf.train(features, labels, opts);
    EXPECT_GT(clf.evaluate(features, labels), 0.9);
    const auto probs = clf.classProbabilities(features.front());
    ASSERT_EQ(probs.size(), kClasses);
    double sum = 0.0;
    for (double p : probs)
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-5);
}

// ---------------------------------------------------------------
// Fusion engine
// ---------------------------------------------------------------

namespace {

dsc::ChannelEvidence
evidenceFor(dfl::Channel channel, std::vector<double> probs,
            double quality = 1.0)
{
    dsc::ChannelEvidence ev;
    ev.channel = channel;
    ev.available = true;
    ev.probs = std::move(probs);
    ev.quality = quality;
    return ev;
}

} // namespace

TEST(Fusion, EmptyEvidenceIsInsufficient)
{
    dsc::FusionEngine engine(3);
    engine.setReliabilityPrior(dfl::Channel::Power, 0.9);
    const auto decision = engine.fuse({});
    EXPECT_EQ(decision.verdict,
              dsc::FusionVerdict::InsufficientEvidence);
    EXPECT_EQ(decision.label, -1);
    EXPECT_DOUBLE_EQ(decision.confidence, 0.0);
}

TEST(Fusion, UnregisteredChannelCarriesNoWeight)
{
    dsc::FusionEngine engine(3);
    engine.setReliabilityPrior(dfl::Channel::Power, 0.9);
    // Thermal was never trained: its evidence must be ignored.
    const auto decision = engine.fuse(
        {evidenceFor(dfl::Channel::Thermal, {0.0, 0.0, 1.0})});
    EXPECT_EQ(decision.verdict,
              dsc::FusionVerdict::InsufficientEvidence);
}

TEST(Fusion, SingleChannelIdentifiesWithReducedConfidence)
{
    dsc::FusionEngine engine(3);
    engine.setReliabilityPrior(dfl::Channel::Power, 0.9);
    engine.setReliabilityPrior(dfl::Channel::Thermal, 0.9);
    const std::vector<double> probs{0.1, 0.8, 0.1};
    const auto one =
        engine.fuse({evidenceFor(dfl::Channel::Power, probs)});
    ASSERT_EQ(one.verdict, dsc::FusionVerdict::Identified);
    EXPECT_EQ(one.label, 1);
    EXPECT_LT(one.coverage, 1.0);

    const auto both =
        engine.fuse({evidenceFor(dfl::Channel::Power, probs),
                     evidenceFor(dfl::Channel::Thermal, probs)});
    ASSERT_EQ(both.verdict, dsc::FusionVerdict::Identified);
    EXPECT_EQ(both.label, 1);
    EXPECT_NEAR(both.coverage, 1.0, 1e-9);
    // Same posteriors, more of the expected evidence present: the
    // calibrated confidence must not go down.
    EXPECT_GT(both.confidence, one.confidence);
}

TEST(Fusion, HigherPriorChannelWinsConflicts)
{
    dsc::FusionEngine engine(2);
    engine.setReliabilityPrior(dfl::Channel::Power, 0.95);
    engine.setReliabilityPrior(dfl::Channel::Thermal, 0.55);
    const auto decision = engine.fuse(
        {evidenceFor(dfl::Channel::Power, {0.8, 0.2}),
         evidenceFor(dfl::Channel::Thermal, {0.25, 0.75})});
    ASSERT_EQ(decision.verdict, dsc::FusionVerdict::Identified);
    EXPECT_EQ(decision.label, 0);
}

TEST(Fusion, QualityZeroEvidenceIsIgnored)
{
    dsc::FusionEngine engine(2);
    engine.setReliabilityPrior(dfl::Channel::Power, 0.9);
    engine.setReliabilityPrior(dfl::Channel::Thermal, 0.9);
    const auto decision = engine.fuse(
        {evidenceFor(dfl::Channel::Power, {0.9, 0.1}),
         evidenceFor(dfl::Channel::Thermal, {0.1, 0.9}, 0.0)});
    ASSERT_EQ(decision.verdict, dsc::FusionVerdict::Identified);
    EXPECT_EQ(decision.label, 0);
    EXPECT_EQ(decision.channelsAvailable, 1u);
}
