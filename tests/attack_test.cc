/**
 * @file
 * Tests for the attack library: adversarial crafting/transfer,
 * substitute-model baselines, and the head-pruning auditor.
 */

#include <gtest/gtest.h>

#include "attack/adversarial.hh"
#include "attack/head_pruning.hh"
#include "attack/substitute.hh"
#include "gpusim/trace_generator.hh"
#include "transformer/trainer.hh"

namespace da = decepticon::attack;
namespace dtr = decepticon::transformer;
namespace dg = decepticon::gpusim;

namespace {

dtr::TransformerConfig
smallConfig()
{
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 16;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = 2;
    return cfg;
}

/** A trained model on a fixed task, shared across tests. */
struct TrainedFixture
{
    dtr::TransformerClassifier model;
    dtr::MarkovTask task;

    TrainedFixture()
        : model(smallConfig(), 51), task(16, 2, 8, 600, 4.0)
    {
        dtr::TrainOptions opts;
        opts.epochs = 5;
        opts.lr = 2e-3f;
        dtr::Trainer::train(model, task.sample(160, 1), opts);
    }
};

TrainedFixture &
fixture()
{
    static TrainedFixture fx;
    return fx;
}

} // anonymous namespace

TEST(Adversarial, CraftReturnsValidTokens)
{
    auto &fx = fixture();
    const auto seeds = fx.task.sample(10, 2).examples;
    da::AdversarialOptions opts;
    for (const auto &ex : seeds) {
        const auto adv =
            da::craftAdversarial(fx.model, ex.tokens, ex.label, opts);
        EXPECT_EQ(adv.size(), ex.tokens.size());
        for (int t : adv) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, 16);
        }
    }
}

TEST(Adversarial, FlipLimitRespected)
{
    auto &fx = fixture();
    const auto seeds = fx.task.sample(10, 3).examples;
    da::AdversarialOptions opts;
    opts.maxFlips = 1;
    for (const auto &ex : seeds) {
        const auto adv =
            da::craftAdversarial(fx.model, ex.tokens, ex.label, opts);
        std::size_t flips = 0;
        for (std::size_t i = 0; i < adv.size(); ++i)
            flips += adv[i] != ex.tokens[i] ? 1 : 0;
        EXPECT_LE(flips, 1u);
    }
}

TEST(Adversarial, WhiteBoxAttackFoolsOwnModel)
{
    // With the victim itself as surrogate (white-box), the attack
    // should flip a large share of predictions.
    auto &fx = fixture();
    const auto seeds = fx.task.sample(40, 4).examples;
    da::AdversarialOptions opts;
    opts.maxFlips = 3;
    const auto result =
        da::evaluateTransfer(fx.model, fx.model, seeds, opts);
    ASSERT_GT(result.eligible, 10u);
    EXPECT_GT(result.successRate(), 0.5);
}

TEST(Adversarial, CloneTransfersBetterThanUnrelatedModel)
{
    auto &fx = fixture();
    const auto seeds = fx.task.sample(40, 5).examples;
    da::AdversarialOptions opts;
    opts.maxFlips = 2;

    // "Clone": an exact copy (ideal extraction).
    dtr::TransformerClassifier clone(fx.model);
    const auto with_clone =
        da::evaluateTransfer(fx.model, clone, seeds, opts);

    // Unrelated surrogate: different random model, no training.
    dtr::TransformerClassifier unrelated(smallConfig(), 999);
    const auto with_unrelated =
        da::evaluateTransfer(fx.model, unrelated, seeds, opts);

    EXPECT_GT(with_clone.successRate(),
              with_unrelated.successRate());
}

TEST(Adversarial, EligibleCountsOnlyCorrectSeeds)
{
    auto &fx = fixture();
    const auto eval =
        dtr::Trainer::evaluate(fx.model, fx.task.sample(50, 6));
    const auto seeds = fx.task.sample(50, 6).examples;
    da::AdversarialOptions opts;
    const auto result =
        da::evaluateTransfer(fx.model, fx.model, seeds, opts);
    EXPECT_EQ(result.eligible,
              static_cast<std::size_t>(eval.accuracy * 50 + 0.5));
}

TEST(Substitute, RecordsVictimPredictions)
{
    auto &fx = fixture();
    const auto inputs = fx.task.sample(20, 7).examples;
    const auto records = da::recordPredictions(fx.model, inputs);
    ASSERT_EQ(records.size(), 20u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records.examples[i].tokens, inputs[i].tokens);
        EXPECT_EQ(records.examples[i].label,
                  fx.model.predict(inputs[i].tokens));
    }
    EXPECT_EQ(records.numClasses, 2u);
}

TEST(Substitute, BuildTrainsOnRecords)
{
    auto &fx = fixture();
    dtr::TransformerClassifier random_pre(smallConfig(), 888);
    const auto records = da::recordPredictions(
        fx.model, fx.task.sample(60, 8).examples);
    dtr::TrainOptions opts;
    opts.epochs = 2;
    auto sub = da::buildSubstitute(random_pre, records, opts, 9);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->config().numClasses, 2u);
    // The substitute should agree with the victim above chance on the
    // records it was trained on.
    std::vector<int> sub_preds, vic_preds;
    for (const auto &ex : records.examples) {
        sub_preds.push_back(sub->predict(ex.tokens));
        vic_preds.push_back(ex.label);
    }
    EXPECT_GT(dtr::Trainer::agreement(sub_preds, vic_preds), 0.55);
}

TEST(HeadPruning, SameLineageConfidenceCorrelationHigh)
{
    // A wider model (4 layers x 4 heads = 16 confidence cells) so the
    // Pearson correlation is meaningful, as in the paper's heat maps.
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 16;
    cfg.numLayers = 4;
    cfg.numHeads = 4;
    cfg.ffnDim = 32;
    cfg.numClasses = 2;

    dtr::MarkovTask pretask(16, 2, 8, 690, 4.0);
    dtr::TransformerClassifier pre(cfg, 61);
    dtr::TrainOptions popts;
    popts.epochs = 3;
    popts.lr = 2e-3f;
    dtr::Trainer::train(pre, pretask.sample(100, 1), popts);

    // Fine-tuned descendant for a different task.
    dtr::TransformerClassifier ft(pre);
    ft.resetHead(3, 10);
    dtr::MarkovTask other(16, 3, 8, 700, 4.0);
    dtr::TrainOptions opts;
    opts.epochs = 2;
    opts.lr = 2e-4f;
    opts.headLrMultiplier = 20.0f;
    dtr::Trainer::fineTune(ft, other.sample(60, 11), opts);

    const auto samples = pretask.sample(16, 12).examples;
    const double same = da::confidenceCorrelation(pre, ft, samples);

    // A different lineage: independently trained on its own task.
    dtr::TransformerClassifier stranger(cfg, 900);
    dtr::MarkovTask stranger_task(16, 2, 8, 900, 4.0);
    dtr::Trainer::train(stranger, stranger_task.sample(100, 2), popts);
    const double cross =
        da::confidenceCorrelation(pre, stranger, samples);

    // Paper Fig. 20: same-lineage correlation high, cross clearly
    // lower (both models are trained, so some structural correlation
    // remains — the gap is what identifies lineage).
    EXPECT_GT(same, 0.9);
    EXPECT_LT(cross, 0.8);
    EXPECT_GT(same, cross + 0.05);
}

TEST(HeadPruning, EstimateCountFromTraces)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    dg::ArchParams dense;
    dense.numLayers = 12;
    dense.hidden = 768;
    dense.numHeads = 12;
    dense.seqLen = 128;

    for (std::size_t pruned : {0u, 2u, 4u, 6u}) {
        dg::ArchParams p = dense;
        p.prunedHeads = pruned;
        const auto victim = gen.generate(p, 1);
        const auto ref = gen.generate(dense, 2);
        EXPECT_EQ(da::estimatePrunedHeadCount(victim, ref, 12), pruned)
            << "pruned=" << pruned;
    }
}

TEST(HeadPruning, PredictPrunedHeadsReturnsLowestConfidence)
{
    auto &fx = fixture();
    const auto samples = fx.task.sample(8, 13).examples;
    const auto pruned = da::predictPrunedHeads(fx.model, samples, 2);
    ASSERT_EQ(pruned.size(), 2u);

    const auto conf = dtr::headConfidence(fx.model, samples);
    // Every returned head must have confidence <= every kept head.
    double max_pruned = 0.0;
    for (const auto &[l, h] : pruned)
        max_pruned = std::max(max_pruned, conf[l][h]);
    std::size_t kept_below = 0;
    for (std::size_t l = 0; l < conf.size(); ++l) {
        for (std::size_t h = 0; h < conf[l].size(); ++h) {
            const bool is_pruned =
                std::find(pruned.begin(), pruned.end(),
                          std::make_pair(l, h)) != pruned.end();
            if (!is_pruned && conf[l][h] < max_pruned)
                ++kept_below;
        }
    }
    EXPECT_EQ(kept_below, 0u);
}

TEST(HeadPruning, MeanShortKernelDurationPositive)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    dg::ArchParams arch;
    arch.numLayers = 4;
    const auto trace = gen.generate(arch, 3);
    EXPECT_GT(da::meanShortKernelDuration(trace), 0.0);
}

/** Pruned-head count sweep: duration decreases monotonically. */
class PruneSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PruneSweep, ShortKernelDurationDecreasesWithPruning)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = GetParam();
    const dg::TraceGenerator gen(sig);
    dg::ArchParams arch;
    arch.numLayers = 6;
    arch.hidden = 512;
    arch.numHeads = 8;

    double prev = 1e18;
    for (std::size_t pruned : {0u, 2u, 4u, 6u}) {
        dg::ArchParams p = arch;
        p.prunedHeads = pruned;
        const double d =
            da::meanShortKernelDuration(gen.generate(p, 1));
        EXPECT_LT(d, prev);
        prev = d;
    }
}

INSTANTIATE_TEST_SUITE_P(Dialects, PruneSweep, ::testing::Values(1, 2, 3));
