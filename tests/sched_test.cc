// Unit tests for the deterministic parallel execution engine: pool
// lifecycle, chunking/edge cases, exception propagation, nested
// parallelFor, seed splitting, and a contention stress test.

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sched/sched.hh"
#include "util/rng.hh"

namespace sched = decepticon::sched;
namespace util = decepticon::util;

TEST(ThreadsFromSpec, NullAndEmptyFallBackToHardware)
{
    const std::size_t hw = sched::hardwareThreads();
    EXPECT_GE(hw, 1u);
    EXPECT_EQ(sched::threadsFromSpec(nullptr), hw);
    EXPECT_EQ(sched::threadsFromSpec(""), hw);
}

TEST(ThreadsFromSpec, UnparseableAndNonPositiveFallBackToHardware)
{
    const std::size_t hw = sched::hardwareThreads();
    EXPECT_EQ(sched::threadsFromSpec("bogus"), hw);
    EXPECT_EQ(sched::threadsFromSpec("0"), hw);
    EXPECT_EQ(sched::threadsFromSpec("-3"), hw);
}

TEST(ThreadsFromSpec, ParsesAndClamps)
{
    EXPECT_EQ(sched::threadsFromSpec("1"), 1u);
    EXPECT_EQ(sched::threadsFromSpec("8"), 8u);
    EXPECT_EQ(sched::threadsFromSpec("99999"), 512u);
}

TEST(ThreadPool, SerialPoolSpawnsNoWorkersAndRunsInline)
{
    sched::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> out(100, 0);
    pool.parallelFor(out.size(), 0,
                     [&](std::size_t i) { out[i] = static_cast<int>(i); });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i));
    // Inline execution: nothing went through a worker.
    EXPECT_EQ(pool.taskCount(), 0u);
}

TEST(ThreadPool, LifecycleConstructDestructRepeatedly)
{
    for (int round = 0; round < 5; ++round) {
        sched::ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        std::atomic<int> hits{0};
        pool.parallelFor(64, 1, [&](std::size_t) {
            hits.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(hits.load(), 64);
    }
    // Destruction with an idle queue must also be clean (no tasks).
    sched::ThreadPool idle(3);
    (void)idle;
}

TEST(ThreadPool, ZeroItemsIsANoOp)
{
    sched::ThreadPool pool(4);
    bool touched = false;
    pool.parallelFor(0, 0, [&](std::size_t) { touched = true; });
    pool.parallelForRange(0, 7,
                          [&](std::size_t, std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, OneItemRunsExactlyOnce)
{
    sched::ThreadPool pool(4);
    std::atomic<int> hits{0};
    pool.parallelFor(1, 0, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        hits.fetch_add(1);
    });
    EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, RangeChunksCoverIndexSpaceExactlyOnce)
{
    sched::ThreadPool pool(4);
    const std::size_t n = 1003; // not a multiple of any grain below
    for (std::size_t grain : {std::size_t{1}, std::size_t{7},
                              std::size_t{100}, std::size_t{5000}}) {
        std::vector<std::atomic<int>> seen(n);
        for (auto &s : seen)
            s.store(0);
        pool.parallelForRange(n, grain,
                              [&](std::size_t begin, std::size_t end) {
                                  ASSERT_LE(begin, end);
                                  ASSERT_LE(end, n);
                                  for (std::size_t i = begin; i < end; ++i)
                                      seen[i].fetch_add(1);
                              });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(seen[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnSizeAndGrain)
{
    // The determinism contract: the (begin, end) partition must be
    // the same for a 1-lane and an 8-lane pool.
    const std::size_t n = 250, grain = 16;
    auto boundaries = [&](sched::ThreadPool &pool) {
        std::mutex mu;
        std::vector<std::pair<std::size_t, std::size_t>> out;
        pool.parallelForRange(n, grain,
                              [&](std::size_t begin, std::size_t end) {
                                  std::lock_guard<std::mutex> lock(mu);
                                  out.emplace_back(begin, end);
                              });
        std::sort(out.begin(), out.end());
        return out;
    };
    sched::ThreadPool serial(1);
    sched::ThreadPool wide(8);
    EXPECT_EQ(boundaries(serial), boundaries(wide));
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    sched::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100, 1,
                                  [&](std::size_t i) {
                                      if (i == 57)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must survive the throw and keep executing work.
    std::atomic<int> hits{0};
    pool.parallelFor(10, 1, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPool, ExceptionOnSerialPoolPropagates)
{
    sched::ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(3, 1,
                                  [](std::size_t) {
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    sched::ThreadPool pool(4);
    std::vector<std::atomic<int>> cell(16 * 16);
    for (auto &c : cell)
        c.store(0);
    pool.parallelFor(16, 1, [&](std::size_t i) {
        // A worker calling back into the pool must not block on
        // itself; the inner loop runs inline on the worker.
        pool.parallelFor(16, 1, [&](std::size_t j) {
            cell[i * 16 + j].fetch_add(1);
        });
    });
    for (auto &c : cell)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, InWorkerFlagVisibleFromTasks)
{
    EXPECT_FALSE(sched::ThreadPool::inWorker());
    sched::ThreadPool pool(2);
    std::atomic<int> in_worker{0};
    pool.parallelFor(8, 1, [&](std::size_t) {
        if (sched::ThreadPool::inWorker())
            in_worker.fetch_add(1);
    });
    // With >1 lanes every chunk runs on a worker thread.
    EXPECT_EQ(in_worker.load(), 8);
    EXPECT_FALSE(sched::ThreadPool::inWorker());
}

TEST(ThreadPool, StressManyRoundsOfSmallTasks)
{
    sched::ThreadPool pool(8);
    const std::size_t n = 512;
    std::vector<std::uint64_t> out(n);
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(n, 1, [&](std::size_t i) {
            // A little arithmetic so tasks are not pure overhead.
            std::uint64_t acc = i;
            for (int k = 0; k < 100; ++k)
                acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
            out[i] = acc;
        });
    }
    // Spot-check one slot against a serial recomputation.
    std::uint64_t acc = 7;
    for (int k = 0; k < 100; ++k)
        acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    EXPECT_EQ(out[7], acc);
    EXPECT_GT(pool.taskCount(), 0u);
}

TEST(GlobalPool, SetThreadsRebuildsAndParallelForWorks)
{
    sched::setThreads(3);
    EXPECT_EQ(sched::configuredThreads(), 3u);
    std::vector<int> out(40, 0);
    sched::parallelFor(out.size(), 1,
                       [&](std::size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 40);
    sched::setThreads(1);
    EXPECT_EQ(sched::configuredThreads(), 1u);
    sched::setThreads(0); // back to the environment default
}

TEST(RngSplit, PureFunctionOfStateAndTag)
{
    util::Rng a(1234), b(1234);
    // split must not advance the parent stream.
    util::Rng c1 = a.split(5);
    util::Rng c2 = a.split(5);
    EXPECT_EQ(c1.nextU64(), c2.nextU64());
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngSplit, DistinctTagsGiveDistinctStreams)
{
    util::Rng parent(99);
    util::Rng c0 = parent.split(0);
    util::Rng c1 = parent.split(1);
    bool differs = false;
    for (int i = 0; i < 4 && !differs; ++i)
        differs = c0.nextU64() != c1.nextU64();
    EXPECT_TRUE(differs);
}

TEST(RngSplit, PerTaskStreamsIndependentOfThreadCount)
{
    // The engine's seed-derivation idiom: task i draws from split(i).
    // The resulting values must not depend on the pool width.
    const std::size_t n = 64;
    auto run = [&](std::size_t threads) {
        sched::ThreadPool pool(threads);
        util::Rng parent(4242);
        std::vector<std::uint64_t> out(n);
        pool.parallelFor(n, 1, [&](std::size_t i) {
            util::Rng task_rng = parent.split(i);
            out[i] = task_rng.nextU64();
        });
        return out;
    };
    const auto serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(8));
}
