/**
 * @file
 * End-to-end integration test: the full two-level Decepticon attack on
 * a small but real victim — level 1 identifies the pre-trained model
 * from the victim's execution trace, level 2 extracts the weights via
 * the bit-probe channel, and the clone powers an adversarial attack
 * that beats a naive substitute.
 */

#include <gtest/gtest.h>

#include "attack/adversarial.hh"
#include "attack/substitute.hh"
#include "core/decepticon.hh"
#include "core/two_level.hh"
#include "extraction/cloner.hh"
#include "gpusim/trace_generator.hh"
#include "transformer/trainer.hh"

namespace dc = decepticon::core;
namespace dz = decepticon::zoo;
namespace dg = decepticon::gpusim;
namespace de = decepticon::extraction;
namespace da = decepticon::attack;
namespace dtr = decepticon::transformer;

TEST(EndToEnd, TwoLevelAttack)
{
    // ------------------------------------------------------------------
    // World setup: a candidate pool of lineages; the victim descends
    // from lineage 0 and was fine-tuned on a private task.
    // ------------------------------------------------------------------
    dz::ModelZoo zoo = dz::ModelZoo::buildDefault(21, 5, 10);
    const dz::ModelIdentity *victim_lineage = zoo.pretrained()[0];

    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 16;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = 4;

    // Each candidate lineage has real (trained) weights the attacker
    // can download; keyed by lineage weight seed.
    dtr::TransformerClassifier pretrained(cfg, victim_lineage->weightSeed);
    dtr::MarkovTask pretask(16, 4, 8, 900, 4.0);
    dtr::TrainOptions popts;
    popts.epochs = 4;
    popts.lr = 2e-3f;
    dtr::Trainer::train(pretrained, pretask.sample(120, 1), popts);

    // The victim: transfer-learned from that pre-trained model.
    dtr::TransformerClassifier victim(pretrained);
    victim.resetHead(2, 5);
    dtr::MarkovTask task(16, 2, 8, 901, 4.0);
    const dtr::Dataset train = task.sample(120, 2);
    const dtr::Dataset dev = task.sample(80, 3);
    dtr::TrainOptions fopts;
    fopts.epochs = 3;
    fopts.lr = 2e-4f;
    fopts.headLrMultiplier = 30.0f;
    dtr::Trainer::fineTune(victim, train, fopts);
    const auto victim_eval = dtr::Trainer::evaluate(victim, dev);
    ASSERT_GT(victim_eval.accuracy, 0.7) << "victim must be usable";

    // ------------------------------------------------------------------
    // Level 1: identify the pre-trained lineage from the victim trace.
    // ------------------------------------------------------------------
    dc::DecepticonOptions opts;
    opts.datasetOptions.imagesPerModel = 4;
    opts.datasetOptions.resolution = 32;
    opts.cnnOptions.epochs = 30;
    opts.seed = 5;
    dc::Decepticon pipeline(opts);
    const double extractor_acc = pipeline.trainExtractor(zoo);
    EXPECT_GT(extractor_acc, 0.5);

    const auto victim_trace =
        dg::TraceGenerator(victim_lineage->signature)
            .generate(victim_lineage->arch, 0xbeef);
    const auto ident = pipeline.identify(
        victim_trace,
        dc::makeVictimQueryHook(victim_lineage->vocabProfile));
    EXPECT_EQ(ident.pretrainedName, victim_lineage->name);

    // ------------------------------------------------------------------
    // Level 2: clone the victim from the identified pre-trained model.
    // ------------------------------------------------------------------
    de::ClonerOptions copts;
    copts.policy.baseDist = 0.01;
    copts.policy.significance = 0.0005;
    copts.policy.maxBitsPerWeight = 4;
    copts.agreementTarget = 0.95;
    auto clone_result = de::ModelCloner::extract(
        victim, pretrained, task.sample(60, 4).examples, copts);
    ASSERT_NE(clone_result.clone, nullptr);

    // Clone quality: prediction agreement and accuracy close to the
    // victim's (paper Fig. 15).
    const auto clone_eval =
        dtr::Trainer::evaluate(*clone_result.clone, dev);
    std::vector<int> vic_preds;
    for (const auto &ex : dev.examples)
        vic_preds.push_back(victim.predict(ex.tokens));
    const double agreement =
        dtr::Trainer::agreement(clone_eval.predictions, vic_preds);
    EXPECT_GT(agreement, 0.8);
    EXPECT_NEAR(clone_eval.accuracy, victim_eval.accuracy, 0.15);

    // ------------------------------------------------------------------
    // White-box attack: adversarial inputs from the clone transfer to
    // the victim better than a prediction-record substitute's.
    // ------------------------------------------------------------------
    const auto seeds = task.sample(40, 6).examples;
    da::AdversarialOptions aopts;
    aopts.maxFlips = 2;
    const auto with_clone = da::evaluateTransfer(
        victim, *clone_result.clone, seeds, aopts);

    dtr::TransformerClassifier random_pre(cfg, 0x123);
    const auto records = da::recordPredictions(
        victim, task.sample(60, 7).examples);
    dtr::TrainOptions sopts;
    sopts.epochs = 2;
    auto substitute = da::buildSubstitute(random_pre, records, sopts, 8);
    const auto with_sub =
        da::evaluateTransfer(victim, *substitute, seeds, aopts);

    EXPECT_GE(with_clone.successRate(), with_sub.successRate());
    EXPECT_GT(with_clone.successRate(), 0.3);
}

TEST(EndToEnd, TwoLevelAttackApi)
{
    // Same scenario as above, but driven through the packaged
    // dc::TwoLevelAttack API.
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 16;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = 4;

    dz::ModelZoo zoo = dz::ModelZoo::buildDefault(31, 4, 0);
    dtr::MarkovTask pretask(16, 4, 8, 950, 4.0);

    dc::TwoLevelOptions opts;
    opts.level1.datasetOptions.imagesPerModel = 4;
    opts.level1.datasetOptions.resolution = 32;
    opts.level1.cnnOptions.epochs = 25;
    opts.level1.seed = 9;
    opts.cloner.policy.baseDist = 0.02;
    opts.cloner.policy.significance = 0.0001;
    opts.cloner.policy.maxBitsPerWeight = 8;
    opts.cloner.agreementTarget = 0.99;
    opts.adversarial.maxFlips = 4;

    dc::TwoLevelAttack attack(opts);
    std::vector<std::shared_ptr<dtr::TransformerClassifier>> weights;
    for (const auto *candidate : zoo.pretrained()) {
        auto model = std::make_shared<dtr::TransformerClassifier>(
            cfg, candidate->weightSeed);
        dtr::TrainOptions popts;
        popts.epochs = 3;
        popts.lr = 2e-3f;
        dtr::Trainer::train(*model, pretask.sample(100, 1), popts);
        weights.push_back(model);
        attack.addCandidate(*candidate, model);
    }
    const double extractor_acc = attack.prepare();
    EXPECT_GT(extractor_acc, 0.4);

    // The victim descends from candidate 1.
    const dz::ModelIdentity *parent = zoo.pretrained()[1];
    dtr::TransformerClassifier victim(*weights[1]);
    victim.resetHead(2, 3);
    dtr::MarkovTask task(16, 2, 8, 951, 4.0);
    dtr::TrainOptions fopts;
    fopts.epochs = 3;
    fopts.lr = 2e-4f;
    fopts.headLrMultiplier = 30.0f;
    dtr::Trainer::fineTune(victim, task.sample(120, 2), fopts);

    const auto trace = dg::TraceGenerator(parent->signature)
                           .generate(parent->arch, 0xfeed);
    const auto report = attack.execute(
        victim, trace, dc::makeVictimQueryHook(parent->vocabProfile),
        task.sample(80, 3), task.sample(60, 4).examples,
        task.sample(40, 5).examples);

    EXPECT_EQ(report.identification.pretrainedName, parent->name);
    ASSERT_TRUE(report.complete);
    ASSERT_NE(report.clone, nullptr);
    EXPECT_GT(report.cloneVictimAgreement, 0.85);
    EXPECT_NEAR(report.cloneAccuracy, report.victimAccuracy, 0.15);
    EXPECT_GT(report.probeStats.bitsRead, 0u);
    EXPECT_GT(report.layersExtracted, 0u);

    const std::string text = dc::formatReport(report);
    EXPECT_NE(text.find(parent->name), std::string::npos);
    EXPECT_NE(text.find("adversarial success"), std::string::npos);
}
