/**
 * @file
 * Tests for the trainable transformer substrate: encoder mechanics,
 * end-to-end gradient correctness, real learning on synthetic tasks,
 * transfer-learning plumbing (head reset, layer freezing, copying),
 * head pruning, and attention confidence.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/param.hh"
#include "transformer/classifier.hh"
#include "transformer/confidence.hh"
#include "transformer/config.hh"
#include "transformer/encoder.hh"
#include "transformer/task.hh"
#include "transformer/trainer.hh"
#include "util/rng.hh"

namespace dtr = decepticon::transformer;
namespace dn = decepticon::nn;
namespace dt = decepticon::tensor;
namespace du = decepticon::util;

namespace {

dtr::TransformerConfig
microConfig()
{
    dtr::TransformerConfig c;
    c.vocab = 24;
    c.maxSeqLen = 8;
    c.hidden = 8;
    c.numLayers = 2;
    c.numHeads = 2;
    c.ffnDim = 16;
    c.numClasses = 3;
    return c;
}

} // anonymous namespace

TEST(TransformerConfig, ValidityChecks)
{
    dtr::TransformerConfig c = microConfig();
    EXPECT_TRUE(c.valid());
    c.numHeads = 3; // 8 % 3 != 0
    EXPECT_FALSE(c.valid());
    c = microConfig();
    c.hidden = 0;
    EXPECT_FALSE(c.valid());
}

TEST(TransformerConfig, PresetsAreValidAndOrdered)
{
    const auto tiny = dtr::makeTinyConfig();
    const auto mini = dtr::makeMiniConfig();
    const auto base = dtr::makeBaseConfig();
    EXPECT_TRUE(tiny.valid());
    EXPECT_TRUE(mini.valid());
    EXPECT_TRUE(base.valid());
    EXPECT_LT(tiny.numLayers, mini.numLayers);
    EXPECT_LT(mini.numLayers, base.numLayers);
    EXPECT_LT(tiny.hidden, base.hidden);
}

TEST(HeadSlicing, SliceScatterRoundTrip)
{
    du::Rng rng(1);
    dt::Tensor x({4, 8});
    x.fillGaussian(rng, 1.0f);
    dt::Tensor rebuilt({4, 8});
    for (std::size_t h = 0; h < 2; ++h) {
        dt::Tensor block = dtr::sliceHead(x, h, 4);
        EXPECT_EQ(block.dim(1), 4u);
        dtr::scatterHead(rebuilt, block, h, 4);
    }
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(rebuilt[i], x[i]);
}

TEST(EncoderLayer, ForwardPreservesShape)
{
    du::Rng rng(2);
    dtr::EncoderLayer enc("e", microConfig(), rng);
    dt::Tensor x({5, 8});
    x.fillGaussian(rng, 0.5f);
    dt::Tensor y = enc.forward(x);
    EXPECT_EQ(y.shape(), x.shape());
}

TEST(EncoderLayer, AttentionProbsAreRowStochastic)
{
    du::Rng rng(3);
    dtr::EncoderLayer enc("e", microConfig(), rng);
    dt::Tensor x({6, 8});
    x.fillGaussian(rng, 0.5f);
    enc.forward(x);
    for (std::size_t h = 0; h < enc.numHeads(); ++h) {
        const dt::Tensor &p = enc.attentionProbs(h);
        ASSERT_EQ(p.dim(0), 6u);
        for (std::size_t i = 0; i < 6; ++i) {
            float s = 0.0f;
            for (std::size_t j = 0; j < 6; ++j)
                s += p.at(i, j);
            EXPECT_NEAR(s, 1.0f, 1e-5f);
        }
    }
}

TEST(EncoderLayer, PrunedHeadsChangeOutput)
{
    du::Rng rng(4);
    const auto cfg = microConfig();
    dtr::EncoderLayer enc("e", cfg, rng);
    dt::Tensor x({4, 8});
    x.fillGaussian(rng, 0.5f);
    dt::Tensor dense = enc.forward(x);
    enc.setActiveHeads({true, false});
    dt::Tensor pruned = enc.forward(x);
    double diff = 0.0;
    for (std::size_t i = 0; i < dense.size(); ++i)
        diff += std::fabs(dense[i] - pruned[i]);
    EXPECT_GT(diff, 1e-3);
}

TEST(EncoderLayer, GradientMatchesFiniteDifference)
{
    du::Rng rng(5);
    dtr::EncoderLayer enc("e", microConfig(), rng);
    dt::Tensor x({3, 8});
    x.fillGaussian(rng, 0.5f);
    dt::Tensor lw({3, 8});
    lw.fillGaussian(rng, 1.0f);

    dn::zeroGrads(enc.params());
    enc.forward(x);
    dt::Tensor dx = enc.backward(lw);

    const float eps = 1e-2f;
    for (std::size_t i = 0; i < x.size(); i += 3) {
        dt::Tensor xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        dt::Tensor yp = enc.forward(xp);
        dt::Tensor ym = enc.forward(xm);
        double fd = 0.0;
        for (std::size_t j = 0; j < yp.size(); ++j)
            fd += lw[j] * (yp[j] - ym[j]);
        fd /= 2.0 * eps;
        EXPECT_NEAR(dx[i], fd, 0.05 * std::max(1.0, std::fabs(fd)))
            << "at input " << i;
    }
}

TEST(TransformerClassifier, LogitsShape)
{
    dtr::TransformerClassifier model(microConfig(), 7);
    dt::Tensor lg = model.logits({1, 2, 3, 4});
    EXPECT_EQ(lg.dim(0), 1u);
    EXPECT_EQ(lg.dim(1), 3u);
}

TEST(TransformerClassifier, DeterministicForward)
{
    dtr::TransformerClassifier model(microConfig(), 7);
    dt::Tensor a = model.logits({1, 2, 3});
    dt::Tensor b = model.logits({1, 2, 3});
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(TransformerClassifier, FullModelGradientMatchesFiniteDifference)
{
    dtr::TransformerClassifier model(microConfig(), 11);
    const std::vector<int> tokens{3, 1, 4, 1, 5};
    const int label = 2;

    dn::zeroGrads(model.params());
    model.lossAndBackward(tokens, label);

    auto params = model.params();
    du::Rng rng(12);
    dn::SoftmaxCrossEntropy ref_loss;
    const float eps = 1e-2f;
    for (int check = 0; check < 24; ++check) {
        auto *p = params[rng.uniformInt(params.size())];
        const std::size_t i = rng.uniformInt(p->size());
        const float orig = p->value[i];
        p->value[i] = orig + eps;
        const float fp = ref_loss.forward(model.logits(tokens), {label});
        p->value[i] = orig - eps;
        const float fm = ref_loss.forward(model.logits(tokens), {label});
        p->value[i] = orig;
        const double fd = (fp - fm) / (2.0 * eps);
        EXPECT_NEAR(p->grad[i], fd, 0.05 * std::max(0.5, std::fabs(fd)))
            << p->name << "[" << i << "]";
    }
}

TEST(TransformerClassifier, CopyConstructorClonesBehaviour)
{
    dtr::TransformerClassifier model(microConfig(), 13);
    dtr::TransformerClassifier copy(model);
    const std::vector<int> tokens{2, 7, 7, 1};
    dt::Tensor a = model.logits(tokens);
    dt::Tensor b = copy.logits(tokens);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(TransformerClassifier, ResetHeadChangesOnlyHead)
{
    dtr::TransformerClassifier model(microConfig(), 14);
    dtr::TransformerClassifier before(model);
    model.resetHead(5, 99);
    EXPECT_EQ(model.config().numClasses, 5u);
    auto a = model.backboneParams();
    auto b = before.backboneParams();
    for (std::size_t p = 0; p < a.size(); ++p)
        for (std::size_t i = 0; i < a[p]->size(); ++i)
            EXPECT_EQ(a[p]->value[i], b[p]->value[i]);
    dt::Tensor lg = model.logits({1, 2});
    EXPECT_EQ(lg.dim(1), 5u);
}

TEST(TransformerClassifier, CopyBackboneTransfersWeights)
{
    dtr::TransformerClassifier src(microConfig(), 15);
    dtr::TransformerClassifier dst(microConfig(), 16);
    dst.copyBackboneFrom(src);
    auto a = dst.backboneParams();
    auto b = src.backboneParams();
    for (std::size_t p = 0; p < a.size(); ++p)
        for (std::size_t i = 0; i < a[p]->size(); ++i)
            EXPECT_EQ(a[p]->value[i], b[p]->value[i]);
}

TEST(TransformerClassifier, ParamGroupsPartitionAllParams)
{
    dtr::TransformerClassifier model(microConfig(), 17);
    std::size_t encoder_count = 0;
    for (std::size_t l = 0; l < model.numLayers(); ++l)
        encoder_count += dn::totalParamCount(model.encoderParams(l));
    const std::size_t emb_count =
        dn::totalParamCount(model.backboneParams()) - encoder_count;
    const std::size_t head_count = dn::totalParamCount(model.headParams());
    EXPECT_EQ(emb_count + encoder_count + head_count,
              dn::totalParamCount(model.params()));
    EXPECT_GT(emb_count, 0u);
    EXPECT_GT(head_count, 0u);
}

TEST(MarkovTask, BalancedLabels)
{
    dtr::MarkovTask task(24, 3, 8, 100);
    const dtr::Dataset ds = task.sample(90, 1);
    std::vector<int> counts(3, 0);
    for (const auto &ex : ds.examples) {
        ASSERT_GE(ex.label, 0);
        ASSERT_LT(ex.label, 3);
        ++counts[static_cast<std::size_t>(ex.label)];
    }
    EXPECT_EQ(counts[0], 30);
    EXPECT_EQ(counts[1], 30);
    EXPECT_EQ(counts[2], 30);
}

TEST(MarkovTask, TokensWithinVocab)
{
    dtr::MarkovTask task(16, 2, 10, 101);
    const dtr::Dataset ds = task.sample(40, 2);
    for (const auto &ex : ds.examples) {
        EXPECT_EQ(ex.tokens.size(), 10u);
        for (int t : ex.tokens) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, 16);
        }
    }
}

TEST(MarkovTask, DeterministicSampling)
{
    dtr::MarkovTask task(16, 2, 6, 102);
    const dtr::Dataset a = task.sample(10, 3);
    const dtr::Dataset b = task.sample(10, 3);
    for (std::size_t i = 0; i < a.examples.size(); ++i) {
        EXPECT_EQ(a.examples[i].tokens, b.examples[i].tokens);
        EXPECT_EQ(a.examples[i].label, b.examples[i].label);
    }
}

TEST(MarkovTask, DifferentSeedsGiveDifferentChains)
{
    dtr::MarkovTask t1(16, 2, 12, 1);
    dtr::MarkovTask t2(16, 2, 12, 2);
    const auto a = t1.sample(5, 9).examples;
    const auto b = t2.sample(5, 9).examples;
    bool differ = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differ |= a[i].tokens != b[i].tokens;
    EXPECT_TRUE(differ);
}

TEST(Dataset, FractionTakesLeadingExamples)
{
    dtr::Dataset ds;
    ds.numClasses = 2;
    for (int i = 0; i < 10; ++i)
        ds.examples.push_back({{i}, i % 2});
    const dtr::Dataset half = ds.fraction(0.5);
    EXPECT_EQ(half.size(), 5u);
    EXPECT_EQ(half.examples[0].tokens[0], 0);
    EXPECT_EQ(ds.fraction(0.0001).size(), 1u);
    EXPECT_EQ(ds.fraction(1.0).size(), 10u);
}

TEST(Trainer, LearnsMarkovTask)
{
    dtr::TransformerConfig cfg = microConfig();
    cfg.vocab = 16;
    cfg.numClasses = 2;
    dtr::TransformerClassifier model(cfg, 21);

    dtr::MarkovTask task(16, 2, 8, 200, 4.0);
    const dtr::Dataset train = task.sample(160, 5);
    const dtr::Dataset test = task.sample(60, 6);

    dtr::TrainOptions opts;
    opts.epochs = 6;
    opts.lr = 3e-3f;
    const auto history = dtr::Trainer::train(model, train, opts);
    ASSERT_EQ(history.size(), 6u);
    EXPECT_LT(history.back().meanLoss, history.front().meanLoss);

    const auto eval = dtr::Trainer::evaluate(model, test);
    EXPECT_GT(eval.accuracy, 0.8) << "task should be learnable";
    EXPECT_GT(eval.macroF1, 0.7);
}

TEST(Trainer, FreezeFirstNKeepsLayersFixed)
{
    dtr::TransformerClassifier model(microConfig(), 22);
    dtr::TransformerClassifier before(model);

    dtr::MarkovTask task(24, 3, 8, 201);
    dtr::TrainOptions opts;
    opts.epochs = 2;
    opts.freezeFirstN = 1;
    dtr::Trainer::fineTune(model, task.sample(40, 7), opts);

    auto frozen = model.encoderParams(0);
    auto frozen_ref = before.encoderParams(0);
    for (std::size_t p = 0; p < frozen.size(); ++p)
        for (std::size_t i = 0; i < frozen[p]->size(); ++i)
            EXPECT_EQ(frozen[p]->value[i], frozen_ref[p]->value[i]);

    auto live = model.encoderParams(1);
    auto live_ref = before.encoderParams(1);
    double moved = 0.0;
    for (std::size_t p = 0; p < live.size(); ++p)
        for (std::size_t i = 0; i < live[p]->size(); ++i)
            moved += std::fabs(live[p]->value[i] - live_ref[p]->value[i]);
    EXPECT_GT(moved, 0.0);
}

TEST(Trainer, HeadLrMultiplierMovesHeadMore)
{
    dtr::TransformerClassifier model(microConfig(), 23);
    dtr::TransformerClassifier before(model);
    dtr::MarkovTask task(24, 3, 8, 202);
    dtr::TrainOptions opts;
    opts.epochs = 1;
    opts.lr = 1e-4f;
    opts.headLrMultiplier = 50.0f;
    dtr::Trainer::fineTune(model, task.sample(40, 8), opts);

    auto head = model.headParams();
    auto head_ref = before.headParams();
    double head_moved = 0.0;
    std::size_t head_n = 0;
    for (std::size_t p = 0; p < head.size(); ++p)
        for (std::size_t i = 0; i < head[p]->size(); ++i, ++head_n)
            head_moved +=
                std::fabs(head[p]->value[i] - head_ref[p]->value[i]);

    auto enc = model.encoderParams(0);
    auto enc_ref = before.encoderParams(0);
    double enc_moved = 0.0;
    std::size_t enc_n = 0;
    for (std::size_t p = 0; p < enc.size(); ++p)
        for (std::size_t i = 0; i < enc[p]->size(); ++i, ++enc_n)
            enc_moved +=
                std::fabs(enc[p]->value[i] - enc_ref[p]->value[i]);

    EXPECT_GT(head_moved / static_cast<double>(head_n),
              5.0 * enc_moved / static_cast<double>(enc_n));
}

TEST(Trainer, DataFractionChangesOutcome)
{
    dtr::TransformerClassifier a(microConfig(), 24);
    dtr::TransformerClassifier b(a);
    dtr::MarkovTask task(24, 3, 8, 203);
    const dtr::Dataset data = task.sample(60, 8);

    dtr::TrainOptions full;
    full.epochs = 1;
    dtr::TrainOptions tiny = full;
    tiny.dataFraction = 0.1;
    dtr::Trainer::fineTune(a, data, full);
    dtr::Trainer::fineTune(b, data, tiny);
    auto pa = a.params();
    auto pb = b.params();
    double diff = 0.0;
    for (std::size_t p = 0; p < pa.size(); ++p)
        for (std::size_t i = 0; i < pa[p]->size(); ++i)
            diff += std::fabs(pa[p]->value[i] - pb[p]->value[i]);
    EXPECT_GT(diff, 0.0);
}

TEST(Trainer, EpochCallbackFires)
{
    dtr::TransformerClassifier model(microConfig(), 25);
    dtr::MarkovTask task(24, 3, 8, 204);
    std::vector<std::size_t> seen;
    dtr::TrainOptions opts;
    opts.epochs = 3;
    opts.epochCallback = [&](std::size_t e) { seen.push_back(e); };
    dtr::Trainer::train(model, task.sample(20, 9), opts);
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Trainer, AgreementMetric)
{
    EXPECT_DOUBLE_EQ(dtr::Trainer::agreement({1, 2, 3}, {1, 2, 3}), 1.0);
    EXPECT_DOUBLE_EQ(dtr::Trainer::agreement({1, 2, 3}, {1, 0, 0}),
                     1.0 / 3.0);
    EXPECT_DOUBLE_EQ(dtr::Trainer::agreement({}, {}), 0.0);
}

TEST(MacroF1, PerfectPrediction)
{
    EXPECT_DOUBLE_EQ(dtr::macroF1({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0);
}

TEST(MacroF1, AllOneClassPrediction)
{
    // Predicting class 0 always: F1(class0) = 2*2/(2*2+2) = 2/3,
    // F1(class1) = 0.
    EXPECT_NEAR(dtr::macroF1({0, 0, 0, 0}, {0, 1, 0, 1}, 2),
                (2.0 / 3.0) / 2.0, 1e-12);
}

TEST(Confidence, ShapeAndRange)
{
    dtr::TransformerClassifier model(microConfig(), 26);
    dtr::MarkovTask task(24, 3, 8, 205);
    const auto samples = task.sample(6, 10).examples;
    const auto conf = dtr::headConfidence(model, samples);
    ASSERT_EQ(conf.size(), model.numLayers());
    for (const auto &row : conf) {
        ASSERT_EQ(row.size(), model.config().numHeads);
        for (double v : row) {
            EXPECT_GT(v, 0.0);
            EXPECT_LE(v, 1.0 + 1e-9);
        }
    }
}

TEST(Confidence, PrunedHeadReportsZero)
{
    dtr::TransformerClassifier model(microConfig(), 27);
    model.encoder(0).setActiveHeads({true, false});
    dtr::MarkovTask task(24, 3, 8, 206);
    const auto samples = task.sample(4, 11).examples;
    const auto conf = dtr::headConfidence(model, samples);
    EXPECT_EQ(conf[0][1], 0.0);
    EXPECT_GT(conf[0][0], 0.0);
}

TEST(Confidence, FlattenPreservesOrder)
{
    const std::vector<std::vector<double>> conf{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(dtr::flattenConfidence(conf),
              (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

/** Sequence-length sweep: model handles any length up to maxSeqLen. */
class SeqLenSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SeqLenSweep, ForwardBackwardRun)
{
    dtr::TransformerClassifier model(microConfig(), 28);
    std::vector<int> tokens(static_cast<std::size_t>(GetParam()), 3);
    const float loss = model.lossAndBackward(tokens, 1);
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GT(loss, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SeqLenSweep,
                         ::testing::Values(1, 2, 4, 7, 8));

TEST(CausalDecoder, MaskZerosFutureAttention)
{
    dtr::TransformerConfig cfg = microConfig();
    cfg.causal = true;
    du::Rng rng(31);
    dtr::EncoderLayer dec("d", cfg, rng);
    dt::Tensor x({5, 8});
    x.fillGaussian(rng, 0.5f);
    dec.forward(x);
    for (std::size_t h = 0; h < dec.numHeads(); ++h) {
        const dt::Tensor &p = dec.attentionProbs(h);
        for (std::size_t i = 0; i < 5; ++i) {
            float row_sum = 0.0f;
            for (std::size_t j = 0; j < 5; ++j) {
                if (j > i) {
                    EXPECT_EQ(p.at(i, j), 0.0f);
                }
                row_sum += p.at(i, j);
            }
            EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
        }
    }
}

TEST(CausalDecoder, PrefixInvariance)
{
    // A causal model's pooled state at position i depends only on the
    // prefix; position-0 attention output is identical regardless of
    // the suffix.
    dtr::TransformerConfig cfg = microConfig();
    cfg.causal = true;
    dtr::TransformerClassifier model(cfg, 32);
    // Two sequences sharing a 3-token prefix.
    dt::Tensor a = model.logits({1, 2, 3});
    dtr::TransformerConfig cfg2 = cfg;
    (void)cfg2;
    // Pooling is on the last token, so compare via a fresh 3-token
    // query after running a longer one (caches must not leak).
    model.logits({1, 2, 3, 4, 5, 6});
    dt::Tensor b = model.logits({1, 2, 3});
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(CausalDecoder, GradientMatchesFiniteDifference)
{
    dtr::TransformerConfig cfg = microConfig();
    cfg.causal = true;
    dtr::TransformerClassifier model(cfg, 33);
    const std::vector<int> tokens{3, 1, 4, 1};
    const int label = 1;

    dn::zeroGrads(model.params());
    model.lossAndBackward(tokens, label);

    auto params = model.params();
    du::Rng rng(34);
    dn::SoftmaxCrossEntropy ref_loss;
    const float eps = 1e-2f;
    for (int check = 0; check < 16; ++check) {
        auto *p = params[rng.uniformInt(params.size())];
        const std::size_t i = rng.uniformInt(p->size());
        const float orig = p->value[i];
        p->value[i] = orig + eps;
        const float fp = ref_loss.forward(model.logits(tokens), {label});
        p->value[i] = orig - eps;
        const float fm = ref_loss.forward(model.logits(tokens), {label});
        p->value[i] = orig;
        const double fd = (fp - fm) / (2.0 * eps);
        EXPECT_NEAR(p->grad[i], fd, 0.05 * std::max(0.5, std::fabs(fd)))
            << p->name << "[" << i << "]";
    }
}

TEST(CausalDecoder, LearnsMarkovTask)
{
    dtr::TransformerConfig cfg = microConfig();
    cfg.vocab = 16;
    cfg.numClasses = 2;
    cfg.causal = true;
    dtr::TransformerClassifier model(cfg, 35);
    dtr::MarkovTask task(16, 2, 8, 300, 4.0);
    dtr::TrainOptions opts;
    opts.epochs = 6;
    opts.lr = 3e-3f;
    dtr::Trainer::train(model, task.sample(160, 1), opts);
    const auto eval = dtr::Trainer::evaluate(model, task.sample(60, 2));
    EXPECT_GT(eval.accuracy, 0.8);
}

TEST(CausalDecoder, Gpt2PresetIsValidAndCausal)
{
    const auto cfg = dtr::makeGpt2Config();
    EXPECT_TRUE(cfg.valid());
    EXPECT_TRUE(cfg.causal);
}

TEST(MaskedTokenTask, MasksThePoolingPosition)
{
    dtr::MaskedTokenTask task(16, 8, 500);
    EXPECT_EQ(task.maskToken(), 16);
    EXPECT_EQ(task.modelVocab(), 17u);
    EXPECT_EQ(task.numClasses(), 16u);
    const auto ds = task.sample(30, 1);
    EXPECT_EQ(ds.numClasses, 16u);
    for (const auto &ex : ds.examples) {
        EXPECT_EQ(ex.tokens[0], 16);
        EXPECT_GE(ex.label, 0);
        EXPECT_LT(ex.label, 16);
        for (std::size_t i = 1; i < ex.tokens.size(); ++i)
            EXPECT_LT(ex.tokens[i], 16);
    }
}

TEST(MaskedTokenTask, MaskBackVariant)
{
    dtr::MaskedTokenTask task(16, 8, 501, /*mask_front=*/false);
    const auto ds = task.sample(10, 2);
    for (const auto &ex : ds.examples) {
        EXPECT_EQ(ex.tokens.back(), 16);
        EXPECT_NE(ex.tokens[0], 16);
    }
}

TEST(MaskedTokenTask, MlmPretrainingLearnsTokenStatistics)
{
    dtr::MaskedTokenTask task(16, 8, 502, true, 4.0);
    dtr::TransformerConfig cfg;
    cfg.vocab = task.modelVocab();
    cfg.maxSeqLen = 8;
    cfg.hidden = 16;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = task.numClasses();
    dtr::TransformerClassifier model(cfg, 71);

    dtr::TrainOptions opts;
    opts.epochs = 6;
    opts.lr = 3e-3f;
    dtr::Trainer::train(model, task.sample(240, 1), opts);
    const auto eval =
        dtr::Trainer::evaluate(model, task.sample(80, 2));
    // Chance is 1/16; corpus statistics make the mask predictable.
    EXPECT_GT(eval.accuracy, 0.3);
}

TEST(MaskedTokenTask, MlmBackboneTransfersToClassification)
{
    // Pre-train with MLM, then fine-tune a classifier head: the
    // transfer-learning path the paper's victims follow.
    dtr::MaskedTokenTask mlm(16, 8, 503, true, 4.0);
    dtr::TransformerConfig cfg;
    cfg.vocab = mlm.modelVocab();
    cfg.maxSeqLen = 8;
    cfg.hidden = 16;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = mlm.numClasses();
    dtr::TransformerClassifier pre(cfg, 72);
    dtr::TrainOptions popts;
    popts.epochs = 5;
    popts.lr = 3e-3f;
    dtr::Trainer::train(pre, mlm.sample(240, 1), popts);

    dtr::TransformerClassifier ft(pre);
    ft.resetHead(2, 9);
    dtr::MarkovTask task(16, 2, 8, 504, 4.0);
    dtr::TrainOptions fopts;
    fopts.epochs = 3;
    fopts.lr = 5e-4f;
    fopts.headLrMultiplier = 10.0f;
    dtr::Trainer::fineTune(ft, task.sample(100, 2), fopts);
    const auto eval = dtr::Trainer::evaluate(ft, task.sample(60, 3));
    EXPECT_GT(eval.accuracy, 0.75);
}

#include "nn/serialize.hh"

TEST(TransformerClassifier, CheckpointRoundTrip)
{
    dtr::TransformerClassifier a(microConfig(), 81);
    dtr::TransformerClassifier b(microConfig(), 82);
    const std::string path = "/tmp/decepticon_ckpt_test.bin";
    ASSERT_TRUE(dn::saveParamsToFile(path, a.params()));
    ASSERT_TRUE(dn::loadParamsFromFile(path, b.params()));
    const std::vector<int> tokens{1, 5, 2, 7};
    dt::Tensor la = a.logits(tokens);
    dt::Tensor lb = b.logits(tokens);
    for (std::size_t i = 0; i < la.size(); ++i)
        EXPECT_EQ(la[i], lb[i]);
    std::remove(path.c_str());
}
