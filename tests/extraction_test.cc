/**
 * @file
 * Tests for the extraction library: IEEE-754 bit utilities, the
 * rowhammer bit-probe channel, Algorithm 1 selective extraction
 * (including the paper's Fig. 13 worked example), and the end-to-end
 * model cloner.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "extraction/bitprobe.hh"
#include "extraction/cloner.hh"
#include "extraction/ieee.hh"
#include "extraction/selective.hh"
#include "transformer/trainer.hh"
#include "util/rng.hh"
#include "zoo/finetune_sim.hh"

namespace de = decepticon::extraction;
namespace dz = decepticon::zoo;
namespace dtr = decepticon::transformer;

TEST(Ieee, BitsRoundTrip)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.018f, 3.14159f, -1e-8f})
        EXPECT_EQ(de::bitsFromFloat(de::floatToBits(v)), v);
}

TEST(Ieee, SignBit)
{
    EXPECT_FALSE(de::signBit(1.0f));
    EXPECT_TRUE(de::signBit(-1.0f));
    EXPECT_TRUE(de::signBit(-0.0f));
}

TEST(Ieee, ExponentFields)
{
    EXPECT_EQ(de::exponentField(1.0f), 127);
    EXPECT_EQ(de::unbiasedExponent(1.0f), 0);
    EXPECT_EQ(de::unbiasedExponent(2.0f), 1);
    EXPECT_EQ(de::unbiasedExponent(0.5f), -1);
    // 0.018 is in [2^-6, 2^-5): unbiased exponent -6.
    EXPECT_EQ(de::unbiasedExponent(0.018f), -6);
}

TEST(Ieee, FractionBitReadWrite)
{
    const float v = 1.5f; // fraction = 0b100...0, bit 1 set
    EXPECT_TRUE(de::fractionBit(v, 1));
    EXPECT_FALSE(de::fractionBit(v, 2));
    const float cleared = de::withFractionBit(v, 1, false);
    EXPECT_EQ(cleared, 1.0f);
    const float set2 = de::withFractionBit(v, 2, true);
    EXPECT_EQ(set2, 1.75f);
}

TEST(Ieee, PlaceValues)
{
    EXPECT_DOUBLE_EQ(de::leadingPlaceValue(1.0f), 1.0);
    EXPECT_DOUBLE_EQ(de::fractionBitPlaceValue(1.0f, 1), 0.5);
    EXPECT_DOUBLE_EQ(de::fractionBitPlaceValue(1.0f, 3), 0.125);
    // The paper's Fig. 13 example: for w = 0.018 (exp -6), fraction
    // position 4 has place value 2^-10 ~ 0.00098 and position 5 has
    // 2^-11 ~ 0.00049 — exactly the bits Algorithm 1 checks for a
    // ~0.002 gap.
    EXPECT_NEAR(de::fractionBitPlaceValue(0.018f, 4), 0.0009765625,
                1e-12);
    EXPECT_NEAR(de::fractionBitPlaceValue(0.018f, 5), 0.00048828125,
                1e-12);
}

TEST(Ieee, FractionPosToWordBit)
{
    EXPECT_EQ(de::fractionPosToWordBit(1), 22);
    EXPECT_EQ(de::fractionPosToWordBit(23), 0);
}

TEST(Ieee, QuantizeBfloat16KeepsExponent)
{
    const float v = 0.018f;
    const float q = de::quantizeTo(v, de::kBfloat16);
    EXPECT_EQ(de::unbiasedExponent(q), de::unbiasedExponent(v));
    EXPECT_NEAR(q, v, std::ldexp(1.0, de::unbiasedExponent(v) - 7));
}

TEST(Ieee, QuantizeFloat16Precision)
{
    const float v = 1.2345f;
    const float q = de::quantizeTo(v, de::kFloat16);
    EXPECT_NEAR(q, v, 1e-3f);
    // Values beyond float16's exponent range flush.
    EXPECT_TRUE(std::isinf(de::quantizeTo(1e30f, de::kFloat16)));
    EXPECT_EQ(de::quantizeTo(1e-30f, de::kFloat16), 0.0f);
}

TEST(Ieee, QuantizeIsIdempotent)
{
    decepticon::util::Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const float v = static_cast<float>(rng.gaussian(0.0, 0.2));
        const float q = de::quantizeTo(v, de::kBfloat16);
        EXPECT_EQ(de::quantizeTo(q, de::kBfloat16), q);
    }
}

namespace {

/** Small weight store + oracle fixture. */
struct StoreFixture
{
    decepticon::gpusim::ArchParams arch;
    dz::WeightStore pre;
    dz::WeightStore victim;

    StoreFixture()
    {
        arch.numLayers = 3;
        arch.hidden = 128;
        pre = dz::WeightStore::makePretrained(arch, 21, 3000);
        dz::FineTuneOptions opts;
        opts.headWeights = 40;
        victim = dz::FineTuneSimulator::fineTune(pre, opts, 22);
    }
};

} // anonymous namespace

TEST(BitProbe, CountsReads)
{
    StoreFixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::BitProbeChannel chan(oracle, 3);
    chan.readBit(0, 0, 31);
    chan.readBit(0, 1, 22);
    EXPECT_EQ(chan.stats().bitsRead, 2u);
    EXPECT_EQ(chan.stats().hammerRounds, 6u);
    chan.resetStats();
    EXPECT_EQ(chan.stats().bitsRead, 0u);
}

TEST(BitProbe, FullWeightReadIsExact)
{
    StoreFixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::BitProbeChannel chan(oracle);
    const float v = chan.readFullWeight(1, 5);
    EXPECT_EQ(v, fx.victim.layers[1].w[5]);
    EXPECT_EQ(chan.stats().bitsRead, 32u);
}

TEST(BitProbe, SignBitMatches)
{
    StoreFixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::BitProbeChannel chan(oracle);
    for (std::size_t i = 0; i < 50; ++i) {
        const bool sign = chan.readBit(0, i, 31);
        EXPECT_EQ(sign, std::signbit(fx.victim.layers[0].w[i]));
    }
}

TEST(BitProbe, ErrorRateFlipsSomeBits)
{
    StoreFixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::BitProbeChannel noisy(oracle, 1, 0.5, 7);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < 200; ++i) {
        const bool truth = std::signbit(fx.victim.layers[0].w[i]);
        if (noisy.readBit(0, i, 31) != truth)
            ++flips;
    }
    EXPECT_GT(flips, 50u);
    EXPECT_LT(flips, 150u);
}

TEST(BitProbe, HeadLayerAddressable)
{
    StoreFixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    EXPECT_EQ(oracle.numLayers(), 3u);
    EXPECT_EQ(oracle.layerSize(3), 40u);
    de::BitProbeChannel chan(oracle);
    EXPECT_EQ(chan.readFullWeight(3, 0), fx.victim.head.w[0]);
}

TEST(Policy, EstimatedDistUShaped)
{
    de::ExtractionPolicy p;
    EXPECT_NEAR(p.estimatedDist(0.0), p.baseDist, 1e-12);
    EXPECT_GT(p.estimatedDist(0.25), 3.0 * p.baseDist);
    EXPECT_GT(p.estimatedDist(0.5), p.estimatedDist(0.25));
}

TEST(Selective, Fig13WorkedExample)
{
    // Paper Fig. 13: pre-trained weight 0.018, fine-tuned to 0.01908.
    // Splicing the two fraction bits at place values 2^-10 and 2^-11
    // must bring the clone within ~0.0005 of the true value.
    const float base = 0.018f;
    const float actual = 0.01908f;

    dz::WeightStore store;
    store.layers.push_back({"l0", {actual}});
    de::WeightStoreOracle oracle(store);
    de::BitProbeChannel chan(oracle);

    de::ExtractionPolicy policy;
    policy.baseDist = 0.002;
    policy.uShapeAlpha = 0.0; // flat estimate, like the example
    policy.significance = 0.0002;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    const float clone = ex.extractWeight(base, chan, 0, 0, stats);

    EXPECT_EQ(stats.bitsChecked, 2u);
    EXPECT_NEAR(clone, actual, 0.001);
    EXPECT_LT(std::fabs(clone - actual), std::fabs(base - actual));
}

TEST(Selective, TinyWeightsSkipped)
{
    dz::WeightStore store;
    store.layers.push_back({"l0", {0.0005f}});
    de::WeightStoreOracle oracle(store);
    de::BitProbeChannel chan(oracle);
    de::ExtractionPolicy policy;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    const float clone = ex.extractWeight(0.0004f, chan, 0, 0, stats);
    EXPECT_EQ(clone, 0.0004f);
    EXPECT_EQ(stats.weightsSkipped, 1u);
    EXPECT_EQ(chan.stats().bitsRead, 0u);
}

TEST(Selective, InsignificantUpdateSkipped)
{
    // A mid-size weight whose estimated update is below significance
    // is also skipped (the attacker's step-1 pruning).
    dz::WeightStore store;
    store.layers.push_back({"l0", {0.05f}});
    de::WeightStoreOracle oracle(store);
    de::BitProbeChannel chan(oracle);
    de::ExtractionPolicy policy;
    policy.baseDist = 0.0005;
    policy.significance = 0.002;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    ex.extractWeight(0.05f, chan, 0, 0, stats);
    EXPECT_EQ(stats.weightsSkipped, 1u);
}

TEST(Selective, ChecksAtMostMaxBits)
{
    dz::WeightStore store;
    store.layers.push_back({"l0", {0.52f}});
    de::WeightStoreOracle oracle(store);
    de::BitProbeChannel chan(oracle);
    de::ExtractionPolicy policy;
    policy.maxBitsPerWeight = 2;
    policy.significance = 1e-6;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    ex.extractWeight(0.5f, chan, 0, 0, stats);
    EXPECT_LE(stats.bitsChecked, 2u);
    EXPECT_LE(chan.stats().bitsRead, 2u);
}

TEST(Selective, LayerExtractionEfficiency)
{
    StoreFixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::BitProbeChannel chan(oracle);
    de::ExtractionPolicy policy;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;

    const auto clone0 =
        ex.extractLayer(fx.pre.layers[0].w, chan, 0, stats);
    ASSERT_EQ(clone0.size(), fx.pre.layers[0].w.size());
    // Most weights should be excluded from checking (paper Fig. 16).
    EXPECT_GT(stats.weightsSkippedFraction(), 0.6);
    EXPECT_GT(stats.bitsExcludedFraction(), 0.85);

    ex.auditAccuracy(clone0, fx.victim.layers[0].w, fx.pre.layers[0].w,
                     stats);
    EXPECT_GT(stats.correctFraction(), 0.8);
}

TEST(Selective, HeadExtractionIsExact)
{
    StoreFixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::BitProbeChannel chan(oracle);
    de::ExtractionPolicy policy;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    const auto head = ex.extractHead(chan, 3, 40, stats);
    ASSERT_EQ(head.size(), 40u);
    for (std::size_t i = 0; i < head.size(); ++i)
        EXPECT_EQ(head[i], fx.victim.head.w[i]);
    EXPECT_EQ(stats.fullWeightsRead, 40u);
}

TEST(Selective, AuditFlagsSignFlips)
{
    de::ExtractionPolicy policy;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    ex.auditAccuracy({0.02f}, {-0.02f}, {0.02f}, stats);
    EXPECT_EQ(stats.signFlips, 1u);
    EXPECT_EQ(stats.extractionErrors, 1u);
}

TEST(Selective, AuditPassesSmallResiduals)
{
    de::ExtractionPolicy policy;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    ex.auditAccuracy({0.02f, 0.1f}, {0.0205f, 0.1008f}, {0.02f, 0.1f},
                     stats);
    EXPECT_EQ(stats.extractionErrors, 0u);
    EXPECT_EQ(stats.auditedWeights, 2u);
}

TEST(Selective, StatsMerge)
{
    de::ExtractionStats a, b;
    a.totalWeights = 10;
    a.bitsChecked = 5;
    b.totalWeights = 20;
    b.extractionErrors = 2;
    b.auditedWeights = 20;
    a.merge(b);
    EXPECT_EQ(a.totalWeights, 30u);
    EXPECT_EQ(a.bitsChecked, 5u);
    EXPECT_EQ(a.extractionErrors, 2u);
}

TEST(Cloner, GroupRoundTrip)
{
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 8;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    dtr::TransformerClassifier model(cfg, 31);
    auto groups = de::victimParamGroups(model);
    ASSERT_EQ(groups.size(), 4u); // emb + 2 encoders + head
    auto w = de::groupWeights(groups[1]);
    for (auto &v : w)
        v += 1.0f;
    de::setGroupWeights(groups[1], w);
    EXPECT_EQ(de::groupWeights(groups[1]), w);
}

TEST(Cloner, OracleMatchesGroups)
{
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 8;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    dtr::TransformerClassifier model(cfg, 32);
    auto groups = de::victimParamGroups(model);
    de::ParamGroupOracle oracle(groups);
    EXPECT_EQ(oracle.numLayers(), 3u); // emb counts as a "layer" slot
    const auto w1 = de::groupWeights(groups[1]);
    for (std::size_t i = 0; i < w1.size(); i += 37)
        EXPECT_EQ(oracle.weightValue(1, i), w1[i]);
}

TEST(Cloner, ClonesFineTunedVictim)
{
    // Real end-to-end level-2 extraction on a tiny trained victim.
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 16;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = 4;

    // Pre-train a backbone.
    dtr::TransformerClassifier pretrained(cfg, 41);
    dtr::MarkovTask pretask(16, 4, 8, 400, 4.0);
    dtr::TrainOptions popts;
    popts.epochs = 4;
    popts.lr = 2e-3f;
    dtr::Trainer::train(pretrained, pretask.sample(120, 1), popts);

    // Victim: fine-tune from the pre-trained backbone with a small
    // backbone rate (the transfer-learning regime).
    dtr::TransformerClassifier victim(pretrained);
    victim.resetHead(2, 77);
    dtr::MarkovTask task(16, 2, 8, 500, 4.0);
    dtr::TrainOptions fopts;
    fopts.epochs = 3;
    fopts.lr = 2e-4f;
    fopts.headLrMultiplier = 30.0f;
    dtr::Trainer::fineTune(victim, task.sample(120, 2), fopts);

    // Extract.
    de::ClonerOptions copts;
    copts.policy.baseDist = 0.01;
    copts.policy.significance = 0.0005;
    copts.policy.maxBitsPerWeight = 4;
    copts.agreementTarget = 0.95;
    const auto query = task.sample(60, 3).examples;
    auto result = de::ModelCloner::extract(victim, pretrained, query,
                                           copts);
    ASSERT_NE(result.clone, nullptr);
    ASSERT_FALSE(result.agreementTrajectory.empty());
    const double final_agreement = result.agreementTrajectory.back();
    EXPECT_GT(final_agreement, 0.85);
    // Agreement should improve (or at least not regress) as layers
    // are extracted.
    EXPECT_GE(final_agreement,
              result.agreementTrajectory.front() - 0.05);
    // The probe cost must be far below full extraction (32 bits for
    // every weight in the model).
    const std::size_t full_cost =
        32 * decepticon::nn::totalParamCount(victim.params());
    EXPECT_LT(result.probeStats.bitsRead, full_cost / 2);
}

/** Quantization formats preserve selective extraction's key bits. */
class FormatSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FormatSweep, QuantizedValueStaysClose)
{
    decepticon::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    const de::FloatFormat fmt =
        GetParam() % 2 == 0 ? de::kBfloat16 : de::kFloat16;
    for (int i = 0; i < 100; ++i) {
        const float v = static_cast<float>(rng.gaussian(0.0, 0.3));
        const float q = de::quantizeTo(v, fmt);
        const double ulp =
            std::ldexp(1.0, de::unbiasedExponent(v) - fmt.fractionBits);
        EXPECT_NEAR(q, v, ulp);
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, FormatSweep, ::testing::Range(1, 7));

TEST(Cloner, DramConstrainedChannel)
{
    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 16;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 32;
    cfg.numClasses = 2;
    dtr::TransformerClassifier pre(cfg, 61);
    dtr::MarkovTask pretask(16, 2, 8, 610, 4.0);
    dtr::TrainOptions popts;
    popts.epochs = 3;
    popts.lr = 2e-3f;
    dtr::Trainer::train(pre, pretask.sample(100, 1), popts);

    dtr::TransformerClassifier victim(pre);
    victim.resetHead(2, 3);
    dtr::MarkovTask task(16, 2, 8, 611, 4.0);
    dtr::TrainOptions fopts;
    fopts.epochs = 2;
    fopts.lr = 2e-4f;
    fopts.headLrMultiplier = 30.0f;
    dtr::Trainer::fineTune(victim, task.sample(80, 2), fopts);

    de::ClonerOptions copts;
    copts.policy.baseDist = 0.02;
    copts.policy.significance = 0.0001;
    copts.policy.maxBitsPerWeight = 6;
    copts.agreementTarget = 1.1; // extract everything
    de::DramGeometry geom;
    // Small rows so this tiny model spans many of them and the
    // hammerability mask actually bites.
    geom.rowBytes = 256;
    geom.hammerableRowFraction = 0.6;
    copts.dramGeometry = geom;
    copts.dramSeed = 5;

    auto result = de::ModelCloner::extract(
        victim, pre, task.sample(40, 3).examples, copts);
    ASSERT_NE(result.clone, nullptr);
    // DRAM cold/warm pricing shows in the hammer-round accounting.
    EXPECT_GE(result.probeStats.hammerRounds,
              geom.roundsPerBitWarm * result.probeStats.bitsRead);
    EXPECT_GT(result.extractionStats.unreadableWeights, 0u);
    // The clone is still produced and evaluated; quality depends on
    // which rows (possibly including the baseline-less head) were
    // reachable, so only structural properties are asserted here —
    // clone fidelity under full reachability is covered by
    // Cloner.ClonesFineTunedVictim.
    ASSERT_FALSE(result.agreementTrajectory.empty());
    EXPECT_GE(result.agreementTrajectory.back(), 0.0);
}
