/**
 * @file
 * Tests for the model zoo: population structure, fingerprint/vocab
 * inheritance, weight stores, and the statistical fine-tuning
 * simulator's paper-calibrated update laws.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/stats.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/vocab.hh"
#include "zoo/weight_store.hh"
#include "zoo/zoo.hh"

namespace dz = decepticon::zoo;
namespace du = decepticon::util;

TEST(Vocab, LanguageMismatchFailsProbe)
{
    dz::VocabularyProfile fr;
    fr.language = dz::Language::French;
    dz::QueryProbe en{"hello", dz::Language::English, false, 1};
    dz::QueryProbe frq{"bonjour", dz::Language::French, false, 1};
    EXPECT_FALSE(dz::respondsCorrectly(fr, en));
    EXPECT_TRUE(dz::respondsCorrectly(fr, frq));
}

TEST(Vocab, CasingRequirement)
{
    dz::VocabularyProfile uncased;
    dz::VocabularyProfile cased;
    cased.cased = true;
    dz::QueryProbe probe{"Apple", dz::Language::English, true, 1};
    EXPECT_FALSE(dz::respondsCorrectly(uncased, probe));
    EXPECT_TRUE(dz::respondsCorrectly(cased, probe));
}

TEST(Vocab, RichnessGate)
{
    dz::VocabularyProfile bert;  // richness 1
    dz::VocabularyProfile roberta;
    roberta.richness = 2;
    dz::QueryProbe rare{"define: hijab", dz::Language::English, false, 2};
    EXPECT_FALSE(dz::respondsCorrectly(bert, rare));
    EXPECT_TRUE(dz::respondsCorrectly(roberta, rare));
}

TEST(Vocab, StandardProbeSetDistinguishesPaperVariants)
{
    const auto probes = dz::standardProbeSet();
    EXPECT_GE(probes.size(), 10u);

    dz::VocabularyProfile bert_uncased;
    dz::VocabularyProfile bert_cased;
    bert_cased.cased = true;
    dz::VocabularyProfile camembert;
    camembert.language = dz::Language::French;
    dz::VocabularyProfile rubert;
    rubert.language = dz::Language::Russian;
    dz::VocabularyProfile roberta;
    roberta.richness = 2;

    const auto rs = {dz::responseVector(bert_uncased, probes),
                     dz::responseVector(bert_cased, probes),
                     dz::responseVector(camembert, probes),
                     dz::responseVector(rubert, probes),
                     dz::responseVector(roberta, probes)};
    // All five variants must produce pairwise distinct vectors.
    std::vector<std::vector<bool>> all(rs);
    for (std::size_t i = 0; i < all.size(); ++i)
        for (std::size_t j = i + 1; j < all.size(); ++j)
            EXPECT_GT(dz::responseDistance(all[i], all[j]), 0u)
                << "variants " << i << " and " << j;
}

TEST(Vocab, ResponseDistanceIsHamming)
{
    EXPECT_EQ(dz::responseDistance({true, false, true},
                                   {true, true, false}), 2u);
    EXPECT_EQ(dz::responseDistance({}, {}), 0u);
}

TEST(Zoo, DefaultPopulationCounts)
{
    const auto zoo = dz::ModelZoo::buildDefault(1);
    EXPECT_EQ(zoo.pretrained().size(), 70u);
    EXPECT_EQ(zoo.finetuned().size(), 170u);
    EXPECT_EQ(zoo.models().size(), 240u);
}

TEST(Zoo, NamesAreUnique)
{
    const auto zoo = dz::ModelZoo::buildDefault(2);
    std::set<std::string> names;
    for (const auto &m : zoo.models())
        names.insert(m.name);
    EXPECT_EQ(names.size(), zoo.models().size());
}

TEST(Zoo, FinetunedInheritsLineageProperties)
{
    const auto zoo = dz::ModelZoo::buildDefault(3);
    for (const auto *ft : zoo.finetuned()) {
        const auto *parent = zoo.byName(ft->pretrainedName);
        ASSERT_NE(parent, nullptr);
        EXPECT_TRUE(parent->isPretrained);
        // Fingerprint (signature) and architecture inherited.
        EXPECT_EQ(ft->signature, parent->signature);
        EXPECT_EQ(ft->arch.numLayers, parent->arch.numLayers);
        EXPECT_EQ(ft->arch.hidden, parent->arch.hidden);
        EXPECT_EQ(ft->vocabProfile, parent->vocabProfile);
        EXPECT_FALSE(ft->task.empty());
    }
}

TEST(Zoo, PretrainedSignaturesAreDistinct)
{
    const auto zoo = dz::ModelZoo::buildDefault(4);
    std::set<std::string> sigs;
    for (const auto *p : zoo.pretrained())
        sigs.insert(p->signature.toString());
    EXPECT_EQ(sigs.size(), zoo.pretrained().size());
}

TEST(Zoo, ByNameLookup)
{
    const auto zoo = dz::ModelZoo::buildDefault(5);
    const auto &first = zoo.models().front();
    EXPECT_EQ(zoo.byName(first.name), &first);
    EXPECT_EQ(zoo.byName("no-such-model"), nullptr);
}

TEST(Zoo, LineageNamesMatchPretrained)
{
    const auto zoo = dz::ModelZoo::buildDefault(6);
    EXPECT_EQ(zoo.lineageNames().size(), zoo.pretrained().size());
}

TEST(Zoo, CustomCounts)
{
    const auto zoo = dz::ModelZoo::buildDefault(7, 10, 25);
    EXPECT_EQ(zoo.pretrained().size(), 10u);
    EXPECT_EQ(zoo.finetuned().size(), 25u);
}

TEST(WeightStore, AnalyticCounts)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 12;
    arch.hidden = 768;
    const std::size_t per_layer = dz::analyticEncoderWeightCount(arch);
    // 4*768^2 + 4*768 + 2*768*3072 + 3072 + 768 + 4*768 = ~7.1M.
    EXPECT_GT(per_layer, 7'000'000u);
    EXPECT_LT(per_layer, 7'200'000u);
}

TEST(WeightStore, HeadFractionTinyForBase)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 12;
    arch.hidden = 768;
    arch.numClasses = 2;
    const auto ws = dz::WeightStore::makePretrained(arch, 1, 1000);
    // Paper Fig. 16: last layer is at most 0.009% of total weights.
    EXPECT_LT(ws.headWeightFraction(), 0.0001);
    EXPECT_GT(ws.headWeightFraction(), 0.0);
}

TEST(WeightStore, MaterializedSampling)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 4;
    arch.hidden = 128;
    const auto ws = dz::WeightStore::makePretrained(arch, 2, 500);
    EXPECT_EQ(ws.layers.size(), 4u);
    for (const auto &l : ws.layers)
        EXPECT_EQ(l.w.size(), 500u);
    EXPECT_EQ(ws.materializedCount(), 2000u);
}

TEST(WeightStore, DifferentSeedsDifferentWeights)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 64;
    const auto a = dz::WeightStore::makePretrained(arch, 1, 100);
    const auto b = dz::WeightStore::makePretrained(arch, 2, 100);
    const auto deltas = a.weightDeltas(b);
    double max_d = 0.0;
    for (double d : deltas)
        max_d = std::max(max_d, std::fabs(d));
    EXPECT_GT(max_d, 0.01);
}

TEST(FineTuneSim, EpochSigmaScheduleShape)
{
    dz::FineTuneOptions opts;
    // Rises to the peak at peakEpoch...
    EXPECT_LT(dz::FineTuneSimulator::epochSigma(0, opts),
              dz::FineTuneSimulator::epochSigma(8, opts));
    EXPECT_NEAR(dz::FineTuneSimulator::epochSigma(8, opts),
                opts.peakSigma, 1e-9);
    // ...then decays toward the floor (paper Fig. 6).
    EXPECT_GT(dz::FineTuneSimulator::epochSigma(8, opts),
              dz::FineTuneSimulator::epochSigma(20, opts));
    EXPECT_NEAR(dz::FineTuneSimulator::epochSigma(40, opts),
                opts.floorSigma, 1e-9);
}

TEST(FineTuneSim, WeightGapSmallAndLongTailed)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 4;
    arch.hidden = 256;
    const auto pre = dz::WeightStore::makePretrained(arch, 3, 5000);
    dz::FineTuneOptions opts;
    const auto ft = dz::FineTuneSimulator::fineTune(pre, opts, 4);

    const auto deltas = ft.weightDeltas(pre);
    // Paper Fig. 3 (XP-XF): ~50% of weights within +/-0.002.
    const double frac_tiny =
        du::Histogram::fractionWithinAbs(deltas, 0.002);
    EXPECT_GT(frac_tiny, 0.4);
    // Long tail exists: some deltas well beyond 3x the typical one.
    double max_d = 0.0;
    for (double d : deltas)
        max_d = std::max(max_d, std::fabs(d));
    EXPECT_GT(max_d, 0.01);
}

TEST(FineTuneSim, CrossLineageGapTwentyTimesWider)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 4;
    arch.hidden = 256;
    const auto pre_x = dz::WeightStore::makePretrained(arch, 5, 4000);
    const auto pre_y = dz::WeightStore::makePretrained(arch, 6, 4000);
    dz::FineTuneOptions opts;
    const auto ft_x = dz::FineTuneSimulator::fineTune(pre_x, opts, 7);

    const auto same = ft_x.weightDeltas(pre_x);
    const auto cross = ft_x.weightDeltas(pre_y);
    std::vector<double> abs_same, abs_cross;
    for (double d : same)
        abs_same.push_back(std::fabs(d));
    for (double d : cross)
        abs_cross.push_back(std::fabs(d));
    // Paper Observation 1: XP-XF at least 20x closer than XP-YF.
    EXPECT_GT(du::mean(abs_cross), 20.0 * du::mean(abs_same));
}

TEST(FineTuneSim, UShapeUpdateLaw)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 256;
    const auto pre = dz::WeightStore::makePretrained(arch, 8, 20000);
    dz::FineTuneOptions opts;
    opts.outlierProb = 0.0; // isolate the U-shape term
    const auto ft = dz::FineTuneSimulator::fineTune(pre, opts, 9);

    // Bin |delta| by pre-trained weight value.
    std::vector<double> inner, outer;
    for (std::size_t l = 0; l < pre.layers.size(); ++l) {
        for (std::size_t i = 0; i < pre.layers[l].w.size(); ++i) {
            const double w = pre.layers[l].w[i];
            const double d =
                std::fabs(static_cast<double>(ft.layers[l].w[i]) -
                          pre.layers[l].w[i]);
            if (std::fabs(w) < 0.05)
                inner.push_back(d);
            else if (std::fabs(w) > 0.25)
                outer.push_back(d);
        }
    }
    ASSERT_FALSE(inner.empty());
    ASSERT_FALSE(outer.empty());
    // Paper Fig. 4: outermost weights change ~3x more.
    EXPECT_GT(du::mean(outer), 2.0 * du::mean(inner));
}

TEST(FineTuneSim, SignsOverwhelminglyPreserved)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 256;
    const auto pre = dz::WeightStore::makePretrained(arch, 10, 10000);
    dz::FineTuneOptions opts;
    const auto ft = dz::FineTuneSimulator::fineTune(pre, opts, 11);

    std::size_t kept = 0, total = 0;
    for (std::size_t l = 0; l < pre.layers.size(); ++l) {
        for (std::size_t i = 0; i < pre.layers[l].w.size(); ++i) {
            ++total;
            if (std::signbit(pre.layers[l].w[i]) ==
                std::signbit(ft.layers[l].w[i]))
                ++kept;
        }
    }
    // Paper Sec. 6.1.1: ~99% of weights keep their sign.
    EXPECT_GT(static_cast<double>(kept) / static_cast<double>(total),
              0.97);
}

TEST(FineTuneSim, HeadIsFreshlyInitialized)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 128;
    const auto pre = dz::WeightStore::makePretrained(arch, 12, 1000);
    dz::FineTuneOptions opts;
    opts.headWeights = 32;
    const auto ft = dz::FineTuneSimulator::fineTune(pre, opts, 13);
    EXPECT_TRUE(pre.head.w.empty());
    EXPECT_EQ(ft.head.w.size(), 32u);
}

TEST(FineTuneSim, TrajectoryInterEpochGapRisesThenFalls)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 256;
    const auto pre = dz::WeightStore::makePretrained(arch, 14, 8000);
    dz::FineTuneOptions opts;
    opts.epochs = 30;
    opts.outlierProb = 0.0;
    const auto traj =
        dz::FineTuneSimulator::fineTuneTrajectory(pre, opts, 15);
    ASSERT_EQ(traj.size(), 30u);

    auto inter_gap = [&](std::size_t e) {
        const auto deltas = traj[e].weightDeltas(traj[e - 1]);
        std::vector<double> abs;
        for (double d : deltas)
            abs.push_back(std::fabs(d));
        return du::mean(abs);
    };
    // Paper Fig. 6: gap at the peak epoch clearly above the endpoints.
    EXPECT_GT(inter_gap(8), inter_gap(1));
    EXPECT_GT(inter_gap(8), inter_gap(29));
}

TEST(FineTuneSim, HeadConvergesExponentially)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 128;
    const auto pre = dz::WeightStore::makePretrained(arch, 16, 500);
    dz::FineTuneOptions opts;
    opts.epochs = 20;
    const auto traj =
        dz::FineTuneSimulator::fineTuneTrajectory(pre, opts, 17);

    auto head_gap = [&](std::size_t e) {
        double s = 0.0;
        for (std::size_t i = 0; i < traj[e].head.w.size(); ++i)
            s += std::fabs(static_cast<double>(traj[e].head.w[i]) -
                           traj[e - 1].head.w[i]);
        return s / static_cast<double>(traj[e].head.w.size());
    };
    // Early head movement dwarfs late movement (saturation).
    EXPECT_GT(head_gap(1), 3.0 * head_gap(19));
}

/** Task-invariance property (Fig. 5): two fine-tunes of one
 *  pre-trained model stay close to each other in every encoder. */
class TaskInvariance : public ::testing::TestWithParam<int>
{
};

TEST_P(TaskInvariance, TwoFineTunesOfSameParentStayClose)
{
    decepticon::gpusim::ArchParams arch;
    arch.numLayers = 4;
    arch.hidden = 256;
    const auto pre = dz::WeightStore::makePretrained(
        arch, static_cast<std::uint64_t>(GetParam()), 3000);
    dz::FineTuneOptions opts;
    const auto ft_a = dz::FineTuneSimulator::fineTune(
        pre, opts, static_cast<std::uint64_t>(GetParam()) * 100 + 1);
    const auto ft_b = dz::FineTuneSimulator::fineTune(
        pre, opts, static_cast<std::uint64_t>(GetParam()) * 100 + 2);
    const auto per_layer = ft_a.perLayerMeanAbsDiff(ft_b);
    // Encoder layers stay within ~2x the paper's 0.002 bound ...
    for (std::size_t l = 0; l < pre.layers.size(); ++l)
        EXPECT_LT(per_layer[l], 0.02);
    // ... while the task heads (trained for different tasks) diverge.
    ASSERT_EQ(per_layer.size(), pre.layers.size() + 1);
    EXPECT_GT(per_layer.back(), 2.0 * per_layer.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskInvariance, ::testing::Values(1, 2, 3));

TEST(ProbeBuilder, SeparatesAllDistinguishablePairs)
{
    std::vector<dz::VocabularyProfile> profiles(4);
    profiles[0].language = dz::Language::English;
    profiles[1].language = dz::Language::French;
    profiles[2].language = dz::Language::English;
    profiles[2].cased = true;
    profiles[3].language = dz::Language::English;
    profiles[3].richness = 2;

    const auto probes = dz::buildDiscriminativeProbeSet(profiles);
    EXPECT_FALSE(probes.empty());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (std::size_t j = i + 1; j < profiles.size(); ++j) {
            const auto ri = dz::responseVector(profiles[i], probes);
            const auto rj = dz::responseVector(profiles[j], probes);
            EXPECT_GT(dz::responseDistance(ri, rj), 0u)
                << "pair " << i << "," << j;
        }
    }
}

TEST(ProbeBuilder, SmallerThanUniverse)
{
    std::vector<dz::VocabularyProfile> profiles(3);
    profiles[1].language = dz::Language::French;
    profiles[2].cased = true;
    const auto probes = dz::buildDiscriminativeProbeSet(profiles);
    EXPECT_LT(probes.size(), dz::standardProbeSet().size());
    EXPECT_LE(probes.size(), 3u); // 3 pairwise splits need <= 3 probes
}

TEST(ProbeBuilder, IdenticalTwinsIgnored)
{
    std::vector<dz::VocabularyProfile> profiles(2); // identical
    const auto probes = dz::buildDiscriminativeProbeSet(profiles);
    EXPECT_TRUE(probes.empty());
}

TEST(ProbeBuilder, SingleProfileNeedsNothing)
{
    std::vector<dz::VocabularyProfile> profiles(1);
    EXPECT_TRUE(dz::buildDiscriminativeProbeSet(profiles).empty());
}
