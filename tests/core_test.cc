/**
 * @file
 * Tests for the level-1 Decepticon pipeline: extractor training,
 * trace-based identification, and query-output disambiguation.
 */

#include <gtest/gtest.h>

#include "core/decepticon.hh"
#include "core/two_level.hh"
#include "gpusim/noise.hh"
#include "gpusim/trace_generator.hh"

namespace dc = decepticon::core;
namespace dz = decepticon::zoo;
namespace dg = decepticon::gpusim;
namespace dtr = decepticon::transformer;

namespace {

dc::DecepticonOptions
smallOptions()
{
    dc::DecepticonOptions opts;
    opts.datasetOptions.imagesPerModel = 4;
    opts.datasetOptions.resolution = 32;
    opts.cnnOptions.epochs = 30;
    opts.seed = 3;
    return opts;
}

/** Shared trained pipeline over a small candidate pool. */
struct PipelineFixture
{
    dz::ModelZoo zoo;
    dc::Decepticon pipeline;
    double testAccuracy;

    PipelineFixture()
        : zoo(dz::ModelZoo::buildDefault(11, 6, 12)),
          pipeline(smallOptions()),
          testAccuracy(pipeline.trainExtractor(zoo))
    {
    }
};

PipelineFixture &
fixture()
{
    static PipelineFixture fx;
    return fx;
}

dg::KernelTrace
traceOf(const dz::ModelIdentity &m, std::uint64_t seed)
{
    return dg::TraceGenerator(m.signature).generate(m.arch, seed);
}

} // anonymous namespace

TEST(Decepticon, ExtractorLearnsCandidatePool)
{
    EXPECT_GT(fixture().testAccuracy, 0.6);
}

TEST(Decepticon, ClassNamesMatchLineages)
{
    auto &fx = fixture();
    EXPECT_EQ(fx.pipeline.classNames(), fx.zoo.lineageNames());
}

TEST(Decepticon, IdentifiesFineTunedVictims)
{
    auto &fx = fixture();
    const auto finetuned = fx.zoo.finetuned();
    std::size_t correct = 0;
    std::size_t total = 0;
    for (const auto *victim : finetuned) {
        // Fresh run seed: the attacker never saw this exact trace.
        const auto trace = traceOf(*victim, 0xabcdef + total);
        const auto res = fx.pipeline.identify(trace);
        correct += res.pretrainedName == victim->pretrainedName ? 1 : 0;
        ++total;
    }
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total),
              0.6);
}

TEST(Decepticon, ReportsTopKCandidates)
{
    auto &fx = fixture();
    const auto *victim = fx.zoo.finetuned().front();
    const auto res = fx.pipeline.identify(traceOf(*victim, 1));
    EXPECT_EQ(res.candidates.size(), 3u);
    EXPECT_GT(res.topProbability, 0.0);
    EXPECT_LE(res.topProbability, 1.0);
}

TEST(Decepticon, QueryProbesDisambiguateVariants)
{
    // Two lineages with identical signatures and architectures but
    // different vocabularies (BERT vs CamemBERT style): architectural
    // hints cannot separate them, queries can.
    dz::ModelZoo zoo;
    dz::ModelIdentity en;
    en.name = "src/bert-twin-en";
    en.family = "BERT";
    en.sizeClass = "base";
    en.arch.numLayers = 12;
    en.arch.hidden = 768;
    en.arch.numHeads = 12;
    en.signature.kernelDialect = 5;
    en.vocabProfile.language = dz::Language::English;
    en.pretrainedName = en.name;
    en.isPretrained = true;

    dz::ModelIdentity fr = en;
    fr.name = "src/bert-twin-fr";
    fr.pretrainedName = fr.name;
    fr.vocabProfile.language = dz::Language::French;
    zoo.add(en);
    zoo.add(fr);

    dc::DecepticonOptions opts = smallOptions();
    opts.cnnOptions.epochs = 15;
    dc::Decepticon pipeline(opts);
    pipeline.trainExtractor(zoo);

    // Victim is the French twin; its trace is indistinguishable.
    const auto trace = traceOf(fr, 99);
    const auto res = pipeline.identify(
        trace, dc::makeVictimQueryHook(fr.vocabProfile));
    EXPECT_TRUE(res.usedQueryProbes);
    EXPECT_EQ(res.pretrainedName, "src/bert-twin-fr");

    const auto res_en = pipeline.identify(
        traceOf(en, 100), dc::makeVictimQueryHook(en.vocabProfile));
    EXPECT_EQ(res_en.pretrainedName, "src/bert-twin-en");
}

TEST(Decepticon, RobustToModerateTimingNoise)
{
    auto &fx = fixture();
    const auto finetuned = fx.zoo.finetuned();
    std::size_t correct = 0, total = 0;
    for (const auto *victim : finetuned) {
        auto trace = traceOf(*victim, 500 + total);
        trace = dg::applyTimingNoise(trace, 16, 20.0, total);
        const auto res = fx.pipeline.identify(trace);
        correct += res.pretrainedName == victim->pretrainedName ? 1 : 0;
        ++total;
    }
    // Paper Fig. 14: accuracy decays slowly under noise.
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total),
              0.5);
}

TEST(QueryHook, ReflectsProfile)
{
    dz::VocabularyProfile fr;
    fr.language = dz::Language::French;
    const auto hook = dc::makeVictimQueryHook(fr);
    const auto resp = hook();
    EXPECT_EQ(resp.size(), dz::standardProbeSet().size());
    const auto expected =
        dz::responseVector(fr, dz::standardProbeSet());
    EXPECT_EQ(resp, expected);
}

TEST(TwoLevelAttack, IncompleteWhenIdentifiedModelHasNoWeights)
{
    // A pool where the level-1 extractor identifies a lineage whose
    // weights the attacker never registered: the report is marked
    // incomplete and carries no clone.
    dz::ModelZoo zoo = dz::ModelZoo::buildDefault(51, 3, 0);

    dc::TwoLevelOptions opts;
    opts.level1.datasetOptions.imagesPerModel = 3;
    opts.level1.datasetOptions.resolution = 32;
    opts.level1.cnnOptions.epochs = 15;
    opts.level1.seed = 2;

    dtr::TransformerConfig cfg;
    cfg.vocab = 16;
    cfg.maxSeqLen = 8;
    cfg.hidden = 8;
    cfg.numLayers = 2;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    cfg.numClasses = 2;

    dc::TwoLevelAttack attack(opts);
    for (const auto *candidate : zoo.pretrained()) {
        attack.addCandidate(
            *candidate, std::make_shared<dtr::TransformerClassifier>(
                            cfg, candidate->weightSeed));
    }
    EXPECT_GT(attack.prepare(), 0.0);

    // Execute normally: the identified name is always registered, so
    // the report completes.
    const auto *parent = zoo.pretrained()[0];
    dtr::TransformerClassifier victim(cfg, 9);
    dtr::MarkovTask task(16, 2, 8, 5100, 4.0);
    const auto trace = dg::TraceGenerator(parent->signature)
                           .generate(parent->arch, 0xfee1);
    const auto report = attack.execute(
        victim, trace, dc::makeVictimQueryHook(parent->vocabProfile),
        task.sample(20, 1), task.sample(10, 2).examples,
        task.sample(10, 3).examples);
    EXPECT_TRUE(report.complete);

    // Incomplete path: format a hand-built report without a clone.
    dc::AttackReport empty;
    empty.identification.pretrainedName = "unknown/lineage";
    const std::string text = dc::formatReport(empty);
    EXPECT_NE(text.find("incomplete"), std::string::npos);
}
