/**
 * @file
 * Robustness and failure-injection tests across modules: degenerate
 * inputs, extreme noise, defense interactions, and edge-case shapes
 * that the main suites don't cover.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "attack/adversarial.hh"
#include "attack/head_pruning.hh"
#include "fingerprint/boundary.hh"
#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/noise.hh"
#include "gpusim/trace_generator.hh"
#include "trace/image.hh"
#include "transformer/trainer.hh"
#include "zoo/zoo.hh"

namespace dg = decepticon::gpusim;
namespace df = decepticon::fingerprint;
namespace dtc = decepticon::trace;
namespace dtr = decepticon::transformer;
namespace dz = decepticon::zoo;

namespace {

dg::ArchParams
smallArch(std::size_t layers = 4)
{
    dg::ArchParams arch;
    arch.numLayers = layers;
    arch.hidden = 256;
    arch.numHeads = 4;
    arch.seqLen = 64;
    return arch;
}

} // namespace

TEST(Robustness, SingleLayerModelStillTraces)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto trace = gen.generate(smallArch(1), 1);
    EXPECT_EQ(trace.encoderRecords().size(), gen.groupSize());
    // With a single encoder there is no *layer* period; detection may
    // still surface intra-group motifs (e.g. the FFN block reusing the
    // output-projection kernels), which is genuine ambiguity. The
    // pipeline must stay well-formed either way.
    const auto res = df::detectLayerBoundaries(trace);
    if (res.found()) {
        EXPECT_LT(res.period, gen.groupSize());
    }
    const auto cropped = df::cropToEncoderRegion(trace);
    EXPECT_FALSE(cropped.records.empty());
    EXPECT_LE(cropped.records.size(), trace.records.size());
    const auto img = dtc::rasterize(cropped, 32);
    EXPECT_GT(img.sum(), 0.0);
}

TEST(Robustness, ExtremeNoiseKeepsTraceWellFormed)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto trace = gen.generate(smallArch(), 2);
    const auto noisy = dg::applyTimingNoise(
        trace, trace.records.size(), 10000.0, 3);
    double prev_end = 0.0;
    for (const auto &r : noisy.records) {
        EXPECT_GE(r.tStart, prev_end - 1e-9);
        EXPECT_GE(r.duration(), 0.5);
        prev_end = r.tEnd;
    }
    // Rasterization stays in range even under absurd noise.
    const auto img = dtc::rasterize(noisy, 32);
    for (std::size_t i = 0; i < img.size(); ++i) {
        EXPECT_GE(img[i], 0.0f);
        EXPECT_LE(img[i], 1.0f);
    }
}

TEST(Robustness, NoiseRequestLargerThanTraceClamps)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto trace = gen.generate(smallArch(2), 4);
    const auto noisy =
        dg::applyTimingNoise(trace, trace.records.size() * 10, 20.0, 5);
    EXPECT_EQ(noisy.records.size(), trace.records.size());
}

TEST(Robustness, DefenseStrengthZeroIsIdentity)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = 3;
    const dg::TraceGenerator gen(sig);
    const auto plain = gen.generate(smallArch(), 7);
    const auto defended = gen.generateDefended(smallArch(), 7, 0.0);
    ASSERT_EQ(plain.records.size(), defended.records.size());
    for (std::size_t i = 0; i < plain.records.size(); ++i) {
        EXPECT_EQ(plain.records[i].kernelId,
                  defended.records[i].kernelId);
        EXPECT_DOUBLE_EQ(plain.records[i].tEnd,
                         defended.records[i].tEnd);
    }
}

TEST(Robustness, DefenseScramblesKernelSchedule)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = 4;
    const dg::TraceGenerator gen(sig);
    const auto a = gen.generateDefended(smallArch(), 8, 1.0);
    const auto b = gen.generateDefended(smallArch(), 9, 1.0);
    ASSERT_EQ(a.records.size(), b.records.size());
    std::size_t differing = 0;
    for (std::size_t i = 0; i < a.records.size(); ++i)
        differing += a.records[i].kernelId != b.records[i].kernelId;
    // Run-to-run the schedule must no longer be stable.
    EXPECT_GT(differing, a.records.size() / 4);
}

TEST(Robustness, DefensePreservesKernelClassStructure)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto plain = gen.generate(smallArch(), 10);
    const auto defended = gen.generateDefended(smallArch(), 10, 1.0);
    ASSERT_EQ(plain.records.size(), defended.records.size());
    for (std::size_t i = 0; i < plain.records.size(); ++i) {
        // The defense swaps implementations, not operators.
        EXPECT_EQ(static_cast<int>(plain.records[i].klass),
                  static_cast<int>(defended.records[i].klass));
    }
}

TEST(Robustness, DefenseCostsRuntime)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = 6;
    const dg::TraceGenerator gen(sig);
    double plain = 0.0, defended = 0.0;
    for (std::uint64_t s = 0; s < 8; ++s) {
        plain += gen.generate(smallArch(), s).totalTime();
        defended +=
            gen.generateDefended(smallArch(), s, 1.0).totalTime();
    }
    EXPECT_GT(defended, plain);
}

TEST(Robustness, RasterizeSingleRecord)
{
    dg::KernelTrace t;
    t.kernelNames = {"k"};
    t.records.push_back({0, 0.0, 5.0, dg::Phase::Encoder,
                         dg::KernelClass::Gemm, 0});
    const auto img = dtc::rasterize(t, 16);
    EXPECT_GT(img.sum(), 0.0);
}

TEST(Robustness, BlurPreservesMass)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto img = dtc::rasterize(gen.generate(smallArch(), 11), 32);
    const auto blurred = dtc::boxBlur3(img);
    // Interior mass is preserved up to edge effects.
    EXPECT_NEAR(blurred.sum(), img.sum(), 0.25 * img.sum() + 1.0);
    float mx = 0.0f;
    for (std::size_t i = 0; i < blurred.size(); ++i)
        mx = std::max(mx, blurred[i]);
    EXPECT_LE(mx, 1.0f);
}

TEST(Robustness, CnnHandlesUniformImages)
{
    df::FingerprintCnn cnn(32, 4, 1);
    decepticon::tensor::Tensor black({32, 32});
    decepticon::tensor::Tensor white({32, 32}, 1.0f);
    const auto pb = cnn.classProbabilities(black);
    const auto pw = cnn.classProbabilities(white);
    double sb = 0.0, sw = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        sb += pb[i];
        sw += pw[i];
        EXPECT_FALSE(std::isnan(pb[i]));
    }
    EXPECT_NEAR(sb, 1.0, 1e-5);
    EXPECT_NEAR(sw, 1.0, 1e-5);
}

TEST(Robustness, DatasetFromZooWithoutFinetuned)
{
    const auto zoo = dz::ModelZoo::buildDefault(5, 3, 0);
    df::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    EXPECT_EQ(ds.samples.size(), 6u);
}

TEST(Robustness, SplitExtremes)
{
    const auto zoo = dz::ModelZoo::buildDefault(6, 3, 0);
    df::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    const auto [all_train, none_test] = ds.split(1.0, 1);
    EXPECT_EQ(all_train.samples.size(), ds.samples.size());
    EXPECT_TRUE(none_test.samples.empty());
    const auto [none_train, all_test] = ds.split(0.0, 1);
    EXPECT_TRUE(none_train.samples.empty());
}

TEST(Robustness, AdversarialOnRobustInputReturnsInput)
{
    // A surrogate with zero embedding spread offers no useful flip:
    // every candidate scores identically (0), so nothing changes.
    dtr::TransformerConfig cfg;
    cfg.vocab = 8;
    cfg.maxSeqLen = 4;
    cfg.hidden = 8;
    cfg.numLayers = 1;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    dtr::TransformerClassifier surrogate(cfg, 1);
    surrogate.embedding().table.value.fill(0.0f);
    decepticon::attack::AdversarialOptions opts;
    const std::vector<int> tokens{1, 2, 3};
    const auto adv = decepticon::attack::craftAdversarial(
        surrogate, tokens, 0, opts);
    EXPECT_EQ(adv, tokens);
}

TEST(Robustness, TransferWithNoEligibleSeeds)
{
    dtr::TransformerConfig cfg;
    cfg.vocab = 8;
    cfg.maxSeqLen = 4;
    cfg.hidden = 8;
    cfg.numLayers = 1;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    cfg.numClasses = 2;
    dtr::TransformerClassifier victim(cfg, 2);
    // Labels guaranteed wrong: use (1 - predicted) as the label.
    std::vector<dtr::Example> seeds;
    for (int i = 0; i < 5; ++i) {
        dtr::Example ex;
        ex.tokens = {i % 8, (i + 1) % 8};
        ex.label = 1 - victim.predict(ex.tokens);
        seeds.push_back(ex);
    }
    const auto res = decepticon::attack::evaluateTransfer(
        victim, victim, seeds, {});
    EXPECT_EQ(res.eligible, 0u);
    EXPECT_DOUBLE_EQ(res.successRate(), 0.0);
}

TEST(Robustness, HeadPruningEstimateOnIdenticalTraces)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto t = gen.generate(smallArch(), 12);
    EXPECT_EQ(decepticon::attack::estimatePrunedHeadCount(t, t, 8), 0u);
}

/** Defense sweep: stronger defenses scramble schedules more. */
class DefenseSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DefenseSweep, ScheduleInstabilityGrowsWithStrength)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = GetParam();
    const dg::TraceGenerator gen(sig);
    double prev_same = 1.1;
    for (double strength : {0.0, 0.5, 1.0}) {
        const auto a =
            gen.generateDefended(smallArch(), 100, strength);
        const auto b =
            gen.generateDefended(smallArch(), 101, strength);
        std::size_t same = 0;
        for (std::size_t i = 0; i < a.records.size(); ++i)
            same += a.records[i].kernelId == b.records[i].kernelId;
        const double frac =
            static_cast<double>(same) /
            static_cast<double>(a.records.size());
        EXPECT_LE(frac, prev_same + 0.05);
        prev_same = frac;
    }
    EXPECT_LT(prev_same, 0.8); // full strength: mostly scrambled
}

INSTANTIATE_TEST_SUITE_P(Dialects, DefenseSweep, ::testing::Values(1, 2, 3));
