/**
 * @file
 * Robustness and failure-injection tests across modules: degenerate
 * inputs, extreme noise, defense interactions, and edge-case shapes
 * that the main suites don't cover.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "attack/adversarial.hh"
#include "attack/head_pruning.hh"
#include "core/decepticon.hh"
#include "core/run_report.hh"
#include "fault/channel.hh"
#include "fingerprint/boundary.hh"
#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/emission.hh"
#include "gpusim/noise.hh"
#include "gpusim/trace_generator.hh"
#include "sched/sched.hh"
#include "trace/image.hh"
#include "transformer/trainer.hh"
#include "zoo/zoo.hh"

namespace dg = decepticon::gpusim;
namespace df = decepticon::fingerprint;
namespace dtc = decepticon::trace;
namespace dtr = decepticon::transformer;
namespace dz = decepticon::zoo;
namespace dc = decepticon::core;
namespace dfl = decepticon::fault;

namespace {

dg::ArchParams
smallArch(std::size_t layers = 4)
{
    dg::ArchParams arch;
    arch.numLayers = layers;
    arch.hidden = 256;
    arch.numHeads = 4;
    arch.seqLen = 64;
    return arch;
}

} // namespace

TEST(Robustness, SingleLayerModelStillTraces)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto trace = gen.generate(smallArch(1), 1);
    EXPECT_EQ(trace.encoderRecords().size(), gen.groupSize());
    // With a single encoder there is no *layer* period; detection may
    // still surface intra-group motifs (e.g. the FFN block reusing the
    // output-projection kernels), which is genuine ambiguity. The
    // pipeline must stay well-formed either way.
    const auto res = df::detectLayerBoundaries(trace);
    if (res.found()) {
        EXPECT_LT(res.period, gen.groupSize());
    }
    const auto cropped = df::cropToEncoderRegion(trace);
    EXPECT_FALSE(cropped.records.empty());
    EXPECT_LE(cropped.records.size(), trace.records.size());
    const auto img = dtc::rasterize(cropped, 32);
    EXPECT_GT(img.sum(), 0.0);
}

TEST(Robustness, ExtremeNoiseKeepsTraceWellFormed)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto trace = gen.generate(smallArch(), 2);
    const auto noisy = dg::applyTimingNoise(
        trace, trace.records.size(), 10000.0, 3);
    double prev_end = 0.0;
    for (const auto &r : noisy.records) {
        EXPECT_GE(r.tStart, prev_end - 1e-9);
        EXPECT_GE(r.duration(), 0.5);
        prev_end = r.tEnd;
    }
    // Rasterization stays in range even under absurd noise.
    const auto img = dtc::rasterize(noisy, 32);
    for (std::size_t i = 0; i < img.size(); ++i) {
        EXPECT_GE(img[i], 0.0f);
        EXPECT_LE(img[i], 1.0f);
    }
}

TEST(Robustness, NoiseRequestLargerThanTraceClamps)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto trace = gen.generate(smallArch(2), 4);
    const auto noisy =
        dg::applyTimingNoise(trace, trace.records.size() * 10, 20.0, 5);
    EXPECT_EQ(noisy.records.size(), trace.records.size());
}

TEST(Robustness, DefenseStrengthZeroIsIdentity)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = 3;
    const dg::TraceGenerator gen(sig);
    const auto plain = gen.generate(smallArch(), 7);
    const auto defended = gen.generateDefended(smallArch(), 7, 0.0);
    ASSERT_EQ(plain.records.size(), defended.records.size());
    for (std::size_t i = 0; i < plain.records.size(); ++i) {
        EXPECT_EQ(plain.records[i].kernelId,
                  defended.records[i].kernelId);
        EXPECT_DOUBLE_EQ(plain.records[i].tEnd,
                         defended.records[i].tEnd);
    }
}

TEST(Robustness, DefenseScramblesKernelSchedule)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = 4;
    const dg::TraceGenerator gen(sig);
    const auto a = gen.generateDefended(smallArch(), 8, 1.0);
    const auto b = gen.generateDefended(smallArch(), 9, 1.0);
    ASSERT_EQ(a.records.size(), b.records.size());
    std::size_t differing = 0;
    for (std::size_t i = 0; i < a.records.size(); ++i)
        differing += a.records[i].kernelId != b.records[i].kernelId;
    // Run-to-run the schedule must no longer be stable.
    EXPECT_GT(differing, a.records.size() / 4);
}

TEST(Robustness, DefensePreservesKernelClassStructure)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto plain = gen.generate(smallArch(), 10);
    const auto defended = gen.generateDefended(smallArch(), 10, 1.0);
    ASSERT_EQ(plain.records.size(), defended.records.size());
    for (std::size_t i = 0; i < plain.records.size(); ++i) {
        // The defense swaps implementations, not operators.
        EXPECT_EQ(static_cast<int>(plain.records[i].klass),
                  static_cast<int>(defended.records[i].klass));
    }
}

TEST(Robustness, DefenseCostsRuntime)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = 6;
    const dg::TraceGenerator gen(sig);
    double plain = 0.0, defended = 0.0;
    for (std::uint64_t s = 0; s < 8; ++s) {
        plain += gen.generate(smallArch(), s).totalTime();
        defended +=
            gen.generateDefended(smallArch(), s, 1.0).totalTime();
    }
    EXPECT_GT(defended, plain);
}

TEST(Robustness, RasterizeSingleRecord)
{
    dg::KernelTrace t;
    t.kernelNames = {"k"};
    t.records.push_back({0, 0.0, 5.0, dg::Phase::Encoder,
                         dg::KernelClass::Gemm, 0});
    const auto img = dtc::rasterize(t, 16);
    EXPECT_GT(img.sum(), 0.0);
}

TEST(Robustness, BlurPreservesMass)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto img = dtc::rasterize(gen.generate(smallArch(), 11), 32);
    const auto blurred = dtc::boxBlur3(img);
    // Interior mass is preserved up to edge effects.
    EXPECT_NEAR(blurred.sum(), img.sum(), 0.25 * img.sum() + 1.0);
    float mx = 0.0f;
    for (std::size_t i = 0; i < blurred.size(); ++i)
        mx = std::max(mx, blurred[i]);
    EXPECT_LE(mx, 1.0f);
}

TEST(Robustness, CnnHandlesUniformImages)
{
    df::FingerprintCnn cnn(32, 4, 1);
    decepticon::tensor::Tensor black({32, 32});
    decepticon::tensor::Tensor white({32, 32}, 1.0f);
    const auto pb = cnn.classProbabilities(black);
    const auto pw = cnn.classProbabilities(white);
    double sb = 0.0, sw = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        sb += pb[i];
        sw += pw[i];
        EXPECT_FALSE(std::isnan(pb[i]));
    }
    EXPECT_NEAR(sb, 1.0, 1e-5);
    EXPECT_NEAR(sw, 1.0, 1e-5);
}

TEST(Robustness, DatasetFromZooWithoutFinetuned)
{
    const auto zoo = dz::ModelZoo::buildDefault(5, 3, 0);
    df::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    EXPECT_EQ(ds.samples.size(), 6u);
}

TEST(Robustness, SplitExtremes)
{
    const auto zoo = dz::ModelZoo::buildDefault(6, 3, 0);
    df::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    const auto [all_train, none_test] = ds.split(1.0, 1);
    EXPECT_EQ(all_train.samples.size(), ds.samples.size());
    EXPECT_TRUE(none_test.samples.empty());
    const auto [none_train, all_test] = ds.split(0.0, 1);
    EXPECT_TRUE(none_train.samples.empty());
}

TEST(Robustness, AdversarialOnRobustInputReturnsInput)
{
    // A surrogate with zero embedding spread offers no useful flip:
    // every candidate scores identically (0), so nothing changes.
    dtr::TransformerConfig cfg;
    cfg.vocab = 8;
    cfg.maxSeqLen = 4;
    cfg.hidden = 8;
    cfg.numLayers = 1;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    dtr::TransformerClassifier surrogate(cfg, 1);
    surrogate.embedding().table.value.fill(0.0f);
    decepticon::attack::AdversarialOptions opts;
    const std::vector<int> tokens{1, 2, 3};
    const auto adv = decepticon::attack::craftAdversarial(
        surrogate, tokens, 0, opts);
    EXPECT_EQ(adv, tokens);
}

TEST(Robustness, TransferWithNoEligibleSeeds)
{
    dtr::TransformerConfig cfg;
    cfg.vocab = 8;
    cfg.maxSeqLen = 4;
    cfg.hidden = 8;
    cfg.numLayers = 1;
    cfg.numHeads = 2;
    cfg.ffnDim = 16;
    cfg.numClasses = 2;
    dtr::TransformerClassifier victim(cfg, 2);
    // Labels guaranteed wrong: use (1 - predicted) as the label.
    std::vector<dtr::Example> seeds;
    for (int i = 0; i < 5; ++i) {
        dtr::Example ex;
        ex.tokens = {i % 8, (i + 1) % 8};
        ex.label = 1 - victim.predict(ex.tokens);
        seeds.push_back(ex);
    }
    const auto res = decepticon::attack::evaluateTransfer(
        victim, victim, seeds, {});
    EXPECT_EQ(res.eligible, 0u);
    EXPECT_DOUBLE_EQ(res.successRate(), 0.0);
}

TEST(Robustness, HeadPruningEstimateOnIdenticalTraces)
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    const auto t = gen.generate(smallArch(), 12);
    EXPECT_EQ(decepticon::attack::estimatePrunedHeadCount(t, t, 8), 0u);
}

/** Defense sweep: stronger defenses scramble schedules more. */
class DefenseSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DefenseSweep, ScheduleInstabilityGrowsWithStrength)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = GetParam();
    const dg::TraceGenerator gen(sig);
    double prev_same = 1.1;
    for (double strength : {0.0, 0.5, 1.0}) {
        const auto a =
            gen.generateDefended(smallArch(), 100, strength);
        const auto b =
            gen.generateDefended(smallArch(), 101, strength);
        std::size_t same = 0;
        for (std::size_t i = 0; i < a.records.size(); ++i)
            same += a.records[i].kernelId == b.records[i].kernelId;
        const double frac =
            static_cast<double>(same) /
            static_cast<double>(a.records.size());
        EXPECT_LE(frac, prev_same + 0.05);
        prev_same = frac;
    }
    EXPECT_LT(prev_same, 0.8); // full strength: mostly scrambled
}

INSTANTIATE_TEST_SUITE_P(Dialects, DefenseSweep, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------
// Multi-modal side-channel fusion: the channel-dropout matrix
// ---------------------------------------------------------------

namespace {

/** Shared trained multi-channel pipeline over a small pool. */
struct FusionFixture
{
    dz::ModelZoo zoo;
    dc::Decepticon pipeline;
    double testAccuracy;

    FusionFixture()
        : zoo(dz::ModelZoo::buildDefault(11, 5, 10)),
          pipeline(makeOptions()),
          testAccuracy(pipeline.trainExtractor(zoo))
    {
    }

    static dc::DecepticonOptions
    makeOptions()
    {
        dc::DecepticonOptions opts;
        opts.datasetOptions.imagesPerModel = 4;
        opts.datasetOptions.resolution = 32;
        opts.cnnOptions.epochs = 30;
        opts.seed = 3;
        return opts;
    }
};

FusionFixture &
fusionFixture()
{
    static FusionFixture fx;
    return fx;
}

/** One victim's clean emissions (generated once, corrupted per cell). */
struct VictimEmissions
{
    const dz::ModelIdentity *victim;
    std::vector<double> power;
    std::vector<double> thermal;
    std::vector<double> profiler;
};

const std::vector<VictimEmissions> &
victimEmissions(FusionFixture &fx)
{
    static std::vector<VictimEmissions> cache = [&] {
        std::vector<VictimEmissions> out;
        const dg::EmissionOptions eopts;
        std::uint64_t seed = 0x90d0;
        for (const auto *victim : fx.zoo.finetuned()) {
            const auto trace = dg::TraceGenerator(victim->signature)
                                   .generate(victim->arch, ++seed);
            VictimEmissions ve;
            ve.victim = victim;
            ve.power = dg::emitPowerTrace(trace, eopts, seed);
            ve.thermal = dg::emitThermalTrace(trace, eopts, seed);
            ve.profiler = dg::emitProfilerCounters(trace, eopts, seed);
            out.push_back(std::move(ve));
        }
        return out;
    }();
    return cache;
}

/** Fault spec for one matrix cell: channels outside the availability
 *  subset are jammed; channels inside degrade with severity. */
dfl::MultiChannelFaultSpec
cellSpec(bool power_on, bool thermal_on, bool profiler_on,
         double severity)
{
    dfl::MultiChannelFaultSpec spec;
    spec.seed = 0xfa57;
    spec.at(dfl::Channel::Timestamp).jammed = true;
    const bool on[3] = {power_on, thermal_on, profiler_on};
    const dfl::Channel chans[3] = {dfl::Channel::Power,
                                   dfl::Channel::Thermal,
                                   dfl::Channel::Profiler};
    for (int i = 0; i < 3; ++i) {
        auto &c = spec.at(chans[i]);
        if (!on[i]) {
            c.jammed = true;
            continue;
        }
        c.dropoutRate = 0.3 * severity;
        c.truncateProbability = 0.5 * severity;
        c.noiseSigma = 0.3 * severity;
        c.quantStep = 0.05 * severity;
    }
    return spec;
}

struct CellOutcome
{
    double accuracy = 0.0;
    double insufficientFraction = 0.0;
    double meanConfidence = 0.0;
};

constexpr std::size_t kCellCaptures = 3;

double
resultConfidence(const dc::IdentificationResult &res)
{
    if (res.insufficientEvidence)
        return 0.0;
    return res.usedChannelFusion ? res.fusedConfidence
                                 : res.topProbability;
}

/** Run one matrix cell (timestamp jammed) over every victim. */
CellOutcome
runCell(FusionFixture &fx, bool power_on, bool thermal_on,
        bool profiler_on, double severity)
{
    dfl::MultiChannelFaultModel faults(
        cellSpec(power_on, thermal_on, profiler_on, severity));
    CellOutcome out;
    const auto &victims = victimEmissions(fx);
    double correct = 0.0, insufficient = 0.0, confidence = 0.0;
    std::uint64_t capture_seed = 0;
    for (const auto &ve : victims) {
        dc::MultiChannelCapture mc;
        for (std::size_t r = 0; r < kCellCaptures; ++r) {
            ++capture_seed;
            mc.powerCaptures.push_back(faults.corrupt(
                dfl::Channel::Power, ve.power, capture_seed));
            mc.thermalCaptures.push_back(faults.corrupt(
                dfl::Channel::Thermal, ve.thermal, capture_seed));
            mc.profilerCaptures.push_back(faults.corrupt(
                dfl::Channel::Profiler, ve.profiler, capture_seed));
        }
        const auto res = fx.pipeline.identifyFused(mc);
        if (res.insufficientEvidence) {
            insufficient += 1.0;
            EXPECT_TRUE(res.pretrainedName.empty());
        } else if (res.pretrainedName == ve.victim->pretrainedName) {
            correct += 1.0;
        }
        confidence += resultConfidence(res);
    }
    const auto n = static_cast<double>(victims.size());
    out.accuracy = correct / n;
    out.insufficientFraction = insufficient / n;
    out.meanConfidence = confidence / n;
    return out;
}

} // namespace

TEST(Fusion, ChannelDropoutMatrix)
{
    auto &fx = fusionFixture();
    ASSERT_NE(fx.pipeline.fusionEngine(), nullptr);

    const double severities[] = {0.0, 1.0};
    for (double severity : severities) {
        CellOutcome cells[2][2][2];
        for (int p = 0; p < 2; ++p) {
            for (int t = 0; t < 2; ++t) {
                for (int pr = 0; pr < 2; ++pr)
                    cells[p][t][pr] =
                        runCell(fx, p != 0, t != 0, pr != 0, severity);
            }
        }

        // Total blackout: every victim yields an explicit
        // insufficient-evidence verdict, never a silent guess.
        EXPECT_DOUBLE_EQ(cells[0][0][0].insufficientFraction, 1.0);
        EXPECT_DOUBLE_EQ(cells[0][0][0].accuracy, 0.0);
        EXPECT_DOUBLE_EQ(cells[0][0][0].meanConfidence, 0.0);

        // Any nonempty subset always answers (best-effort, possibly
        // low confidence) — graceful degradation, not refusal.
        for (int p = 0; p < 2; ++p) {
            for (int t = 0; t < 2; ++t) {
                for (int pr = 0; pr < 2; ++pr) {
                    if (p + t + pr == 0)
                        continue;
                    EXPECT_DOUBLE_EQ(
                        cells[p][t][pr].insufficientFraction, 0.0)
                        << "subset p=" << p << " t=" << t
                        << " pr=" << pr;
                }
            }
        }

        // Monotonicity: adding a channel never costs more than a
        // small slack in accuracy (2 victims here).
        const double slack = 0.2;
        for (int p = 0; p < 2; ++p) {
            for (int t = 0; t < 2; ++t) {
                for (int pr = 0; pr < 2; ++pr) {
                    const auto &base = cells[p][t][pr];
                    if (p == 0) {
                        EXPECT_GE(cells[1][t][pr].accuracy,
                                  base.accuracy - slack);
                    }
                    if (t == 0) {
                        EXPECT_GE(cells[p][1][pr].accuracy,
                                  base.accuracy - slack);
                    }
                    if (pr == 0) {
                        EXPECT_GE(cells[p][t][1].accuracy,
                                  base.accuracy - slack);
                    }
                }
            }
        }

        // Calibration: full-evidence decisions carry at least the
        // confidence of single-channel decisions on average.
        const double full_conf = cells[1][1][1].meanConfidence;
        EXPECT_GE(full_conf + 0.05, cells[1][0][0].meanConfidence);
        EXPECT_GE(full_conf + 0.05, cells[0][1][0].meanConfidence);
        EXPECT_GE(full_conf + 0.05, cells[0][0][1].meanConfidence);

        if (severity == 0.0) {
            // Acceptance: timestamp fully jammed, the other three
            // channels healthy -> at least 70% of victims identified.
            EXPECT_GE(cells[1][1][1].accuracy, 0.7);
        }
    }

    // Fault severity monotonicity on the full subset.
    const auto clean = runCell(fx, true, true, true, 0.0);
    const auto harsh = runCell(fx, true, true, true, 1.0);
    EXPECT_GE(clean.accuracy, harsh.accuracy - 0.2);
}

TEST(Fusion, AllChannelsHealthyBeatsTimestampOnly)
{
    auto &fx = fusionFixture();
    const dg::EmissionOptions eopts;
    std::size_t ts_correct = 0, fused_correct = 0;
    std::uint64_t seed = 0x7a11;
    for (const auto *victim : fx.zoo.finetuned()) {
        const auto trace = dg::TraceGenerator(victim->signature)
                               .generate(victim->arch, ++seed);
        dc::MultiChannelCapture ts_only;
        ts_only.timestampCaptures = {trace, trace, trace};
        dc::MultiChannelCapture all = ts_only;
        all.powerCaptures = {dg::emitPowerTrace(trace, eopts, seed)};
        all.thermalCaptures = {
            dg::emitThermalTrace(trace, eopts, seed)};
        all.profilerCaptures = {
            dg::emitProfilerCounters(trace, eopts, seed)};

        const auto ts_res = fx.pipeline.identifyFused(ts_only);
        const auto all_res = fx.pipeline.identifyFused(all);
        ts_correct += ts_res.pretrainedName == victim->pretrainedName;
        fused_correct +=
            all_res.pretrainedName == victim->pretrainedName;
        EXPECT_EQ(all_res.channelsAvailable, 4u);
    }
    // With every channel healthy the fused path must not lose to the
    // timestamp-only path.
    EXPECT_GE(fused_correct, ts_correct);
}

TEST(Fusion, InsufficientEvidenceInsteadOfSilentGuess)
{
    auto &fx = fusionFixture();

    // Regression: identifyResilient used to hand back the sequence
    // predictor's argmin even when every capture was empty — a silent
    // wrong answer. Now the verdict is explicit.
    std::vector<dg::KernelTrace> empties(3);
    const auto res = fx.pipeline.identifyResilient(empties);
    EXPECT_TRUE(res.insufficientEvidence);
    EXPECT_TRUE(res.pretrainedName.empty());
    EXPECT_EQ(res.channelsAvailable, 0u);
    EXPECT_DOUBLE_EQ(res.topProbability, 0.0);

    // Zero captures degrade the same way (no assert, no crash).
    const auto none = fx.pipeline.identifyResilient({});
    EXPECT_TRUE(none.insufficientEvidence);

    // The verdict survives into the run report.
    dc::AttackRunReport report;
    report.recordIdentification(res);
    EXPECT_TRUE(report.insufficientEvidence);
    EXPECT_NE(report.toJson().find("\"insufficient_evidence\":true"),
              std::string::npos);
    EXPECT_NE(report.summaryParagraph().find("abstained"),
              std::string::npos);
}

TEST(Fusion, FusedIdentificationBitIdenticalAcrossLanes)
{
    auto &fx = fusionFixture();
    struct PoolGuard
    {
        ~PoolGuard() { decepticon::sched::setThreads(0); }
    } guard;

    // One harsh cell, all side channels up, timestamp jammed.
    dfl::MultiChannelFaultModel faults(
        cellSpec(true, true, true, 1.0));
    const auto &victims = victimEmissions(fx);
    std::vector<dc::MultiChannelCapture> captures;
    std::uint64_t capture_seed = 0x1a7e;
    for (const auto &ve : victims) {
        dc::MultiChannelCapture mc;
        for (std::size_t r = 0; r < kCellCaptures; ++r) {
            ++capture_seed;
            mc.powerCaptures.push_back(faults.corrupt(
                dfl::Channel::Power, ve.power, capture_seed));
            mc.thermalCaptures.push_back(faults.corrupt(
                dfl::Channel::Thermal, ve.thermal, capture_seed));
            mc.profilerCaptures.push_back(faults.corrupt(
                dfl::Channel::Profiler, ve.profiler, capture_seed));
        }
        captures.push_back(std::move(mc));
    }

    decepticon::sched::setThreads(1);
    std::vector<dc::IdentificationResult> reference;
    for (const auto &mc : captures)
        reference.push_back(fx.pipeline.identifyFused(mc));

    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
        decepticon::sched::setThreads(threads);
        for (std::size_t i = 0; i < captures.size(); ++i) {
            const auto res = fx.pipeline.identifyFused(captures[i]);
            EXPECT_EQ(res.pretrainedName, reference[i].pretrainedName);
            EXPECT_EQ(res.insufficientEvidence,
                      reference[i].insufficientEvidence);
            EXPECT_EQ(res.fusedConfidence,
                      reference[i].fusedConfidence);
            EXPECT_EQ(res.channelsUsed, reference[i].channelsUsed);
            ASSERT_EQ(res.candidates.size(),
                      reference[i].candidates.size());
            for (std::size_t k = 0; k < res.candidates.size(); ++k)
                EXPECT_EQ(res.candidates[k],
                          reference[i].candidates[k]);
        }
    }
}
