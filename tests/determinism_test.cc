/**
 * @file
 * Parallel-vs-serial equivalence harness: the determinism contract of
 * the sched engine (DESIGN.md §9) says every pipeline result must be
 * BIT-identical at any thread count. Each test runs the same pipeline
 * at DECEPTICON_THREADS equivalents of 1, 2, and 8 lanes via
 * sched::setThreads and compares artifacts byte for byte.
 */

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/decepticon.hh"
#include "core/two_level.hh"
#include "extraction/bitprobe.hh"
#include "extraction/resilient.hh"
#include "extraction/selective.hh"
#include "obs/flight.hh"
#include "fingerprint/dataset.hh"
#include "gpusim/trace_generator.hh"
#include "obs/clock.hh"
#include "obs/obs.hh"
#include "sched/sched.hh"
#include "transformer/task.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"
#include "zoo/zoo.hh"

namespace dc = decepticon::core;
namespace de = decepticon::extraction;
namespace df = decepticon::fingerprint;
namespace dg = decepticon::gpusim;
namespace dz = decepticon::zoo;
namespace dtr = decepticon::transformer;
namespace sched = decepticon::sched;
namespace obs = decepticon::obs;

namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

/** Restore the environment-configured global pool on scope exit. */
struct PoolGuard
{
    ~PoolGuard() { sched::setThreads(0); }
};

/** Exact float equality that also distinguishes -0.0f and NaN bits. */
bool
sameBits(const std::vector<float> &a, const std::vector<float> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool
sameStats(const de::ExtractionStats &a, const de::ExtractionStats &b)
{
    return a.totalWeights == b.totalWeights &&
           a.weightsSkipped == b.weightsSkipped &&
           a.weightsChecked == b.weightsChecked &&
           a.bitsChecked == b.bitsChecked &&
           a.fullWeightsRead == b.fullWeightsRead &&
           a.unreadableWeights == b.unreadableWeights &&
           a.baselineFallbackWeights == b.baselineFallbackWeights &&
           a.auditedWeights == b.auditedWeights &&
           a.extractionErrors == b.extractionErrors &&
           a.signFlips == b.signFlips;
}

} // anonymous namespace

TEST(Determinism, TraceBatchMatchesSerialLoop)
{
    PoolGuard guard;
    dz::ModelZoo zoo = dz::ModelZoo::buildDefault(11, 2, 4);
    const dz::ModelIdentity &model = *zoo.pretrained().front();
    const dg::TraceGenerator gen(model.signature);

    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 0; s < 12; ++s)
        seeds.push_back(0xbeef00 + s);

    sched::setThreads(1);
    std::vector<dg::KernelTrace> serial;
    for (std::uint64_t s : seeds)
        serial.push_back(gen.generate(model.arch, s));

    for (std::size_t threads : kThreadCounts) {
        sched::setThreads(threads);
        const auto batch = gen.generateMany(model.arch, seeds);
        ASSERT_EQ(batch.size(), serial.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            ASSERT_EQ(batch[i].records.size(), serial[i].records.size());
            for (std::size_t r = 0; r < batch[i].records.size(); ++r) {
                EXPECT_EQ(batch[i].records[r].tStart,
                          serial[i].records[r].tStart);
                EXPECT_EQ(batch[i].records[r].tEnd,
                          serial[i].records[r].tEnd);
                EXPECT_EQ(batch[i].records[r].kernelId,
                          serial[i].records[r].kernelId);
            }
        }
    }
}

TEST(Determinism, DatasetGenerationBitIdentical)
{
    PoolGuard guard;
    dz::ModelZoo zoo = dz::ModelZoo::buildDefault(11, 4, 8);
    df::DatasetOptions opts;
    opts.imagesPerModel = 3;
    opts.resolution = 32;
    opts.seed = 5;

    sched::setThreads(1);
    const df::FingerprintDataset reference = df::buildDataset(zoo, opts);
    ASSERT_FALSE(reference.samples.empty());

    for (std::size_t threads : kThreadCounts) {
        sched::setThreads(threads);
        const df::FingerprintDataset ds = df::buildDataset(zoo, opts);
        ASSERT_EQ(ds.samples.size(), reference.samples.size());
        EXPECT_EQ(ds.classNames, reference.classNames);
        for (std::size_t i = 0; i < ds.samples.size(); ++i) {
            EXPECT_EQ(ds.samples[i].label, reference.samples[i].label);
            EXPECT_EQ(ds.samples[i].modelName,
                      reference.samples[i].modelName);
            EXPECT_TRUE(sameBits(ds.samples[i].image.vec(),
                                 reference.samples[i].image.vec()))
                << "image " << i << " differs at " << threads
                << " threads";
        }
    }
}

TEST(Determinism, SelectiveExtractionBitIdentical)
{
    PoolGuard guard;
    dg::ArchParams arch;
    arch.numLayers = 3;
    arch.hidden = 128;
    const dz::WeightStore pre =
        dz::WeightStore::makePretrained(arch, 21, 3000);
    dz::FineTuneOptions ft_opts;
    ft_opts.headWeights = 40;
    const dz::WeightStore victim =
        dz::FineTuneSimulator::fineTune(pre, ft_opts, 22);

    const de::ExtractionPolicy policy;
    const de::SelectiveWeightExtractor extractor(policy);

    // A noisy channel: its error rng is stateful, which is exactly
    // what the serial probe phase must keep scheduling-independent.
    auto run = [&](std::size_t threads, std::vector<float> &out,
                   de::ExtractionStats &stats) {
        sched::setThreads(threads);
        de::WeightStoreOracle oracle(victim);
        de::BitProbeChannel channel(oracle, 1, 0.02, 99);
        out = extractor.extractLayer(pre.layers[1].w, channel, 1, stats);
        extractor.auditAccuracy(out, victim.layers[1].w, pre.layers[1].w,
                                stats);
    };

    std::vector<float> reference;
    de::ExtractionStats reference_stats;
    run(1, reference, reference_stats);
    ASSERT_GT(reference_stats.totalWeights, 0u);

    for (std::size_t threads : kThreadCounts) {
        std::vector<float> out;
        de::ExtractionStats stats;
        run(threads, out, stats);
        EXPECT_TRUE(sameBits(out, reference))
            << "extracted layer differs at " << threads << " threads";
        EXPECT_TRUE(sameStats(stats, reference_stats))
            << "stats differ at " << threads << " threads";
    }
}

TEST(Determinism, FlightDumpBitIdenticalAcrossLanes)
{
    PoolGuard guard;

    // Timestamps are part of the canonical sort key; pin them so the
    // only remaining degrees of freedom are scheduling-induced — the
    // exact thing the canonical dump must erase.
    obs::FakeClock clock(5000);
    obs::setClockForTest(&clock);

    dg::ArchParams arch;
    arch.numLayers = 2;
    arch.hidden = 64;
    const dz::WeightStore pre =
        dz::WeightStore::makePretrained(arch, 7, 800);
    dz::FineTuneOptions ft_opts;
    const dz::WeightStore victim =
        dz::FineTuneSimulator::fineTune(pre, ft_opts, 8);

    auto run = [&](std::size_t threads) {
        sched::setThreads(threads);
        obs::ObsConfig cfg;
        cfg.flightMode = obs::FlightMode::On;
        obs::configure(cfg);

        // Events recorded from pool workers land in per-thread rings;
        // the canonical dump must reassemble one fixed stream.
        sched::parallelFor(96, 1, [&](std::size_t i) {
            obs::flightRecord(obs::FlightEventKind::Retry, "probe",
                              "vote_rounds",
                              static_cast<double>(i));
        });

        // A real pipeline slice on top: stage timers + retry events
        // through the resilient prober (noisy channel, stateful rng).
        de::WeightStoreOracle oracle(victim);
        de::BitProbeChannel channel(oracle, 1, 0.02, 13);
        de::ResilienceOptions ropts;
        de::RetryingProber prober(channel, ropts, nullptr);
        const de::ExtractionPolicy policy;
        const de::SelectiveWeightExtractor extractor(policy);
        de::ExtractionStats stats;
        auto out =
            extractor.extractLayer(pre.layers[0].w, prober, 0, stats);

        std::ostringstream oss;
        obs::flightRecorder().dumpJsonl(oss);
        obs::shutdown(); // clears recorder + mode for the next lane
        return oss.str();
    };

    const std::string reference = run(1);
    EXPECT_NE(reference.find("\"type\":\"flight\""), std::string::npos);
    EXPECT_NE(reference.find("\"dropped\":0"), std::string::npos)
        << "a wrapped ring would invalidate the bit-identity claim";
    for (std::size_t threads : kThreadCounts)
        EXPECT_EQ(run(threads), reference)
            << "flight dump differs at " << threads << " lanes";

    obs::setClockForTest(nullptr);
}

TEST(Determinism, TwoLevelAttackReportByteIdentical)
{
    PoolGuard guard;

    // Wall-clock phase timings are the one legitimately
    // nondeterministic report field; pin them with a manual clock.
    obs::FakeClock clock;
    obs::setClockForTest(&clock);

    auto run = [&](std::size_t threads) {
        sched::setThreads(threads);

        dz::ModelZoo zoo = dz::ModelZoo::buildDefault(51, 3, 0);
        dc::TwoLevelOptions opts;
        opts.level1.datasetOptions.imagesPerModel = 3;
        opts.level1.datasetOptions.resolution = 32;
        opts.level1.cnnOptions.epochs = 15;
        opts.level1.seed = 2;

        dtr::TransformerConfig cfg;
        cfg.vocab = 16;
        cfg.maxSeqLen = 8;
        cfg.hidden = 8;
        cfg.numLayers = 2;
        cfg.numHeads = 2;
        cfg.ffnDim = 16;
        cfg.numClasses = 2;

        dc::TwoLevelAttack attack(opts);
        for (const auto *candidate : zoo.pretrained()) {
            attack.addCandidate(
                *candidate, std::make_shared<dtr::TransformerClassifier>(
                                cfg, candidate->weightSeed));
        }
        const double accuracy = attack.prepare();

        const auto *parent = zoo.pretrained()[0];
        dtr::TransformerClassifier victim(cfg, 9);
        dtr::MarkovTask task(16, 2, 8, 5100, 4.0);
        const auto trace = dg::TraceGenerator(parent->signature)
                               .generate(parent->arch, 0xfee1);
        const auto report = attack.execute(
            victim, trace, dc::makeVictimQueryHook(parent->vocabProfile),
            task.sample(20, 1), task.sample(10, 2).examples,
            task.sample(10, 3).examples);

        // Byte-exact serializations of everything the run produced.
        return std::to_string(accuracy) + "\n" +
               dc::formatReport(report) + "\n" + report.run.toJson();
    };

    const std::string reference = run(1);
    EXPECT_FALSE(reference.empty());
    for (std::size_t threads : kThreadCounts)
        EXPECT_EQ(run(threads), reference)
            << "attack report differs at " << threads << " threads";

    obs::setClockForTest(nullptr);
}
