/**
 * @file
 * Tests for the unreliable-channel model: the fault injector's
 * determinism, the retrying/majority-voting prober's correctness
 * properties, the baseline fallback on budget exhaustion, and the
 * multi-capture trace repair pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "extraction/ieee.hh"
#include "extraction/resilient.hh"
#include "fault/fault.hh"
#include "trace/repair.hh"
#include "util/rng.hh"

namespace dex = decepticon::extraction;
namespace dfa = decepticon::fault;
namespace dg = decepticon::gpusim;
namespace dtc = decepticon::trace;

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/** A one-encoder + head victim with reproducible weights. */
dex::SnapshotOracle
makeOracle(std::uint64_t seed, std::size_t layer_size = 24,
           std::size_t head_size = 8)
{
    decepticon::util::Rng rng(seed);
    std::vector<std::vector<float>> groups(2);
    for (std::size_t i = 0; i < layer_size; ++i)
        groups[0].push_back(
            static_cast<float>(rng.gaussian(0.0, 0.2)));
    for (std::size_t i = 0; i < head_size; ++i)
        groups[1].push_back(
            static_cast<float>(rng.gaussian(0.0, 0.5)));
    return dex::SnapshotOracle(std::move(groups));
}

/** Channel that flips exactly one chosen attempt (by global count). */
class FlipOnAttemptChannel : public dex::BitProbeChannel
{
  public:
    FlipOnAttemptChannel(const dex::VictimWeightOracle &oracle,
                         int flip_attempt)
        : BitProbeChannel(oracle), flipAttempt_(flip_attempt)
    {
    }

    dex::ProbeAttempt
    tryReadBit(std::size_t layer, std::size_t index,
               int word_bit) override
    {
        dex::ProbeAttempt a =
            BitProbeChannel::tryReadBit(layer, index, word_bit);
        if (attempt_++ == flipAttempt_)
            a.bit = !a.bit;
        return a;
    }

  private:
    int flipAttempt_;
    int attempt_ = 0;
};

/** A small synthetic kernel trace with distinctive ids/durations. */
dg::KernelTrace
syntheticTrace(std::size_t records = 40)
{
    dg::KernelTrace t;
    t.kernelNames = {"gemm", "softmax", "norm", "copy"};
    double clock = 0.0;
    for (std::size_t i = 0; i < records; ++i) {
        dg::KernelRecord r;
        r.kernelId = static_cast<int>(i % 4);
        r.tStart = clock + 0.5;
        // Duration is a function of the kernel id, so even an
        // alignment that matches a record to the wrong cycle of the
        // periodic schedule sees the correct duration.
        r.tEnd = r.tStart + 2.0 + static_cast<double>(r.kernelId);
        clock = r.tEnd;
        t.records.push_back(r);
    }
    return t;
}

} // anonymous namespace

// ---- RetryingProber properties ----

TEST(RetryingProber, FaultFreeIsBitIdenticalToRawChannel)
{
    const auto oracle = makeOracle(7);
    dex::BitProbeChannel raw(oracle);
    dex::BitProbeChannel inner(oracle);
    dex::RetryingProber prober(inner, dex::ResilienceOptions{});

    std::size_t bits = 0;
    for (std::size_t layer = 0; layer < 2; ++layer) {
        for (std::size_t i = 0; i < oracle.layerSize(layer); ++i) {
            for (int b = 0; b < 32; ++b) {
                EXPECT_EQ(prober.readBit(layer, i, b),
                          raw.readBit(layer, i, b))
                    << "layer " << layer << " index " << i << " bit "
                    << b;
                ++bits;
            }
        }
    }
    const auto &rel = prober.reliability();
    EXPECT_EQ(rel.logicalBits, bits);
    // votes = 3 with early exit: a clean channel pays exactly the
    // majority (2 reads) per bit, and nothing else.
    EXPECT_EQ(rel.physicalReads, 2 * bits);
    EXPECT_EQ(inner.stats().bitsRead, 2 * bits);
    EXPECT_EQ(rel.retries, 0u);
    EXPECT_EQ(rel.probeFailures, 0u);
    EXPECT_EQ(rel.fallbackBits, 0u);
    EXPECT_EQ(rel.exhaustedBits, 0u);
    EXPECT_DOUBLE_EQ(rel.amplification(), 2.0);
}

TEST(RetryingProber, MajorityCorrectsAnySingleFlip)
{
    const auto oracle = makeOracle(9);
    dex::BitProbeChannel truth(oracle);
    // Whichever single attempt the flip lands on, 3-vote majority
    // still recovers the true bit.
    for (int flip_attempt = 0; flip_attempt < 3; ++flip_attempt) {
        FlipOnAttemptChannel flaky(oracle, flip_attempt);
        dex::RetryingProber prober(flaky, dex::ResilienceOptions{});
        for (int b = 0; b < 8; ++b) {
            // Only the first read of this loop sees the flip; the
            // point is that no single flipped attempt survives.
            EXPECT_EQ(prober.readBit(0, 0, b), truth.readBit(0, 0, b))
                << "flip at attempt " << flip_attempt << " bit " << b;
        }
    }
}

TEST(RetryingProber, StuckCellAnswersConsistentlyWrongOrRight)
{
    const auto oracle = makeOracle(11);
    dfa::FaultSpec spec;
    spec.stuckBitRate = 0.999;
    spec.seed = 5;
    dfa::FaultInjector injector(spec);
    dex::BitProbeChannel inner(oracle);
    inner.attachFaultInjector(&injector);
    dex::RetryingProber prober(inner, dex::ResilienceOptions{});

    // A stuck cell defeats voting: repeated reads agree with each
    // other (the cell's stuck value), never dither.
    for (int b = 0; b < 32; ++b) {
        const bool first = prober.readBit(0, 3, b);
        EXPECT_EQ(prober.readBit(0, 3, b), first);
        EXPECT_EQ(prober.readBit(0, 3, b), first);
    }
    EXPECT_GT(injector.counters().stuckReads, 0u);
    inner.attachFaultInjector(nullptr);
}

TEST(RetryingProber, ExhaustedBudgetFallsBackToBaselineBits)
{
    const auto victim = makeOracle(13);
    // A baseline that disagrees with the victim everywhere, so any
    // bit answered from it is provably a fallback.
    std::vector<std::vector<float>> base_groups(2);
    for (std::size_t i = 0; i < victim.layerSize(0); ++i)
        base_groups[0].push_back(-2.5f);
    for (std::size_t i = 0; i < victim.layerSize(1); ++i)
        base_groups[1].push_back(-2.5f);
    const dex::SnapshotOracle baseline(base_groups);

    dfa::FaultSpec spec;
    spec.transientFailureRate = 0.999999; // nothing ever lands
    spec.seed = 17;
    dfa::FaultInjector injector(spec);
    dex::BitProbeChannel inner(victim);
    inner.attachFaultInjector(&injector);
    dex::RetryingProber prober(inner, dex::ResilienceOptions{},
                               &baseline);

    const float got = prober.readFullWeight(0, 1);
    EXPECT_FLOAT_EQ(got, -2.5f);

    const auto &rel = prober.reliability();
    EXPECT_EQ(rel.exhaustedBits, 32u);
    EXPECT_EQ(rel.fallbackBits, 32u);
    EXPECT_GT(rel.probeFailures, 0u);
    EXPECT_GT(rel.backoffRounds, 0u);
    // Failed attempts and backoff are still charged on the physical
    // channel's ledger.
    EXPECT_GT(inner.stats().hammerRounds, 32u);
    inner.attachFaultInjector(nullptr);
}

// ---- FaultInjector determinism ----

TEST(FaultInjector, IdenticalSeedsReplayIdentically)
{
    const auto oracle = makeOracle(19);
    dfa::FaultSpec spec;
    spec.probeFlipRate = 0.2;
    spec.transientFailureRate = 0.1;
    spec.stuckBitRate = 0.05;
    spec.burstRowFraction = 0.3;
    spec.seed = 99;

    dfa::FaultInjector a(spec), b(spec);
    for (std::size_t i = 0; i < oracle.layerSize(0); ++i) {
        for (int bit = 0; bit < 32; ++bit) {
            for (int attempt = 0; attempt < 3; ++attempt) {
                const auto oa = a.perturbProbe(0, i, bit, true);
                const auto ob = b.perturbProbe(0, i, bit, true);
                EXPECT_EQ(oa.ok, ob.ok);
                EXPECT_EQ(oa.bit, ob.bit);
            }
        }
    }
    EXPECT_EQ(a.counters().bitFlips, b.counters().bitFlips);
    EXPECT_EQ(a.counters().probeFailures, b.counters().probeFailures);
    EXPECT_EQ(a.counters().stuckReads, b.counters().stuckReads);
    EXPECT_GT(a.counters().bitFlips + a.counters().stuckReads, 0u);
}

TEST(FaultInjector, CorruptTraceIsDeterministicPerCaptureSeed)
{
    const auto trace = syntheticTrace();
    dfa::FaultSpec spec;
    spec.recordDropRate = 0.2;
    spec.recordDuplicateRate = 0.1;
    spec.truncateProbability = 0.5;
    spec.seed = 23;

    dfa::FaultInjector a(spec), b(spec);
    const auto ca = a.corruptTrace(trace, 4);
    const auto cb = b.corruptTrace(trace, 4);
    ASSERT_EQ(ca.records.size(), cb.records.size());
    for (std::size_t i = 0; i < ca.records.size(); ++i) {
        EXPECT_EQ(ca.records[i].kernelId, cb.records[i].kernelId);
        EXPECT_DOUBLE_EQ(ca.records[i].tStart, cb.records[i].tStart);
    }

    // A different capture seed draws a different fault pattern.
    const auto cc = a.corruptTrace(trace, 5);
    bool differs = cc.records.size() != ca.records.size();
    for (std::size_t i = 0;
         !differs && i < std::min(ca.records.size(), cc.records.size());
         ++i)
        differs = ca.records[i].kernelId != cc.records[i].kernelId;
    EXPECT_TRUE(differs);
}

TEST(FaultInjector, CorruptTraceNeverEmptiesANonEmptyTrace)
{
    const auto trace = syntheticTrace(6);
    dfa::FaultSpec spec;
    spec.recordDropRate = 0.999;
    spec.truncateProbability = 0.999;
    spec.truncateMaxFraction = 0.99;
    spec.seed = 31;
    dfa::FaultInjector injector(spec);
    for (std::uint64_t cap = 0; cap < 16; ++cap)
        EXPECT_GE(injector.corruptTrace(trace, cap).records.size(), 1u);
}

// ---- trace repair ----

TEST(TraceRepair, DedupeCollapsesExactDuplicates)
{
    auto trace = syntheticTrace(8);
    auto doubled = trace;
    doubled.records.clear();
    for (const auto &r : trace.records) {
        doubled.records.push_back(r);
        doubled.records.push_back(r); // capture artifact
    }
    std::size_t removed = 0;
    const auto clean = dtc::dedupeRecords(doubled, &removed);
    EXPECT_EQ(clean.records.size(), trace.records.size());
    EXPECT_EQ(removed, trace.records.size());
}

TEST(TraceRepair, AlignmentMarksDroppedRecords)
{
    const std::vector<int> reference{1, 2, 3, 4, 5};
    const std::vector<int> capture{1, 2, 4, 5};
    const auto matched = dtc::alignToReference(reference, capture);
    ASSERT_EQ(matched.size(), 5u);
    EXPECT_EQ(matched[0], 0u);
    EXPECT_EQ(matched[1], 1u);
    EXPECT_EQ(matched[2], kNpos); // the dropped record
    EXPECT_EQ(matched[3], 2u);
    EXPECT_EQ(matched[4], 3u);
}

TEST(TraceRepair, ConsensusRecoversDroppedAndDuplicatedRecords)
{
    const auto truth = syntheticTrace();
    dfa::FaultSpec spec;
    spec.recordDropRate = 0.1;
    spec.recordDuplicateRate = 0.05;
    spec.seed = 37;
    dfa::FaultInjector injector(spec);

    std::vector<dg::KernelTrace> captures;
    for (std::uint64_t cap = 0; cap < 7; ++cap)
        captures.push_back(injector.corruptTrace(truth, cap));

    dtc::RepairReport report;
    const auto repaired = dtc::repairTraces(captures, &report);
    EXPECT_EQ(report.captures, 7u);
    EXPECT_GT(report.meanAlignedFraction, 0.8);

    // The consensus must track the true schedule far better than a
    // typical single capture: >= 90% of true records recovered in
    // order, with near-true durations at matched positions.
    const auto matched = dtc::alignToReference(
        truth.kernelIdSequence(), repaired.kernelIdSequence());
    std::size_t hits = 0;
    double max_dur_err = 0.0;
    for (std::size_t p = 0; p < matched.size(); ++p) {
        if (matched[p] == kNpos)
            continue;
        ++hits;
        max_dur_err = std::max(
            max_dur_err,
            std::fabs(repaired.records[matched[p]].duration() -
                      truth.records[p].duration()));
    }
    EXPECT_GE(static_cast<double>(hits) /
                  static_cast<double>(truth.records.size()),
              0.9);
    EXPECT_LT(max_dur_err, 1e-6); // medians reject the fault noise
}
