/**
 * @file
 * Self-test for decepticon-lint: every rule fires on its bad
 * fixture, stays silent on the good fixture, suppressions are
 * honored (and justification-free ones are not), and the JSON
 * report is byte-identical across runs. The fixture corpus lives in
 * tools/lint/fixtures/{good_repo,bad_repo} and shares one layers
 * config (modules a=0, b=1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "lint.hh"

namespace lint = decepticon::lint;

namespace {

std::string
fixtures()
{
    return LINT_FIXTURE_DIR;
}

lint::Config
fixtureConfig()
{
    lint::Config cfg;
    std::string err;
    EXPECT_TRUE(lint::loadConfig(fixtures() + "/layers.toml", cfg, &err))
        << err;
    return cfg;
}

int
countRuleInFile(const lint::Report &r, const std::string &rule,
                const std::string &file)
{
    return static_cast<int>(std::count_if(
        r.violations.begin(), r.violations.end(),
        [&](const lint::Violation &v) {
            return v.rule == rule && v.file == file;
        }));
}

} // namespace

TEST(Lint, GoodRepoIsClean)
{
    const lint::Report r =
        lint::runLint(fixtures() + "/good_repo", fixtureConfig());
    EXPECT_EQ(r.filesScanned, 5u);
    EXPECT_TRUE(r.violations.empty())
        << lint::renderText(r)
        << "good fixture must produce zero unsuppressed violations";
    ASSERT_EQ(r.suppressed.size(), 1u);
    EXPECT_EQ(r.suppressed[0].rule, "R3");
    EXPECT_EQ(r.suppressed[0].file, "src/a/clean.cc");
    EXPECT_NE(r.suppressed[0].justification.find("commutes"),
              std::string::npos)
        << "multi-line justification text must be captured";
}

TEST(Lint, BadRepoFiresEveryRule)
{
    const lint::Report r =
        lint::runLint(fixtures() + "/bad_repo", fixtureConfig());

    // R1: rand, srand, random_device, time(nullptr), steady_clock::now
    // in r1_nondet.cc, plus the bare-suppressed rand in r5_stale.cc.
    EXPECT_EQ(countRuleInFile(r, "R1", "src/a/r1_nondet.cc"), 5);
    EXPECT_EQ(countRuleInFile(r, "R1", "src/a/r5_stale.cc"), 1)
        << "a suppression without justification must not suppress";

    // R2: the upward include and the intra-module file cycle.
    EXPECT_EQ(countRuleInFile(r, "R2", "src/a/upward.cc"), 1);
    EXPECT_EQ(countRuleInFile(r, "R2", "src/a/cycle_a.hh"), 1);

    // R3: exactly the unordered range-for (the vector loop is fine).
    EXPECT_EQ(countRuleInFile(r, "R3", "src/a/r3_unordered.cc"), 1);

    // R4: std::thread, std::async, #pragma omp.
    EXPECT_EQ(countRuleInFile(r, "R4", "src/a/r4_threads.cc"), 3);

    // R5: missing guard, rogue getenv, untagged to-do marker, stale
    // suppression.
    EXPECT_EQ(countRuleInFile(r, "R5", "src/a/r5_unguarded.hh"), 1);
    EXPECT_EQ(countRuleInFile(r, "R5", "src/a/r5_env_todo.cc"), 2);
    EXPECT_EQ(countRuleInFile(r, "R5", "src/a/r5_stale.cc"), 1);

    // R6: std::cout, std::cerr, fprintf — snprintf and the literal
    // containing "std::cout" must not fire.
    EXPECT_EQ(countRuleInFile(r, "R6", "src/a/r6_print.cc"), 3);

    EXPECT_EQ(r.violations.size(), 19u) << lint::renderText(r);
    EXPECT_TRUE(r.suppressed.empty());

    // Rule counts in the report must agree with the raw list.
    EXPECT_EQ(r.countsByRule.at("R1"), 6);
    EXPECT_EQ(r.countsByRule.at("R2"), 2);
    EXPECT_EQ(r.countsByRule.at("R3"), 1);
    EXPECT_EQ(r.countsByRule.at("R4"), 3);
    EXPECT_EQ(r.countsByRule.at("R5"), 4);
    EXPECT_EQ(r.countsByRule.at("R6"), 3);
}

TEST(Lint, ViolationLinesPointAtTheConstruct)
{
    const lint::Report r =
        lint::runLint(fixtures() + "/bad_repo", fixtureConfig());
    auto lineOf = [&](const std::string &file, const std::string &rule) {
        for (const lint::Violation &v : r.violations)
            if (v.file == file && v.rule == rule)
                return v.line;
        return -1;
    };
    EXPECT_EQ(lineOf("src/a/upward.cc", "R2"), 2);
    EXPECT_EQ(lineOf("src/a/r3_unordered.cc", "R3"), 10);
    EXPECT_EQ(lineOf("src/a/r5_unguarded.hh", "R5"), 1);
}

TEST(Lint, JsonReportIsByteIdenticalAcrossRuns)
{
    const lint::Config cfg = fixtureConfig();
    lint::Report a = lint::runLint(fixtures() + "/bad_repo", cfg);
    lint::Report b = lint::runLint(fixtures() + "/bad_repo", cfg);
    const std::string ja = lint::renderJson(a);
    const std::string jb = lint::renderJson(b);
    EXPECT_EQ(ja, jb);
    EXPECT_NE(ja.find("\"tool\": \"decepticon-lint\""), std::string::npos);
    // No timestamps / absolute paths may leak into the report.
    EXPECT_EQ(ja.find(fixtures()), std::string::npos);
}

TEST(Lint, RepoConfigParsesAndDeclaresEveryModule)
{
    lint::Config cfg;
    std::string err;
    ASSERT_TRUE(lint::loadConfig(
        std::string(LINT_REPO_ROOT) + "/tools/lint/layers.toml", cfg, &err))
        << err;
    // The partial order the tree is checked against: spot-check the
    // extremes and one middle edge.
    ASSERT_TRUE(cfg.layerOf.count("util"));
    ASSERT_TRUE(cfg.layerOf.count("core"));
    ASSERT_TRUE(cfg.layerOf.count("sched"));
    EXPECT_LT(cfg.layerOf.at("util"), cfg.layerOf.at("sched"));
    EXPECT_LT(cfg.layerOf.at("sched"), cfg.layerOf.at("core"));
}

TEST(Lint, MalformedConfigIsRejected)
{
    const std::string path =
        testing::TempDir() + "lint_bad_config.toml";
    {
        std::ofstream out(path);
        out << "[no_such_section]\nfoo\n";
    }
    lint::Config cfg;
    std::string err;
    EXPECT_FALSE(lint::loadConfig(path, cfg, &err));
    EXPECT_NE(err.find("unknown section"), std::string::npos);
    std::remove(path.c_str());
}
