/**
 * @file
 * Self-test for decepticon-lint: every rule fires on its bad
 * fixture, stays silent on the good fixture, suppressions are
 * honored (and justification-free ones are not), the incremental
 * cache changes nothing about the findings, and the JSON/SARIF
 * reports are byte-identical across runs. The fixture corpus lives
 * in tools/lint/fixtures/{good_repo,bad_repo} and shares one layers
 * config (modules a=0, b=1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "lint.hh"

namespace lint = decepticon::lint;

namespace {

std::string
fixtures()
{
    return LINT_FIXTURE_DIR;
}

lint::Config
fixtureConfig()
{
    lint::Config cfg;
    std::string err;
    EXPECT_TRUE(lint::loadConfig(fixtures() + "/layers.toml", cfg, &err))
        << err;
    return cfg;
}

int
countRuleInFile(const lint::Report &r, const std::string &rule,
                const std::string &file)
{
    return static_cast<int>(std::count_if(
        r.violations.begin(), r.violations.end(),
        [&](const lint::Violation &v) {
            return v.rule == rule && v.file == file;
        }));
}

} // namespace

TEST(Lint, GoodRepoIsClean)
{
    const lint::Report r =
        lint::runLint(fixtures() + "/good_repo", fixtureConfig());
    EXPECT_EQ(r.filesScanned, 10u);
    EXPECT_TRUE(r.violations.empty())
        << lint::renderText(r)
        << "good fixture must produce zero unsuppressed violations";
    ASSERT_EQ(r.suppressed.size(), 2u);
    EXPECT_EQ(r.suppressed[0].rule, "R3");
    EXPECT_EQ(r.suppressed[0].file, "src/a/clean.cc");
    EXPECT_NE(r.suppressed[0].justification.find("commutes"),
              std::string::npos)
        << "multi-line justification text must be captured";
    // The justified R7 suppression is honored and not flagged stale.
    EXPECT_EQ(r.suppressed[1].rule, "R7");
    EXPECT_EQ(r.suppressed[1].file, "src/a/r7_suppressed.cc");
    EXPECT_NE(r.suppressed[1].justification.find("full grain"),
              std::string::npos);
}

TEST(Lint, BadRepoFiresEveryRule)
{
    const lint::Report r =
        lint::runLint(fixtures() + "/bad_repo", fixtureConfig());

    // R1: rand, srand, random_device, time(nullptr), steady_clock::now
    // in r1_nondet.cc, plus the bare-suppressed rand in r5_stale.cc.
    EXPECT_EQ(countRuleInFile(r, "R1", "src/a/r1_nondet.cc"), 5);
    EXPECT_EQ(countRuleInFile(r, "R1", "src/a/r5_stale.cc"), 1)
        << "a suppression without justification must not suppress";

    // R2: the upward include and the intra-module file cycle.
    EXPECT_EQ(countRuleInFile(r, "R2", "src/a/upward.cc"), 1);
    EXPECT_EQ(countRuleInFile(r, "R2", "src/a/cycle_a.hh"), 1);

    // R3: exactly the unordered range-for (the vector loop is fine).
    EXPECT_EQ(countRuleInFile(r, "R3", "src/a/r3_unordered.cc"), 1);

    // R4: std::thread, std::async, #pragma omp.
    EXPECT_EQ(countRuleInFile(r, "R4", "src/a/r4_threads.cc"), 3);

    // R5: missing guard, rogue getenv, untagged to-do marker, stale
    // suppression, plus the v2 stale/unknown-id cases below.
    EXPECT_EQ(countRuleInFile(r, "R5", "src/a/r5_unguarded.hh"), 1);
    EXPECT_EQ(countRuleInFile(r, "R5", "src/a/r5_env_todo.cc"), 2);
    EXPECT_EQ(countRuleInFile(r, "R5", "src/a/r5_stale.cc"), 1);

    // R6: std::cout, std::cerr, fprintf — snprintf and the literal
    // containing "std::cout" must not fire.
    EXPECT_EQ(countRuleInFile(r, "R6", "src/a/r6_print.cc"), 3);

    // R7: the by-ref shared Rng advanced from the task body.
    EXPECT_EQ(countRuleInFile(r, "R7", "src/a/r7_shared_rng.cc"), 1);

    // R8: += on the by-ref-captured double inside the task.
    EXPECT_EQ(countRuleInFile(r, "R8", "src/a/r8_reduction.cc"), 1);

    // R9: the intra-file ABBA inversion, plus the cross-TU cycle that
    // only exists after one level of call-graph propagation (each
    // cross file alone is consistent).
    EXPECT_EQ(countRuleInFile(r, "R9", "src/a/r9_inversion.cc"), 1);
    EXPECT_EQ(countRuleInFile(r, "R9", "src/a/r9_cross_a.cc"), 1);

    // R10: the early-return leak and the never-ended span.
    EXPECT_EQ(countRuleInFile(r, "R10", "src/a/r10_span.cc"), 2);

    // R5 (v2): one stale suppression per new rule id, plus the
    // unknown-id error — a typo'd id must never be silently inert.
    EXPECT_EQ(countRuleInFile(r, "R5", "src/a/r7_r10_stale.cc"), 5);
    int unknownId = 0;
    for (const lint::Violation &v : r.violations)
        if (v.message.find("unknown rule id 'R42'") != std::string::npos)
            ++unknownId;
    EXPECT_EQ(unknownId, 1);

    EXPECT_EQ(r.violations.size(), 30u) << lint::renderText(r);
    EXPECT_TRUE(r.suppressed.empty());

    // Rule counts in the report must agree with the raw list.
    EXPECT_EQ(r.countsByRule.at("R1"), 6);
    EXPECT_EQ(r.countsByRule.at("R2"), 2);
    EXPECT_EQ(r.countsByRule.at("R3"), 1);
    EXPECT_EQ(r.countsByRule.at("R4"), 3);
    EXPECT_EQ(r.countsByRule.at("R5"), 9);
    EXPECT_EQ(r.countsByRule.at("R6"), 3);
    EXPECT_EQ(r.countsByRule.at("R7"), 1);
    EXPECT_EQ(r.countsByRule.at("R8"), 1);
    EXPECT_EQ(r.countsByRule.at("R9"), 2);
    EXPECT_EQ(r.countsByRule.at("R10"), 2);
}

TEST(Lint, ViolationLinesPointAtTheConstruct)
{
    const lint::Report r =
        lint::runLint(fixtures() + "/bad_repo", fixtureConfig());
    auto lineOf = [&](const std::string &file, const std::string &rule) {
        for (const lint::Violation &v : r.violations)
            if (v.file == file && v.rule == rule)
                return v.line;
        return -1;
    };
    EXPECT_EQ(lineOf("src/a/upward.cc", "R2"), 2);
    EXPECT_EQ(lineOf("src/a/r3_unordered.cc", "R3"), 10);
    EXPECT_EQ(lineOf("src/a/r5_unguarded.hh", "R5"), 1);
    // R7 anchors at the first shared use, R10 at the leaking return.
    EXPECT_EQ(lineOf("src/a/r7_shared_rng.cc", "R7"), 23);
    EXPECT_EQ(lineOf("src/a/r10_span.cc", "R10"), 19);
}

TEST(Lint, JsonReportIsByteIdenticalAcrossRuns)
{
    const lint::Config cfg = fixtureConfig();
    lint::Report a = lint::runLint(fixtures() + "/bad_repo", cfg);
    lint::Report b = lint::runLint(fixtures() + "/bad_repo", cfg);
    const std::string ja = lint::renderJson(a);
    const std::string jb = lint::renderJson(b);
    EXPECT_EQ(ja, jb);
    EXPECT_NE(ja.find("\"tool\": \"decepticon-lint\""), std::string::npos);
    // The canonical findings document carries no run telemetry; the
    // gauges form adds the obs-style lint.* keys on top.
    EXPECT_EQ(ja.find("gauges"), std::string::npos);
    const std::string jg = lint::renderJson(a, /*withGauges=*/true);
    EXPECT_NE(jg.find("\"lint.files_scanned\": 18"), std::string::npos);
    EXPECT_NE(jg.find("\"lint.cache_hits\": 0"), std::string::npos);
    EXPECT_NE(jg.find("\"lint.duration_micros\":"), std::string::npos);
    // No timestamps / absolute paths may leak into the report.
    EXPECT_EQ(ja.find(fixtures()), std::string::npos);
}

TEST(Lint, SarifExportIsDeterministicAndCarriesSuppressions)
{
    const lint::Config cfg = fixtureConfig();
    lint::Report bad = lint::runLint(fixtures() + "/bad_repo", cfg);
    EXPECT_EQ(lint::renderSarif(bad),
              lint::renderSarif(
                  lint::runLint(fixtures() + "/bad_repo", cfg)));
    const std::string sarif = lint::renderSarif(bad);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    // Every rule id ships metadata, even ones with no result here.
    for (const char *id : {"\"id\": \"R1\"", "\"id\": \"R7\"",
                           "\"id\": \"R9\"", "\"id\": \"R10\""})
        EXPECT_NE(sarif.find(id), std::string::npos) << id;
    EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);

    // Suppressed findings ride along as inSource suppressions.
    lint::Report good = lint::runLint(fixtures() + "/good_repo", cfg);
    const std::string goodSarif = lint::renderSarif(good);
    EXPECT_NE(goodSarif.find("\"kind\": \"inSource\""), std::string::npos);
    EXPECT_NE(goodSarif.find("full grain"), std::string::npos);
}

TEST(Lint, IncrementalCacheChangesNothingAndInvalidatesByContent)
{
    namespace fs = std::filesystem;
    const lint::Config cfg = fixtureConfig();
    const std::string root = testing::TempDir() + "lint_cache_repo";
    fs::remove_all(root);
    fs::copy(fixtures() + "/bad_repo", root,
             fs::copy_options::recursive);
    const std::string cache = testing::TempDir() + "lint_cache.tsv";
    std::remove(cache.c_str());

    const lint::Report cold = lint::runLint(root, cfg, cache);
    EXPECT_EQ(cold.cacheHits, 0u);
    const lint::Report warm = lint::runLint(root, cfg, cache);
    EXPECT_EQ(warm.cacheHits, warm.filesScanned);
    // Cold and warm findings must be byte-identical — the cache may
    // only change wall time, never the report.
    EXPECT_EQ(lint::renderJson(cold), lint::renderJson(warm));

    // Editing one file invalidates exactly that file and its
    // findings show up on the next (otherwise warm) run.
    {
        std::ofstream app(root + "/src/a/r6_print.cc", std::ios::app);
        app << "\nint lateEntropy() { return std::rand(); }\n";
    }
    const lint::Report edited = lint::runLint(root, cfg, cache);
    EXPECT_EQ(edited.cacheHits, edited.filesScanned - 1);
    EXPECT_EQ(edited.violations.size(), cold.violations.size() + 1);
    EXPECT_EQ(countRuleInFile(edited, "R1", "src/a/r6_print.cc"), 1);

    // A config edit (different sourceHash) discards the whole cache.
    lint::Config cfg2 = cfg;
    cfg2.sourceHash ^= 1;
    const lint::Report recold = lint::runLint(root, cfg2, cache);
    EXPECT_EQ(recold.cacheHits, 0u);

    fs::remove_all(root);
    std::remove(cache.c_str());
}

TEST(Lint, RepoConfigParsesAndDeclaresEveryModule)
{
    lint::Config cfg;
    std::string err;
    ASSERT_TRUE(lint::loadConfig(
        std::string(LINT_REPO_ROOT) + "/tools/lint/layers.toml", cfg, &err))
        << err;
    // The partial order the tree is checked against: spot-check the
    // extremes and one middle edge.
    ASSERT_TRUE(cfg.layerOf.count("util"));
    ASSERT_TRUE(cfg.layerOf.count("core"));
    ASSERT_TRUE(cfg.layerOf.count("sched"));
    EXPECT_LT(cfg.layerOf.at("util"), cfg.layerOf.at("sched"));
    EXPECT_LT(cfg.layerOf.at("sched"), cfg.layerOf.at("core"));
    // The v2 rule scopes are wired in, and the config bytes hash into
    // the cache key.
    EXPECT_FALSE(cfg.dataflowPaths.empty());
    EXPECT_FALSE(cfg.r9Paths.empty());
    EXPECT_FALSE(cfg.r10Paths.empty());
    EXPECT_NE(cfg.sourceHash, 0u);
}

TEST(Lint, MalformedConfigIsRejected)
{
    const std::string path =
        testing::TempDir() + "lint_bad_config.toml";
    {
        std::ofstream out(path);
        out << "[no_such_section]\nfoo\n";
    }
    lint::Config cfg;
    std::string err;
    EXPECT_FALSE(lint::loadConfig(path, cfg, &err));
    EXPECT_NE(err.find("unknown section"), std::string::npos);
    std::remove(path.c_str());
}
