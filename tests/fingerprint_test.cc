/**
 * @file
 * Tests for the fingerprint library: layer-boundary detection, dataset
 * construction, the CNN extractor, and the DeepSniffer LER baseline.
 */

#include <gtest/gtest.h>

#include "fingerprint/boundary.hh"
#include "fingerprint/cnn.hh"
#include "fingerprint/dataset.hh"
#include "fingerprint/seq_predictor.hh"
#include "gpusim/noise.hh"
#include "gpusim/trace_generator.hh"
#include "zoo/zoo.hh"

namespace df = decepticon::fingerprint;
namespace dg = decepticon::gpusim;
namespace dz = decepticon::zoo;

namespace {

dg::SoftwareSignature
pytorchSig(int dialect = 0)
{
    dg::SoftwareSignature sig;
    sig.kernelDialect = dialect;
    return sig;
}

dg::ArchParams
arch(std::size_t layers, std::size_t hidden)
{
    dg::ArchParams a;
    a.numLayers = layers;
    a.hidden = hidden;
    a.numHeads = std::max<std::size_t>(2, hidden / 64);
    a.seqLen = 128;
    return a;
}

} // anonymous namespace

TEST(Boundary, DetectsBertBaseLayerCount)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(arch(12, 768), 1);
    const auto res = df::detectLayerBoundaries(trace);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.repetitions, 12u);
    EXPECT_EQ(res.period, gen.groupSize());
}

TEST(Boundary, DetectsBertLargeLayerCount)
{
    const dg::TraceGenerator gen(pytorchSig(1));
    const auto trace = gen.generate(arch(24, 1024), 2);
    const auto res = df::detectLayerBoundaries(trace);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.repetitions, 24u);
}

TEST(Boundary, PeakDurationOrdersBaseBelowLarge)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto base = df::detectLayerBoundaries(gen.generate(
        arch(12, 768), 3));
    const auto large = df::detectLayerBoundaries(gen.generate(
        arch(24, 1024), 3));
    // Paper Fig. 10: layer size read from the peak kernel duration.
    EXPECT_GT(large.peakDurationUs, base.peakDurationUs);
}

TEST(Boundary, HandlesXlaTraceBySummingRegions)
{
    dg::SoftwareSignature sig;
    sig.framework = dg::Framework::TensorFlow;
    sig.developer = dg::Developer::Google;
    sig.useXla = true;
    const dg::TraceGenerator gen(sig);
    const auto trace = gen.generate(arch(24, 1024), 4);
    const auto res = df::detectLayerBoundaries(trace);
    ASSERT_TRUE(res.found());
    // Both encoder regions found around the XLA burst (Fig. 12).
    EXPECT_GE(res.regions.size(), 2u);
    EXPECT_EQ(res.repetitions, 24u);
}

TEST(Boundary, NoPeriodicityInRandomTrace)
{
    dg::KernelTrace t;
    t.kernelNames.resize(64, "k");
    double time = 0.0;
    decepticon::util::Rng rng(5);
    for (int i = 0; i < 40; ++i) {
        dg::KernelRecord r;
        // All-distinct kernel ids: no period can self-match.
        r.kernelId = i % 64;
        r.tStart = time;
        r.tEnd = time + 1.0 + rng.uniform();
        time = r.tEnd + 1.0;
        t.records.push_back(r);
    }
    const auto res = df::detectLayerBoundaries(t);
    EXPECT_FALSE(res.found());
}

TEST(Boundary, CropKeepsOnlyPeriodicRegion)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(arch(8, 512), 6);
    const auto cropped = df::cropToEncoderRegion(trace);
    EXPECT_LE(cropped.records.size(), trace.records.size());
    EXPECT_GT(cropped.records.size(),
              trace.encoderRecords().size() * 8 / 10);
    EXPECT_DOUBLE_EQ(cropped.records.front().tStart, 0.0);
}

TEST(Boundary, RegionsAndCoverageConsistent)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(arch(12, 768), 7);
    const auto res = df::detectLayerBoundaries(trace);
    ASSERT_TRUE(res.found());

    // Regions are non-empty, in-bounds, ordered, and their record
    // count reproduces the reported coverage fraction.
    ASSERT_FALSE(res.regions.empty());
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (const auto &[begin, end] : res.regions) {
        EXPECT_LT(begin, end);
        EXPECT_LE(end, trace.records.size());
        EXPECT_GE(begin, prev_end);
        covered += end - begin;
        prev_end = end;
    }
    EXPECT_DOUBLE_EQ(res.coverage,
                     static_cast<double>(covered) /
                         static_cast<double>(trace.records.size()));
    EXPECT_GT(res.coverage, 0.5); // encoders dominate a BERT trace
    EXPECT_LE(res.coverage, 1.0);
}

TEST(Boundary, FoundRequiresAtLeastTwoRepetitions)
{
    // A default-constructed result is not a detection; neither is a
    // period with a single repetition (one "layer" is no periodicity).
    df::BoundaryResult res;
    EXPECT_FALSE(res.found());
    res.period = 5;
    res.repetitions = 1;
    EXPECT_FALSE(res.found());
    res.repetitions = 2;
    EXPECT_TRUE(res.found());
}

TEST(Boundary, CropIsIdentityWithoutPeriodicity)
{
    // The random, never-repeating trace from NoPeriodicityInRandomTrace:
    // cropToEncoderRegion must pass it through unchanged.
    dg::KernelTrace t;
    t.kernelNames.resize(64, "k");
    double time = 0.0;
    decepticon::util::Rng rng(5);
    for (int i = 0; i < 40; ++i) {
        dg::KernelRecord r;
        r.kernelId = i % 64;
        r.tStart = time;
        r.tEnd = time + 1.0 + rng.uniform();
        time = r.tEnd + 1.0;
        t.records.push_back(r);
    }
    const auto cropped = df::cropToEncoderRegion(t);
    ASSERT_EQ(cropped.records.size(), t.records.size());
    for (std::size_t i = 0; i < t.records.size(); ++i) {
        EXPECT_EQ(cropped.records[i].kernelId, t.records[i].kernelId);
        EXPECT_DOUBLE_EQ(cropped.records[i].tStart, t.records[i].tStart);
    }
}

TEST(Boundary, EmptyTraceYieldsNoDetection)
{
    const dg::KernelTrace empty;
    const auto res = df::detectLayerBoundaries(empty);
    EXPECT_FALSE(res.found());
    EXPECT_EQ(res.repetitions, 0u);
    EXPECT_TRUE(res.regions.empty());
    EXPECT_DOUBLE_EQ(res.coverage, 0.0);
    const auto cropped = df::cropToEncoderRegion(empty);
    EXPECT_TRUE(cropped.records.empty());
}

TEST(Dataset, BuildLabelsByLineage)
{
    const auto zoo = dz::ModelZoo::buildDefault(1, 4, 8);
    df::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    EXPECT_EQ(ds.classNames.size(), 4u);
    EXPECT_EQ(ds.samples.size(), (4u + 8u) * 2u);
    for (const auto &s : ds.samples) {
        EXPECT_GE(s.label, 0);
        EXPECT_LT(s.label, 4);
        EXPECT_EQ(s.image.dim(0), 32u);
    }
}

TEST(Dataset, LineageLimitRestrictsClasses)
{
    const auto zoo = dz::ModelZoo::buildDefault(2, 6, 12);
    df::DatasetOptions opts;
    opts.imagesPerModel = 1;
    opts.resolution = 32;
    opts.lineageLimit = 3;
    const auto ds = df::buildDataset(zoo, opts);
    EXPECT_EQ(ds.classNames.size(), 3u);
    for (const auto &s : ds.samples)
        EXPECT_LT(s.label, 3);
}

TEST(Dataset, SplitPreservesSamplesAndClassNames)
{
    const auto zoo = dz::ModelZoo::buildDefault(3, 4, 4);
    df::DatasetOptions opts;
    opts.imagesPerModel = 3;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    const auto [train, test] = ds.split(0.75, 9);
    EXPECT_EQ(train.samples.size() + test.samples.size(),
              ds.samples.size());
    EXPECT_EQ(train.classNames, ds.classNames);
    EXPECT_EQ(train.samples.size(), ds.samples.size() * 3 / 4);
}

TEST(Dataset, FingerprintImageDeterministic)
{
    const auto zoo = dz::ModelZoo::buildDefault(4, 2, 0);
    const auto &m = zoo.models().front();
    const auto a = df::fingerprintImage(m, 32, 7);
    const auto b = df::fingerprintImage(m, 32, 7);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Cnn, ShapesAndDeterminism)
{
    df::FingerprintCnn cnn(32, 5, 1);
    decepticon::tensor::Tensor img({32, 32}, 0.1f);
    const auto probs = cnn.classProbabilities(img);
    ASSERT_EQ(probs.size(), 5u);
    double s = 0.0;
    for (double p : probs)
        s += p;
    EXPECT_NEAR(s, 1.0, 1e-5);
    EXPECT_EQ(cnn.predict(img), cnn.predict(img));
}

TEST(Cnn, TopKOrderedByProbability)
{
    df::FingerprintCnn cnn(32, 6, 2);
    decepticon::tensor::Tensor img({32, 32}, 0.3f);
    const auto probs = cnn.classProbabilities(img);
    const auto top = cnn.topK(img, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_GE(probs[static_cast<std::size_t>(top[0])],
              probs[static_cast<std::size_t>(top[1])]);
    EXPECT_GE(probs[static_cast<std::size_t>(top[1])],
              probs[static_cast<std::size_t>(top[2])]);
}

TEST(Cnn, LearnsToSeparateLineages)
{
    // Small but real end-to-end CNN training on zoo fingerprints.
    const auto zoo = dz::ModelZoo::buildDefault(5, 5, 10);
    df::DatasetOptions opts;
    opts.imagesPerModel = 4;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    const auto [train, test] = ds.split(0.8, 11);

    df::FingerprintCnn cnn(32, ds.numClasses(), 3);
    df::CnnTrainOptions topts; // defaults: 30 epochs, lr 2e-3
    cnn.train(train, topts);
    const double acc = cnn.evaluate(test);
    EXPECT_GT(acc, 0.7) << "CNN should identify lineages well above "
                           "chance (" << 1.0 / ds.numClasses() << ")";
}

TEST(SeqPredictor, GroundTruthFiltersNoise)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(arch(4, 256), 1);
    const auto truth = df::groundTruthOpSequence(trace);
    EXPECT_FALSE(truth.empty());
    EXPECT_LT(truth.size(), trace.records.size());
    for (int op : truth)
        EXPECT_NE(op, static_cast<int>(df::LayerOp::NoOp));
}

TEST(SeqPredictor, InSourceLerIsLow)
{
    // Train on several dialects from one source, test on another
    // dialect of the same source.
    std::vector<dg::KernelTrace> train_traces;
    for (int d = 0; d < 4; ++d) {
        const dg::TraceGenerator gen(pytorchSig(d));
        train_traces.push_back(gen.generate(arch(12, 768), 1));
    }
    df::KernelSequencePredictor pred;
    pred.train(train_traces);

    const dg::TraceGenerator victim_gen(pytorchSig(9));
    const auto victim = victim_gen.generate(arch(12, 768), 2);
    // Paper Table 2: a new release of the same stack costs some LER
    // (0.567 for "DeepSniffer PyTorch Model") but stays usable,
    // unlike foreign stacks (LER > 1).
    EXPECT_LT(pred.layerErrorRate(victim), 0.6);
}

TEST(SeqPredictor, CrossFrameworkLerCollapses)
{
    std::vector<dg::KernelTrace> train_traces;
    for (int d = 0; d < 4; ++d) {
        const dg::TraceGenerator gen(pytorchSig(d));
        train_traces.push_back(gen.generate(arch(12, 768), 1));
    }
    df::KernelSequencePredictor pred;
    pred.train(train_traces);

    dg::SoftwareSignature tf;
    tf.framework = dg::Framework::TensorFlow;
    tf.developer = dg::Developer::Google;
    tf.kernelDialect = 20;
    const auto victim =
        dg::TraceGenerator(tf).generate(arch(12, 768), 3);
    // Paper Table 2: cross-source LER far beyond usable (> 1).
    EXPECT_GT(pred.layerErrorRate(victim), 1.0);
}

TEST(SeqPredictor, PerfectOnTrainingTrace)
{
    const dg::TraceGenerator gen(pytorchSig(5));
    const auto trace = gen.generate(arch(6, 512), 1);
    df::KernelSequencePredictor pred;
    pred.train({trace});
    EXPECT_DOUBLE_EQ(pred.layerErrorRate(trace), 0.0);
}

TEST(SeqPredictor, TrainingIsOrderAndRunDeterministic)
{
    // Regression for the decepticon-lint R3 sweep: the majority-vote
    // tally used to iterate an unordered_map, so the vote-resolution
    // order depended on the hash layout. The tally is an ordered map
    // now — training on the same profile runs, in any presentation
    // order, must yield bit-identical predictions.
    std::vector<dg::KernelTrace> traces;
    for (int d = 0; d < 4; ++d) {
        const dg::TraceGenerator gen(pytorchSig(d));
        traces.push_back(gen.generate(arch(12, 768), 1));
    }
    const auto victim =
        dg::TraceGenerator(pytorchSig(9)).generate(arch(12, 768), 2);

    df::KernelSequencePredictor forward;
    forward.train(traces);
    const auto expected = forward.predict(victim);

    std::vector<dg::KernelTrace> reversed(traces.rbegin(),
                                          traces.rend());
    df::KernelSequencePredictor backward;
    backward.train(reversed);
    EXPECT_EQ(backward.predict(victim), expected)
        << "prediction depends on training presentation order";

    df::KernelSequencePredictor again;
    again.train(traces);
    EXPECT_EQ(again.predict(victim), expected)
        << "repeat training run diverged";
}

TEST(SeqPredictor, VocabularyGrowsWithTrainingSources)
{
    df::KernelSequencePredictor pred;
    EXPECT_EQ(pred.vocabularySize(), 0u);

    const dg::TraceGenerator gen(pytorchSig(5));
    pred.train({gen.generate(arch(6, 512), 1)});
    const std::size_t one_source = pred.vocabularySize();
    EXPECT_GT(one_source, 0u);

    // A second dialect brings kernel names the first never used.
    std::vector<dg::KernelTrace> both = {
        gen.generate(arch(6, 512), 1),
        dg::TraceGenerator(pytorchSig(11)).generate(arch(6, 512), 2)};
    df::KernelSequencePredictor wide;
    wide.train(both);
    EXPECT_GT(wide.vocabularySize(), one_source);
}

TEST(SeqPredictor, EmptyTraceHandledGracefully)
{
    const dg::TraceGenerator gen(pytorchSig(5));
    df::KernelSequencePredictor pred;
    pred.train({gen.generate(arch(4, 256), 1)});

    const dg::KernelTrace empty;
    EXPECT_TRUE(pred.predict(empty).empty());
    EXPECT_TRUE(df::groundTruthOpSequence(empty).empty());
}

TEST(SeqPredictor, UnseenKernelsDecodeDeterministically)
{
    // Out-of-distribution kernel names decode to noise — but to the
    // SAME noise every time (a hash of the name, not randomness), so
    // cross-source LER measurements are reproducible.
    std::vector<dg::KernelTrace> train_traces;
    for (int d = 0; d < 3; ++d) {
        const dg::TraceGenerator gen(pytorchSig(d));
        train_traces.push_back(gen.generate(arch(6, 512), 1));
    }
    df::KernelSequencePredictor pred;
    pred.train(train_traces);

    dg::SoftwareSignature tf;
    tf.framework = dg::Framework::TensorFlow;
    tf.developer = dg::Developer::Google;
    tf.kernelDialect = 33;
    const auto victim =
        dg::TraceGenerator(tf).generate(arch(6, 512), 9);
    const auto first = pred.predict(victim);
    const auto second = pred.predict(victim);
    EXPECT_EQ(first, second);
    EXPECT_DOUBLE_EQ(pred.layerErrorRate(victim),
                     pred.layerErrorRate(victim));
}

/** Boundary detection sweep over layer counts and sizes. */
class BoundarySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BoundarySweep, RepetitionsEqualLayerCount)
{
    const auto [layers, hidden] = GetParam();
    const dg::TraceGenerator gen(pytorchSig(layers));
    const auto trace = gen.generate(
        arch(static_cast<std::size_t>(layers),
             static_cast<std::size_t>(hidden)), 11);
    const auto res = df::detectLayerBoundaries(trace);
    ASSERT_TRUE(res.found());
    EXPECT_EQ(res.repetitions, static_cast<std::size_t>(layers));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoundarySweep,
    ::testing::Combine(::testing::Values(2, 4, 6, 12, 24),
                       ::testing::Values(384, 768)));

#include "fingerprint/metrics.hh"

TEST(Metrics, ConfusionMatrixBasics)
{
    const auto zoo = dz::ModelZoo::buildDefault(9, 3, 3);
    df::DatasetOptions opts;
    opts.imagesPerModel = 3;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    df::FingerprintCnn cnn(32, ds.numClasses(), 5);
    df::CnnTrainOptions topts;
    topts.epochs = 20;
    cnn.train(ds, topts);

    const auto cm = df::confusionMatrix(cnn, ds);
    EXPECT_EQ(cm.numClasses(), ds.numClasses());
    EXPECT_EQ(cm.total(), ds.samples.size());
    EXPECT_NEAR(cm.accuracy(), cnn.evaluate(ds), 1e-12);
    for (std::size_t c = 0; c < cm.numClasses(); ++c) {
        EXPECT_GE(cm.precision(c), 0.0);
        EXPECT_LE(cm.precision(c), 1.0);
        EXPECT_GE(cm.recall(c), 0.0);
        EXPECT_LE(cm.recall(c), 1.0);
    }
    EXPECT_FALSE(cm.toString().empty());
}

TEST(Metrics, TopKAccuracyMonotoneInK)
{
    const auto zoo = dz::ModelZoo::buildDefault(10, 4, 4);
    df::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    df::FingerprintCnn cnn(32, ds.numClasses(), 6);

    double prev = 0.0;
    for (std::size_t k = 1; k <= ds.numClasses(); ++k) {
        const double acc = df::topKAccuracy(cnn, ds, k);
        EXPECT_GE(acc, prev);
        prev = acc;
    }
    EXPECT_NEAR(prev, 1.0, 1e-12) << "k == classes must hit 1.0";
}

TEST(Metrics, Top1MatchesAccuracy)
{
    const auto zoo = dz::ModelZoo::buildDefault(11, 3, 0);
    df::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    df::FingerprintCnn cnn(32, ds.numClasses(), 7);
    EXPECT_NEAR(df::topKAccuracy(cnn, ds, 1), cnn.evaluate(ds), 1e-12);
}

#include "fingerprint/knn.hh"

TEST(Knn, PerfectOnTrainingTemplates)
{
    const auto zoo = dz::ModelZoo::buildDefault(12, 4, 4);
    df::DatasetOptions opts;
    opts.imagesPerModel = 2;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    df::NearestNeighborClassifier knn(1);
    knn.train(ds);
    EXPECT_EQ(knn.templateCount(), ds.samples.size());
    EXPECT_DOUBLE_EQ(knn.evaluate(ds), 1.0);
}

TEST(Knn, GeneralizesToFreshTraces)
{
    const auto zoo = dz::ModelZoo::buildDefault(13, 5, 10);
    df::DatasetOptions opts;
    opts.imagesPerModel = 4;
    opts.resolution = 32;
    const auto ds = df::buildDataset(zoo, opts);
    const auto [train, test] = ds.split(0.8, 3);
    df::NearestNeighborClassifier knn(3);
    knn.train(train);
    EXPECT_GT(knn.evaluate(test), 0.7);
}
