/**
 * @file
 * Tests for the GPU kernel-trace simulator: catalogs, signatures,
 * trace structure (repetition, scaling, XLA, head pruning), and
 * measurement-noise injection.
 */

#include <gtest/gtest.h>

#include <set>

#include "gpusim/catalog.hh"
#include "gpusim/kernel.hh"
#include "gpusim/noise.hh"
#include "gpusim/signature.hh"
#include "gpusim/trace_generator.hh"

namespace dg = decepticon::gpusim;

namespace {

dg::SoftwareSignature
pytorchSig(int dialect = 0)
{
    dg::SoftwareSignature sig;
    sig.framework = dg::Framework::PyTorch;
    sig.developer = dg::Developer::HuggingFace;
    sig.kernelDialect = dialect;
    return sig;
}

dg::SoftwareSignature
tfSig(bool xla = false)
{
    dg::SoftwareSignature sig;
    sig.framework = dg::Framework::TensorFlow;
    sig.developer = dg::Developer::Google;
    sig.useXla = xla;
    sig.kernelDialect = 1;
    return sig;
}

dg::ArchParams
bertBase()
{
    dg::ArchParams arch;
    arch.numLayers = 12;
    arch.hidden = 768;
    arch.numHeads = 12;
    arch.seqLen = 128;
    return arch;
}

dg::ArchParams
bertLarge()
{
    dg::ArchParams arch;
    arch.numLayers = 24;
    arch.hidden = 1024;
    arch.numHeads = 16;
    arch.seqLen = 128;
    return arch;
}

} // anonymous namespace

TEST(Signature, SeedStableAndDistinct)
{
    const auto a = pytorchSig(0);
    const auto b = pytorchSig(1);
    EXPECT_EQ(a.seed(), pytorchSig(0).seed());
    EXPECT_NE(a.seed(), b.seed());
    EXPECT_NE(a.seed(), tfSig().seed());
}

TEST(Signature, ToStringEncodesFields)
{
    const auto s = tfSig(true).toString();
    EXPECT_NE(s.find("tensorflow"), std::string::npos);
    EXPECT_NE(s.find("google"), std::string::npos);
    EXPECT_NE(s.find("xla1"), std::string::npos);
}

TEST(Signature, EnumNames)
{
    EXPECT_EQ(dg::toString(dg::Framework::PyTorch), "pytorch");
    EXPECT_EQ(dg::toString(dg::Framework::Mxnet), "mxnet");
    EXPECT_EQ(dg::toString(dg::Developer::Meta), "meta");
}

TEST(Catalog, TensorFlowFarLargerThanPyTorch)
{
    const dg::KernelCatalog pt(pytorchSig());
    const dg::KernelCatalog tf(tfSig());
    // Paper Fig. 9: TF releases expose ~40x more unique kernels.
    EXPECT_GT(tf.size(), 8 * pt.size());
    EXPECT_LT(pt.size(), 40u);
    EXPECT_GT(tf.size(), 150u);
}

TEST(Catalog, DeterministicForSignature)
{
    const dg::KernelCatalog a(pytorchSig(3));
    const dg::KernelCatalog b(pytorchSig(3));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.name(static_cast<int>(i)), b.name(static_cast<int>(i)));
}

TEST(Catalog, DialectsProduceDifferentCatalogs)
{
    const dg::KernelCatalog a(pytorchSig(1));
    const dg::KernelCatalog b(pytorchSig(2));
    std::set<std::string> na, nb;
    for (const auto &e : a.entries())
        na.insert(e.name);
    for (const auto &e : b.entries())
        nb.insert(e.name);
    EXPECT_NE(na, nb);
}

TEST(Catalog, HasAllCoreKernelClasses)
{
    const dg::KernelCatalog c(pytorchSig());
    EXPECT_FALSE(c.entriesOfClass(dg::KernelClass::Gemm).empty());
    EXPECT_FALSE(c.entriesOfClass(dg::KernelClass::AttnGemm).empty());
    EXPECT_FALSE(c.entriesOfClass(dg::KernelClass::Softmax).empty());
    EXPECT_FALSE(c.entriesOfClass(dg::KernelClass::LayerNorm).empty());
    EXPECT_FALSE(c.entriesOfClass(dg::KernelClass::Memory).empty());
}

TEST(Catalog, NvidiaUsesTensorCoreKernels)
{
    dg::SoftwareSignature sig;
    sig.developer = dg::Developer::Nvidia;
    sig.useTensorCores = true;
    const dg::KernelCatalog c(sig);
    bool has_fp16 = false;
    for (const auto &e : c.entries())
        has_fp16 |= e.name.find("fp16") != std::string::npos;
    EXPECT_TRUE(has_fp16);
}

TEST(Catalog, MetaHasManyReductionKernels)
{
    dg::SoftwareSignature meta;
    meta.developer = dg::Developer::Meta;
    const dg::KernelCatalog cm(meta);
    const dg::KernelCatalog ch(pytorchSig());
    EXPECT_GT(cm.entriesOfClass(dg::KernelClass::Reduction).size(),
              ch.entriesOfClass(dg::KernelClass::Reduction).size());
}

TEST(TraceGenerator, EncoderRepetitionMatchesLayerCount)
{
    const dg::TraceGenerator gen(pytorchSig());
    const dg::KernelTrace trace = gen.generate(bertBase(), 1);
    // Encoder records should form exactly numLayers groups of the
    // template size.
    const auto enc = trace.encoderRecords();
    EXPECT_EQ(enc.size(), 12 * gen.groupSize());
    std::set<int> layer_ids;
    for (const auto &r : enc)
        layer_ids.insert(r.layerIndex);
    EXPECT_EQ(layer_ids.size(), 12u);
}

TEST(TraceGenerator, TimestampsMonotone)
{
    const dg::TraceGenerator gen(pytorchSig());
    const dg::KernelTrace trace = gen.generate(bertBase(), 2);
    double prev_end = 0.0;
    for (const auto &r : trace.records) {
        EXPECT_GE(r.tStart, prev_end);
        EXPECT_GT(r.tEnd, r.tStart);
        prev_end = r.tEnd;
    }
}

TEST(TraceGenerator, SameSeedSameTrace)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto a = gen.generate(bertBase(), 7);
    const auto b = gen.generate(bertBase(), 7);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].kernelId, b.records[i].kernelId);
        EXPECT_DOUBLE_EQ(a.records[i].tStart, b.records[i].tStart);
    }
}

TEST(TraceGenerator, DifferentRunSeedsJitterOnly)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto a = gen.generate(bertBase(), 1);
    const auto b = gen.generate(bertBase(), 2);
    // Same kernel schedule (fingerprint is inherited) ...
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i)
        EXPECT_EQ(a.records[i].kernelId, b.records[i].kernelId);
    // ... but different timings.
    bool timing_differs = false;
    for (std::size_t i = 0; i < a.records.size(); ++i)
        timing_differs |= a.records[i].tEnd != b.records[i].tEnd;
    EXPECT_TRUE(timing_differs);
}

TEST(TraceGenerator, PeakDurationScalesWithHiddenSize)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto base = gen.generate(bertBase(), 3);
    const auto large = gen.generate(bertLarge(), 3);
    // Paper Fig. 10: BERT-large's peak kernel is longer (1024 vs 768
    // hidden states).
    EXPECT_GT(large.peakDuration(), 1.3 * base.peakDuration());
}

TEST(TraceGenerator, TensorFlowRunsManyMoreKernels)
{
    const dg::TraceGenerator pt(pytorchSig());
    const dg::TraceGenerator tf(tfSig());
    const auto a = pt.generate(bertBase(), 4);
    const auto b = tf.generate(bertBase(), 4);
    EXPECT_GT(b.records.size(), 3 * a.records.size());
    EXPECT_GT(b.uniqueKernelCount(), 4 * a.uniqueKernelCount());
}

TEST(TraceGenerator, XlaInsertsIrregularRegion)
{
    const dg::TraceGenerator gen(tfSig(true));
    const auto trace = gen.generate(bertLarge(), 5);
    std::size_t xla_records = 0;
    for (const auto &r : trace.records)
        xla_records += r.phase == dg::Phase::XlaRegion ? 1 : 0;
    EXPECT_GT(xla_records, 10u);
    // The burst sits strictly inside the encoder region.
    std::size_t first_enc = trace.records.size(), first_xla = 0,
                last_enc = 0;
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        if (trace.records[i].phase == dg::Phase::Encoder) {
            first_enc = std::min(first_enc, i);
            last_enc = i;
        } else if (trace.records[i].phase == dg::Phase::XlaRegion &&
                   first_xla == 0) {
            first_xla = i;
        }
    }
    EXPECT_GT(first_xla, first_enc);
    EXPECT_LT(first_xla, last_enc);
}

TEST(TraceGenerator, NoXlaRegionWithoutXla)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(bertBase(), 6);
    for (const auto &r : trace.records)
        EXPECT_NE(r.phase, dg::Phase::XlaRegion);
}

TEST(TraceGenerator, HeadPruningShortensShortKernels)
{
    const dg::TraceGenerator gen(pytorchSig());
    dg::ArchParams dense = bertBase();
    dg::ArchParams pruned = dense;
    pruned.prunedHeads = 6;

    auto short_mean = [](const dg::KernelTrace &t) {
        double s = 0.0;
        std::size_t n = 0;
        for (const auto &r : t.records) {
            if (r.klass == dg::KernelClass::Softmax ||
                r.klass == dg::KernelClass::AttnGemm) {
                s += r.duration();
                ++n;
            }
        }
        return s / static_cast<double>(n);
    };
    const double d = short_mean(gen.generate(dense, 7));
    const double p = short_mean(gen.generate(pruned, 7));
    EXPECT_LT(p, 0.8 * d);
}

TEST(TraceGenerator, GemmDurationsUnaffectedByPruning)
{
    const dg::TraceGenerator gen(pytorchSig());
    dg::ArchParams dense = bertBase();
    dg::ArchParams pruned = dense;
    pruned.prunedHeads = 6;
    const auto a = gen.generate(dense, 8);
    const auto b = gen.generate(pruned, 8);
    // FFN GEMMs do not depend on head count: peak (an FFN GEMM)
    // unchanged.
    EXPECT_NEAR(a.peakDuration(), b.peakDuration(),
                0.05 * a.peakDuration());
}

TEST(TraceGenerator, EpiloguePresent)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(bertBase(), 9);
    EXPECT_EQ(trace.records.back().phase, dg::Phase::OutputLayer);
    EXPECT_EQ(trace.records.front().phase, dg::Phase::Prologue);
}

TEST(KernelTrace, HelperAccessors)
{
    dg::KernelTrace t;
    t.kernelNames = {"a", "b"};
    t.records.push_back({0, 0.0, 2.0, dg::Phase::Encoder,
                         dg::KernelClass::Gemm, 0});
    t.records.push_back({1, 3.0, 4.0, dg::Phase::Encoder,
                         dg::KernelClass::Softmax, 0});
    t.records.push_back({0, 5.0, 9.0, dg::Phase::OutputLayer,
                         dg::KernelClass::Gemm, -1});
    EXPECT_DOUBLE_EQ(t.totalTime(), 9.0);
    EXPECT_DOUBLE_EQ(t.peakDuration(), 4.0);
    EXPECT_EQ(t.uniqueKernelCount(), 2u);
    EXPECT_EQ(t.encoderRecords().size(), 2u);
    EXPECT_EQ(t.kernelIdSequence(), (std::vector<int>{0, 1, 0}));
    EXPECT_EQ(t.durations(), (std::vector<double>{2.0, 1.0, 4.0}));
}

TEST(Noise, PerturbsRequestedKernelCount)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(bertBase(), 10);
    const auto noisy = dg::applyTimingNoise(trace, 16, 20.0, 99);
    ASSERT_EQ(noisy.records.size(), trace.records.size());
    std::size_t changed = 0;
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const double d0 = trace.records[i].duration();
        const double d1 = noisy.records[i].duration();
        if (std::abs(d0 - d1) > 1e-9)
            ++changed;
    }
    EXPECT_EQ(changed, 16u);
}

TEST(Noise, MagnitudeApplied)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(bertBase(), 11);
    const auto noisy = dg::applyTimingNoise(trace, 8, 20.0, 5);
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const double delta = std::abs(noisy.records[i].duration() -
                                      trace.records[i].duration());
        if (delta > 1e-9) {
            // Either +/-20us exactly, or clamped at the 0.5us floor.
            const bool exact = std::abs(delta - 20.0) < 1e-6;
            const bool clamped =
                noisy.records[i].duration() == 0.5;
            EXPECT_TRUE(exact || clamped);
        }
    }
}

TEST(Noise, ZeroKernelsIsIdentity)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(bertBase(), 12);
    const auto same = dg::applyTimingNoise(trace, 0, 20.0, 5);
    for (std::size_t i = 0; i < trace.records.size(); ++i)
        EXPECT_DOUBLE_EQ(same.records[i].tEnd, trace.records[i].tEnd);
}

TEST(Noise, EmptyTraceIsNoOp)
{
    const dg::KernelTrace empty;
    const auto out = dg::applyTimingNoise(empty, 8, 20.0, 5);
    EXPECT_TRUE(out.records.empty());
}

TEST(Noise, ZeroMagnitudeIsIdentity)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(bertBase(), 12);
    const auto same = dg::applyTimingNoise(trace, 16, 0.0, 5);
    ASSERT_EQ(same.records.size(), trace.records.size());
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(same.records[i].tStart,
                         trace.records[i].tStart);
        EXPECT_DOUBLE_EQ(same.records[i].tEnd, trace.records[i].tEnd);
    }
}

TEST(Noise, OversizedKernelCountIsClamped)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(bertBase(), 12);
    // Asking for far more kernels than the trace holds perturbs every
    // record once and must not crash or grow the trace.
    const auto noisy = dg::applyTimingNoise(
        trace, trace.records.size() * 10, 20.0, 7);
    ASSERT_EQ(noisy.records.size(), trace.records.size());
    std::size_t changed = 0;
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        if (std::abs(noisy.records[i].duration() -
                     trace.records[i].duration()) > 1e-9)
            ++changed;
    }
    EXPECT_EQ(changed, trace.records.size());
}

TEST(Noise, KeepsTimestampsConsistent)
{
    const dg::TraceGenerator gen(pytorchSig());
    const auto trace = gen.generate(bertBase(), 13);
    const auto noisy = dg::applyTimingNoise(trace, 32, 45.0, 17);
    double prev_end = 0.0;
    for (const auto &r : noisy.records) {
        EXPECT_GE(r.tStart, prev_end - 1e-9);
        EXPECT_GT(r.tEnd, r.tStart);
        prev_end = r.tEnd;
    }
}

/** Every (framework, developer) pair produces a usable generator. */
class SignatureSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SignatureSweep, GeneratesStructuredTrace)
{
    const auto [f, d] = GetParam();
    dg::SoftwareSignature sig;
    sig.framework = static_cast<dg::Framework>(f);
    sig.developer = static_cast<dg::Developer>(d);
    sig.kernelDialect = f * 10 + d;
    const dg::TraceGenerator gen(sig);
    dg::ArchParams arch = bertBase();
    arch.numLayers = 4;
    const auto trace = gen.generate(arch, 1);
    EXPECT_EQ(trace.encoderRecords().size(), 4 * gen.groupSize());
    EXPECT_GT(trace.totalTime(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSources, SignatureSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1, 2, 3,
                                                              4, 5)));
