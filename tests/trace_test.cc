/**
 * @file
 * Tests for trace-to-image conversion and cropping.
 */

#include <gtest/gtest.h>

#include "gpusim/trace_generator.hh"
#include "trace/image.hh"

namespace dg = decepticon::gpusim;
namespace dtc = decepticon::trace;

namespace {

dg::KernelTrace
makeTrace()
{
    dg::SoftwareSignature sig;
    const dg::TraceGenerator gen(sig);
    dg::ArchParams arch;
    arch.numLayers = 6;
    arch.hidden = 256;
    arch.numHeads = 4;
    arch.seqLen = 64;
    return gen.generate(arch, 1);
}

} // anonymous namespace

TEST(Rasterize, OutputShapeAndRange)
{
    const auto trace = makeTrace();
    const auto img = dtc::rasterize(trace, 64);
    EXPECT_EQ(img.shape(), (std::vector<std::size_t>{64, 64}));
    for (std::size_t i = 0; i < img.size(); ++i) {
        EXPECT_GE(img[i], 0.0f);
        EXPECT_LE(img[i], 1.0f);
    }
}

TEST(Rasterize, NonEmptyTraceProducesInk)
{
    const auto trace = makeTrace();
    const auto img = dtc::rasterize(trace, 64);
    EXPECT_GT(img.sum(), 0.0);
}

TEST(Rasterize, EmptyTraceIsBlack)
{
    dg::KernelTrace empty;
    const auto img = dtc::rasterize(empty, 32);
    EXPECT_DOUBLE_EQ(img.sum(), 0.0);
}

TEST(Rasterize, PeakKernelLandsOnTopRow)
{
    dg::KernelTrace t;
    t.kernelNames = {"k"};
    t.records.push_back({0, 0.0, 100.0, dg::Phase::Encoder,
                         dg::KernelClass::Gemm, 0});
    t.records.push_back({0, 150.0, 160.0, dg::Phase::Encoder,
                         dg::KernelClass::Gemm, 0});
    const auto img = dtc::rasterize(t, 16);
    // Longest kernel (dur 100) -> y=1 -> row 0, at x=0 -> col 0.
    EXPECT_GT(img.at(0, 0), 0.0f);
}

TEST(Rasterize, DeterministicForSameTrace)
{
    const auto trace = makeTrace();
    const auto a = dtc::rasterize(trace, 48);
    const auto b = dtc::rasterize(trace, 48);
    EXPECT_DOUBLE_EQ(dtc::imageDistance(a, b), 0.0);
}

TEST(Rasterize, ScaleInvariantToUniformTimeStretch)
{
    // Stretching all timestamps and durations by a constant leaves the
    // normalized image unchanged (the paper strips axis scales).
    auto trace = makeTrace();
    auto stretched = trace;
    for (auto &r : stretched.records) {
        r.tStart *= 3.0;
        r.tEnd *= 3.0;
    }
    const auto a = dtc::rasterize(trace, 32);
    const auto b = dtc::rasterize(stretched, 32);
    EXPECT_LT(dtc::imageDistance(a, b), 1e-9);
}

TEST(CropRecords, RebasesTimestamps)
{
    const auto trace = makeTrace();
    const auto cropped = dtc::cropRecords(trace, 5, 15);
    ASSERT_EQ(cropped.records.size(), 10u);
    EXPECT_DOUBLE_EQ(cropped.records[0].tStart, 0.0);
    const double dur0 = trace.records[5].duration();
    EXPECT_NEAR(cropped.records[0].duration(), dur0, 1e-12);
}

TEST(CropRecords, EmptyRange)
{
    const auto trace = makeTrace();
    const auto cropped = dtc::cropRecords(trace, 3, 3);
    EXPECT_TRUE(cropped.records.empty());
    EXPECT_EQ(cropped.kernelNames.size(), trace.kernelNames.size());
}

TEST(ImageDistance, ZeroForIdentical)
{
    const auto img = dtc::rasterize(makeTrace(), 32);
    EXPECT_DOUBLE_EQ(dtc::imageDistance(img, img), 0.0);
}

TEST(ImageDistance, PositiveForDifferentTraces)
{
    dg::SoftwareSignature s1;
    s1.kernelDialect = 1;
    dg::SoftwareSignature s2;
    s2.framework = dg::Framework::TensorFlow;
    s2.developer = dg::Developer::Google;
    dg::ArchParams arch;
    arch.numLayers = 6;
    const auto a =
        dtc::rasterize(dg::TraceGenerator(s1).generate(arch, 1), 32);
    const auto b =
        dtc::rasterize(dg::TraceGenerator(s2).generate(arch, 1), 32);
    EXPECT_GT(dtc::imageDistance(a, b), 0.0);
}

/** Resolution sweep. */
class ResolutionSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ResolutionSweep, RasterizeAtAnyResolution)
{
    const auto trace = makeTrace();
    const auto res = static_cast<std::size_t>(GetParam());
    const auto img = dtc::rasterize(trace, res);
    EXPECT_EQ(img.dim(0), res);
    EXPECT_EQ(img.dim(1), res);
    EXPECT_GT(img.sum(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ResolutionSweep,
                         ::testing::Values(8, 16, 32, 64, 128));

TEST(RenderAscii, ShapeAndCharacters)
{
    const auto trace = makeTrace();
    const auto img = dtc::rasterize(trace, 64);
    const std::string art = dtc::renderAscii(img, 32);
    EXPECT_FALSE(art.empty());
    std::size_t lines = 0;
    for (char c : art) {
        if (c == '\n') {
            ++lines;
            continue;
        }
        EXPECT_NE(std::string(" .:*#@").find(c), std::string::npos)
            << "unexpected character '" << c << "'";
    }
    EXPECT_EQ(lines, 32u);
    // Ink must survive the down-sampling (max pooling).
    EXPECT_NE(art.find_first_not_of(" \n"), std::string::npos);
}

TEST(RenderAscii, BlackImageIsBlank)
{
    decepticon::tensor::Tensor img({16, 16});
    const std::string art = dtc::renderAscii(img, 16);
    EXPECT_EQ(art.find_first_not_of(" \n"), std::string::npos);
}
