/**
 * @file
 * Tests for the DRAM geometry model behind the rowhammer channel:
 * address layout, hammerability masking, warm/cold cost accounting,
 * and selective extraction under physical reachability limits.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "extraction/dram.hh"
#include "extraction/selective.hh"
#include "zoo/finetune_sim.hh"
#include "zoo/weight_store.hh"

namespace de = decepticon::extraction;
namespace dz = decepticon::zoo;

namespace {

struct Fixture
{
    decepticon::gpusim::ArchParams arch;
    dz::WeightStore pre;
    dz::WeightStore victim;

    explicit Fixture(std::size_t per_layer = 4000)
    {
        arch.numLayers = 2;
        arch.hidden = 128;
        pre = dz::WeightStore::makePretrained(arch, 61, per_layer);
        dz::FineTuneOptions opts;
        opts.headWeights = 32;
        victim = dz::FineTuneSimulator::fineTune(pre, opts, 62);
    }
};

} // namespace

TEST(DramLayout, AddressesAreSequential)
{
    Fixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom;
    de::DramWeightLayout layout(oracle, geom, 1);

    const auto a0 = layout.addressOf(0, 0);
    const auto a1 = layout.addressOf(0, 1);
    EXPECT_EQ(a0.row, a1.row);
    EXPECT_EQ(a1.column, a0.column + 4);

    // Crossing a row boundary increments the row.
    const std::size_t per_row = geom.rowBytes / 4;
    const auto b = layout.addressOf(0, per_row);
    EXPECT_EQ(b.row, a0.row + 1);
    EXPECT_EQ(b.column, a0.column);
}

TEST(DramLayout, LayersDoNotOverlap)
{
    Fixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom;
    de::DramWeightLayout layout(oracle, geom, 2);

    const auto last_l0 =
        layout.addressOf(0, fx.victim.layers[0].w.size() - 1);
    const auto first_l1 = layout.addressOf(1, 0);
    const std::size_t flat_last =
        last_l0.row * geom.rowBytes + last_l0.column;
    const std::size_t flat_first =
        first_l1.row * geom.rowBytes + first_l1.column;
    EXPECT_EQ(flat_first, flat_last + 4);
}

TEST(DramLayout, RowCountCoversAllWeights)
{
    Fixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom;
    de::DramWeightLayout layout(oracle, geom, 3);
    const std::size_t total_bytes =
        4 * (fx.victim.layers[0].w.size() +
             fx.victim.layers[1].w.size() + fx.victim.head.w.size());
    EXPECT_EQ(layout.rowCount(),
              (total_bytes + geom.rowBytes - 1) / geom.rowBytes);
}

TEST(DramLayout, FullHammerabilityByDefault)
{
    Fixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom; // fraction = 1.0
    de::DramWeightLayout layout(oracle, geom, 4);
    EXPECT_EQ(layout.hammerableRowCount(), layout.rowCount());
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_TRUE(layout.hammerable(0, i));
}

TEST(DramLayout, PartialHammerabilityMasksRows)
{
    Fixture fx(20000);
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom;
    geom.hammerableRowFraction = 0.5;
    de::DramWeightLayout layout(oracle, geom, 5);
    const double frac =
        static_cast<double>(layout.hammerableRowCount()) /
        static_cast<double>(layout.rowCount());
    EXPECT_GT(frac, 0.3);
    EXPECT_LT(frac, 0.7);
    // Hammerability is a per-row property: weights in one row agree.
    const std::size_t per_row = geom.rowBytes / 4;
    for (std::size_t r = 0; r < 5; ++r) {
        const bool first = layout.hammerable(0, r * per_row);
        EXPECT_EQ(layout.hammerable(0, r * per_row + 1), first);
    }
}

TEST(DramChannel, WarmRowsAreCheaper)
{
    Fixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom;
    de::DramWeightLayout layout(oracle, geom, 6);
    de::DramBitProbeChannel chan(oracle, layout);

    // Two reads in the same row: cold then warm.
    chan.readBit(0, 0, 22);
    const std::size_t after_cold = chan.stats().hammerRounds;
    chan.readBit(0, 1, 22);
    const std::size_t warm_cost =
        chan.stats().hammerRounds - after_cold;
    EXPECT_EQ(after_cold, geom.roundsPerBitCold);
    EXPECT_EQ(warm_cost, geom.roundsPerBitWarm);

    // Jumping to a far row is cold again.
    const std::size_t far = geom.rowBytes; // definitely another row
    chan.readBit(0, far / 4, 22);
    EXPECT_EQ(chan.stats().hammerRounds,
              after_cold + warm_cost + geom.roundsPerBitCold);
}

TEST(DramChannel, ReadsMatchPlainChannel)
{
    Fixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom;
    de::DramWeightLayout layout(oracle, geom, 7);
    de::DramBitProbeChannel dram_chan(oracle, layout);
    de::BitProbeChannel plain_chan(oracle);
    for (std::size_t i = 0; i < 200; ++i) {
        for (int b : {31, 22, 10}) {
            EXPECT_EQ(dram_chan.readBit(0, i, b),
                      plain_chan.readBit(0, i, b));
        }
    }
}

TEST(DramExtraction, UnreadableWeightsKeepBaseline)
{
    Fixture fx(20000);
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom;
    geom.hammerableRowFraction = 0.5;
    de::DramWeightLayout layout(oracle, geom, 8);
    de::DramBitProbeChannel chan(oracle, layout);

    de::ExtractionPolicy policy;
    policy.significance = 1e-5; // check almost everything
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    const auto clone =
        ex.extractLayer(fx.pre.layers[0].w, chan, 0, stats);

    EXPECT_GT(stats.unreadableWeights, 0u);
    // Every unreadable weight equals the baseline exactly.
    std::size_t verified = 0;
    for (std::size_t i = 0; i < clone.size(); ++i) {
        if (!chan.canRead(0, i)) {
            EXPECT_EQ(clone[i], fx.pre.layers[0].w[i]);
            ++verified;
        }
    }
    EXPECT_EQ(verified, stats.unreadableWeights +
                            [&] {
                                // skipped weights in unreadable rows
                                // were never attempted; count them.
                                std::size_t n = 0;
                                for (std::size_t i = 0;
                                     i < clone.size(); ++i) {
                                    const double est =
                                        policy.estimatedDist(std::fabs(
                                            fx.pre.layers[0].w[i]));
                                    const bool skipped =
                                        std::fabs(
                                            fx.pre.layers[0].w[i]) <
                                            policy.skipThreshold ||
                                        est < policy.significance;
                                    if (skipped && !chan.canRead(0, i))
                                        ++n;
                                }
                                return n;
                            }());
}

TEST(DramExtraction, HeadUnreadableBecomesZero)
{
    Fixture fx;
    de::WeightStoreOracle oracle(fx.victim);
    de::DramGeometry geom;
    geom.hammerableRowFraction = 0.0; // nothing reachable
    de::DramWeightLayout layout(oracle, geom, 9);
    de::DramBitProbeChannel chan(oracle, layout);

    de::ExtractionPolicy policy;
    de::SelectiveWeightExtractor ex(policy);
    de::ExtractionStats stats;
    const auto head = ex.extractHead(chan, 2, fx.victim.head.w.size(),
                                     stats);
    for (float v : head)
        EXPECT_EQ(v, 0.0f);
    EXPECT_EQ(stats.unreadableWeights, fx.victim.head.w.size());
    EXPECT_EQ(chan.stats().bitsRead, 0u);
}

/** Coverage degradation sweep: correctness decays gently as rows
 *  become unreachable (unreachable weights keep the baseline, which
 *  is usually close). */
class HammerabilitySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(HammerabilitySweep, CorrectnessDecaysGently)
{
    Fixture fx(10000);
    de::ExtractionPolicy policy;
    de::SelectiveWeightExtractor ex(policy);

    double prev = 1.1;
    for (double frac : {1.0, 0.7, 0.4}) {
        de::WeightStoreOracle oracle(fx.victim);
        de::DramGeometry geom;
        geom.hammerableRowFraction = frac;
        de::DramWeightLayout layout(
            oracle, geom, static_cast<std::uint64_t>(GetParam()));
        de::DramBitProbeChannel chan(oracle, layout);
        de::ExtractionStats stats;
        const auto clone =
            ex.extractLayer(fx.pre.layers[0].w, chan, 0, stats);
        ex.auditAccuracy(clone, fx.victim.layers[0].w,
                         fx.pre.layers[0].w, stats);
        const double correct = stats.correctFraction();
        EXPECT_LE(correct, prev + 0.02);
        EXPECT_GT(correct, 0.7);
        prev = correct;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HammerabilitySweep,
                         ::testing::Values(1, 2, 3));
